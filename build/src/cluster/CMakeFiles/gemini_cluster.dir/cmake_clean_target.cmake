file(REMOVE_RECURSE
  "libgemini_cluster.a"
)
