# Empty compiler generated dependencies file for gemini_cluster.
# This may be replaced when dependencies are built.
