file(REMOVE_RECURSE
  "CMakeFiles/gemini_cluster.dir/cluster.cc.o"
  "CMakeFiles/gemini_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/gemini_cluster.dir/fabric.cc.o"
  "CMakeFiles/gemini_cluster.dir/fabric.cc.o.d"
  "CMakeFiles/gemini_cluster.dir/instance_spec.cc.o"
  "CMakeFiles/gemini_cluster.dir/instance_spec.cc.o.d"
  "CMakeFiles/gemini_cluster.dir/machine.cc.o"
  "CMakeFiles/gemini_cluster.dir/machine.cc.o.d"
  "libgemini_cluster.a"
  "libgemini_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
