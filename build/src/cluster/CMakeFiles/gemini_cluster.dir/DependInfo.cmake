
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/gemini_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/gemini_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/fabric.cc" "src/cluster/CMakeFiles/gemini_cluster.dir/fabric.cc.o" "gcc" "src/cluster/CMakeFiles/gemini_cluster.dir/fabric.cc.o.d"
  "/root/repo/src/cluster/instance_spec.cc" "src/cluster/CMakeFiles/gemini_cluster.dir/instance_spec.cc.o" "gcc" "src/cluster/CMakeFiles/gemini_cluster.dir/instance_spec.cc.o.d"
  "/root/repo/src/cluster/machine.cc" "src/cluster/CMakeFiles/gemini_cluster.dir/machine.cc.o" "gcc" "src/cluster/CMakeFiles/gemini_cluster.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gemini_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
