file(REMOVE_RECURSE
  "libgemini_core.a"
)
