# Empty compiler generated dependencies file for gemini_core.
# This may be replaced when dependencies are built.
