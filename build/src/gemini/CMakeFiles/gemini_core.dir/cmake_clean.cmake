file(REMOVE_RECURSE
  "CMakeFiles/gemini_core.dir/gemini_system.cc.o"
  "CMakeFiles/gemini_core.dir/gemini_system.cc.o.d"
  "CMakeFiles/gemini_core.dir/replicator.cc.o"
  "CMakeFiles/gemini_core.dir/replicator.cc.o.d"
  "libgemini_core.a"
  "libgemini_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
