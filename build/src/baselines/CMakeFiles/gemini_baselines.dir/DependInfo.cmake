
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/related_work.cc" "src/baselines/CMakeFiles/gemini_baselines.dir/related_work.cc.o" "gcc" "src/baselines/CMakeFiles/gemini_baselines.dir/related_work.cc.o.d"
  "/root/repo/src/baselines/system_model.cc" "src/baselines/CMakeFiles/gemini_baselines.dir/system_model.cc.o" "gcc" "src/baselines/CMakeFiles/gemini_baselines.dir/system_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
