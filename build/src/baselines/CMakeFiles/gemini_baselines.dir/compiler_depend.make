# Empty compiler generated dependencies file for gemini_baselines.
# This may be replaced when dependencies are built.
