file(REMOVE_RECURSE
  "libgemini_baselines.a"
)
