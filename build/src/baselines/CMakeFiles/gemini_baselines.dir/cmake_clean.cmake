file(REMOVE_RECURSE
  "CMakeFiles/gemini_baselines.dir/related_work.cc.o"
  "CMakeFiles/gemini_baselines.dir/related_work.cc.o.d"
  "CMakeFiles/gemini_baselines.dir/system_model.cc.o"
  "CMakeFiles/gemini_baselines.dir/system_model.cc.o.d"
  "libgemini_baselines.a"
  "libgemini_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
