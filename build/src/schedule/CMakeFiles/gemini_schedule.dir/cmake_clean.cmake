file(REMOVE_RECURSE
  "CMakeFiles/gemini_schedule.dir/executor.cc.o"
  "CMakeFiles/gemini_schedule.dir/executor.cc.o.d"
  "CMakeFiles/gemini_schedule.dir/generic_executor.cc.o"
  "CMakeFiles/gemini_schedule.dir/generic_executor.cc.o.d"
  "CMakeFiles/gemini_schedule.dir/partition.cc.o"
  "CMakeFiles/gemini_schedule.dir/partition.cc.o.d"
  "CMakeFiles/gemini_schedule.dir/trace_export.cc.o"
  "CMakeFiles/gemini_schedule.dir/trace_export.cc.o.d"
  "libgemini_schedule.a"
  "libgemini_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
