file(REMOVE_RECURSE
  "libgemini_schedule.a"
)
