# Empty dependencies file for gemini_schedule.
# This may be replaced when dependencies are built.
