file(REMOVE_RECURSE
  "CMakeFiles/gemini_agent.dir/cloud_operator.cc.o"
  "CMakeFiles/gemini_agent.dir/cloud_operator.cc.o.d"
  "CMakeFiles/gemini_agent.dir/failure_injector.cc.o"
  "CMakeFiles/gemini_agent.dir/failure_injector.cc.o.d"
  "CMakeFiles/gemini_agent.dir/root_agent.cc.o"
  "CMakeFiles/gemini_agent.dir/root_agent.cc.o.d"
  "CMakeFiles/gemini_agent.dir/worker_agent.cc.o"
  "CMakeFiles/gemini_agent.dir/worker_agent.cc.o.d"
  "libgemini_agent.a"
  "libgemini_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
