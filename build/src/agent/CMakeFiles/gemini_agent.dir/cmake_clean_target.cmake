file(REMOVE_RECURSE
  "libgemini_agent.a"
)
