# Empty dependencies file for gemini_agent.
# This may be replaced when dependencies are built.
