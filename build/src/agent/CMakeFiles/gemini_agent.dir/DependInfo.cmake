
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/cloud_operator.cc" "src/agent/CMakeFiles/gemini_agent.dir/cloud_operator.cc.o" "gcc" "src/agent/CMakeFiles/gemini_agent.dir/cloud_operator.cc.o.d"
  "/root/repo/src/agent/failure_injector.cc" "src/agent/CMakeFiles/gemini_agent.dir/failure_injector.cc.o" "gcc" "src/agent/CMakeFiles/gemini_agent.dir/failure_injector.cc.o.d"
  "/root/repo/src/agent/root_agent.cc" "src/agent/CMakeFiles/gemini_agent.dir/root_agent.cc.o" "gcc" "src/agent/CMakeFiles/gemini_agent.dir/root_agent.cc.o.d"
  "/root/repo/src/agent/worker_agent.cc" "src/agent/CMakeFiles/gemini_agent.dir/worker_agent.cc.o" "gcc" "src/agent/CMakeFiles/gemini_agent.dir/worker_agent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/gemini_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/gemini_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gemini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
