# Empty compiler generated dependencies file for gemini_kvstore.
# This may be replaced when dependencies are built.
