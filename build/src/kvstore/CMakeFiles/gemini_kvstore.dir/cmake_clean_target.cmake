file(REMOVE_RECURSE
  "libgemini_kvstore.a"
)
