file(REMOVE_RECURSE
  "CMakeFiles/gemini_kvstore.dir/kv_store.cc.o"
  "CMakeFiles/gemini_kvstore.dir/kv_store.cc.o.d"
  "libgemini_kvstore.a"
  "libgemini_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
