file(REMOVE_RECURSE
  "CMakeFiles/gemini_sim.dir/simulator.cc.o"
  "CMakeFiles/gemini_sim.dir/simulator.cc.o.d"
  "CMakeFiles/gemini_sim.dir/timer.cc.o"
  "CMakeFiles/gemini_sim.dir/timer.cc.o.d"
  "libgemini_sim.a"
  "libgemini_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
