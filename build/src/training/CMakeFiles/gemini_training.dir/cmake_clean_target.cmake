file(REMOVE_RECURSE
  "libgemini_training.a"
)
