file(REMOVE_RECURSE
  "CMakeFiles/gemini_training.dir/model_config.cc.o"
  "CMakeFiles/gemini_training.dir/model_config.cc.o.d"
  "CMakeFiles/gemini_training.dir/model_state.cc.o"
  "CMakeFiles/gemini_training.dir/model_state.cc.o.d"
  "CMakeFiles/gemini_training.dir/parallelism.cc.o"
  "CMakeFiles/gemini_training.dir/parallelism.cc.o.d"
  "CMakeFiles/gemini_training.dir/profiler.cc.o"
  "CMakeFiles/gemini_training.dir/profiler.cc.o.d"
  "CMakeFiles/gemini_training.dir/timeline.cc.o"
  "CMakeFiles/gemini_training.dir/timeline.cc.o.d"
  "CMakeFiles/gemini_training.dir/trainer.cc.o"
  "CMakeFiles/gemini_training.dir/trainer.cc.o.d"
  "libgemini_training.a"
  "libgemini_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
