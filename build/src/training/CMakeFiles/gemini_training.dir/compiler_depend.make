# Empty compiler generated dependencies file for gemini_training.
# This may be replaced when dependencies are built.
