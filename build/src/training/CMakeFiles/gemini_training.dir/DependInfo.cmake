
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/training/model_config.cc" "src/training/CMakeFiles/gemini_training.dir/model_config.cc.o" "gcc" "src/training/CMakeFiles/gemini_training.dir/model_config.cc.o.d"
  "/root/repo/src/training/model_state.cc" "src/training/CMakeFiles/gemini_training.dir/model_state.cc.o" "gcc" "src/training/CMakeFiles/gemini_training.dir/model_state.cc.o.d"
  "/root/repo/src/training/parallelism.cc" "src/training/CMakeFiles/gemini_training.dir/parallelism.cc.o" "gcc" "src/training/CMakeFiles/gemini_training.dir/parallelism.cc.o.d"
  "/root/repo/src/training/profiler.cc" "src/training/CMakeFiles/gemini_training.dir/profiler.cc.o" "gcc" "src/training/CMakeFiles/gemini_training.dir/profiler.cc.o.d"
  "/root/repo/src/training/timeline.cc" "src/training/CMakeFiles/gemini_training.dir/timeline.cc.o" "gcc" "src/training/CMakeFiles/gemini_training.dir/timeline.cc.o.d"
  "/root/repo/src/training/trainer.cc" "src/training/CMakeFiles/gemini_training.dir/trainer.cc.o" "gcc" "src/training/CMakeFiles/gemini_training.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/gemini_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/gemini_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gemini_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gemini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
