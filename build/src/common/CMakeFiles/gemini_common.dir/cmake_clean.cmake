file(REMOVE_RECURSE
  "CMakeFiles/gemini_common.dir/crc32.cc.o"
  "CMakeFiles/gemini_common.dir/crc32.cc.o.d"
  "CMakeFiles/gemini_common.dir/logging.cc.o"
  "CMakeFiles/gemini_common.dir/logging.cc.o.d"
  "CMakeFiles/gemini_common.dir/rng.cc.o"
  "CMakeFiles/gemini_common.dir/rng.cc.o.d"
  "CMakeFiles/gemini_common.dir/stats.cc.o"
  "CMakeFiles/gemini_common.dir/stats.cc.o.d"
  "CMakeFiles/gemini_common.dir/status.cc.o"
  "CMakeFiles/gemini_common.dir/status.cc.o.d"
  "CMakeFiles/gemini_common.dir/table_printer.cc.o"
  "CMakeFiles/gemini_common.dir/table_printer.cc.o.d"
  "CMakeFiles/gemini_common.dir/units.cc.o"
  "CMakeFiles/gemini_common.dir/units.cc.o.d"
  "libgemini_common.a"
  "libgemini_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
