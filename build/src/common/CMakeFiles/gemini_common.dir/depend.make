# Empty dependencies file for gemini_common.
# This may be replaced when dependencies are built.
