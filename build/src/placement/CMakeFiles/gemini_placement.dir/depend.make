# Empty dependencies file for gemini_placement.
# This may be replaced when dependencies are built.
