file(REMOVE_RECURSE
  "libgemini_placement.a"
)
