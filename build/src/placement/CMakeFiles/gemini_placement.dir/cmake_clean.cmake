file(REMOVE_RECURSE
  "CMakeFiles/gemini_placement.dir/placement.cc.o"
  "CMakeFiles/gemini_placement.dir/placement.cc.o.d"
  "CMakeFiles/gemini_placement.dir/probability.cc.o"
  "CMakeFiles/gemini_placement.dir/probability.cc.o.d"
  "libgemini_placement.a"
  "libgemini_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
