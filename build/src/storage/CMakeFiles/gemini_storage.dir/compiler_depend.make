# Empty compiler generated dependencies file for gemini_storage.
# This may be replaced when dependencies are built.
