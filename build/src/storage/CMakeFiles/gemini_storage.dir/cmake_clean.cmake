file(REMOVE_RECURSE
  "CMakeFiles/gemini_storage.dir/cpu_store.cc.o"
  "CMakeFiles/gemini_storage.dir/cpu_store.cc.o.d"
  "CMakeFiles/gemini_storage.dir/persistent_store.cc.o"
  "CMakeFiles/gemini_storage.dir/persistent_store.cc.o.d"
  "CMakeFiles/gemini_storage.dir/serializer.cc.o"
  "CMakeFiles/gemini_storage.dir/serializer.cc.o.d"
  "CMakeFiles/gemini_storage.dir/state_dict.cc.o"
  "CMakeFiles/gemini_storage.dir/state_dict.cc.o.d"
  "libgemini_storage.a"
  "libgemini_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
