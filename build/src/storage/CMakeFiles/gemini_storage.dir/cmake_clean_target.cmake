file(REMOVE_RECURSE
  "libgemini_storage.a"
)
