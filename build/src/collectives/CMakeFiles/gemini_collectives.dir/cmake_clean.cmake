file(REMOVE_RECURSE
  "CMakeFiles/gemini_collectives.dir/collectives.cc.o"
  "CMakeFiles/gemini_collectives.dir/collectives.cc.o.d"
  "libgemini_collectives.a"
  "libgemini_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
