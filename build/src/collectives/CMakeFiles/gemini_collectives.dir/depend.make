# Empty dependencies file for gemini_collectives.
# This may be replaced when dependencies are built.
