file(REMOVE_RECURSE
  "libgemini_collectives.a"
)
