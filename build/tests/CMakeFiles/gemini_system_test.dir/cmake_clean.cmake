file(REMOVE_RECURSE
  "CMakeFiles/gemini_system_test.dir/gemini_system_test.cc.o"
  "CMakeFiles/gemini_system_test.dir/gemini_system_test.cc.o.d"
  "gemini_system_test"
  "gemini_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
