# Empty compiler generated dependencies file for gemini_system_test.
# This may be replaced when dependencies are built.
