# Empty compiler generated dependencies file for parallelism_test.
# This may be replaced when dependencies are built.
