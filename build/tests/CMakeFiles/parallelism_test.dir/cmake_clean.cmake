file(REMOVE_RECURSE
  "CMakeFiles/parallelism_test.dir/parallelism_test.cc.o"
  "CMakeFiles/parallelism_test.dir/parallelism_test.cc.o.d"
  "parallelism_test"
  "parallelism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
