# Empty dependencies file for bench_fig11_ckpt_time_reduction.
# This may be replaced when dependencies are built.
