file(REMOVE_RECURSE
  "../bench/bench_fig11_ckpt_time_reduction"
  "../bench/bench_fig11_ckpt_time_reduction.pdb"
  "CMakeFiles/bench_fig11_ckpt_time_reduction.dir/bench_fig11_ckpt_time_reduction.cc.o"
  "CMakeFiles/bench_fig11_ckpt_time_reduction.dir/bench_fig11_ckpt_time_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ckpt_time_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
