file(REMOVE_RECURSE
  "../bench/bench_ext_ablations"
  "../bench/bench_ext_ablations.pdb"
  "CMakeFiles/bench_ext_ablations.dir/bench_ext_ablations.cc.o"
  "CMakeFiles/bench_ext_ablations.dir/bench_ext_ablations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
