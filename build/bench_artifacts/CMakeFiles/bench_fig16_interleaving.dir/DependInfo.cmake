
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig16_interleaving.cc" "bench_artifacts/CMakeFiles/bench_fig16_interleaving.dir/bench_fig16_interleaving.cc.o" "gcc" "bench_artifacts/CMakeFiles/bench_fig16_interleaving.dir/bench_fig16_interleaving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gemini/CMakeFiles/gemini_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/gemini_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/gemini_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gemini_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/gemini_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/gemini_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/training/CMakeFiles/gemini_training.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gemini_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/gemini_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gemini_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gemini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
