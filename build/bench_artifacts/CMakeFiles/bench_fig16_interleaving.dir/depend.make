# Empty dependencies file for bench_fig16_interleaving.
# This may be replaced when dependencies are built.
