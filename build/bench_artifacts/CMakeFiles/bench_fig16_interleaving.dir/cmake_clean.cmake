file(REMOVE_RECURSE
  "../bench/bench_fig16_interleaving"
  "../bench/bench_fig16_interleaving.pdb"
  "CMakeFiles/bench_fig16_interleaving.dir/bench_fig16_interleaving.cc.o"
  "CMakeFiles/bench_fig16_interleaving.dir/bench_fig16_interleaving.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
