file(REMOVE_RECURSE
  "../bench/bench_ext_related_work"
  "../bench/bench_ext_related_work.pdb"
  "CMakeFiles/bench_ext_related_work.dir/bench_ext_related_work.cc.o"
  "CMakeFiles/bench_ext_related_work.dir/bench_ext_related_work.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
