# Empty compiler generated dependencies file for bench_fig13_p3dn.
# This may be replaced when dependencies are built.
