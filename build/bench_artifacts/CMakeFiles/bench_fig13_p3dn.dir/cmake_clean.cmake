file(REMOVE_RECURSE
  "../bench/bench_fig13_p3dn"
  "../bench/bench_fig13_p3dn.pdb"
  "CMakeFiles/bench_fig13_p3dn.dir/bench_fig13_p3dn.cc.o"
  "CMakeFiles/bench_fig13_p3dn.dir/bench_fig13_p3dn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_p3dn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
