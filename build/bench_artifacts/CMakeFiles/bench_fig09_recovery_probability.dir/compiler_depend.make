# Empty compiler generated dependencies file for bench_fig09_recovery_probability.
# This may be replaced when dependencies are built.
