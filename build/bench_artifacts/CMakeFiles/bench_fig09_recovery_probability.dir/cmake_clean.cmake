file(REMOVE_RECURSE
  "../bench/bench_fig09_recovery_probability"
  "../bench/bench_fig09_recovery_probability.pdb"
  "CMakeFiles/bench_fig09_recovery_probability.dir/bench_fig09_recovery_probability.cc.o"
  "CMakeFiles/bench_fig09_recovery_probability.dir/bench_fig09_recovery_probability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_recovery_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
