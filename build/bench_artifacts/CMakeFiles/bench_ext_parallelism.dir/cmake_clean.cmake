file(REMOVE_RECURSE
  "../bench/bench_ext_parallelism"
  "../bench/bench_ext_parallelism.pdb"
  "CMakeFiles/bench_ext_parallelism.dir/bench_ext_parallelism.cc.o"
  "CMakeFiles/bench_ext_parallelism.dir/bench_ext_parallelism.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
