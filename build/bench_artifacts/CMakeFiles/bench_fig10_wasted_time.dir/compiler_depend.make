# Empty compiler generated dependencies file for bench_fig10_wasted_time.
# This may be replaced when dependencies are built.
