file(REMOVE_RECURSE
  "../bench/bench_fig12_ckpt_frequency"
  "../bench/bench_fig12_ckpt_frequency.pdb"
  "CMakeFiles/bench_fig12_ckpt_frequency.dir/bench_fig12_ckpt_frequency.cc.o"
  "CMakeFiles/bench_fig12_ckpt_frequency.dir/bench_fig12_ckpt_frequency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ckpt_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
