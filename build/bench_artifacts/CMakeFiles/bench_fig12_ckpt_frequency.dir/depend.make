# Empty dependencies file for bench_fig12_ckpt_frequency.
# This may be replaced when dependencies are built.
