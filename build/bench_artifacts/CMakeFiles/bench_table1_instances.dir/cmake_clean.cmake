file(REMOVE_RECURSE
  "../bench/bench_table1_instances"
  "../bench/bench_table1_instances.pdb"
  "CMakeFiles/bench_table1_instances.dir/bench_table1_instances.cc.o"
  "CMakeFiles/bench_table1_instances.dir/bench_table1_instances.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
