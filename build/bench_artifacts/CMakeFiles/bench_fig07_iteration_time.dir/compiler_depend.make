# Empty compiler generated dependencies file for bench_fig07_iteration_time.
# This may be replaced when dependencies are built.
