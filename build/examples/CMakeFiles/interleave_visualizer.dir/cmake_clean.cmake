file(REMOVE_RECURSE
  "CMakeFiles/interleave_visualizer.dir/interleave_visualizer.cpp.o"
  "CMakeFiles/interleave_visualizer.dir/interleave_visualizer.cpp.o.d"
  "interleave_visualizer"
  "interleave_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleave_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
