# Empty dependencies file for interleave_visualizer.
# This may be replaced when dependencies are built.
