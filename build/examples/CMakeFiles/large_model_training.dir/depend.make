# Empty dependencies file for large_model_training.
# This may be replaced when dependencies are built.
