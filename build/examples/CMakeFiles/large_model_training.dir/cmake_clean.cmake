file(REMOVE_RECURSE
  "CMakeFiles/large_model_training.dir/large_model_training.cpp.o"
  "CMakeFiles/large_model_training.dir/large_model_training.cpp.o.d"
  "large_model_training"
  "large_model_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_model_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
