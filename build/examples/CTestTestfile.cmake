# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_large_model_training "/root/repo/build/examples/large_model_training")
set_tests_properties(example_large_model_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_storm "/root/repo/build/examples/failure_storm")
set_tests_properties(example_failure_storm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_placement_explorer "/root/repo/build/examples/placement_explorer")
set_tests_properties(example_placement_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interleave_visualizer "/root/repo/build/examples/interleave_visualizer")
set_tests_properties(example_interleave_visualizer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;0;")
