// Figure 8: per-iteration network idle time without checkpoints, GEMINI's
// checkpoint (transmission) time, and the residual idle time with GEMINI.
// The claim: idle time is ample for the checkpoint traffic, and idle time
// remains even after GEMINI inserts all of it.
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

int main() {
  bench::PrintHeader(
      "Figure 8: network idle time vs GEMINI checkpoint time (16x p4d.24xlarge)",
      "paper Figure 8");

  TablePrinter table({"Model", "Idle w/o ckpt (s)", "GEMINI ckpt time (s)",
                      "Idle w/ GEMINI (s)", "Fits"});
  bool all_fit = true;
  for (const ModelConfig& model : {Gpt2_100B(), Roberta_100B(), Bert_100B()}) {
    const TimelineParams params = bench::P4dTimeline(model);
    const IterationTimeline timeline = BuildZero3Timeline(params);
    const ExecutionResult result =
        ExecuteIterationWithCheckpoint(bench::GeminiExecutor(params));
    if (!result.status.ok()) {
      std::cerr << "executor failed: " << result.status << "\n";
      return 1;
    }
    const double idle = ToSeconds(timeline.TotalIdle());
    const double ckpt = ToSeconds(result.partition.planned_transmission_time);
    table.AddRow({model.name, TablePrinter::Fmt(idle), TablePrinter::Fmt(ckpt),
                  TablePrinter::Fmt(idle - ckpt),
                  result.partition.fits_within_idle_time ? "yes" : "no"});
    all_fit &= result.partition.fits_within_idle_time && ckpt < idle;
  }
  table.Print(std::cout);
  std::cout << "\nShape check: " << (all_fit ? "PASS" : "FAIL")
            << " — checkpoint traffic fits inside the profiled idle spans with idle\n"
               "time to spare (paper: ~12.5 s idle vs ~2.5 s checkpoint for GPT-2 100B).\n";
  return all_fit ? 0 : 1;
}
