// Shared helpers for the figure/table reproduction benches.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/baselines/system_model.h"
#include "src/cluster/instance_spec.h"
#include "src/common/table_printer.h"
#include "src/schedule/executor.h"
#include "src/training/model_config.h"
#include "src/training/timeline.h"

namespace gemini {
namespace bench {

// The paper's primary setting: 16x p4d.24xlarge.
inline constexpr int kPaperMachines = 16;

inline TimelineParams P4dTimeline(const ModelConfig& model, int machines = kPaperMachines) {
  TimelineParams params;
  params.model = model;
  params.instance = P4d24xlarge();
  params.num_machines = machines;
  return params;
}

inline TimelineParams P3dnTimeline(const ModelConfig& model, int machines = kPaperMachines) {
  TimelineParams params;
  params.model = model;
  params.instance = P3dn24xlarge();
  params.num_machines = machines;
  return params;
}

inline ExecutorParams GeminiExecutor(const TimelineParams& timeline, int replicas = 2) {
  ExecutorParams params;
  params.timeline = timeline;
  params.scheme = InterleaveScheme::kPipelined;
  params.num_replicas = replicas;
  return params;
}

// Workload for the analytic system models, derived from the executor run.
inline CheckpointWorkload MakeWorkload(const TimelineParams& timeline,
                                       const ExecutionResult& execution, int replicas = 2) {
  CheckpointWorkload workload;
  workload.iteration_time = execution.baseline_iteration_time;
  workload.checkpoint_bytes_per_machine =
      timeline.model.CheckpointBytesPerMachine(timeline.num_machines);
  workload.num_machines = timeline.num_machines;
  workload.num_replicas = replicas;
  workload.nic_bandwidth = timeline.instance.network_bandwidth;
  workload.comm_alpha = timeline.comm_alpha;
  return workload;
}

inline void PrintHeader(const std::string& title, const std::string& paper_reference) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_reference.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace gemini

#endif  // BENCH_BENCH_UTIL_H_
