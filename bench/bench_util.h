// Shared helpers for the figure/table reproduction benches.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "src/baselines/system_model.h"
#include "src/cluster/instance_spec.h"
#include "src/common/json_writer.h"
#include "src/common/table_printer.h"
#include "src/obs/metrics.h"
#include "src/schedule/executor.h"
#include "src/training/model_config.h"
#include "src/training/timeline.h"

namespace gemini {
namespace bench {

// The paper's primary setting: 16x p4d.24xlarge.
inline constexpr int kPaperMachines = 16;

inline TimelineParams P4dTimeline(const ModelConfig& model, int machines = kPaperMachines) {
  TimelineParams params;
  params.model = model;
  params.instance = P4d24xlarge();
  params.num_machines = machines;
  return params;
}

inline TimelineParams P3dnTimeline(const ModelConfig& model, int machines = kPaperMachines) {
  TimelineParams params;
  params.model = model;
  params.instance = P3dn24xlarge();
  params.num_machines = machines;
  return params;
}

inline ExecutorParams GeminiExecutor(const TimelineParams& timeline, int replicas = 2) {
  ExecutorParams params;
  params.timeline = timeline;
  params.scheme = InterleaveScheme::kPipelined;
  params.num_replicas = replicas;
  return params;
}

// Workload for the analytic system models, derived from the executor run.
inline CheckpointWorkload MakeWorkload(const TimelineParams& timeline,
                                       const ExecutionResult& execution, int replicas = 2) {
  CheckpointWorkload workload;
  workload.iteration_time = execution.baseline_iteration_time;
  workload.checkpoint_bytes_per_machine =
      timeline.model.CheckpointBytesPerMachine(timeline.num_machines);
  workload.num_machines = timeline.num_machines;
  workload.num_replicas = replicas;
  workload.nic_bandwidth = timeline.instance.network_bandwidth;
  workload.comm_alpha = timeline.comm_alpha;
  return workload;
}

inline void PrintHeader(const std::string& title, const std::string& paper_reference) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_reference.c_str());
  std::printf("================================================================\n");
}

// Machine-readable bench reporting. A bench constructs one reporter, renders
// its tables through it, registers the headline metrics of its figure, states
// the shape check, and returns Finish() from main(). Besides the familiar
// stdout rendering this writes BENCH_<name>.json next to the sources (repo
// root; override the directory with $GEMINI_BENCH_OUT_DIR) so scripted
// comparisons across commits read numbers instead of scraping tables.
class BenchReporter {
 public:
  BenchReporter(std::string name, std::string title, std::string paper_reference)
      : name_(std::move(name)), title_(std::move(title)), reference_(paper_reference) {
    PrintHeader(title_, paper_reference);
  }

  // Renders a table to stdout (same look as before; kept on the reporter so
  // the human and machine outputs stay side by side at the call site).
  void Table(const TablePrinter& table) { table.Print(std::cout); }

  void Metric(const std::string& key, double value) {
    metrics_[key] = JsonWriter::FormatDouble(value);
  }
  void Metric(const std::string& key, int64_t value) {
    metrics_[key] = std::to_string(value);
  }

  // Registers a histogram's distribution under `key`: count plus mean and the
  // p50/p95/p99 quantiles ("<key>.count", "<key>.mean", "<key>.p50", ...) —
  // reports carry tail behaviour, not just means.
  void HistogramMetric(const std::string& key, const Histogram& histogram) {
    Metric(key + ".count", histogram.count());
    Metric(key + ".mean", histogram.stat().mean());
    Metric(key + ".p50", histogram.Quantile(0.5));
    Metric(key + ".p95", histogram.Quantile(0.95));
    Metric(key + ".p99", histogram.Quantile(0.99));
  }

  // Records the pass/fail verdict and prints the standard shape-check line.
  // `claim` is the one-paragraph statement of what the figure shows.
  void ShapeCheck(bool pass, const std::string& claim) {
    pass_ = pass;
    std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL") << " — " << claim << "\n";
  }

  // Writes BENCH_<name>.json and returns the process exit code.
  int Finish() const {
    JsonWriter json(/*indent=*/2);
    json.BeginObject();
    json.Key("bench").Value(name_);
    json.Key("title").Value(title_);
    json.Key("reference").Value(reference_);
    json.Key("pass").Value(pass_);
    json.Key("metrics").BeginObject();
    for (const auto& [key, raw] : metrics_) {
      json.Key(key).RawValue(raw);
    }
    json.EndObject();
    json.EndObject();
    const std::string path = OutDir() + "/BENCH_" + name_ + ".json";
    const Status written = WriteTextFile(path, json.str());
    if (!written.ok()) {
      std::cerr << "bench report write failed: " << written << "\n";
      return 1;
    }
    std::cout << "Report: " << path << "\n";
    return pass_ ? 0 : 1;
  }

  // "GPT-2 100B" -> "gpt2_100b": lowercase, runs of non-alphanumerics
  // collapse to single underscores, so metric keys stay dotted-lowercase.
  static std::string MetricKey(const std::string& text) {
    std::string key;
    for (const char c : text) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        key.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      } else if (!key.empty() && key.back() != '_') {
        key.push_back('_');
      }
    }
    while (!key.empty() && key.back() == '_') {
      key.pop_back();
    }
    return key;
  }

 private:
  static std::string OutDir() {
    if (const char* dir = std::getenv("GEMINI_BENCH_OUT_DIR"); dir != nullptr && *dir != '\0') {
      return dir;
    }
#ifdef GEMINI_REPO_ROOT
    return GEMINI_REPO_ROOT;
#else
    return ".";
#endif
  }

  std::string name_;
  std::string title_;
  std::string reference_;
  bool pass_ = false;
  // Values are pre-rendered JSON literals, keyed in sorted order for
  // deterministic files.
  std::map<std::string, std::string> metrics_;
};

}  // namespace bench
}  // namespace gemini

#endif  // BENCH_BENCH_UTIL_H_
