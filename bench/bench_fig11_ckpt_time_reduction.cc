// Figure 11: checkpoint-time reduction of GEMINI over the remote-storage
// baselines, as a function of the number of instances and the NIC bandwidth.
// Claims: baselines stay flat as machines are added (fixed 20 Gb/s aggregate
// store); GEMINI speeds up with machine count and bandwidth — ~65x at
// 100 Gb/s and >250x at 400 Gb/s with 16 instances.
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

namespace {

// Achieved fraction of NIC line rate on the checkpoint stream. Calibrated
// from the paper's own numbers: 560 s baseline / 250x at 400 Gb/s and /65x
// at 100 Gb/s both imply ~70% of line rate end to end (chunking alphas,
// sub-buffer turnaround, and copy interleave).
constexpr double kCheckpointPathEfficiency = 0.7;

// GEMINI's raw checkpoint time: m-1 replica transmissions plus the pipelined
// GPU->CPU copy drain of the final sub-buffer chunk.
TimeNs GeminiCheckpointTime(Bytes per_machine, BytesPerSecond nic, int num_buffers = 4,
                            Bytes buffer = MiB(128) * 8) {
  const BytesPerSecond effective = nic * kCheckpointPathEfficiency;
  const TimeNs transmission = TransferTime(per_machine, effective);
  const TimeNs drain = TransferTime(buffer / num_buffers, effective);
  return transmission + drain;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 11: checkpoint time reduction over the baselines (GPT-2 100B)",
      "paper Figure 11");

  const Bytes total = Gpt2_100B().CheckpointBytesTotal();

  TablePrinter table({"Instances", "Baseline ckpt (s)", "GEMINI@100Gbps (s)", "reduction",
                      "GEMINI@200Gbps (s)", "reduction", "GEMINI@400Gbps (s)", "reduction"});
  double reduction_16_400 = 0.0;
  double reduction_16_100 = 0.0;
  for (const int machines : {4, 8, 12, 16}) {
    const Bytes per_machine = total / machines;
    CheckpointWorkload workload;
    workload.iteration_time = Seconds(62);
    workload.checkpoint_bytes_per_machine = per_machine;
    workload.num_machines = machines;
    const SystemModel baseline = BuildStrawman(workload);
    std::vector<std::string> row = {TablePrinter::Fmt(static_cast<int64_t>(machines)),
                                    TablePrinter::Fmt(ToSeconds(baseline.checkpoint_time))};
    for (const double gbps : {100.0, 200.0, 400.0}) {
      const TimeNs gemini = GeminiCheckpointTime(per_machine, GbpsToBytesPerSecond(gbps));
      const double reduction = static_cast<double>(baseline.checkpoint_time) /
                               static_cast<double>(gemini);
      row.push_back(TablePrinter::Fmt(ToSeconds(gemini)));
      row.push_back(TablePrinter::Fmt(reduction, 1) + "x");
      if (machines == 16 && gbps == 400.0) {
        reduction_16_400 = reduction;
      }
      if (machines == 16 && gbps == 100.0) {
        reduction_16_100 = reduction;
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  // The paper's 6.4 Tb/s remark: matching GEMINI at 16 instances would need
  // persistent storage with 16 x 400 Gb/s of aggregate bandwidth.
  std::cout << "\nAggregate bandwidth needed by remote storage to match GEMINI at 16\n"
            << "instances: " << TablePrinter::Fmt(16 * 400.0 / 1000.0, 1)
            << " Tb/s (paper: 6.4 Tb/s).\n";

  const bool pass = reduction_16_400 > 250.0 && reduction_16_100 > 55.0 &&
                    reduction_16_100 < 80.0;
  std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL")
            << " — reduction grows with instances and bandwidth; ~65x at 100 Gb/s and\n"
               ">250x at 400 Gb/s with 16 instances.\n";
  return pass ? 0 : 1;
}
