// Figure 10: average wasted time for GPT-2 100B on 16x p4d.24xlarge, by the
// number of simultaneously replaced instances. Claims: the baselines are
// flat (always remote-storage recovery); GEMINI is 1.5 iterations for
// software failures, ~13x+ better than HighFreq when CPU-memory recovery
// succeeds, and degrades to Strawman when an entire group is lost (6.7%
// of double failures at N=16).
#include <iostream>

#include "bench/bench_util.h"
#include "src/placement/probability.h"

using namespace gemini;

int main() {
  bench::PrintHeader("Figure 10: average wasted time vs replaced instances (GPT-2 100B)",
                     "paper Figure 10");

  const TimelineParams timeline = bench::P4dTimeline(Gpt2_100B());
  const ExecutionResult execution =
      ExecuteIterationWithCheckpoint(bench::GeminiExecutor(timeline));
  if (!execution.status.ok()) {
    std::cerr << execution.status << "\n";
    return 1;
  }
  const CheckpointWorkload workload = bench::MakeWorkload(timeline, execution);
  const SystemModel strawman = BuildStrawman(workload);
  const SystemModel highfreq = BuildHighFreq(workload);

  TablePrinter table({"Replaced", "Strawman (min)", "HighFreq (min)",
                      "GEMINI from-CPU (min)", "P(from CPU)", "GEMINI expected (min)"});
  double speedup_at_one = 0.0;
  for (const int replaced : {0, 1, 2, 3}) {
    const SystemModel gemini = BuildGemini(workload, replaced);
    const double p_cpu = Corollary1LowerBound(16, 2, std::max(replaced, 0));
    const double cpu_min = ToSeconds(gemini.AverageWastedTime()) / 60.0;
    const double fallback_min =
        ToSeconds(BuildGeminiPersistentFallback(workload).AverageWastedTime()) / 60.0;
    const double expected = p_cpu * cpu_min + (1.0 - p_cpu) * fallback_min;
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(replaced)),
                  TablePrinter::Fmt(ToSeconds(strawman.AverageWastedTime()) / 60.0),
                  TablePrinter::Fmt(ToSeconds(highfreq.AverageWastedTime()) / 60.0),
                  TablePrinter::Fmt(cpu_min), TablePrinter::Fmt(p_cpu, 3),
                  TablePrinter::Fmt(expected)});
    if (replaced == 1) {
      speedup_at_one = static_cast<double>(highfreq.AverageWastedTime()) /
                       static_cast<double>(gemini.AverageWastedTime());
    }
  }
  table.Print(std::cout);

  const SystemModel gemini0 = BuildGemini(workload, 0);
  const double ratio_to_iter = static_cast<double>(gemini0.AverageWastedTime()) /
                               static_cast<double>(workload.iteration_time);
  const bool pass = speedup_at_one > 13.0 && std::abs(ratio_to_iter - 1.5) < 0.01;
  std::cout << "\nGEMINI vs HighFreq wasted-time reduction at 1 replaced instance: "
            << TablePrinter::Fmt(speedup_at_one, 1) << "x\n";
  std::cout << "GEMINI software-failure wasted time: " << TablePrinter::Fmt(ratio_to_iter, 2)
            << " iterations\n";
  std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL")
            << " — 1.5 T_iter for software failures; >13x reduction vs HighFreq for\n"
               "CPU-memory recovery; degradation to Strawman only when a whole group\n"
               "fails (probability 6.7% for two replaced instances at N=16).\n";
  return pass ? 0 : 1;
}
