// Figure 7: iteration time of the three 100B models on 16x p4d.24xlarge,
// without checkpointing vs with GEMINI checkpointing every iteration. The
// claim: GEMINI does not affect training iteration times.
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

int main() {
  bench::BenchReporter reporter(
      "fig07_iteration_time",
      "Figure 7: iteration time, no-checkpoint vs GEMINI (16x p4d.24xlarge)",
      "paper Figure 7");

  TablePrinter table({"Model", "No checkpoint (s)", "GEMINI (s)", "Overhead"});
  bool all_zero_overhead = true;
  for (const ModelConfig& model : {Gpt2_100B(), Roberta_100B(), Bert_100B()}) {
    const TimelineParams timeline = bench::P4dTimeline(model);
    ExecutorParams params = bench::GeminiExecutor(timeline);
    const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
    if (!result.status.ok()) {
      std::cerr << "executor failed for " << model.name << ": " << result.status << "\n";
      return 1;
    }
    table.AddRow({model.name, TablePrinter::Fmt(ToSeconds(result.baseline_iteration_time)),
                  TablePrinter::Fmt(ToSeconds(result.iteration_time)),
                  TablePrinter::Fmt(result.overhead_fraction * 100.0) + " %"});
    const std::string key = bench::BenchReporter::MetricKey(model.name);
    reporter.Metric(key + ".baseline_iteration_seconds",
                    ToSeconds(result.baseline_iteration_time));
    reporter.Metric(key + ".gemini_iteration_seconds", ToSeconds(result.iteration_time));
    reporter.Metric(key + ".overhead_fraction", result.overhead_fraction);
    all_zero_overhead &= result.overhead_fraction < 0.005;
  }
  reporter.Table(table);
  reporter.ShapeCheck(all_zero_overhead,
                      "GEMINI checkpoints every iteration with no measurable impact on\n"
                      "iteration time (paper: 'GEMINI does not affect the training iteration\n"
                      "times'; measured 62 s for GPT-2 100B).");
  return reporter.Finish();
}
