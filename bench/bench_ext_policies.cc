// Extension: protection-policy comparison under a fig09-style failure sweep.
//
// Runs the same training workload under each of the four protection policies
// (GEMINI in-memory checkpoints, TierCheck tiered CPU+persistent, Checkmate
// gradient logging, Recompute-from-peers) across increasing random failure
// rates, reporting each policy's steady-state checkpoint overhead and its
// realized recovery behaviour (downtime, wasted time, effective training
// ratio). A final run drives the online Chameleon selector through a quiet
// start followed by an injected failure-rate shift and reports its switch
// history.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/gemini/gemini_system.h"
#include "src/policy/chameleon_selector.h"

using namespace gemini;

namespace {

GeminiConfig BaseConfig() {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 32;
  config.seed = 2024;
  config.cloud.num_standby = 4;
  return config;
}

struct RunResult {
  bool ok = false;
  int64_t iterations = 0;
  double wall_seconds = 0.0;
  double effective_ratio = 0.0;
  double overhead_fraction = 0.0;  // Policy self-report at end of run.
  int64_t recoveries = 0;
  double mean_downtime_seconds = 0.0;
  double mean_wasted_seconds = 0.0;
};

RunResult RunPolicy(PolicyKind kind, double failures_per_machine_day) {
  GeminiConfig config = BaseConfig();
  config.policy.kind = kind;
  RunResult result;
  auto system = GeminiSystem::Create(config);
  if (!system.ok()) {
    std::cerr << "system build failed: " << system.status() << "\n";
    return result;
  }
  if (failures_per_machine_day > 0.0) {
    // Mostly-software random arrivals over the whole run (the fig09/fig10
    // failure regime, scaled up so a bench-sized window sees several).
    (*system)->failure_injector().StartRandomArrivalsAt(
        /*start=*/0, failures_per_machine_day, /*software_fraction=*/0.9,
        /*until=*/Hours(12));
  }
  const StatusOr<TrainingReport> report = (*system)->TrainUntil(60, Hours(12));
  if (!report.ok()) {
    std::cerr << "run failed: " << report.status() << "\n";
    return result;
  }
  result.ok = true;
  result.iterations = report->iterations_completed;
  result.wall_seconds = ToSeconds(report->wall_time);
  result.effective_ratio = report->effective_training_ratio();
  result.overhead_fraction =
      (*system)->policy().CostReport(**system).steady_state_overhead_fraction;
  result.recoveries = static_cast<int64_t>(report->recoveries.size());
  for (const RecoveryRecord& recovery : report->recoveries) {
    result.mean_downtime_seconds += ToSeconds(recovery.downtime);
    result.mean_wasted_seconds += ToSeconds(recovery.wasted_time);
  }
  if (!report->recoveries.empty()) {
    result.mean_downtime_seconds /= static_cast<double>(report->recoveries.size());
    result.mean_wasted_seconds /= static_cast<double>(report->recoveries.size());
  }
  return result;
}

}  // namespace

int main() {
  bench::BenchReporter reporter(
      "ext_policies",
      "Extension: protection-policy comparison under a failure-rate sweep",
      "extension of Figures 9/10 across the ProtectionPolicy engine");

  const PolicyKind kinds[] = {PolicyKind::kGemini, PolicyKind::kTierCheck,
                              PolicyKind::kCheckmate, PolicyKind::kRecompute};
  const double rates[] = {0.0, 2.0, 6.0};  // Failures per machine-day.

  TablePrinter table({"policy", "fail/machine-day", "iters", "wall (s)", "overhead",
                      "eff. ratio", "recoveries", "downtime (s)", "wasted (s)"});
  bool all_ok = true;
  double overhead_by_kind[4] = {0, 0, 0, 0};
  double stormy_wasted_by_kind[4] = {0, 0, 0, 0};
  for (size_t k = 0; k < 4; ++k) {
    const std::string name(PolicyKindName(kinds[k]));
    for (const double rate : rates) {
      const RunResult run = RunPolicy(kinds[k], rate);
      all_ok = all_ok && run.ok && run.iterations == 60;
      table.AddRow({name, TablePrinter::Fmt(rate, 1), TablePrinter::Fmt(run.iterations),
                    TablePrinter::Fmt(run.wall_seconds, 1),
                    TablePrinter::Fmt(run.overhead_fraction, 4),
                    TablePrinter::Fmt(run.effective_ratio, 3),
                    TablePrinter::Fmt(run.recoveries),
                    TablePrinter::Fmt(run.mean_downtime_seconds, 1),
                    TablePrinter::Fmt(run.mean_wasted_seconds, 1)});
      const std::string key =
          name + ".rate" + bench::BenchReporter::MetricKey(TablePrinter::Fmt(rate, 1));
      reporter.Metric(key + ".iterations", run.iterations);
      reporter.Metric(key + ".wall_seconds", run.wall_seconds);
      reporter.Metric(key + ".overhead_fraction", run.overhead_fraction);
      reporter.Metric(key + ".effective_training_ratio", run.effective_ratio);
      reporter.Metric(key + ".recoveries", run.recoveries);
      reporter.Metric(key + ".mean_downtime_seconds", run.mean_downtime_seconds);
      reporter.Metric(key + ".mean_wasted_seconds", run.mean_wasted_seconds);
      overhead_by_kind[k] = run.overhead_fraction;
      if (rate == 6.0) {
        stormy_wasted_by_kind[k] = run.mean_wasted_seconds;
      }
    }
  }
  reporter.Table(table);

  // ---- Chameleon: quiet start, then an injected failure-rate shift --------
  std::cout << "\nChameleon selector (quiet start -> failure storm at t=40 min):\n";
  GeminiConfig chameleon_config = BaseConfig();
  chameleon_config.policy.kind = PolicyKind::kChameleon;
  chameleon_config.policy.chameleon.initial = PolicyKind::kGemini;
  auto chameleon = GeminiSystem::Create(chameleon_config);
  int64_t switch_count = 0;
  bool chameleon_ok = false;
  if (chameleon.ok()) {
    (*chameleon)->failure_injector().StartRandomArrivalsAt(
        Minutes(40), /*rate_per_machine_day=*/20.0, /*software_fraction=*/0.9,
        /*until=*/Hours(3));
    const StatusOr<TrainingReport> report = (*chameleon)->TrainUntil(200, Hours(4));
    const auto* selector =
        dynamic_cast<const ChameleonSelector*>(&(*chameleon)->policy());
    if (report.ok() && selector != nullptr) {
      chameleon_ok = true;
      switch_count = static_cast<int64_t>(selector->switches().size());
      TablePrinter switches({"iteration", "t (s)", "from", "to", "reason"});
      for (const PolicySwitchEvent& event : selector->switches()) {
        switches.AddRow({TablePrinter::Fmt(event.iteration),
                         TablePrinter::Fmt(ToSeconds(event.at), 1),
                         std::string(PolicyKindName(event.from)),
                         std::string(PolicyKindName(event.to)), event.reason});
      }
      reporter.Table(switches);
      reporter.Metric("chameleon.switches", switch_count);
      reporter.Metric("chameleon.iterations", report->iterations_completed);
      reporter.Metric("chameleon.recoveries",
                      static_cast<int64_t>(report->recoveries.size()));
      if (!selector->switches().empty()) {
        reporter.Metric("chameleon.first_switch_iteration",
                        selector->switches().front().iteration);
      }
    }
  }

  // ---- GeminiPolicy cost accounting under incremental delta checkpoints ----
  // A sparse-update workload (25% of chunks touched per step) with the delta
  // path on: the policy's self-reported steady-state overhead must shrink by
  // the observed delta-to-full byte ratio relative to the same workload with
  // full snapshots.
  std::cout << "\nGeminiPolicy with incremental delta checkpoints (25% dirty):\n";
  bool incremental_ok = false;
  {
    GeminiConfig base_cfg = BaseConfig();
    base_cfg.policy.kind = PolicyKind::kGemini;
    base_cfg.incremental.sparse_update_fraction = 0.25;
    base_cfg.incremental.chunk_elements = 4;
    GeminiConfig inc_cfg = base_cfg;
    inc_cfg.incremental.enabled = true;
    auto full_system = GeminiSystem::Create(base_cfg);
    auto inc_system = GeminiSystem::Create(inc_cfg);
    if (full_system.ok() && inc_system.ok()) {
      const StatusOr<TrainingReport> full_report = (*full_system)->TrainUntil(60, Hours(12));
      const StatusOr<TrainingReport> inc_report = (*inc_system)->TrainUntil(60, Hours(12));
      if (full_report.ok() && inc_report.ok()) {
        const double full_overhead =
            (*full_system)->policy().CostReport(**full_system).steady_state_overhead_fraction;
        const double inc_overhead =
            (*inc_system)->policy().CostReport(**inc_system).steady_state_overhead_fraction;
        const double delta_fraction = (*inc_system)->incremental_delta_fraction();
        const SystemSnapshot snapshot = (*inc_system)->Snapshot();
        TablePrinter inc_table({"mode", "overhead", "delta fraction", "delta commits",
                                "bytes saved", "compaction folds"});
        inc_table.AddRow({"full", TablePrinter::Fmt(full_overhead, 4), "1.0000", "0", "0", "0"});
        inc_table.AddRow({"incremental", TablePrinter::Fmt(inc_overhead, 4),
                          TablePrinter::Fmt(delta_fraction, 4),
                          TablePrinter::Fmt(snapshot.delta_commits),
                          TablePrinter::Fmt(snapshot.delta_bytes_saved),
                          TablePrinter::Fmt(snapshot.compaction_folds)});
        reporter.Table(inc_table);
        reporter.Metric("gemini_incremental.full_overhead_fraction", full_overhead);
        reporter.Metric("gemini_incremental.overhead_fraction", inc_overhead);
        reporter.Metric("gemini_incremental.delta_fraction", delta_fraction);
        reporter.Metric("gemini_incremental.delta_commits", snapshot.delta_commits);
        reporter.Metric("gemini_incremental.delta_bytes_saved", snapshot.delta_bytes_saved);
        reporter.Metric("gemini_incremental.compaction_folds", snapshot.compaction_folds);
        // The overhead product can be 0 * fraction == 0 when the traffic fits
        // the idle spans entirely, so the accounting check is <=.
        incremental_ok = inc_report->iterations_completed == 60 && delta_fraction < 1.0 &&
                         inc_overhead <= full_overhead * delta_fraction + 1e-12 &&
                         snapshot.delta_commits > 0;
      }
    }
  }

  // Shape: GEMINI hides its traffic inside idle spans (<= the paper's sub-5%
  // overhead claim), Checkmate's gradient tax and Recompute's nothing-at-all
  // stay near zero, and TierCheck's extra persistent cadence costs at least
  // as much as GEMINI alone; under the storm GEMINI loses the least progress
  // per failure (the fig10 wasted-time metric beats replay-from-base and
  // fixed recompute); and the online selector actually switches when the
  // observed failure rate shifts.
  const bool overhead_ordered = overhead_by_kind[0] <= 0.05 &&  // gemini sub-5%
                                overhead_by_kind[2] < 0.01 &&   // checkmate near-free
                                overhead_by_kind[3] == 0.0 &&   // recompute is free
                                overhead_by_kind[1] >= overhead_by_kind[0];  // tier adds
  const bool recovery_ordered = stormy_wasted_by_kind[0] < stormy_wasted_by_kind[2] &&
                                stormy_wasted_by_kind[0] < stormy_wasted_by_kind[3];
  const bool pass = all_ok && overhead_ordered && recovery_ordered && chameleon_ok &&
                    switch_count >= 1 && incremental_ok;
  reporter.ShapeCheck(
      pass,
      "All four policies survive the failure sweep; GEMINI keeps protection\n"
      "overhead under 5% and loses the least progress per failure under the\n"
      "storm; Checkmate/Recompute run (near-)checkpoint-free; the Chameleon\n"
      "selector switches at least once on the injected failure-rate shift;\n"
      "and the incremental delta path shrinks GEMINI's accounted overhead by\n"
      "the observed delta-to-full byte ratio.");
  return reporter.Finish();
}
