// Figure 16: effectiveness of the traffic interleaving algorithm — GPT-2 40B
// on 16x p3dn.24xlarge under the five schemes. Claims: Blocking +10.1%,
// Naive interleave OOMs (needs >2 GB/GPU), Interleave-without-pipeline is
// worse than GEMINI (paper: +3.5%), GEMINI matches the baseline exactly.
// Also runs the sub-buffer-count ablation called out in DESIGN.md.
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

int main() {
  bench::PrintHeader(
      "Figure 16: interleaving schemes (GPT-2 40B, 16x p3dn.24xlarge)",
      "paper Figure 16 / Section 7.4");

  const TimelineParams timeline = bench::P3dnTimeline(Gpt2_40B());

  TablePrinter table({"Scheme", "Iteration (s)", "Overhead", "Buffer/GPU", "Notes"});
  double blocking_overhead = 0.0;
  double no_pipeline_overhead = 0.0;
  double gemini_overhead = 1.0;
  bool naive_oom = false;
  for (const InterleaveScheme scheme :
       {InterleaveScheme::kNone, InterleaveScheme::kBlocking, InterleaveScheme::kNaiveInterleave,
        InterleaveScheme::kInterleaveNoPipeline, InterleaveScheme::kPipelined}) {
    ExecutorParams params = bench::GeminiExecutor(timeline);
    params.scheme = scheme;
    const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
    std::string note;
    std::string iteration = "-";
    std::string overhead = "-";
    if (result.status.ok()) {
      iteration = TablePrinter::Fmt(ToSeconds(result.iteration_time));
      overhead = TablePrinter::Fmt(result.overhead_fraction * 100.0) + " %";
    } else {
      note = result.status.code() == StatusCode::kResourceExhausted ? "GPU OOM"
                                                                    : result.status.ToString();
    }
    table.AddRow({std::string(InterleaveSchemeName(scheme)), iteration, overhead,
                  FormatBytes(result.required_buffer_per_gpu), note});
    switch (scheme) {
      case InterleaveScheme::kBlocking:
        blocking_overhead = result.overhead_fraction;
        break;
      case InterleaveScheme::kNaiveInterleave:
        naive_oom = result.status.code() == StatusCode::kResourceExhausted;
        break;
      case InterleaveScheme::kInterleaveNoPipeline:
        no_pipeline_overhead = result.overhead_fraction;
        break;
      case InterleaveScheme::kPipelined:
        gemini_overhead = result.overhead_fraction;
        break;
      case InterleaveScheme::kNone:
        break;
    }
  }
  table.Print(std::cout);

  std::cout << "\nAblation: sub-buffer count p (total reserved buffer fixed at 128 MiB/GPU):\n";
  TablePrinter ablation({"p", "Iteration (s)", "Overhead", "Ckpt done (s)"});
  for (const int p : {1, 2, 4, 8, 16}) {
    ExecutorParams params = bench::GeminiExecutor(timeline);
    params.num_buffers = p;
    const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
    ablation.AddRow({TablePrinter::Fmt(static_cast<int64_t>(p)),
                     TablePrinter::Fmt(ToSeconds(result.iteration_time)),
                     TablePrinter::Fmt(result.overhead_fraction * 100.0) + " %",
                     TablePrinter::Fmt(ToSeconds(result.checkpoint_done))});
  }
  ablation.Print(std::cout);

  const bool pass = blocking_overhead > 0.06 && blocking_overhead < 0.16 && naive_oom &&
                    no_pipeline_overhead > 0.0 && no_pipeline_overhead < blocking_overhead &&
                    gemini_overhead < 0.005;
  std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL")
            << " — ordering matches the paper: GEMINI == Baseline < Interleave-w/o-\n"
               "pipeline < Blocking (~+10%), and Naive interleave OOMs. (Our no-\n"
               "pipeline penalty is smaller than the paper's 3.5% because the\n"
               "simulated idle headroom is slightly larger than the testbed's;\n"
               "see EXPERIMENTS.md.)\n";
  return pass ? 0 : 1;
}
