// Figure 15: scalability of the effective training time ratio.
//  (a) vs failure frequency at 16 instances: GEMINI stays near the
//      no-failure baseline even at 8 failures/day, HighFreq pays a 14.5%
//      serialization tax even with zero failures, Strawman collapses.
//  (b) vs cluster size with OPT's 1.5%/day per-machine failure rate: at
//      1000 instances GEMINI still delivers ~91%, ~54% above HighFreq,
//      while Strawman can hardly make progress.
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

int main() {
  bench::PrintHeader("Figure 15: effective training time ratio (GPT-2 100B)",
                     "paper Figure 15a/15b");

  const TimelineParams timeline = bench::P4dTimeline(Gpt2_100B());
  const ExecutionResult execution =
      ExecuteIterationWithCheckpoint(bench::GeminiExecutor(timeline));
  if (!execution.status.ok()) {
    std::cerr << execution.status << "\n";
    return 1;
  }
  const CheckpointWorkload workload = bench::MakeWorkload(timeline, execution);
  // Per the paper's methodology, the simulation uses software-failure
  // recovery costs (hardware behaves the same with standby machines).
  const SystemModel gemini = BuildGemini(workload, 0);
  const SystemModel highfreq = BuildHighFreq(workload);
  const SystemModel strawman = BuildStrawman(workload);

  std::cout << "(a) vs failures per day, 16 instances:\n";
  TablePrinter by_rate({"Failures/day", "No failure", "GEMINI", "HighFreq", "Strawman"});
  for (const double failures : {0.0, 1.0, 2.0, 4.0, 6.0, 8.0}) {
    by_rate.AddRow({TablePrinter::Fmt(failures, 0), TablePrinter::Fmt(1.0, 3),
                    TablePrinter::Fmt(gemini.EffectiveTrainingRatio(failures), 3),
                    TablePrinter::Fmt(highfreq.EffectiveTrainingRatio(failures), 3),
                    TablePrinter::Fmt(strawman.EffectiveTrainingRatio(failures), 3)});
  }
  by_rate.Print(std::cout);

  std::cout << "\n(b) vs number of instances (1.5% of machines fail per day):\n";
  TablePrinter by_size({"Instances", "Failures/day", "GEMINI", "HighFreq", "Strawman"});
  double gemini_1000 = 0.0;
  double highfreq_1000 = 0.0;
  for (const int machines : {16, 64, 128, 256, 512, 1000}) {
    const double failures = 0.015 * machines;
    const double g = gemini.EffectiveTrainingRatio(failures);
    const double h = highfreq.EffectiveTrainingRatio(failures);
    const double s = strawman.EffectiveTrainingRatio(failures);
    by_size.AddRow({TablePrinter::Fmt(static_cast<int64_t>(machines)),
                    TablePrinter::Fmt(failures, 1), TablePrinter::Fmt(g, 3),
                    TablePrinter::Fmt(h, 3), TablePrinter::Fmt(s, 3)});
    if (machines == 1000) {
      gemini_1000 = g;
      highfreq_1000 = h;
    }
  }
  by_size.Print(std::cout);

  const double highfreq_tax = 1.0 - highfreq.EffectiveTrainingRatio(0.0);
  const bool pass = gemini.EffectiveTrainingRatio(8.0) > 0.92 &&
                    highfreq_tax > 0.12 && highfreq_tax < 0.16 &&
                    std::abs(gemini_1000 - 0.91) < 0.03 &&
                    gemini_1000 / highfreq_1000 > 1.35 &&
                    strawman.EffectiveTrainingRatio(15.0) < 0.15;
  std::cout << "\nHighFreq serialization tax at zero failures: "
            << TablePrinter::Fmt(highfreq_tax * 100.0, 1) << "% (paper: 14.5%)\n";
  std::cout << "GEMINI at 1000 instances: " << TablePrinter::Fmt(gemini_1000 * 100.0, 1)
            << "% (paper: ~91%), " << TablePrinter::Fmt((gemini_1000 / highfreq_1000 - 1.0) *
                                                         100.0, 0)
            << "% above HighFreq (paper: 54%)\n";
  std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL")
            << " — GEMINI flat in failure rate; HighFreq pays the serialization tax\n"
               "even with no failures; Strawman collapses at scale.\n";
  return pass ? 0 : 1;
}
