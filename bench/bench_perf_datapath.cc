// Wall-clock microbenchmark of the steady-state checkpoint data path.
//
// GEMINI's premise is that checkpointing every iteration is affordable
// because the data path is cheap (Section 5, Algorithm 2). This bench
// measures what the *harness* pays per iteration for the real-bytes plane —
// capture (MakeCheckpoint + CRC stamp), commit into every holder's
// double-buffered CPU store, and one CRC-verified recovery read — at three
// payload sizes, plus raw CRC-32 throughput. Unlike the figure benches these
// numbers are host wall-clock, not simulated time: they track harness speed
// across commits (EXPERIMENTS.md records the trajectory), not modeled
// behaviour.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/machine.h"
#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/storage/cpu_store.h"
#include "src/storage/serializer.h"
#include "src/training/trainer.h"

// Sanitizer instrumentation skews the cost of table loads vs. intrinsics vs.
// plain loops arbitrarily (slicing-by-8 can measure *slower* than the
// byte-wise reference under ASan), so the speedup-ratio gates only hold in
// uninstrumented builds. The sanitizer CI leg still runs this bench for its
// memory coverage of the full data path; it just skips the ratio thresholds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GEMINI_BENCH_INSTRUMENTED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GEMINI_BENCH_INSTRUMENTED 1
#endif
#endif

namespace gemini {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// CRC throughput over a buffer large enough to defeat caches of the lookup
// tables' surroundings; repeated until the timer resolves well.
double CrcThroughputMbPerSec(uint32_t (*crc_fn)(uint32_t, const void*, size_t)) {
  constexpr size_t kBufferBytes = 8 << 20;
  std::vector<uint8_t> buffer(kBufferBytes);
  Rng rng(0x63726331ULL);
  for (auto& byte : buffer) {
    byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  // Warm the tables (and fault in the buffer) before timing.
  uint32_t sink = crc_fn(0, buffer.data(), buffer.size());
  const auto start = Clock::now();
  size_t passes = 0;
  double elapsed = 0.0;
  do {
    sink = crc_fn(sink, buffer.data(), buffer.size());
    ++passes;
    elapsed = SecondsSince(start);
  } while (elapsed < 0.25);
  // Keep the checksum observable so the loop cannot be dropped.
  volatile uint32_t keep = sink;
  (void)keep;
  return static_cast<double>(passes) * static_cast<double>(kBufferBytes) / elapsed / 1e6;
}

// One steady-state iteration of the harness data plane: step, capture every
// rank's snapshot, commit it to its m holders, and serve one CRC-verified
// recovery read — the per-iteration work GeminiSystem does outside the
// simulated clock.
struct DatapathFixture {
  static constexpr int kMachines = 8;
  static constexpr int kReplicas = 2;

  explicit DatapathFixture(int payload_elements)
      : trainer(Gpt2_10B(), kMachines, payload_elements, /*seed=*/7) {
    trainer.set_metrics(&metrics);
    const Bytes replica = trainer.checkpoint_bytes_per_machine();
    machines.reserve(kMachines);
    for (int rank = 0; rank < kMachines; ++rank) {
      machines.emplace_back(rank, /*incarnation=*/0, P4d24xlarge());
    }
    for (int rank = 0; rank < kMachines; ++rank) {
      stores.push_back(std::make_unique<CpuCheckpointStore>(machines[static_cast<size_t>(rank)]));
      stores.back()->set_metrics(&metrics);
    }
    for (int owner = 0; owner < kMachines; ++owner) {
      for (const int holder : Holders(owner)) {
        const Status hosted = stores[static_cast<size_t>(holder)]->HostOwner(owner, replica);
        if (!hosted.ok()) {
          std::fprintf(stderr, "HostOwner failed: %s\n", hosted.ToString().c_str());
          std::abort();
        }
      }
    }
  }

  // Ring placement: the owner itself plus the next m-1 ranks.
  static std::vector<int> Holders(int owner) {
    std::vector<int> holders;
    for (int r = 0; r < kReplicas; ++r) {
      holders.push_back((owner + r) % kMachines);
    }
    return holders;
  }

  void RunIteration() {
    trainer.Step();
    for (int owner = 0; owner < kMachines; ++owner) {
      const Checkpoint snapshot = trainer.MakeCheckpoint(owner);
      for (const int holder : Holders(owner)) {
        const Status committed = stores[static_cast<size_t>(holder)]->WriteComplete(snapshot);
        if (!committed.ok()) {
          std::fprintf(stderr, "commit failed: %s\n", committed.ToString().c_str());
          std::abort();
        }
      }
    }
    // Steady-state verify: the recovery path re-CRCs the replica it would
    // serve (LatestVerified), so this cost is on the per-iteration budget of
    // anything that probes replica health continuously.
    for (int owner = 0; owner < kMachines; ++owner) {
      if (!stores[static_cast<size_t>(owner)]->LatestVerified(owner).has_value()) {
        std::fprintf(stderr, "steady-state replica failed verification\n");
        std::abort();
      }
    }
  }

  MetricsRegistry metrics;
  ShardedTrainer trainer;
  std::vector<Machine> machines;
  std::vector<std::unique_ptr<CpuCheckpointStore>> stores;
};

// End-to-end serialize(+pool)+CRC throughput: the bytes a disk-backed shard
// write pushes through SerializeCheckpointShared per wall-clock second, with
// the worker pool the persistent store would use (null = inline).
double SerializeThroughputMbPerSec(ThreadPool* workers) {
  constexpr size_t kPayloadFloats = 4 << 20;  // 16 MiB payload per blob.
  Checkpoint checkpoint;
  checkpoint.owner_rank = 0;
  checkpoint.iteration = 1;
  checkpoint.logical_bytes = static_cast<Bytes>(kPayloadFloats * sizeof(float));
  std::vector<float> payload(kPayloadFloats);
  Rng rng(0x5E71A112ULL);
  for (auto& value : payload) {
    value = static_cast<float>(rng.NextDouble());
  }
  checkpoint.payload = std::move(payload);
  checkpoint.StampPayloadCrc();

  BlobPool pool;
  const SerializeOptions options{workers, &pool};
  // Warm: allocate the pooled blob and fault everything in.
  size_t blob_bytes = SerializeCheckpointShared(checkpoint, options)->size();
  const auto start = Clock::now();
  size_t passes = 0;
  double elapsed = 0.0;
  do {
    blob_bytes = SerializeCheckpointShared(checkpoint, options)->size();
    ++passes;
    elapsed = SecondsSince(start);
  } while (elapsed < 0.25);
  volatile size_t keep = blob_bytes;
  (void)keep;
  return static_cast<double>(passes) * static_cast<double>(blob_bytes) / elapsed / 1e6;
}

double MicrosPerIteration(int payload_elements, int iterations) {
  DatapathFixture fixture(payload_elements);
  for (int i = 0; i < 3; ++i) {
    fixture.RunIteration();  // Warmup: fault in shards, stores, CRC tables.
  }
  const auto start = Clock::now();
  for (int i = 0; i < iterations; ++i) {
    fixture.RunIteration();
  }
  return SecondsSince(start) * 1e6 / iterations;
}

}  // namespace
}  // namespace gemini

int main() {
  using gemini::bench::BenchReporter;
  BenchReporter reporter("perf_datapath", "Checkpoint data-path wall-clock",
                         "harness perf trajectory (Section 5 data path)");

  // The dispatch-selected kernel (hardware where the CPU has it), the
  // portable slicing-by-8 fallback, and the bytewise reference, timed
  // through the same loop so the ratios are apples-to-apples.
  const std::string crc_impl = gemini::Crc32ImplementationName();
  const bool hw_active = crc_impl != "slicing-by-8";
  std::cout << "active CRC implementation: " << crc_impl << "\n";
  const double crc_mb_s = gemini::CrcThroughputMbPerSec(gemini::Crc32ActiveKernel());
  const double crc_slicing_mb_s =
      gemini::CrcThroughputMbPerSec(&gemini::Crc32UpdateSlicing8);
  const double crc_bytewise_mb_s =
      gemini::CrcThroughputMbPerSec(&gemini::Crc32UpdateBytewise);
  const double crc_speedup =
      crc_bytewise_mb_s > 0.0 ? crc_slicing_mb_s / crc_bytewise_mb_s : 0.0;
  const double hw_speedup = crc_slicing_mb_s > 0.0 ? crc_mb_s / crc_slicing_mb_s : 0.0;
  reporter.Metric("crc.hw_active", static_cast<int64_t>(hw_active ? 1 : 0));
  reporter.Metric("crc.throughput_mb_s", crc_mb_s);
  reporter.Metric("crc.slicing8_mb_s", crc_slicing_mb_s);
  reporter.Metric("crc.bytewise_mb_s", crc_bytewise_mb_s);
  reporter.Metric("crc.speedup_vs_bytewise", crc_speedup);
  reporter.Metric("crc.hw_speedup_vs_slicing8", hw_speedup);

  // Serialize+CRC end-to-end: inline versus handed a small pool. The 16 MiB
  // blob sits below the serializer's bytes-per-worker floor, so the pooled
  // call must take the inline path — the earlier fan-out-always version
  // measured the parallel leg *slower* than serial at this size.
  const double serialize_mb_s = gemini::SerializeThroughputMbPerSec(nullptr);
  gemini::ThreadPool workers(4);
  const double serialize_parallel_mb_s = gemini::SerializeThroughputMbPerSec(&workers);
  reporter.Metric("serialize.throughput_mb_s", serialize_mb_s);
  reporter.Metric("serialize.parallel4_throughput_mb_s", serialize_parallel_mb_s);
  const double serialize_parallel_ratio =
      serialize_mb_s > 0.0 ? serialize_parallel_mb_s / serialize_mb_s : 0.0;
  reporter.Metric("serialize.parallel4_vs_serial_ratio", serialize_parallel_ratio);

  struct SizePoint {
    int elements;
    int iterations;
  };
  const SizePoint points[] = {{1024, 400}, {65536, 80}, {1048576, 12}};

  gemini::TablePrinter table({"payload floats", "payload KiB", "us/iteration"});
  double worst_us = 0.0;
  for (const SizePoint& point : points) {
    const double us = gemini::MicrosPerIteration(point.elements, point.iterations);
    worst_us = std::max(worst_us, us);
    table.AddRow({std::to_string(point.elements),
                  std::to_string(point.elements * sizeof(float) / 1024),
                  gemini::TablePrinter::Fmt(us, 1)});
    reporter.Metric("datapath.payload_" + std::to_string(point.elements) + ".us_per_iteration",
                    us);
  }
  table.Print(std::cout);

#if defined(GEMINI_BENCH_INSTRUMENTED)
  const bool ratio_gates = true;  // Skipped: wall-clock ratios are meaningless here.
#else
  // 0.9 leaves room for run-to-run noise; the pre-threshold regression sat
  // near 0.92 consistently, and with the inline path taken both legs now run
  // the same code.
  const bool ratio_gates = crc_speedup >= 3.0 && (!hw_active || hw_speedup >= 2.0) &&
                           serialize_parallel_ratio >= 0.9;
#endif
  reporter.ShapeCheck(
      ratio_gates && worst_us > 0.0 && serialize_mb_s > 0.0,
      "slice-by-8 CRC is >= 3x the byte-at-a-time reference, hardware CRC (when dispatched) "
      "is >= 2x slicing-by-8 (ratio gates waived in sanitizer builds), a pooled serialize of "
      "a small blob is no slower than inline (bytes-per-worker floor), and the "
      "capture->commit->verify data path completes at all payload sizes");
  return reporter.Finish();
}
