// Extension: incremental delta checkpoints vs the dirty fraction.
//
// Runs the same sparse-update (MoE-style) training workload with incremental
// delta checkpoints off and on across a sweep of dirty fractions (the share
// of each shard's chunks an iteration touches), reporting the checkpoint
// bytes committed into the CPU tier and written to the persistent tier, the
// observed delta fraction (committed / full-equivalent bytes), chain
// compaction activity, and the effective checkpoint frequency the idle spans
// sustain. Both runs of each pair share the training trajectory bit-exactly
// — only the checkpoint encoding differs — so the byte ratios are
// apples-to-apples and the final model states must match exactly.
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/gemini/gemini_system.h"

using namespace gemini;

namespace {

GeminiConfig BaseConfig(double dirty_fraction, bool incremental) {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 64;
  config.seed = 2024;
  config.cloud.num_standby = 4;
  // Several persistent interval saves inside the bench window, so the
  // redo-log path through the durable tier is exercised too.
  config.persistent_checkpoint_interval = Minutes(10);
  config.incremental.sparse_update_fraction = dirty_fraction;
  config.incremental.chunk_elements = 4;
  config.incremental.enabled = incremental;
  return config;
}

struct RunResult {
  bool ok = false;
  int64_t iterations = 0;
  double sim_hours = 0.0;
  // Bytes committed across all CPU-tier holders (full or delta).
  double cpu_bytes = 0.0;
  // Bytes the persistent tier actually moved.
  double persistent_bytes = 0.0;
  double delta_fraction = 1.0;
  int64_t delta_commits = 0;
  int64_t compaction_folds = 0;
  int64_t ckpt_blocks = 0;
  int interval_iterations = 1;
  std::vector<std::vector<float>> shards;
};

RunResult Run(double dirty_fraction, bool incremental) {
  const GeminiConfig config = BaseConfig(dirty_fraction, incremental);
  RunResult result;
  auto system = GeminiSystem::Create(config);
  if (!system.ok()) {
    std::cerr << "system build failed: " << system.status() << "\n";
    return result;
  }
  const StatusOr<TrainingReport> report = (*system)->TrainUntil(60, Hours(12));
  if (!report.ok()) {
    std::cerr << "run failed: " << report.status() << "\n";
    return result;
  }
  const SystemSnapshot snapshot = (*system)->Snapshot();
  result.ok = report->iterations_completed == 60;
  result.iterations = report->iterations_completed;
  result.sim_hours = ToSeconds(report->wall_time) / 3600.0;
  result.cpu_bytes =
      static_cast<double>((*system)->metrics().counter_value("cpu_store.bytes_committed"));
  result.persistent_bytes = static_cast<double>((*system)->persistent_store().bytes_written());
  result.delta_fraction = (*system)->incremental_delta_fraction();
  result.delta_commits = snapshot.delta_commits;
  result.compaction_folds = snapshot.compaction_folds;
  result.ckpt_blocks = snapshot.cpu_checkpoints_committed;
  result.interval_iterations = snapshot.checkpoint_interval_iterations;
  for (int rank = 0; rank < config.num_machines; ++rank) {
    result.shards.push_back((*system)->trainer().shard(rank));
  }
  return result;
}

}  // namespace

int main() {
  bench::BenchReporter reporter(
      "ext_deltas", "Extension: incremental delta checkpoints vs dirty fraction",
      "delta data-path extension (paper Sections 5.4, 7.1; GEMINI checkpoint traffic)");

  std::cout << "GPT-2 100B on 8x p4d, m=2, 60 iterations per run. Each row runs the\n"
               "identical sparse-update trajectory twice — full snapshots vs delta\n"
               "chains — and compares the checkpoint bytes each tier moved.\n\n";

  TablePrinter table({"Dirty frac", "CPU bytes (full)", "CPU bytes (delta)", "Reduction",
                      "Delta frac", "Deltas", "Folds", "Persist (x)", "Ckpts/hour"});
  bool all_ok = true;
  bool states_match = true;
  bool reduction_at_quarter_ok = false;
  double previous_reduction = 0.0;
  bool reduction_monotone = true;
  for (const double dirty : {1.0, 0.5, 0.25, 0.1}) {
    const RunResult full = Run(dirty, /*incremental=*/false);
    const RunResult inc = Run(dirty, /*incremental=*/true);
    all_ok &= full.ok && inc.ok;
    if (!full.ok || !inc.ok) {
      continue;
    }
    // Same trajectory, different encodings: the end states must be
    // bit-exactly equal (the acceptance equivalence for the delta path).
    states_match &= full.shards == inc.shards;
    const double reduction = inc.cpu_bytes > 0.0 ? full.cpu_bytes / inc.cpu_bytes : 0.0;
    const double persist_ratio =
        inc.persistent_bytes > 0.0 ? full.persistent_bytes / inc.persistent_bytes : 0.0;
    const double blocks_per_hour =
        inc.sim_hours > 0.0 ? static_cast<double>(inc.ckpt_blocks) / inc.sim_hours : 0.0;
    table.AddRow({TablePrinter::Fmt(dirty, 2), TablePrinter::Fmt(full.cpu_bytes / GiB(1), 1),
                  TablePrinter::Fmt(inc.cpu_bytes / GiB(1), 1),
                  TablePrinter::Fmt(reduction, 2) + " x",
                  TablePrinter::Fmt(inc.delta_fraction, 4),
                  TablePrinter::Fmt(inc.delta_commits), TablePrinter::Fmt(inc.compaction_folds),
                  TablePrinter::Fmt(persist_ratio, 2) + " x",
                  TablePrinter::Fmt(blocks_per_hour, 1)});
    const std::string key = "dirty_" + bench::BenchReporter::MetricKey(TablePrinter::Fmt(dirty, 2));
    reporter.Metric(key + ".cpu_bytes_full", full.cpu_bytes);
    reporter.Metric(key + ".cpu_bytes_delta", inc.cpu_bytes);
    reporter.Metric(key + ".reduction", reduction);
    reporter.Metric(key + ".delta_fraction", inc.delta_fraction);
    reporter.Metric(key + ".delta_commits", inc.delta_commits);
    reporter.Metric(key + ".compaction_folds", inc.compaction_folds);
    reporter.Metric(key + ".persistent_reduction", persist_ratio);
    reporter.Metric(key + ".ckpt_blocks_per_hour", blocks_per_hour);
    reporter.Metric(key + ".interval_iterations",
                    static_cast<int64_t>(inc.interval_iterations));
    if (dirty <= 0.25) {
      // Acceptance gate: >= 2x fewer replicated checkpoint bytes at a
      // quarter-dirty (or sparser) workload.
      reduction_at_quarter_ok |= reduction >= 2.0;
      if (reduction < 2.0) {
        reduction_at_quarter_ok = false;
      }
    }
    // Sparser updates must never save less than denser ones.
    reduction_monotone &= reduction >= previous_reduction - 0.01;
    previous_reduction = reduction;
    // Dense updates ship (almost) everything: the delta path must not cost
    // more bytes than full snapshots did.
    if (dirty >= 1.0) {
      all_ok &= reduction >= 0.99;
    }
  }
  reporter.Table(table);
  std::cout << "\nThe delta path prorates every committed and persisted byte by the\n"
               "content that actually changed; chains fold back into full bases at the\n"
               "configured caps, bounding recovery replay. The checkpoint cadence is\n"
               "unchanged — the same idle spans now protect the job with a fraction of\n"
               "the traffic.\n";

  const bool pass = all_ok && states_match && reduction_at_quarter_ok && reduction_monotone;
  reporter.ShapeCheck(
      pass,
      "full-vs-delta runs end bit-identical at every dirty fraction, replicated\n"
      "checkpoint bytes drop >= 2x at <= 25% dirty, and the savings grow\n"
      "monotonically as updates get sparser");
  return reporter.Finish();
}
