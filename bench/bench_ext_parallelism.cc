// Extension (paper Section 9 future work): GEMINI's checkpoint scheduling
// applied to other parallelism strategies and to the Trainium accelerator.
// For each strategy, Algorithm 2 partitions the checkpoint into that
// strategy's own idle-span structure; the claim carried over from the paper
// is that per-iteration checkpointing stays free wherever the network has
// idle capacity — which all three strategies have, for different reasons
// (ZeRO-3: backward compute gaps; data parallel: the silent forward pass;
// pipeline parallel: tiny activation hops and the pipeline bubble).
#include <iostream>

#include "bench/bench_util.h"
#include "src/schedule/generic_executor.h"
#include "src/training/parallelism.h"

using namespace gemini;

int main() {
  bench::PrintHeader(
      "Extension: checkpoint scheduling across parallelism strategies",
      "paper Section 9 (future work): pipeline/data parallelism and Trainium");

  // GPT-2 20B fits a single machine's accelerators, so all three strategies
  // are feasible on the same workload.
  const ModelConfig model = Gpt2_20B();

  TablePrinter table({"Strategy", "Instance", "Iter (s)", "Idle (s)", "Ckpt (s)",
                      "Iter w/ GEMINI (s)", "Overhead", "Fits"});
  bool pass = true;
  for (const auto& [strategy, instance] : std::vector<std::pair<ParallelismStrategy,
                                                                InstanceSpec>>{
           {ParallelismStrategy::kZero3, P4d24xlarge()},
           {ParallelismStrategy::kDataParallel, P4d24xlarge()},
           {ParallelismStrategy::kPipelineParallel, P4d24xlarge()},
           {ParallelismStrategy::kZero3, Trn1_32xlarge()},
       }) {
    TimelineParams timeline_params;
    timeline_params.model = model;
    timeline_params.instance = instance;
    timeline_params.num_machines = 16;
    GenericExecutorParams params;
    params.timeline = BuildTimelineFor(strategy, timeline_params);
    params.instance = instance;
    params.checkpoint_bytes = model.CheckpointBytesPerMachine(16);
    const GenericExecutionResult result = ExecuteOnTimeline(params);
    if (!result.status.ok()) {
      std::cerr << ParallelismStrategyName(strategy) << ": " << result.status << "\n";
      return 1;
    }
    table.AddRow({std::string(ParallelismStrategyName(strategy)), instance.name,
                  TablePrinter::Fmt(ToSeconds(result.baseline_iteration_time)),
                  TablePrinter::Fmt(ToSeconds(params.timeline.TotalIdle())),
                  TablePrinter::Fmt(ToSeconds(result.partition.planned_transmission_time)),
                  TablePrinter::Fmt(ToSeconds(result.iteration_time)),
                  TablePrinter::Fmt(result.overhead_fraction * 100.0) + " %",
                  result.partition.fits_within_idle_time ? "yes" : "no"});
    pass &= result.overhead_fraction < 0.01 && result.partition.fits_within_idle_time;
  }
  table.Print(std::cout);

  std::cout << "\nTrainium caveat: trn1.32xlarge has a 1:1 CPU:accelerator memory ratio\n"
               "(512 GB each), so hosting 2x double-buffered replicas bounds the\n"
               "checkpointable model at ~21 GB/machine vs ~288 GB on p4d.24xlarge.\n";

  std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL")
            << " — Algorithm 2 schedules the checkpoint into each strategy's idle\n"
               "structure with zero iteration-time overhead, supporting the paper's\n"
               "claim that the design generalizes beyond ZeRO-3.\n";
  return pass ? 0 : 1;
}
