// Figure 9: probability that GEMINI recovers k simultaneous failures from
// checkpoints in CPU memory, vs cluster size N, compared with the ring
// placement. Claims: k < m always recovers; probability rises with N;
// GEMINI(m=2): 93.3% at N=16,k=2 and 80.0% at k=3; Ring sits 25% lower.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/placement/placement.h"
#include "src/placement/probability.h"

using namespace gemini;

int main() {
  bench::BenchReporter reporter("fig09_recovery_probability",
                                "Figure 9: P(recover from CPU memory) vs number of instances",
                                "paper Figure 9 and Corollary 1");

  TablePrinter table({"N", "GEMINI m=2,k=2", "GEMINI m=2,k=3", "Ring m=2,k=2", "Ring m=2,k=3",
                      "exact GEMINI k=2", "exact Ring k=2"});
  for (const int n : {8, 16, 24, 32, 48, 64, 96, 128}) {
    const auto group = BuildMixedPlacement(n, 2);
    const auto ring = BuildRingPlacement(n, 2);
    const double exact_group = ExactRecoveryProbability(*group, 2).value_or(-1);
    const double exact_ring = ExactRecoveryProbability(*ring, 2).value_or(-1);
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(n)),
                  TablePrinter::Fmt(Corollary1LowerBound(n, 2, 2), 4),
                  TablePrinter::Fmt(Corollary1LowerBound(n, 2, 3), 4),
                  TablePrinter::Fmt(RingAnalyticLowerBound(n, 2, 2), 4),
                  TablePrinter::Fmt(RingAnalyticLowerBound(n, 2, 3), 4),
                  TablePrinter::Fmt(exact_group, 4), TablePrinter::Fmt(exact_ring, 4)});
    const std::string key = "n" + std::to_string(n);
    reporter.Metric(key + ".gemini_m2_k2", Corollary1LowerBound(n, 2, 2));
    reporter.Metric(key + ".gemini_m2_k3", Corollary1LowerBound(n, 2, 3));
    reporter.Metric(key + ".ring_m2_k2", RingAnalyticLowerBound(n, 2, 2));
    reporter.Metric(key + ".ring_m2_k3", RingAnalyticLowerBound(n, 2, 3));
  }
  reporter.Table(table);

  std::cout << "\nReplica-count ablation (N = 16, exact enumeration):\n";
  TablePrinter ablation({"m", "k=1", "k=2", "k=3", "k=4", "ckpt traffic (x C)"});
  for (const int m : {1, 2, 4}) {
    std::vector<std::string> row = {TablePrinter::Fmt(static_cast<int64_t>(m))};
    const auto plan = BuildMixedPlacement(16, m);
    for (const int k : {1, 2, 3, 4}) {
      row.push_back(TablePrinter::Fmt(ExactRecoveryProbability(*plan, k).value_or(-1), 4));
    }
    row.push_back(TablePrinter::Fmt(static_cast<int64_t>(m - 1)));
    ablation.AddRow(row);
  }
  reporter.Table(ablation);

  const double p16k2 = Corollary1LowerBound(16, 2, 2);
  const double p16k3 = Corollary1LowerBound(16, 2, 3);
  const double ring_gap = 1.0 - RingAnalyticLowerBound(16, 2, 3) / p16k3;
  reporter.Metric("headline.p_recover_n16_m2_k2", p16k2);
  reporter.Metric("headline.p_recover_n16_m2_k3", p16k3);
  reporter.Metric("headline.ring_gap_k3", ring_gap);
  const bool pass = std::abs(p16k2 - 0.9333) < 0.001 && std::abs(p16k3 - 0.80) < 0.001 &&
                    std::abs(ring_gap - 0.25) < 0.001;
  reporter.ShapeCheck(pass,
                      "GEMINI(m=2) recovers 93.3% of double failures and 80.0% of triple\n"
                      "failures at N=16; Ring is 25% lower at k=3; probability rises with N.");
  return reporter.Finish();
}
