// Extension: the continuous interference auditor's cost and its payoff.
//
// Three questions, one run each:
//  * Overhead — with the auditor on and the timeline stable, iteration times
//    must be unchanged (the audit runs on simulated-time bookkeeping only),
//    keeping the paper's Figure 7 zero-overhead claim intact.
//  * Determinism — two same-seed audited runs must produce byte-identical
//    trace, metric, and flight-recorder exports.
//  * Adaptation — a persistent timeline shift (idle spans shrunk to half) must
//    be detected by the drift EWMAs, attributed to the colliding checkpoint
//    chunks, and cured by exactly one online re-profile + Algorithm-2
//    re-partition, after which iterations accrue no further inflation.
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/gemini/gemini_system.h"

using namespace gemini;

namespace {

constexpr int64_t kIterations = 30;

GeminiConfig AuditorBenchConfig() {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 16;
  config.cloud.num_standby = 2;
  return config;
}

struct QuietRun {
  TimeNs wall_time = 0;
  SystemSnapshot snapshot;
  std::string trace_jsonl;
  std::string metrics_json;
};

StatusOr<QuietRun> RunQuiet(bool audit_enabled) {
  GeminiConfig config = AuditorBenchConfig();
  config.audit.enabled = audit_enabled;
  GeminiSystem system(config);
  GEMINI_RETURN_IF_ERROR(system.Initialize());
  GEMINI_ASSIGN_OR_RETURN(const TrainingReport report, system.TrainUntil(kIterations));
  QuietRun run;
  run.wall_time = report.wall_time;
  run.snapshot = system.Snapshot();
  run.trace_jsonl = system.tracer().ToJsonl();
  run.metrics_json = system.metrics().ToJson();
  return run;
}

struct ShiftRun {
  SystemSnapshot snapshot;
  // Per-iteration samples across the run (sampled after each iteration).
  Histogram drift;
  Histogram inflation_ms;
  // Simulated time of the whole run.
  TimeNs wall_time = 0;
  // Inflation accrued after the re-profile fired (should be zero: cured).
  TimeNs inflation_after_reprofile = 0;
  bool drift_exceeded_threshold = false;
};

StatusOr<ShiftRun> RunShift() {
  GeminiConfig config = AuditorBenchConfig();
  GeminiSystem system(config);
  GEMINI_RETURN_IF_ERROR(system.Initialize());
  GEMINI_ASSIGN_OR_RETURN(const TrainingReport warmup, system.TrainUntil(5));
  system.InjectTimelineShift(0.5);

  ShiftRun run;
  run.wall_time = warmup.wall_time;
  int64_t last_inflation = system.metrics().counter_value("obs.interference.inflation_ns");
  for (int64_t target = 6; target <= kIterations; ++target) {
    // The iteration that fires the re-profile still audits the old schedule,
    // so its inflation belongs to the pre-cure era: attribute each delta by
    // whether the re-profile had happened *before* the iteration ran.
    const bool cured = system.metrics().counter_value("obs.reprofiles") > 0;
    GEMINI_ASSIGN_OR_RETURN(const TrainingReport report, system.TrainUntil(target));
    run.wall_time += report.wall_time;  // wall_time covers one TrainUntil call.
    const double drift = system.metrics().gauge_value("obs.drift.max_abs_ewma");
    const int64_t inflation = system.metrics().counter_value("obs.interference.inflation_ns");
    run.drift.Observe(drift);
    run.inflation_ms.Observe(static_cast<double>(inflation - last_inflation) / 1e6);
    run.drift_exceeded_threshold |= drift > config.audit.drift_threshold;
    if (cured) {
      run.inflation_after_reprofile += inflation - last_inflation;
    }
    last_inflation = inflation;
  }
  run.snapshot = system.Snapshot();
  return run;
}

}  // namespace

int main() {
  bench::BenchReporter reporter(
      "ext_auditor",
      "Extension: continuous interference auditor (GPT-2 100B, 8x p4d)",
      "observability; closes the loop on paper Sections 5.3-5.4 one-shot profiling");

  const auto baseline = RunQuiet(/*audit_enabled=*/false);
  const auto audited = RunQuiet(/*audit_enabled=*/true);
  const auto audited_again = RunQuiet(/*audit_enabled=*/true);
  const auto shifted = RunShift();
  if (!baseline.ok() || !audited.ok() || !audited_again.ok() || !shifted.ok()) {
    std::cerr << "bench run failed: " << baseline.status() << " / " << audited.status()
              << " / " << audited_again.status() << " / " << shifted.status() << "\n";
    return 1;
  }

  const double overhead =
      std::abs(static_cast<double>(audited->wall_time) -
               static_cast<double>(baseline->wall_time)) /
      static_cast<double>(baseline->wall_time);
  const bool deterministic = audited->trace_jsonl == audited_again->trace_jsonl &&
                             audited->metrics_json == audited_again->metrics_json;

  TablePrinter table({"Scenario", "Wall (min)", "Audits", "Interference", "Inflation (ms)",
                      "Reprofiles"});
  auto add_row = [&](const std::string& name, TimeNs wall, const SystemSnapshot& snapshot) {
    table.AddRow({name, TablePrinter::Fmt(ToSeconds(wall) / 60.0),
                  std::to_string(snapshot.audits), std::to_string(snapshot.interference_events),
                  TablePrinter::Fmt(static_cast<double>(snapshot.interference_inflation) / 1e6),
                  std::to_string(snapshot.reprofiles)});
  };
  add_row("auditor off", baseline->wall_time, baseline->snapshot);
  add_row("auditor on, stable", audited->wall_time, audited->snapshot);
  add_row("auditor on, 0.5x shift", shifted->wall_time, shifted->snapshot);
  reporter.Table(table);

  reporter.Metric("stable.overhead_fraction", overhead);
  reporter.Metric("stable.audits", audited->snapshot.audits);
  reporter.Metric("stable.interference_events", audited->snapshot.interference_events);
  reporter.Metric("stable.deterministic", static_cast<int64_t>(deterministic));
  // An uncapped tracer must never drop records; CI greps this for regressions.
  reporter.Metric("stable.tracer_dropped_records", audited->snapshot.tracer_dropped_records);
  reporter.Metric("shift.reprofiles", shifted->snapshot.reprofiles);
  reporter.Metric("shift.interference_events", shifted->snapshot.interference_events);
  reporter.Metric("shift.inflation_ms",
                  static_cast<double>(shifted->snapshot.interference_inflation) / 1e6);
  reporter.Metric("shift.inflation_after_reprofile_ms",
                  static_cast<double>(shifted->inflation_after_reprofile) / 1e6);
  reporter.Metric("shift.checkpoint_interval",
                  static_cast<int64_t>(shifted->snapshot.checkpoint_interval_iterations));
  // Tail behaviour of the shifted run, not just means: the drift gauge and
  // the per-iteration inflation as p50/p95/p99.
  reporter.HistogramMetric("shift.drift_max_abs_ewma", shifted->drift);
  reporter.HistogramMetric("shift.iteration_inflation_ms", shifted->inflation_ms);

  bool pass = true;
  // Auditor on + stable timeline: iteration times unchanged (Fig 7 intact).
  pass &= overhead <= 0.01;
  pass &= audited->snapshot.audits == kIterations;
  pass &= audited->snapshot.interference_events == 0;
  pass &= audited->snapshot.reprofiles == 0;
  pass &= audited->snapshot.tracer_dropped_records == 0;
  pass &= deterministic;
  // Shifted run: drift detected, attributed, cured by exactly one re-profile.
  pass &= shifted->drift_exceeded_threshold;
  pass &= shifted->snapshot.interference_events > 0;
  pass &= shifted->snapshot.interference_inflation > 0;
  pass &= shifted->snapshot.reprofiles == 1;
  pass &= shifted->inflation_after_reprofile == 0;

  reporter.ShapeCheck(
      pass,
      "with a stable timeline the auditor is free (iteration times unchanged within 1%,\n"
      "byte-identical same-seed exports); under a persistent 0.5x idle-span shift the\n"
      "drift EWMAs cross the threshold, interference is attributed to the colliding\n"
      "chunks, and exactly one online re-profile + re-partition restores\n"
      "interference-free iterations.");
  return reporter.Finish();
}
