// Figure 13: generalization to p3dn.24xlarge (V100, 100 Gb/s) across model
// sizes 10B-40B and architectures. Claims: (a) GEMINI minimally affects
// training throughput; (b) network idle time still accommodates the
// checkpoint traffic.
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

int main() {
  bench::PrintHeader("Figure 13: p3dn.24xlarge generalization (16 instances)",
                     "paper Figure 13a/13b");

  TablePrinter table({"Model", "Baseline iter (s)", "GEMINI iter (s)", "Overhead",
                      "Idle w/o ckpt (s)", "Ckpt time (s)", "Idle w/ GEMINI (s)"});
  bool pass = true;
  for (const ModelConfig& model : {Gpt2_10B(), Gpt2_20B(), Gpt2_40B(), Roberta_40B(),
                                   Bert_40B()}) {
    const TimelineParams params = bench::P3dnTimeline(model);
    const IterationTimeline timeline = BuildZero3Timeline(params);
    const ExecutionResult result =
        ExecuteIterationWithCheckpoint(bench::GeminiExecutor(params));
    if (!result.status.ok()) {
      std::cerr << "executor failed for " << model.name << ": " << result.status << "\n";
      return 1;
    }
    const double idle = ToSeconds(timeline.TotalIdle());
    const double ckpt = ToSeconds(result.partition.planned_transmission_time);
    table.AddRow({model.name, TablePrinter::Fmt(ToSeconds(result.baseline_iteration_time)),
                  TablePrinter::Fmt(ToSeconds(result.iteration_time)),
                  TablePrinter::Fmt(result.overhead_fraction * 100.0) + " %",
                  TablePrinter::Fmt(idle), TablePrinter::Fmt(ckpt),
                  TablePrinter::Fmt(idle - ckpt)});
    pass &= result.overhead_fraction < 0.01 && ckpt < idle;
  }
  table.Print(std::cout);
  std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL")
            << " — across 10B-40B models and three architectures on the slower\n"
               "100 Gb/s network, idle time still covers the checkpoint traffic and\n"
               "GEMINI leaves iteration time untouched.\n";
  return pass ? 0 : 1;
}
