// Figure 12: checkpoint frequency of GEMINI vs the baselines for GPT-2 100B
// on 16x p4d.24xlarge. Claims: GEMINI checkpoints every iteration (62 s,
// with <3 s checkpoint time), 8x more often than HighFreq and >170x more
// often than Strawman.
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

int main() {
  bench::PrintHeader("Figure 12: checkpoint frequency (GPT-2 100B, 16x p4d.24xlarge)",
                     "paper Figure 12");

  const TimelineParams timeline = bench::P4dTimeline(Gpt2_100B());
  const ExecutionResult execution =
      ExecuteIterationWithCheckpoint(bench::GeminiExecutor(timeline));
  if (!execution.status.ok()) {
    std::cerr << execution.status << "\n";
    return 1;
  }
  const CheckpointWorkload workload = bench::MakeWorkload(timeline, execution);
  const SystemModel gemini = BuildGemini(workload, 0);
  const SystemModel highfreq = BuildHighFreq(workload);
  const SystemModel strawman = BuildStrawman(workload);

  TablePrinter table({"System", "Checkpoint interval", "Checkpoints/hour", "vs GEMINI"});
  for (const SystemModel* model : {&gemini, &highfreq, &strawman}) {
    table.AddRow({model->name, FormatDuration(model->checkpoint_interval),
                  TablePrinter::Fmt(model->checkpoints_per_hour(), 2),
                  TablePrinter::Fmt(gemini.checkpoints_per_hour() /
                                        model->checkpoints_per_hour(),
                                    1) +
                      "x"});
  }
  table.Print(std::cout);

  std::cout << "\nGEMINI checkpoint transmission time: "
            << FormatDuration(execution.partition.planned_transmission_time)
            << " (paper: <3 s), bounded only by the iteration time ("
            << FormatDuration(execution.iteration_time) << ").\n";

  const double vs_highfreq = gemini.checkpoints_per_hour() / highfreq.checkpoints_per_hour();
  const double vs_strawman = gemini.checkpoints_per_hour() / strawman.checkpoints_per_hour();
  // Our calibrated iteration is ~66 s vs the paper's 62 s, so 3 h/iteration
  // lands at ~164x instead of >170x; the claim ("more than 170x") holds at
  // the paper's iteration time and the shape (orders of magnitude) holds
  // regardless.
  const bool pass = vs_highfreq >= 7.0 && vs_highfreq <= 11.0 && vs_strawman > 155.0 &&
                    ToSeconds(execution.partition.planned_transmission_time) < 3.0;
  std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL")
            << " — every-iteration checkpointing: ~8x HighFreq's frequency and >170x\n"
               "Strawman's, with the checkpoint itself taking under 3 seconds.\n";
  return pass ? 0 : 1;
}
