// Table 1: GPU vs CPU memory across popular GPU instances — the observation
// motivating CPU-memory checkpointing (host DRAM dwarfs GPU memory).
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

int main() {
  bench::PrintHeader("Table 1: GPU and CPU memory of GPU instances", "paper Table 1");

  TablePrinter table({"Instance type", "Cloud", "GPU", "GPU memory", "CPU memory", "CPU/GPU"});
  for (const InstanceSpec& spec : InstanceCatalog()) {
    const double ratio = static_cast<double>(spec.cpu_memory) /
                         static_cast<double>(spec.total_gpu_memory());
    table.AddRow({spec.name, spec.cloud,
                  std::to_string(spec.num_gpus) + " " + spec.gpu_model,
                  std::to_string(spec.num_gpus) + " x " +
                      FormatBytes(spec.gpu_memory_per_gpu),
                  FormatBytes(spec.cpu_memory), TablePrinter::Fmt(ratio, 1) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: CPU memory exceeds total GPU memory on every instance,\n"
               "so a few checkpoint replicas (2x model states each) fit in host DRAM.\n";
  return 0;
}
