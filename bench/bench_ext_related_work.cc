// Extension (paper Section 8): quantitative comparison with the related
// checkpointing systems the paper discusses qualitatively — DeepFreeze
// (async persistence), CheckFreq (tuned frequency), Check-N-Run (lossy
// compression) — on the Figure 10/12 workload. The claim carried over from
// Section 8: each improves one axis, but with the remote store still on the
// recovery path, none approaches GEMINI's wasted time.
#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/related_work.h"

using namespace gemini;

int main() {
  bench::PrintHeader(
      "Extension: related-work comparison (GPT-2 100B, 16x p4d.24xlarge)",
      "paper Section 8 (related work), quantified on the Figure 10/12 workload");

  const TimelineParams timeline = bench::P4dTimeline(Gpt2_100B());
  const ExecutionResult execution =
      ExecuteIterationWithCheckpoint(bench::GeminiExecutor(timeline));
  if (!execution.status.ok()) {
    std::cerr << execution.status << "\n";
    return 1;
  }
  const CheckpointWorkload workload = bench::MakeWorkload(timeline, execution);

  const SystemModel gemini = BuildGemini(workload, /*replaced_machines=*/1);
  std::vector<SystemModel> systems = {
      BuildStrawman(workload),   BuildHighFreq(workload),  BuildDeepFreeze(workload),
      BuildCheckFreq(workload),  BuildCheckNRun(workload), gemini,
  };

  TablePrinter table({"System", "Ckpt interval", "Train stall/ckpt", "Avg wasted time",
                      "vs GEMINI", "Notes"});
  bool gemini_wins = true;
  for (const SystemModel& model : systems) {
    const double ratio = static_cast<double>(model.AverageWastedTime()) /
                         static_cast<double>(gemini.AverageWastedTime());
    std::string note;
    if (model.name == "DeepFreeze") {
      note = "async, but store-bound frequency";
    } else if (model.name == "CheckFreq") {
      note = "overhead-capped frequency tuning";
    } else if (model.name == "Check-N-Run") {
      note = "4x lossy compression (accuracy risk)";
    } else if (model.name == "GEMINI") {
      note = "CPU-memory tier, lossless";
    }
    table.AddRow({model.name, FormatDuration(model.checkpoint_interval),
                  FormatDuration(model.training_block_per_checkpoint),
                  FormatDuration(model.AverageWastedTime()),
                  TablePrinter::Fmt(ratio, 1) + "x", note});
    if (model.name == "Check-N-Run") {
      // Lossy 4x compression narrows the gap the most — to ~4x — while
      // GEMINI stays lossless.
      gemini_wins &= ratio > 3.0;
    } else if (model.name != "GEMINI") {
      gemini_wins &= ratio > 10.0;
    }
  }
  table.Print(std::cout);

  std::cout << "\nShape check: " << (gemini_wins ? "PASS" : "FAIL")
            << " — every remote-storage design still pays the store's bandwidth on\n"
               "the recovery path: >10x GEMINI's wasted time for the lossless designs,\n"
               "and even 4x lossy compression only narrows the gap to ~4x.\n";
  return gemini_wins ? 0 : 1;
}
