// Extension: recovery outcome versus overlapping-failure depth. The paper
// evaluates isolated failures; this experiment drives 0, 1, and 2 extra
// hardware failures into the middle of an in-flight recovery (armed on the
// recovery-start trigger, landing in the serialization window) and measures
// how the hardened recovery path resolves the cascade: how many
// RecoveryRecords are emitted (one per absorbed report, none dropped), the
// recovery source the merged case resolves to, the end-to-end downtime, and
// the redundancy-degraded window closed by background re-protection.
#include <iostream>

#include "bench/bench_util.h"
#include "src/gemini/gemini_system.h"

using namespace gemini;

namespace {

struct Measurement {
  int records = 0;
  int64_t preempted = 0;
  int64_t deduplicated = 0;
  int64_t reported = 0;
  RecoverySource source = RecoverySource::kLocalCpuMemory;
  TimeNs downtime = 0;
  double degraded_seconds = 0.0;
  bool state_ok = false;
};

StatusOr<Measurement> RunDepth(int depth) {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 16;
  config.cloud.num_standby = 4;
  GeminiSystem system(config);
  GEMINI_RETURN_IF_ERROR(system.Initialize());

  // First failure at 4 min; each extra cascade layer hits a different
  // placement group (groups {2,3}, {4,5}, {6,7} all keep one survivor) a few
  // seconds into the previous recovery's serialization window.
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
  const int cascade_ranks[] = {5, 3};
  for (int layer = 0; layer < depth; ++layer) {
    system.failure_injector().ArmOnTrigger(kTriggerRecoveryStart, FailureType::kHardware,
                                           {cascade_ranks[layer]},
                                           Seconds(10 + 10 * layer));
  }
  const int64_t target = 8;
  GEMINI_ASSIGN_OR_RETURN(const TrainingReport report,
                          system.TrainUntil(target, /*sim_deadline=*/Hours(6)));

  Measurement measurement;
  measurement.records = static_cast<int>(report.recoveries.size());
  measurement.preempted = system.metrics().counter_value("system.recoveries.preempted");
  measurement.deduplicated =
      system.metrics().counter_value("system.failure_reports.deduplicated");
  measurement.reported = system.metrics().counter_value("agent.failures_reported");
  if (!report.recoveries.empty()) {
    measurement.source = report.recoveries.back().source;
    for (const RecoveryRecord& recovery : report.recoveries) {
      measurement.downtime = std::max(measurement.downtime, recovery.downtime);
    }
  }
  measurement.degraded_seconds =
      system.metrics().gauge_value("system.redundancy.degraded_seconds");

  // Bit-identical restored state versus an uninterrupted reference run.
  ShardedTrainer reference(config.model, config.num_machines, config.payload_elements,
                           config.seed);
  for (int64_t i = 0; i < report.iterations_completed; ++i) {
    reference.Step();
  }
  measurement.state_ok = report.iterations_completed == target;
  for (int rank = 0; rank < config.num_machines && measurement.state_ok; ++rank) {
    measurement.state_ok = system.trainer().shard(rank) == reference.shard(rank);
  }
  return measurement;
}

}  // namespace

int main() {
  bench::BenchReporter reporter(
      "ext_cascade",
      "Extension: recovery outcome vs. overlapping-failure depth (GPT-2 100B, 8x p4d)",
      "recovery hardening; extends paper Section 6.2 / Figure 14 to cascading failures");

  TablePrinter table({"Cascade depth", "Records", "Preempted", "Recovery source",
                      "Downtime (min)", "Degraded (s)", "State bit-identical"});
  bool pass = true;
  for (int depth = 0; depth <= 2; ++depth) {
    const auto measurement = RunDepth(depth);
    if (!measurement.ok()) {
      std::cerr << "depth " << depth << ": " << measurement.status() << "\n";
      return 1;
    }
    table.AddRow({std::to_string(depth), std::to_string(measurement->records),
                  std::to_string(measurement->preempted),
                  std::string(RecoverySourceName(measurement->source)),
                  TablePrinter::Fmt(ToSeconds(measurement->downtime) / 60.0),
                  TablePrinter::Fmt(measurement->degraded_seconds, 1),
                  measurement->state_ok ? "yes" : "NO"});
    const std::string key = "depth_" + std::to_string(depth);
    reporter.Metric(key + ".records", static_cast<double>(measurement->records));
    reporter.Metric(key + ".preempted", static_cast<double>(measurement->preempted));
    reporter.Metric(key + ".downtime_minutes", ToSeconds(measurement->downtime) / 60.0);
    reporter.Metric(key + ".degraded_seconds", measurement->degraded_seconds);
    // Depth d injects d+1 failures; every one must surface as its own
    // record (or an explicit dedup), resolve from CPU memory (each group
    // kept a survivor), and restore bit-identical state.
    pass &= measurement->records == depth + 1;
    pass &= measurement->preempted == depth;
    pass &= measurement->reported ==
            static_cast<int64_t>(measurement->records) + measurement->deduplicated;
    pass &= measurement->source == RecoverySource::kRemoteCpuMemory;
    pass &= measurement->state_ok;
    pass &= measurement->degraded_seconds > 0.0;
  }
  reporter.Table(table);
  reporter.ShapeCheck(pass,
                      "every overlapping failure is absorbed into the active recovery case\n"
                      "and emitted as its own RecoveryRecord (zero dropped reports); with one\n"
                      "survivor per placement group the merged case still resolves from remote\n"
                      "CPU memory with bit-identical state, and background re-protection closes\n"
                      "the redundancy gap after each replacement.");
  return reporter.Finish();
}
