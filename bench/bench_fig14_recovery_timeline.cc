// Figure 14: the anatomy of one failure recovery for GPT-2 100B on 16
// machines, measured end-to-end on the full system (agents, KV store, cloud
// operator, stores). Claims: detection ~15 s, checkpoint serialization
// ~162 s, machine replacement 4-7 min (or seconds with standby machines),
// restart warm-up >4 min; totalling ~7 min for software failures and
// ~12 min for hardware failures.
#include <iostream>

#include "bench/bench_util.h"
#include "src/gemini/gemini_system.h"

using namespace gemini;

namespace {

struct Scenario {
  std::string name;
  FailureType type;
  int num_standby;
};

struct Measurement {
  TimeNs detection = 0;
  TimeNs downtime = 0;
  TimeNs wasted = 0;
  RecoverySource source = RecoverySource::kLocalCpuMemory;
  int64_t rollback = 0;
};

StatusOr<Measurement> RunScenario(const Scenario& scenario) {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 16;
  config.payload_elements = 16;
  config.cloud.num_standby = scenario.num_standby;
  GeminiSystem system(config);
  GEMINI_RETURN_IF_ERROR(system.Initialize());
  const TimeNs inject_at = Minutes(4);
  system.failure_injector().InjectAt(inject_at, scenario.type, {9});
  GEMINI_ASSIGN_OR_RETURN(const TrainingReport report, system.TrainUntil(8));
  if (report.recoveries.size() != 1) {
    return InternalError("expected exactly one recovery");
  }
  const RecoveryRecord& recovery = report.recoveries[0];
  Measurement measurement;
  measurement.detection = recovery.failure_detected_at - inject_at;
  measurement.downtime = recovery.downtime;
  measurement.wasted = recovery.wasted_time;
  measurement.source = recovery.source;
  measurement.rollback = recovery.rollback_iteration;
  return measurement;
}

}  // namespace

int main() {
  bench::BenchReporter reporter(
      "fig14_recovery_timeline",
      "Figure 14: failure recovery timeline (GPT-2 100B, 16x p4d)",
      "paper Figure 14 and Section 7.3 'Overheads incurred by failures'");

  const SerializationModel serializer;
  const Bytes replica = Gpt2_100B().CheckpointBytesPerMachine(16);
  std::cout << "Phase model (per failure):\n"
            << "  failure detection        ~15 s   (heartbeat lease TTL + root scan)\n"
            << "  checkpoint serialization "
            << FormatDuration(2 * serializer.SerializeTime(replica))
            << " (torch.save of 2 replicas; paper: 162 s)\n"
            << "  machine replacement      4-7 min via ASG, ~10 s with standby\n"
            << "  restart warm-up          ~4.3 min\n\n";

  TablePrinter table({"Scenario", "Detection (s)", "Downtime (min)", "Wasted time",
                      "Recovery source"});
  bool pass = true;
  std::vector<double> downtimes;
  for (const Scenario& scenario :
       {Scenario{"software failure", FailureType::kSoftware, 0},
        Scenario{"hardware failure (ASG)", FailureType::kHardware, 0},
        Scenario{"hardware failure (standby)", FailureType::kHardware, 1}}) {
    const auto measurement = RunScenario(scenario);
    if (!measurement.ok()) {
      std::cerr << scenario.name << ": " << measurement.status() << "\n";
      return 1;
    }
    table.AddRow({scenario.name, TablePrinter::Fmt(ToSeconds(measurement->detection), 1),
                  TablePrinter::Fmt(ToSeconds(measurement->downtime) / 60.0),
                  FormatDuration(measurement->wasted),
                  std::string(RecoverySourceName(measurement->source))});
    const std::string key = bench::BenchReporter::MetricKey(scenario.name);
    reporter.Metric(key + ".detection_seconds", ToSeconds(measurement->detection));
    reporter.Metric(key + ".downtime_minutes", ToSeconds(measurement->downtime) / 60.0);
    reporter.Metric(key + ".wasted_seconds", ToSeconds(measurement->wasted));
    downtimes.push_back(ToSeconds(measurement->downtime) / 60.0);
    pass &= measurement->detection < Seconds(30);
    pass &= measurement->wasted <= Seconds(140);  // ~<2 iterations + retrieval.
  }
  reporter.Table(table);

  // Software ~7 min; hardware with ASG ~8-13 min; standby between.
  pass &= downtimes[0] > 5.5 && downtimes[0] < 8.5;
  pass &= downtimes[1] > downtimes[2];
  reporter.ShapeCheck(pass,
                      "~7 min total for software failures, ~12 min for hardware failures\n"
                      "via ASG, with standby machines removing most of the replacement wait;\n"
                      "the training-progress loss itself stays under two iterations.");
  return reporter.Finish();
}
