// Design-choice ablations called out in DESIGN.md:
//  * the profiling safety coefficient gamma (how much of each profiled idle
//    span Algorithm 2 is allowed to budget);
//  * the replica count m (recovery probability vs checkpoint traffic vs the
//    frequency the idle time can sustain).
// Together with Figure 16's sub-buffer sweep, these cover every tunable the
// paper introduces.
#include <iostream>

#include "bench/bench_util.h"
#include "src/placement/placement.h"
#include "src/placement/probability.h"

using namespace gemini;

int main() {
  bench::PrintHeader("Extension: design ablations — gamma and replica count m",
                     "DESIGN.md ablation list (paper Sections 4, 5.3)");

  // ---- gamma sweep --------------------------------------------------------
  std::cout << "(a) gamma sweep, GPT-2 40B on 16x p3dn (the tightest workload):\n";
  TablePrinter gamma_table({"gamma", "Chunks", "Fits", "Overhead", "Ckpt done (s)",
                            "Interval k"});
  bool gamma_ok = true;
  for (const double gamma : {0.3, 0.5, 0.7, 0.9, 1.0}) {
    ExecutorParams params = bench::GeminiExecutor(bench::P3dnTimeline(Gpt2_40B()));
    params.gamma = gamma;
    const FrequencyDecision decision = ChooseCheckpointFrequency(params);
    if (!decision.execution.status.ok()) {
      std::cerr << decision.execution.status << "\n";
      return 1;
    }
    gamma_table.AddRow(
        {TablePrinter::Fmt(gamma, 1),
         TablePrinter::Fmt(static_cast<int64_t>(decision.execution.partition.chunks.size())),
         decision.execution.partition.fits_within_idle_time ? "yes" : "no",
         TablePrinter::Fmt(decision.execution.overhead_fraction * 100.0) + " %",
         TablePrinter::Fmt(ToSeconds(decision.execution.checkpoint_done)),
         TablePrinter::Fmt(static_cast<int64_t>(decision.interval_iterations))});
    // Whatever gamma, frequency adaptation must find a zero-overhead plan.
    gamma_ok &= decision.execution.overhead_fraction < 0.005;
  }
  gamma_table.Print(std::cout);
  std::cout << "Smaller gamma budgets less of each span (more conservative against\n"
               "iteration-to-iteration variance); the frequency adapter absorbs the\n"
               "lost capacity by lowering the checkpoint frequency when needed.\n";

  // ---- replica-count sweep -------------------------------------------------
  std::cout << "\n(b) replica count m, GPT-2 100B on 16x p4d:\n";
  TablePrinter m_table({"m", "P(recover k=2)", "P(recover k=3)", "Traffic (x C)",
                        "CPU memory (x C)", "Interval k", "Overhead"});
  bool m_ok = true;
  double previous_p2 = -1.0;
  for (const int m : {1, 2, 3, 4}) {
    ExecutorParams params = bench::GeminiExecutor(bench::P4dTimeline(Gpt2_100B()), m);
    const FrequencyDecision decision = ChooseCheckpointFrequency(params);
    if (!decision.execution.status.ok()) {
      std::cerr << decision.execution.status << "\n";
      return 1;
    }
    const auto plan = BuildMixedPlacement(16, m);
    const double p2 = ExactRecoveryProbability(*plan, 2).value_or(-1);
    const double p3 = ExactRecoveryProbability(*plan, 3).value_or(-1);
    m_table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(m)), TablePrinter::Fmt(p2, 4),
                    TablePrinter::Fmt(p3, 4),
                    TablePrinter::Fmt(static_cast<int64_t>(m - 1)),
                    TablePrinter::Fmt(static_cast<int64_t>(2 * m)),
                    TablePrinter::Fmt(static_cast<int64_t>(decision.interval_iterations)),
                    TablePrinter::Fmt(decision.execution.overhead_fraction * 100.0) + " %"});
    m_ok &= decision.execution.overhead_fraction < 0.005;
    m_ok &= p2 >= previous_p2;  // Probability is monotone in m.
    previous_p2 = p2;
  }
  m_table.Print(std::cout);
  std::cout << "m = 2 is the paper's sweet spot: 93%+ double-failure coverage for one\n"
               "replica's worth of traffic; m >= 3 buys certainty against double\n"
               "failures at 2-3x the traffic and CPU memory.\n";

  const bool pass = gamma_ok && m_ok;
  std::cout << "\nShape check: " << (pass ? "PASS" : "FAIL")
            << " — training overhead stays at zero across the whole design space\n"
               "(the scheduler trades frequency, never iteration time), and recovery\n"
               "probability grows monotonically with m.\n";
  return pass ? 0 : 1;
}
