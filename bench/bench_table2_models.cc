// Table 2: language-model configurations, plus the checkpoint sizing derived
// from them (9.4 GB/GPU for GPT-2 100B on 128 GPUs, Section 5.2).
#include <iostream>

#include "bench/bench_util.h"

using namespace gemini;

int main() {
  bench::PrintHeader("Table 2: model configurations", "paper Table 2");

  TablePrinter table({"Model", "Hidden", "Intermediate", "#Layers", "#AH", "Ckpt total",
                      "Ckpt/GPU (128)", "Formula params"});
  for (const ModelConfig& model : Table2Models()) {
    table.AddRow({model.name, TablePrinter::Fmt(static_cast<int64_t>(model.hidden_size)),
                  TablePrinter::Fmt(static_cast<int64_t>(model.intermediate_size)),
                  TablePrinter::Fmt(static_cast<int64_t>(model.num_layers)),
                  TablePrinter::Fmt(static_cast<int64_t>(model.attention_heads)),
                  FormatBytes(model.CheckpointBytesTotal()),
                  TablePrinter::Fmt(static_cast<double>(model.CheckpointBytesPerGpu(128)) / 1e9,
                                    2) +
                      " GB",
                  TablePrinter::Fmt(static_cast<double>(model.FormulaParams()) / 1e9, 1) + "B"});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: GPT-2 100B checkpoints 9.38 GB per GPU on 128 GPUs,\n"
               "matching the paper's 9.4 GB figure (12 bytes/parameter, ZeRO-3 sharded).\n";
  return 0;
}
