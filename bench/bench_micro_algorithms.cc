// Micro-benchmarks (google-benchmark) of the core algorithms: Algorithm 1
// placement construction, recovery-probability evaluation, Algorithm 2
// partitioning, the timeline generator, checkpoint serialization, the event
// queue, and the ring collectives' cost evaluation.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/placement/placement.h"
#include "src/placement/probability.h"
#include "src/schedule/executor.h"
#include "src/schedule/partition.h"
#include "src/sim/simulator.h"
#include "src/storage/serializer.h"
#include "src/training/model_config.h"
#include "src/training/timeline.h"

namespace gemini {
namespace {

void BM_BuildMixedPlacement(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto plan = BuildMixedPlacement(machines, 2);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_BuildMixedPlacement)->Arg(16)->Arg(128)->Arg(1024);

void BM_Corollary1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Corollary1LowerBound(static_cast<int>(state.range(0)), 2, 3));
  }
}
BENCHMARK(BM_Corollary1)->Arg(16)->Arg(1024);

void BM_ExactRecoveryProbability(benchmark::State& state) {
  const auto plan = BuildMixedPlacement(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactRecoveryProbability(*plan, 3));
  }
}
BENCHMARK(BM_ExactRecoveryProbability)->Arg(16)->Arg(32)->Arg(64);

void BM_MonteCarloRecoveryProbability(benchmark::State& state) {
  const auto plan = BuildMixedPlacement(256, 2);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MonteCarloRecoveryProbability(*plan, 3, 1000, rng));
  }
}
BENCHMARK(BM_MonteCarloRecoveryProbability);

void BM_BuildZero3Timeline(benchmark::State& state) {
  TimelineParams params;
  params.model = Gpt2_100B();
  params.instance = P4d24xlarge();
  params.num_machines = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildZero3Timeline(params));
  }
}
BENCHMARK(BM_BuildZero3Timeline);

void BM_PartitionCheckpoint(benchmark::State& state) {
  TimelineParams timeline_params;
  timeline_params.model = Gpt2_100B();
  timeline_params.instance = P4d24xlarge();
  timeline_params.num_machines = 16;
  const IterationTimeline timeline = BuildZero3Timeline(timeline_params);
  PartitionParams params;
  params.idle_spans = timeline.idle_spans;
  params.checkpoint_bytes = Gpt2_100B().CheckpointBytesPerMachine(16);
  params.num_remote_replicas = 1;
  params.reserved_buffer = MiB(128) * 8;
  params.num_buffers = static_cast<int>(state.range(0));
  params.bandwidth = P4d24xlarge().network_bandwidth;
  params.alpha = Micros(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionCheckpoint(params));
  }
}
BENCHMARK(BM_PartitionCheckpoint)->Arg(1)->Arg(4)->Arg(16);

void BM_ExecuteIteration(benchmark::State& state) {
  ExecutorParams params;
  params.timeline.model = Gpt2_100B();
  params.timeline.instance = P4d24xlarge();
  params.timeline.num_machines = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteIterationWithCheckpoint(params));
  }
}
BENCHMARK(BM_ExecuteIteration);

void BM_SerializeCheckpoint(benchmark::State& state) {
  Checkpoint checkpoint;
  checkpoint.owner_rank = 0;
  checkpoint.iteration = 1;
  checkpoint.logical_bytes = GiB(75);
  checkpoint.payload = std::vector<float>(static_cast<size_t>(state.range(0)), 1.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeCheckpoint(checkpoint));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(checkpoint.payload.size() * sizeof(float)));
}
BENCHMARK(BM_SerializeCheckpoint)->Arg(1024)->Arg(262144);

void BM_DeserializeCheckpoint(benchmark::State& state) {
  Checkpoint checkpoint;
  checkpoint.owner_rank = 0;
  checkpoint.iteration = 1;
  checkpoint.logical_bytes = GiB(75);
  checkpoint.payload = std::vector<float>(262144, 1.5f);
  const std::vector<uint8_t> blob = SerializeCheckpoint(checkpoint);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeserializeCheckpoint(blob));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_DeserializeCheckpoint);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < events; ++i) {
      sim.ScheduleAt(i, [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace gemini

BENCHMARK_MAIN();
