// Quickstart: train a large model with per-iteration in-memory checkpoints,
// inject a hardware failure, and watch GEMINI recover from a group peer's
// CPU memory in seconds instead of re-reading remote storage.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "src/common/logging.h"
#include "src/gemini/gemini_system.h"

using namespace gemini;

int main() {
  SetLogLevel(LogLevel::kInfo);

  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 16;
  config.num_replicas = 2;   // One local + one group-peer replica.
  config.cloud.num_standby = 1;  // A standby machine makes replacement fast.

  GeminiSystem system(config);
  if (const Status status = system.Initialize(); !status.ok()) {
    std::fprintf(stderr, "initialize failed: %s\n", status.ToString().c_str());
    return 1;
  }

  const SystemSnapshot snapshot = system.Snapshot();
  std::printf("== GEMINI quickstart ==\n");
  std::printf("model:            %s\n", config.model.name.c_str());
  std::printf("cluster:          %d x %s\n", config.num_machines, config.instance.name.c_str());
  std::printf("placement:        %s, %d groups\n", snapshot.placement_strategy.c_str(),
              snapshot.num_placement_groups);
  std::printf("iteration time:   %s (baseline %s -> overhead %.2f%%)\n",
              FormatDuration(snapshot.iteration_time).c_str(),
              FormatDuration(snapshot.baseline_iteration_time).c_str(),
              snapshot.checkpoint_overhead_fraction * 100.0);
  std::printf("ckpt per machine: %s, transmission %s, fits in idle time: %s\n",
              FormatBytes(config.model.CheckpointBytesPerMachine(config.num_machines)).c_str(),
              FormatDuration(system.iteration_execution().partition.planned_transmission_time)
                  .c_str(),
              snapshot.checkpoint_fits_iteration ? "yes" : "no");

  // Kill one machine (hardware failure) two and a half iterations in.
  const TimeNs failure_at = system.iteration_execution().iteration_time * 5 / 2;
  system.failure_injector().InjectAt(failure_at, FailureType::kHardware, {5});

  const StatusOr<TrainingReport> report = system.TrainUntil(8);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== results ==\n");
  std::printf("iterations completed: %lld\n",
              static_cast<long long>(report->iterations_completed));
  std::printf("wall time:            %s\n", FormatDuration(report->wall_time).c_str());
  std::printf("cpu checkpoints:      %lld\n",
              static_cast<long long>(report->cpu_checkpoints_committed));
  for (const RecoveryRecord& recovery : report->recoveries) {
    std::printf("recovery:             %s failure of %zu machine(s), source=%s,\n"
                "                      rolled back to iteration %lld, wasted %s, downtime %s\n",
                std::string(FailureTypeName(recovery.type)).c_str(),
                recovery.failed_ranks.size(),
                std::string(RecoverySourceName(recovery.source)).c_str(),
                static_cast<long long>(recovery.rollback_iteration),
                FormatDuration(recovery.wasted_time).c_str(),
                FormatDuration(recovery.downtime).c_str());
  }
  std::printf("effective ratio:      %.3f\n", report->effective_training_ratio());

  // The observability layer watched the whole run; dump the highlights.
  const SystemSnapshot after = system.Snapshot();
  std::printf("\n== observability ==\n");
  std::printf("recoveries:           %lld (local=%lld remote=%lld persistent=%lld)\n",
              static_cast<long long>(after.recoveries),
              static_cast<long long>(after.recoveries_from_local_cpu),
              static_cast<long long>(after.recoveries_from_remote_cpu),
              static_cast<long long>(after.recoveries_from_persistent));
  std::printf("trainer steps:        %lld\n",
              static_cast<long long>(system.metrics().counter_value("trainer.steps")));
  std::printf("store commits:        %lld\n",
              static_cast<long long>(system.metrics().counter_value("cpu_store.commits")));
  std::printf("trace records:        %zu (write a Chrome trace with\n"
              "                      system.tracer().WriteChromeTrace(\"run.trace.json\"))\n",
              system.tracer().records().size());
  return 0;
}
