// Interleave visualizer: renders one training iteration's network timeline
// as ASCII — training bursts, idle spans, and where Algorithm 2 places the
// checkpoint chunks — for each interleaving scheme. A compact way to *see*
// Figure 4/5 of the paper.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target interleave_visualizer
//   ./build/examples/interleave_visualizer [model] [trace.json]
// With a second argument, also writes a chrome://tracing / Perfetto trace of
// the GEMINI-scheduled iteration to that path.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/schedule/executor.h"
#include "src/schedule/trace_export.h"
#include "src/training/model_config.h"

using namespace gemini;

namespace {

constexpr int kWidth = 110;

// Renders one row: '#' = training communication, '.' = idle, 'c' = idle time
// consumed by scheduled checkpoint chunks.
std::string RenderRow(const IterationTimeline& timeline, const PartitionResult& partition,
                      BytesPerSecond bandwidth, TimeNs alpha, bool blocking = false) {
  std::string row(kWidth, '.');
  const double scale = static_cast<double>(kWidth) /
                       static_cast<double>(timeline.iteration_time);
  auto mark = [&](TimeNs begin, TimeNs end, char symbol) {
    int from = static_cast<int>(static_cast<double>(begin) * scale);
    int to = static_cast<int>(static_cast<double>(end) * scale);
    from = std::clamp(from, 0, kWidth - 1);
    to = std::clamp(to, from + 1, kWidth);
    for (int i = from; i < to; ++i) {
      row[static_cast<size_t>(i)] = symbol;
    }
  };
  if (blocking) {
    // The whole checkpoint transmits up front and pushes training right.
    TimeNs prologue = 0;
    for (const ChunkAssignment& chunk : partition.chunks) {
      prologue += alpha + TransferTime(chunk.bytes, bandwidth);
    }
    for (const CommSegment& segment : timeline.comm) {
      mark(segment.start + prologue, segment.end() + prologue, '#');
    }
    mark(0, prologue, 'c');
    return row;
  }
  for (const CommSegment& segment : timeline.comm) {
    mark(segment.start, segment.end(), '#');
  }
  // Chunk occupancy per span (front-loaded within the span, like execution).
  std::vector<TimeNs> used(timeline.idle_spans.size(), 0);
  for (const ChunkAssignment& chunk : partition.chunks) {
    used[static_cast<size_t>(chunk.span_index)] += alpha + TransferTime(chunk.bytes, bandwidth);
  }
  for (size_t s = 0; s < timeline.idle_spans.size(); ++s) {
    if (used[s] > 0) {
      const IdleSpan& span = timeline.idle_spans[s];
      mark(span.start, span.start + std::min(used[s], span.length), 'c');
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "GPT-2 40B";
  const ModelConfig* model = FindModel(model_name);
  if (model == nullptr) {
    std::fprintf(stderr, "unknown model '%s'; try \"GPT-2 100B\"\n", model_name.c_str());
    return 1;
  }
  const InstanceSpec& instance =
      model->nominal_params > 50'000'000'000LL ? P4d24xlarge() : P3dn24xlarge();

  TimelineParams timeline_params;
  timeline_params.model = *model;
  timeline_params.instance = instance;
  timeline_params.num_machines = 16;
  const IterationTimeline timeline = BuildZero3Timeline(timeline_params);

  std::printf("%s on 16x %s — one iteration = %s (network busy %s, idle %s)\n",
              model->name.c_str(), instance.name.c_str(),
              FormatDuration(timeline.iteration_time).c_str(),
              FormatDuration(timeline.TotalCommBusy()).c_str(),
              FormatDuration(timeline.TotalIdle()).c_str());
  std::printf("legend: '#' training communication   '.' idle   'c' checkpoint chunks\n\n");

  std::printf("%-24s %s\n", "no checkpointing",
              RenderRow(timeline, PartitionResult{}, instance.network_bandwidth,
                        timeline_params.comm_alpha).c_str());

  for (const InterleaveScheme scheme :
       {InterleaveScheme::kBlocking, InterleaveScheme::kInterleaveNoPipeline,
        InterleaveScheme::kPipelined}) {
    ExecutorParams params;
    params.timeline = timeline_params;
    params.scheme = scheme;
    const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
    if (!result.status.ok()) {
      std::printf("%-24s (%s)\n", std::string(InterleaveSchemeName(scheme)).c_str(),
                  result.status.ToString().c_str());
      continue;
    }
    std::printf("%-24s %s  +%.1f%%\n", std::string(InterleaveSchemeName(scheme)).c_str(),
                RenderRow(timeline, result.partition, instance.network_bandwidth,
                          timeline_params.comm_alpha,
                          scheme == InterleaveScheme::kBlocking).c_str(),
                result.overhead_fraction * 100.0);
  }

  std::printf("\nReading it: GEMINI's pipelined scheme tucks the 'c' chunks into the\n"
              "'.' gaps, so the '#' training bursts never move; the blocking scheme\n"
              "pushes the whole iteration right by the checkpoint time.\n");

  if (argc > 2) {
    ExecutorParams params;
    params.timeline = timeline_params;
    const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
    const Status written =
        WriteChromeTrace(argv[2], timeline, result.partition, instance.network_bandwidth,
                         timeline_params.comm_alpha);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nWrote chrome://tracing file to %s (open in Perfetto).\n", argv[2]);
  }
  return 0;
}
