// Placement explorer: interactive tour of Algorithm 1. For a given cluster
// size N and replica count m (defaults: 16 and 2; override via argv), prints
// the mixed placement's groups, each machine's replica set, and the recovery
// probabilities under simultaneous failures — exact, Corollary 1, ring
// comparison, and a Monte Carlo cross-check.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target placement_explorer
//   ./build/examples/placement_explorer [N] [m]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/rng.h"
#include "src/common/table_printer.h"
#include "src/placement/placement.h"
#include "src/placement/probability.h"

using namespace gemini;

namespace {

std::string JoinInts(const std::vector<int>& values) {
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += std::to_string(values[i]);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const int num_machines = argc > 1 ? std::atoi(argv[1]) : 16;
  const int num_replicas = argc > 2 ? std::atoi(argv[2]) : 2;

  const auto plan = BuildMixedPlacement(num_machines, num_replicas);
  if (!plan.ok()) {
    std::fprintf(stderr, "invalid parameters: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::printf("== Algorithm 1 mixed placement: N=%d machines, m=%d replicas ==\n",
              num_machines, num_replicas);
  std::printf("strategy: %s (%s)\n\n",
              std::string(PlacementStrategyName(plan->strategy)).c_str(),
              num_machines % num_replicas == 0
                  ? "divisible: pure group placement, provably optimal"
                  : "remainder handled by a trailing ring, near-optimal");

  std::printf("groups:\n");
  for (size_t g = 0; g < plan->groups.size(); ++g) {
    std::printf("  group %zu: %s%s\n", g, JoinInts(plan->groups[g]).c_str(),
                plan->groups[g].size() > static_cast<size_t>(num_replicas) ? "  (ring section)"
                                                                           : "");
  }

  if (num_machines <= 12) {
    std::printf("\nreplica sets (machine -> holders, local first):\n");
    for (int machine = 0; machine < num_machines; ++machine) {
      std::printf("  %2d -> %s\n", machine,
                  JoinInts(plan->replica_sets[static_cast<size_t>(machine)]).c_str());
    }
  }

  std::printf("\nrecovery probability with k simultaneous machine failures:\n");
  TablePrinter table({"k", "exact (mixed)", "Corollary 1", "ring (exact)", "ring (analytic)",
                      "Monte Carlo"});
  Rng rng(12345);
  const auto ring = BuildRingPlacement(num_machines, num_replicas);
  for (int k = 1; k <= std::min(num_machines, num_replicas + 3); ++k) {
    const auto exact = ExactRecoveryProbability(*plan, k);
    const auto ring_exact = ExactRecoveryProbability(*ring, k);
    table.AddRow({TablePrinter::Fmt(static_cast<int64_t>(k)),
                  exact.ok() ? TablePrinter::Fmt(*exact, 4) : "(too large)",
                  TablePrinter::Fmt(Corollary1LowerBound(num_machines, num_replicas, k), 4),
                  ring_exact.ok() ? TablePrinter::Fmt(*ring_exact, 4) : "(too large)",
                  TablePrinter::Fmt(RingAnalyticLowerBound(num_machines, num_replicas, k), 4),
                  TablePrinter::Fmt(
                      MonteCarloRecoveryProbability(*plan, k, 20000, rng), 4)});
  }
  std::printf("%s", table.ToString().c_str());

  if (num_machines % num_replicas != 0 && num_replicas >= 2) {
    std::printf("\nTheorem 1 optimality-gap bound for this (N, m): %.6f\n",
                MixedStrategyGapBound(num_machines, num_replicas));
  }
  std::printf("\nReading the table: k < m always recovers (every checkpoint has a\n"
              "surviving replica); at k = m the group sections lose a checkpoint only\n"
              "when an entire group fails together, which is why grouping beats the\n"
              "ring that loses data on any m consecutive failures.\n");
  return 0;
}
