// Failure storm: trains GPT-2 100B on 16 machines while random failures
// arrive at an OPT-like Poisson rate (scaled up so several land within the
// run), with standby machines absorbing the hardware replacements. Compares
// the measured effective training ratio against the analytic Figure 15
// model.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target failure_storm
//   ./build/examples/failure_storm
#include <cstdio>
#include <map>

#include "src/baselines/system_model.h"
#include "src/common/logging.h"
#include "src/gemini/gemini_system.h"

using namespace gemini;

int main() {
  SetLogLevel(LogLevel::kInfo);

  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 16;
  config.num_replicas = 2;
  config.cloud.num_standby = 2;
  config.kv_server_count = 5;  // Tolerate two coordinator-machine losses.
  config.seed = 7;

  GeminiSystem system(config);
  if (const Status status = system.Initialize(); !status.ok()) {
    std::fprintf(stderr, "initialize failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // A brutal failure rate: ~1 failure per machine per day (64x OPT's rate),
  // 70% software, for the duration of the run.
  const TimeNs horizon = Hours(6);
  system.failure_injector().StartRandomArrivals(/*rate_per_machine_day=*/1.0,
                                                /*software_fraction=*/0.7, horizon);

  const StatusOr<TrainingReport> report =
      system.TrainUntil(/*target_iterations=*/250, /*sim_deadline=*/horizon);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== failure storm report ==\n");
  std::printf("simulated time:       %s\n", FormatDuration(report->wall_time).c_str());
  std::printf("iterations completed: %lld\n",
              static_cast<long long>(report->iterations_completed));
  std::printf("failures recovered:   %zu\n", report->recoveries.size());

  std::map<RecoverySource, int> by_source;
  TimeNs total_wasted = 0;
  TimeNs total_downtime = 0;
  for (const RecoveryRecord& recovery : report->recoveries) {
    ++by_source[recovery.source];
    total_wasted += recovery.wasted_time;
    total_downtime += recovery.downtime;
  }
  for (const auto& [source, count] : by_source) {
    std::printf("  %-22s %d\n", std::string(RecoverySourceName(source)).c_str(), count);
  }
  if (!report->recoveries.empty()) {
    std::printf("mean wasted time:     %s\n",
                FormatDuration(total_wasted /
                               static_cast<TimeNs>(report->recoveries.size())).c_str());
    std::printf("mean downtime:        %s\n",
                FormatDuration(total_downtime /
                               static_cast<TimeNs>(report->recoveries.size())).c_str());
  }
  std::printf("effective ratio:      %.3f (measured)\n", report->effective_training_ratio());

  // Analytic comparison (Figure 15 model at the same failures/day).
  CheckpointWorkload workload;
  workload.iteration_time = report->iteration_time;
  workload.checkpoint_bytes_per_machine = config.model.CheckpointBytesPerMachine(16);
  workload.num_machines = 16;
  const double failures_per_day =
      static_cast<double>(report->recoveries.size()) /
      (static_cast<double>(report->wall_time) / static_cast<double>(Hours(24)));
  std::printf("effective ratio:      %.3f (Figure 15 analytic model at %.1f failures/day)\n",
              BuildGemini(workload, 0, 0, /*standby=*/true)
                  .EffectiveTrainingRatio(failures_per_day),
              failures_per_day);
  std::printf("\nEven under a failure every ~90 minutes, GEMINI keeps making forward\n"
              "progress because every failure costs ~1.5 iterations plus fixed restart\n"
              "overheads instead of hours of lost work.\n");
  return 0;
}
