// Large-model training walkthrough: GPT-2 100B on 16x p4d.24xlarge, the
// paper's primary evaluation setting. Shows the full GEMINI pipeline —
// placement, profiling, Algorithm 2 scheduling — then trains through a
// software failure and a hardware failure and compares the measured wasted
// time against the Strawman and HighFreq baselines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target large_model_training
//   ./build/examples/large_model_training
#include <cstdio>

#include "src/baselines/system_model.h"
#include "src/common/logging.h"
#include "src/common/table_printer.h"
#include "src/gemini/gemini_system.h"

using namespace gemini;

int main() {
  SetLogLevel(LogLevel::kInfo);

  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 16;
  config.num_replicas = 2;
  config.cloud.num_standby = 1;

  GeminiSystem system(config);
  if (const Status status = system.Initialize(); !status.ok()) {
    std::fprintf(stderr, "initialize failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // ---- Scheduling summary -------------------------------------------------
  const ExecutionResult& execution = system.iteration_execution();
  std::printf("== workload ==\n");
  std::printf("model states:         %s total, %s per machine\n",
              FormatBytes(config.model.CheckpointBytesTotal()).c_str(),
              FormatBytes(config.model.CheckpointBytesPerMachine(16)).c_str());
  std::printf("iteration time:       %s\n", FormatDuration(execution.iteration_time).c_str());
  std::printf("profiled idle spans:  %zu spans, normalized stddev %.1f%% (paper: <10%%)\n",
              system.profile().spans.size(),
              system.profile().max_normalized_stddev * 100.0);
  std::printf("checkpoint schedule:  %zu chunks, largest %s, transmission %s, fits: %s\n\n",
              execution.partition.chunks.size(),
              FormatBytes(execution.partition.max_chunk_bytes).c_str(),
              FormatDuration(execution.partition.planned_transmission_time).c_str(),
              execution.partition.fits_within_idle_time ? "yes" : "no");

  // ---- Train through two failures ------------------------------------------
  system.failure_injector().InjectAt(Minutes(3), FailureType::kSoftware, {11});
  system.failure_injector().InjectAt(Minutes(25), FailureType::kHardware, {4});
  const StatusOr<TrainingReport> report = system.TrainUntil(20);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== training report ==\n");
  std::printf("iterations completed: %lld\n",
              static_cast<long long>(report->iterations_completed));
  std::printf("wall time:            %s\n", FormatDuration(report->wall_time).c_str());
  std::printf("cpu checkpoints:      %lld (one per iteration)\n",
              static_cast<long long>(report->cpu_checkpoints_committed));
  std::printf("effective ratio:      %.3f\n\n", report->effective_training_ratio());

  // ---- Wasted-time comparison ----------------------------------------------
  CheckpointWorkload workload;
  workload.iteration_time = execution.baseline_iteration_time;
  workload.checkpoint_bytes_per_machine = config.model.CheckpointBytesPerMachine(16);
  workload.num_machines = 16;
  const SystemModel strawman = BuildStrawman(workload);
  const SystemModel highfreq = BuildHighFreq(workload);

  TablePrinter table({"Failure", "Source", "GEMINI wasted", "HighFreq (model)",
                      "Strawman (model)", "Reduction vs HighFreq"});
  for (const RecoveryRecord& recovery : report->recoveries) {
    const double reduction = static_cast<double>(highfreq.AverageWastedTime()) /
                             static_cast<double>(std::max<TimeNs>(recovery.wasted_time, 1));
    table.AddRow({std::string(FailureTypeName(recovery.type)),
                  std::string(RecoverySourceName(recovery.source)),
                  FormatDuration(recovery.wasted_time),
                  FormatDuration(highfreq.AverageWastedTime()),
                  FormatDuration(strawman.AverageWastedTime()),
                  TablePrinter::Fmt(reduction, 0) + "x"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("The paper's headline: failure recovery more than 13x faster than the\n"
              "best remote-storage configuration, with zero training-throughput cost.\n");
  return 0;
}
