// Tests for the chunked checkpoint replicator: real bytes flowing through
// the fabric and PCIe engines into the double-buffered CPU stores, and
// cross-validation of the analytic scheduling model.
#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/gemini/replicator.h"
#include "src/training/trainer.h"

namespace gemini {
namespace {

class ReplicatorTest : public ::testing::Test {
 protected:
  static constexpr int kMachines = 4;

  ReplicatorTest() {
    FabricConfig fabric;
    fabric.link_bandwidth = P4d24xlarge().network_bandwidth;
    cluster_ = std::make_unique<Cluster>(sim_, kMachines, P4d24xlarge(), fabric);
    placement_ = *BuildMixedPlacement(kMachines, 2);
    trainer_ = std::make_unique<ShardedTrainer>(Gpt2_10B(), kMachines, 64, /*seed=*/5);
    const Bytes replica = Gpt2_10B().CheckpointBytesPerMachine(kMachines);
    for (int rank = 0; rank < kMachines; ++rank) {
      stores_.push_back(std::make_unique<CpuCheckpointStore>(cluster_->machine(rank)));
      for (const int owner : {rank, placement_.replica_sets[static_cast<size_t>(rank)][1]}) {
        (void)owner;
      }
    }
    for (int owner = 0; owner < kMachines; ++owner) {
      for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
        EXPECT_TRUE(stores_[static_cast<size_t>(holder)]->HostOwner(owner, replica).ok());
      }
    }
  }

  std::vector<CpuCheckpointStore*> StorePointers() {
    std::vector<CpuCheckpointStore*> out;
    for (auto& store : stores_) {
      out.push_back(store.get());
    }
    return out;
  }

  std::vector<Checkpoint> Snapshots() {
    std::vector<Checkpoint> snapshots;
    for (int rank = 0; rank < kMachines; ++rank) {
      snapshots.push_back(trainer_->MakeCheckpoint(rank));
    }
    return snapshots;
  }

  // Chunks for one remote replica: fixed-size slices of the checkpoint.
  std::vector<ChunkAssignment> EvenChunks(int count) {
    const Bytes replica = Gpt2_10B().CheckpointBytesPerMachine(kMachines);
    std::vector<ChunkAssignment> chunks;
    Bytes offset = 0;
    for (int i = 0; i < count; ++i) {
      const Bytes size = i + 1 == count ? replica - offset : replica / count;
      chunks.push_back(ChunkAssignment{i, size, 0, offset});
      offset += size;
    }
    return chunks;
  }

  Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
  PlacementPlan placement_;
  std::unique_ptr<ShardedTrainer> trainer_;
  std::vector<std::unique_ptr<CpuCheckpointStore>> stores_;
};

TEST_F(ReplicatorTest, CommitsBitIdenticalCheckpointsAtAllHolders) {
  trainer_->Step();
  trainer_->Step();
  const std::vector<Checkpoint> snapshots = Snapshots();
  std::optional<ReplicationOutcome> outcome;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), snapshots, EvenChunks(16),
                    ReplicatorConfig{}, [&](ReplicationOutcome result) { outcome = result; });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->status.ok()) << outcome->status;
  for (int owner = 0; owner < kMachines; ++owner) {
    for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
      const auto stored = stores_[static_cast<size_t>(holder)]->Latest(owner);
      ASSERT_TRUE(stored.has_value()) << "holder " << holder << " missing owner " << owner;
      EXPECT_EQ(*stored, snapshots[static_cast<size_t>(owner)])
          << "holder " << holder << " owner " << owner << " bytes diverged";
    }
  }
  // 3 remote streams... every owner sends one remote copy: 4 x 16 chunks.
  EXPECT_EQ(outcome->chunks_transferred, kMachines * 16);
}

TEST_F(ReplicatorTest, PipelineThreadsCommitBitIdenticalCheckpoints) {
  // pipeline_threads > 1 only parallelizes the commit path's integrity CRC
  // on the host: the committed bytes, the simulated completion times, and
  // the chunk counts must all be identical to the single-threaded default.
  trainer_->Step();
  const std::vector<Checkpoint> snapshots = Snapshots();

  std::optional<ReplicationOutcome> baseline;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), snapshots, EvenChunks(16),
                    ReplicatorConfig{}, [&](ReplicationOutcome result) { baseline = result; });
  sim_.Run();
  ASSERT_TRUE(baseline.has_value());
  ASSERT_TRUE(baseline->status.ok()) << baseline->status;

  trainer_->Step();  // New iteration so the second pass commits fresh state.
  const std::vector<Checkpoint> next = Snapshots();
  ReplicatorConfig parallel_config;
  parallel_config.pipeline_threads = 4;
  const TimeNs second_start = sim_.now();
  std::optional<ReplicationOutcome> outcome;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), next, EvenChunks(16),
                    parallel_config, [&](ReplicationOutcome result) { outcome = result; });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->status.ok()) << outcome->status;
  // Simulated timing is untouched by host-side threads: both passes moved
  // the same bytes through the same (idle) fabric, so their simulated
  // durations are identical.
  EXPECT_EQ(outcome->network_done - second_start, baseline->network_done);
  EXPECT_EQ(outcome->committed_at - second_start, baseline->committed_at);
  EXPECT_EQ(outcome->chunks_transferred, baseline->chunks_transferred);
  for (int owner = 0; owner < kMachines; ++owner) {
    for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
      const auto stored = stores_[static_cast<size_t>(holder)]->Latest(owner);
      ASSERT_TRUE(stored.has_value());
      EXPECT_EQ(*stored, next[static_cast<size_t>(owner)])
          << "holder " << holder << " owner " << owner << " bytes diverged";
    }
  }
  // A shared caller-owned pool works the same way.
  trainer_->Step();
  const std::vector<Checkpoint> third = Snapshots();
  ThreadPool shared_pool(4);
  ReplicatorConfig shared_config;
  shared_config.workers = &shared_pool;
  std::optional<ReplicationOutcome> shared_outcome;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), third, EvenChunks(16),
                    shared_config,
                    [&](ReplicationOutcome result) { shared_outcome = result; });
  sim_.Run();
  ASSERT_TRUE(shared_outcome.has_value());
  ASSERT_TRUE(shared_outcome->status.ok()) << shared_outcome->status;
}

TEST_F(ReplicatorTest, CommitRejectsPayloadDigestMismatch) {
  // A snapshot whose stamped digest does not match its bytes must be refused
  // at commit (the pre-commit integrity CRC), not silently replicated.
  trainer_->Step();
  std::vector<Checkpoint> snapshots = Snapshots();
  snapshots[1].payload_crc ^= 0x5A5A5A5Au;
  std::optional<ReplicationOutcome> outcome;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), snapshots, EvenChunks(4),
                    ReplicatorConfig{}, [&](ReplicationOutcome result) { outcome = result; });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->status.code(), StatusCode::kDataLoss) << outcome->status;
}

TEST_F(ReplicatorTest, TimingMatchesAnalyticTransmission) {
  const std::vector<Checkpoint> snapshots = Snapshots();
  const std::vector<ChunkAssignment> chunks = EvenChunks(16);
  std::optional<ReplicationOutcome> outcome;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), snapshots, chunks,
                    ReplicatorConfig{}, [&](ReplicationOutcome result) { outcome = result; });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->status.ok());
  // Every machine exchanges one full replica with its group peer over the
  // full-duplex NIC: network completion ~= C/B plus per-chunk alphas.
  const Bytes replica = Gpt2_10B().CheckpointBytesPerMachine(kMachines);
  const TimeNs expected = TransferTime(replica, P4d24xlarge().network_bandwidth) +
                          16 * FabricConfig{}.alpha;
  EXPECT_NEAR(ToSeconds(outcome->network_done), ToSeconds(expected),
              ToSeconds(expected) * 0.05);
  // The pipelined copies drain shortly after (copy bandwidth == NIC rate on
  // p4d): commit lands within one chunk-copy of the last receive.
  EXPECT_LE(outcome->committed_at,
            outcome->network_done + TransferTime(replica / 16, P4d24xlarge().network_bandwidth) +
                Millis(1));
}

TEST_F(ReplicatorTest, HolderDeathMidReplicationFailsButPreservesCompleted) {
  // Commit a first snapshot fully.
  const std::vector<Checkpoint> first = Snapshots();
  bool first_ok = false;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), first, EvenChunks(8),
                    ReplicatorConfig{},
                    [&](ReplicationOutcome result) { first_ok = result.status.ok(); });
  sim_.Run();
  ASSERT_TRUE(first_ok);

  // Second snapshot: kill machine 1 mid-stream.
  trainer_->Step();
  std::optional<ReplicationOutcome> outcome;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), Snapshots(), EvenChunks(8),
                    ReplicatorConfig{}, [&](ReplicationOutcome result) { outcome = result; });
  sim_.ScheduleAfter(Millis(200), [&] {
    cluster_->machine(1).set_health(MachineHealth::kDead);
  });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->status.ok());
  // Double buffering: machine 0's store still serves machine 1's *previous*
  // complete checkpoint — exactly what recovery will need.
  const auto preserved = stores_[0]->Latest(1);
  ASSERT_TRUE(preserved.has_value());
  EXPECT_EQ(*preserved, first[1]);
}

TEST_F(ReplicatorTest, SingleChunkDegenerateCase) {
  const std::vector<Checkpoint> snapshots = Snapshots();
  std::optional<ReplicationOutcome> outcome;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), snapshots, EvenChunks(1),
                    ReplicatorConfig{}, [&](ReplicationOutcome result) { outcome = result; });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->status.ok());
  EXPECT_EQ(stores_[1]->Latest(0)->payload, snapshots[0].payload);
}

TEST_F(ReplicatorTest, ManySmallChunksStillReassembleExactly) {
  trainer_->Step();
  const std::vector<Checkpoint> snapshots = Snapshots();
  std::optional<ReplicationOutcome> outcome;
  ReplicateSnapshot(*cluster_, placement_, StorePointers(), snapshots, EvenChunks(257),
                    ReplicatorConfig{}, [&](ReplicationOutcome result) { outcome = result; });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->status.ok()) << outcome->status;
  for (int owner = 0; owner < kMachines; ++owner) {
    const int peer = placement_.replica_sets[static_cast<size_t>(owner)][1];
    EXPECT_EQ(stores_[static_cast<size_t>(peer)]->Latest(owner)->payload,
              snapshots[static_cast<size_t>(owner)].payload);
  }
}

}  // namespace
}  // namespace gemini
