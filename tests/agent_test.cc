// Tests for the failure-recovery control plane: worker agents (heartbeat
// leases), the root agent (failure classification), the cloud operator, and
// the failure injector.
#include <gtest/gtest.h>

#include "src/agent/cloud_operator.h"
#include "src/agent/failure_injector.h"
#include "src/agent/root_agent.h"
#include "src/agent/worker_agent.h"
#include "src/cluster/cluster.h"
#include "src/kvstore/kv_store.h"

namespace gemini {
namespace {

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() {
    cluster_ = std::make_unique<Cluster>(sim_, 4, P4d24xlarge(), FabricConfig{});
    kv_ = std::make_unique<KvStoreCluster>(
        sim_, cluster_->fabric(), std::vector<int>{0, 1, 2},
        [this](int rank) { return cluster_->machine(rank).alive(); }, KvStoreConfig{},
        /*seed=*/77);
    kv_->Start();
    for (int rank = 0; rank < 4; ++rank) {
      workers_.push_back(
          std::make_unique<WorkerAgent>(sim_, *cluster_, *kv_, rank, AgentConfig{}));
    }
  }

  void StartWorkers() {
    for (auto& worker : workers_) {
      worker->Start();
    }
  }

  void Settle(TimeNs duration) { sim_.RunUntil(sim_.now() + duration); }

  Simulator sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<KvStoreCluster> kv_;
  std::vector<std::unique_ptr<WorkerAgent>> workers_;
};

TEST_F(AgentTest, WorkersPublishHealthKeys) {
  StartWorkers();
  Settle(Seconds(10));
  const auto health = kv_->List(kHealthKeyPrefix);
  EXPECT_EQ(health.size(), 4u);
  for (const auto& [key, entry] : health) {
    EXPECT_EQ(entry.value, kStatusHealthy);
    EXPECT_NE(entry.lease, kNoLease);
  }
}

TEST_F(AgentTest, HealthKeySurvivesWithKeepAlive) {
  StartWorkers();
  Settle(Minutes(1));  // Many lease TTLs.
  EXPECT_EQ(kv_->List(kHealthKeyPrefix).size(), 4u);
}

TEST_F(AgentTest, DeadMachineKeyExpires) {
  StartWorkers();
  Settle(Seconds(10));
  cluster_->machine(3).set_health(MachineHealth::kDead);
  // Lease TTL is 10 s; give it time to lapse.
  Settle(Seconds(25));
  const auto health = kv_->List(kHealthKeyPrefix);
  EXPECT_EQ(health.size(), 3u);
  EXPECT_FALSE(health.contains(std::string(kHealthKeyPrefix) + "3"));
}

TEST_F(AgentTest, ProcessDownIsPublishedNotExpired) {
  StartWorkers();
  Settle(Seconds(10));
  workers_[2]->ReportProcessDown();
  Settle(Seconds(15));
  const auto entry = kv_->Get(std::string(kHealthKeyPrefix) + "2");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->value, kStatusProcessDown);
  workers_[2]->ReportHealthy();
  Settle(Seconds(5));
  EXPECT_EQ(kv_->Get(std::string(kHealthKeyPrefix) + "2")->value, kStatusHealthy);
}

TEST_F(AgentTest, ExactlyOneWorkerWinsRootElection) {
  std::vector<int> promoted;
  for (int rank = 0; rank < 4; ++rank) {
    workers_[static_cast<size_t>(rank)]->set_on_promoted_to_root(
        [&promoted, rank] { promoted.push_back(rank); });
  }
  StartWorkers();
  Settle(Seconds(30));
  ASSERT_EQ(promoted.size(), 1u);
  const auto root = kv_->Get(kRootKey);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->value, std::to_string(promoted[0]));
}

TEST_F(AgentTest, RootFailoverPromotesAnotherWorker) {
  std::vector<int> promoted;
  for (int rank = 0; rank < 4; ++rank) {
    workers_[static_cast<size_t>(rank)]->set_on_promoted_to_root(
        [&promoted, rank] { promoted.push_back(rank); });
  }
  StartWorkers();
  Settle(Seconds(30));
  ASSERT_EQ(promoted.size(), 1u);
  const int first_root = promoted[0];
  // Killing one machine leaves the 3-node KV quorum intact even when the
  // root happens to sit on a KV server.
  cluster_->machine(first_root).set_health(MachineHealth::kDead);
  Settle(Minutes(1));
  ASSERT_EQ(promoted.size(), 2u) << "no replacement root was promoted";
  EXPECT_NE(promoted[1], first_root);
  EXPECT_EQ(kv_->Get(kRootKey)->value, std::to_string(promoted[1]));
}

TEST_F(AgentTest, RootAgentDetectsHardwareFailure) {
  StartWorkers();
  std::vector<FailureReport> reports;
  RootAgent root(sim_, *cluster_, *kv_, 0, AgentConfig{},
                 [&](const FailureReport& report) { reports.push_back(report); });
  root.Start();
  Settle(Seconds(20));
  EXPECT_TRUE(reports.empty());

  cluster_->machine(3).set_health(MachineHealth::kDead);
  Settle(Seconds(30));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].type, FailureType::kHardware);
  EXPECT_EQ(reports[0].ranks, (std::vector<int>{3}));
  // Suppressed until cleared, then detectable again.
  Settle(Seconds(30));
  EXPECT_EQ(reports.size(), 1u);
}

TEST_F(AgentTest, RootAgentDetectsSoftwareFailure) {
  StartWorkers();
  std::vector<FailureReport> reports;
  RootAgent root(sim_, *cluster_, *kv_, 0, AgentConfig{},
                 [&](const FailureReport& report) { reports.push_back(report); });
  root.Start();
  Settle(Seconds(20));
  workers_[1]->ReportProcessDown();
  Settle(Seconds(20));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].type, FailureType::kSoftware);
  EXPECT_EQ(reports[0].ranks, (std::vector<int>{1}));
}

TEST_F(AgentTest, DetectionLatencyMatchesFigure14Scale) {
  // The paper measures ~15 s to detect a failure; with a 10 s lease TTL and
  // 5 s scans, detection should land within roughly 10-30 s.
  StartWorkers();
  std::vector<FailureReport> reports;
  RootAgent root(sim_, *cluster_, *kv_, 0, AgentConfig{},
                 [&](const FailureReport& report) { reports.push_back(report); });
  root.Start();
  Settle(Seconds(30));
  const TimeNs failed_at = sim_.now();
  cluster_->machine(3).set_health(MachineHealth::kDead);
  Settle(Minutes(2));
  ASSERT_EQ(reports.size(), 1u);
  const TimeNs latency = reports[0].detected_at - failed_at;
  EXPECT_GE(latency, Seconds(5));
  EXPECT_LE(latency, Seconds(30));
}

TEST_F(AgentTest, PausedRootAgentReportsNothing) {
  StartWorkers();
  std::vector<FailureReport> reports;
  RootAgent root(sim_, *cluster_, *kv_, 0, AgentConfig{},
                 [&](const FailureReport& report) { reports.push_back(report); });
  root.Start();
  root.SetPaused(true);
  Settle(Seconds(20));
  cluster_->machine(3).set_health(MachineHealth::kDead);
  Settle(Minutes(1));
  EXPECT_TRUE(reports.empty());
  root.SetPaused(false);
  Settle(Seconds(30));
  EXPECT_EQ(reports.size(), 1u);
}

TEST_F(AgentTest, HealthKeysSurviveKvLeaderFailover) {
  StartWorkers();
  Settle(Seconds(15));
  ASSERT_EQ(kv_->List(kHealthKeyPrefix).size(), 4u);
  // Kill the KV leader's machine; leases and keys are replicated state, and
  // worker keepalives retry through the new leader.
  const auto leader = kv_->LeaderRank();
  ASSERT_TRUE(leader.has_value());
  cluster_->machine(*leader).set_health(MachineHealth::kDead);
  Settle(Minutes(1));
  const auto health = kv_->List(kHealthKeyPrefix);
  // The dead machine's own key expired; the three survivors' keys live on.
  EXPECT_EQ(health.size(), 3u);
  for (int rank = 0; rank < 4; ++rank) {
    if (rank != *leader) {
      EXPECT_TRUE(health.contains(std::string(kHealthKeyPrefix) + std::to_string(rank)))
          << "rank " << rank << " lost its health key across the KV failover";
    }
  }
}

// ---------------------------------------------------------------------------
// CloudOperator
// ---------------------------------------------------------------------------

TEST(CloudOperatorTest, ProvisioningTakesMinutes) {
  Simulator sim;
  Cluster cluster(sim, 4, P4d24xlarge(), FabricConfig{});
  CloudOperator operator_(sim, cluster, CloudOperatorConfig{}, /*seed=*/5);
  cluster.machine(2).set_health(MachineHealth::kDead);
  TimeNs ready_at = -1;
  operator_.ReplaceMachine(2, [&](Machine& machine) {
    EXPECT_EQ(machine.incarnation(), 1);
    ready_at = sim.now();
  });
  sim.Run();
  EXPECT_GE(ready_at, Minutes(4));
  EXPECT_LE(ready_at, Minutes(7));
  EXPECT_EQ(operator_.total_replacements(), 1);
}

TEST(CloudOperatorTest, StandbyActivatesInSeconds) {
  Simulator sim;
  Cluster cluster(sim, 4, P4d24xlarge(), FabricConfig{});
  CloudOperatorConfig config;
  config.num_standby = 1;
  CloudOperator operator_(sim, cluster, config, /*seed=*/5);
  TimeNs ready_at = -1;
  operator_.ReplaceMachine(1, [&](Machine&) { ready_at = sim.now(); });
  EXPECT_EQ(operator_.standby_available(), 0);
  sim.Run();
  EXPECT_EQ(ready_at, Seconds(10));
  // The pool replenishes in the background.
  EXPECT_EQ(operator_.standby_available(), 1);
}

TEST(CloudOperatorTest, SecondFailureWithoutStandbyPaysFullDelay) {
  Simulator sim;
  Cluster cluster(sim, 4, P4d24xlarge(), FabricConfig{});
  CloudOperatorConfig config;
  config.num_standby = 1;
  CloudOperator operator_(sim, cluster, config, /*seed=*/5);
  std::vector<TimeNs> ready;
  operator_.ReplaceMachine(1, [&](Machine&) { ready.push_back(sim.now()); });
  operator_.ReplaceMachine(2, [&](Machine&) { ready.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_LE(ready[0], Seconds(10));
  EXPECT_GE(ready[1], Minutes(4));
}

// ---------------------------------------------------------------------------
// FailureInjector
// ---------------------------------------------------------------------------

TEST(FailureInjectorTest, ScriptedInjectionFlipsHealth) {
  Simulator sim;
  Cluster cluster(sim, 4, P4d24xlarge(), FabricConfig{});
  FailureInjector injector(sim, cluster, /*seed=*/3);
  std::vector<FailureEvent> observed;
  injector.set_observer([&](const FailureEvent& event) { observed.push_back(event); });
  injector.InjectAt(Seconds(5), FailureType::kSoftware, {1});
  injector.InjectAt(Seconds(9), FailureType::kHardware, {2, 3});
  sim.Run();
  EXPECT_EQ(cluster.machine(1).health(), MachineHealth::kProcessDown);
  EXPECT_EQ(cluster.machine(2).health(), MachineHealth::kDead);
  EXPECT_EQ(cluster.machine(3).health(), MachineHealth::kDead);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0].time, Seconds(5));
  EXPECT_EQ(injector.injected_count(), 2);
}

TEST(FailureInjectorTest, HardwareDoesNotResurrectDeadMachines) {
  Simulator sim;
  Cluster cluster(sim, 2, P4d24xlarge(), FabricConfig{});
  FailureInjector injector(sim, cluster, 3);
  injector.InjectAt(Seconds(1), FailureType::kHardware, {0});
  injector.InjectAt(Seconds(2), FailureType::kSoftware, {0});  // Already dead.
  sim.Run();
  EXPECT_EQ(cluster.machine(0).health(), MachineHealth::kDead);
}

TEST(FailureInjectorTest, PoissonArrivalsMatchExpectedRate) {
  Simulator sim;
  Cluster cluster(sim, 16, P4d24xlarge(), FabricConfig{});
  FailureInjector injector(sim, cluster, /*seed=*/101);
  int software = 0;
  int hardware = 0;
  injector.set_observer([&](const FailureEvent& event) {
    // Keep machines alive so the process continues at a constant rate.
    for (const int rank : event.ranks) {
      cluster.machine(rank).set_health(MachineHealth::kHealthy);
    }
    (event.type == FailureType::kSoftware ? software : hardware) += 1;
  });
  // 1.5% per machine per day over 16 machines for 200 days: expect ~48.
  injector.StartRandomArrivals(0.015, /*software_fraction=*/0.75, Hours(24 * 200));
  sim.Run();
  const int total = software + hardware;
  EXPECT_NEAR(total, 48, 20);
  EXPECT_GT(software, hardware);  // Most failures are software failures.
}

}  // namespace
}  // namespace gemini
