// Tests for checkpoint placement (Algorithm 1) and recovery-probability
// analysis (Theorem 1, Corollary 1). The property tests cross-check the
// paper's closed forms against exhaustive enumeration of failure sets.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "src/common/rng.h"
#include "src/placement/placement.h"
#include "src/placement/probability.h"

namespace gemini {
namespace {

// ---------------------------------------------------------------------------
// Structural tests
// ---------------------------------------------------------------------------

TEST(PlacementTest, GroupPlacementPartitionsMachines) {
  const auto plan = BuildGroupPlacement(8, 2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->groups.size(), 4u);
  for (const auto& group : plan->groups) {
    EXPECT_EQ(group.size(), 2u);
  }
  // Machine 0 and 1 hold each other.
  EXPECT_EQ(plan->replica_sets[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(plan->replica_sets[1], (std::vector<int>{1, 0}));
}

TEST(PlacementTest, GroupPlacementRequiresDivisibility) {
  EXPECT_FALSE(BuildGroupPlacement(7, 2).ok());
  EXPECT_TRUE(BuildGroupPlacement(7, 7).ok());
}

TEST(PlacementTest, RingPlacementWrapsAround) {
  const auto plan = BuildRingPlacement(4, 2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->replica_sets[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(plan->replica_sets[3], (std::vector<int>{3, 0}));
}

TEST(PlacementTest, MixedEqualsGroupWhenDivisible) {
  const auto mixed = BuildMixedPlacement(16, 4);
  const auto group = BuildGroupPlacement(16, 4);
  ASSERT_TRUE(mixed.ok());
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(mixed->replica_sets, group->replica_sets);
  EXPECT_EQ(mixed->groups, group->groups);
}

TEST(PlacementTest, MixedWithRemainderBuildsTrailingRing) {
  // Paper Figure 3c: N=5, m=2 -> one group of two, ring over the last three.
  const auto plan = BuildMixedPlacement(5, 2);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->groups.size(), 2u);
  EXPECT_EQ(plan->groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(plan->groups[1], (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(plan->replica_sets[2], (std::vector<int>{2, 3}));
  EXPECT_EQ(plan->replica_sets[3], (std::vector<int>{3, 4}));
  EXPECT_EQ(plan->replica_sets[4], (std::vector<int>{4, 2}));
}

TEST(PlacementTest, RejectsInvalidArguments) {
  EXPECT_FALSE(BuildMixedPlacement(0, 1).ok());
  EXPECT_FALSE(BuildMixedPlacement(4, 0).ok());
  EXPECT_FALSE(BuildMixedPlacement(4, 5).ok());
  EXPECT_FALSE(BuildRingPlacement(3, 4).ok());
}

TEST(PlacementTest, SingleReplicaIsLocalOnly) {
  const auto plan = BuildMixedPlacement(6, 1);
  ASSERT_TRUE(plan.ok());
  for (int machine = 0; machine < 6; ++machine) {
    EXPECT_EQ(plan->replica_sets[static_cast<size_t>(machine)],
              std::vector<int>{machine});
    EXPECT_TRUE(plan->RemoteDestinations(machine).empty());
  }
}

TEST(PlacementTest, RemoteDestinationsExcludeSelf) {
  const auto plan = BuildMixedPlacement(6, 3);
  ASSERT_TRUE(plan.ok());
  for (int machine = 0; machine < 6; ++machine) {
    const auto destinations = plan->RemoteDestinations(machine);
    EXPECT_EQ(destinations.size(), 2u);
    for (const int destination : destinations) {
      EXPECT_NE(destination, machine);
    }
  }
}

TEST(PlacementTest, AliveRemoteHoldersFiltersDead) {
  const auto plan = BuildGroupPlacement(4, 2);
  ASSERT_TRUE(plan.ok());
  std::vector<bool> alive = {true, false, true, true};
  EXPECT_TRUE(plan->AliveRemoteHolders(0, alive).empty());  // Holder 1 is dead.
  EXPECT_EQ(plan->AliveRemoteHolders(2, alive), (std::vector<int>{3}));
}

TEST(PlacementTest, RecoverablePaperExample) {
  // Paper Section 4: N=4, m=2. Group placement survives {0,2} failing but
  // not {0,1}; ring placement loses any two consecutive machines.
  const auto group = BuildGroupPlacement(4, 2);
  const auto ring = BuildRingPlacement(4, 2);
  ASSERT_TRUE(group.ok());
  ASSERT_TRUE(ring.ok());
  EXPECT_TRUE(group->Recoverable({true, false, true, false}));
  EXPECT_FALSE(group->Recoverable({true, true, false, false}));
  EXPECT_FALSE(ring->Recoverable({true, true, false, false}));
  EXPECT_FALSE(ring->Recoverable({false, true, true, false}));
  EXPECT_TRUE(ring->Recoverable({true, false, true, false}));
}

// Structural invariants across a parameter sweep: every machine keeps a
// local replica, has exactly m holders, and group sections are disjoint.
class PlacementSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlacementSweepTest, InvariantsHold) {
  const auto [num_machines, num_replicas] = GetParam();
  if (num_replicas > num_machines) {
    GTEST_SKIP();
  }
  const auto plan = BuildMixedPlacement(num_machines, num_replicas);
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::vector<int> holder_load(static_cast<size_t>(num_machines), 0);
  for (int machine = 0; machine < num_machines; ++machine) {
    const auto& holders = plan->replica_sets[static_cast<size_t>(machine)];
    ASSERT_EQ(static_cast<int>(holders.size()), num_replicas)
        << "machine " << machine << " has wrong replica count";
    EXPECT_EQ(holders.front(), machine) << "local replica must come first";
    std::set<int> unique(holders.begin(), holders.end());
    EXPECT_EQ(unique.size(), holders.size()) << "duplicate holders";
    for (const int holder : holders) {
      ASSERT_GE(holder, 0);
      ASSERT_LT(holder, num_machines);
      ++holder_load[static_cast<size_t>(holder)];
    }
  }
  // Theorem 1's communication-balance argument: every machine stores exactly
  // m checkpoints (its own plus m-1 peers'), so sends and receives balance.
  for (int machine = 0; machine < num_machines; ++machine) {
    EXPECT_EQ(holder_load[static_cast<size_t>(machine)], num_replicas)
        << "machine " << machine << " stores an unbalanced number of replicas";
  }
  // No failure set of size < m can ever defeat the plan.
  if (num_replicas >= 2) {
    for (int victim = 0; victim < num_machines; ++victim) {
      std::vector<bool> failed(static_cast<size_t>(num_machines), false);
      failed[static_cast<size_t>(victim)] = true;
      EXPECT_TRUE(plan->Recoverable(failed)) << "single failure defeated the plan";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementSweepTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 25, 32, 100),
                       ::testing::Values(1, 2, 3, 4)));

// ---------------------------------------------------------------------------
// Probability analysis
// ---------------------------------------------------------------------------

TEST(ProbabilityTest, BinomialCoefficients) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(16, 2), 120.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 7), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(52, 5), 2598960.0);
}

TEST(ProbabilityTest, ForEachCombinationCountsAndOrders) {
  std::vector<std::vector<int>> combos;
  const int64_t count = ForEachCombination(4, 2, [&](const std::vector<int>& combo) {
    combos.push_back(combo);
    return true;
  });
  EXPECT_EQ(count, 6);
  EXPECT_EQ(combos.front(), (std::vector<int>{0, 1}));
  EXPECT_EQ(combos.back(), (std::vector<int>{2, 3}));
}

TEST(ProbabilityTest, ForEachCombinationEarlyStop) {
  int visited = 0;
  const int64_t result = ForEachCombination(5, 2, [&](const std::vector<int>&) {
    return ++visited < 3;
  });
  EXPECT_EQ(result, -1);
  EXPECT_EQ(visited, 3);
}

TEST(ProbabilityTest, Corollary1PaperValues) {
  // Section 7.2: N=16, m=2, k=2 -> 93.3%; k=3 -> 80.0%.
  EXPECT_NEAR(Corollary1LowerBound(16, 2, 2), 0.9333, 0.0001);
  EXPECT_NEAR(Corollary1LowerBound(16, 2, 3), 0.8000, 0.0001);
  // Fewer failures than replicas always recover.
  EXPECT_DOUBLE_EQ(Corollary1LowerBound(16, 2, 1), 1.0);
  EXPECT_DOUBLE_EQ(Corollary1LowerBound(16, 4, 3), 1.0);
}

TEST(ProbabilityTest, Corollary1IncreasesWithClusterSize) {
  double previous = 0.0;
  for (const int n : {8, 16, 32, 64, 128}) {
    const double p = Corollary1LowerBound(n, 2, 2);
    EXPECT_GT(p, previous);
    previous = p;
  }
  EXPECT_GT(previous, 0.99);  // Large clusters almost always recover.
}

TEST(ProbabilityTest, ExactMatchesCorollary1ForGroupPlacementSmallK) {
  // Corollary 1 is exact (not just a bound) when m <= k < 2m.
  for (const int n : {8, 12, 16}) {
    const auto plan = BuildGroupPlacement(n, 2);
    ASSERT_TRUE(plan.ok());
    for (const int k : {2, 3}) {
      const auto exact = ExactRecoveryProbability(*plan, k);
      ASSERT_TRUE(exact.ok());
      EXPECT_NEAR(*exact, Corollary1LowerBound(n, 2, k), 1e-9)
          << "N=" << n << " k=" << k;
    }
  }
}

TEST(ProbabilityTest, Corollary1IsLowerBoundForLargeK) {
  // For k >= 2m the closed form over-counts bad sets, so it lower-bounds the
  // exact probability.
  const auto plan = BuildGroupPlacement(12, 2);
  ASSERT_TRUE(plan.ok());
  for (const int k : {4, 5, 6}) {
    const auto exact = ExactRecoveryProbability(*plan, k);
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(*exact + 1e-9, Corollary1LowerBound(12, 2, k)) << "k=" << k;
  }
}

TEST(ProbabilityTest, GroupBeatsRingPaperExample) {
  // Section 4: with N=4, m=2, k=2, group placement's failure probability is
  // 50% lower than ring's (2 fatal pairs vs 4 of the 6 possible).
  const auto group = BuildGroupPlacement(4, 2);
  const auto ring = BuildRingPlacement(4, 2);
  const double group_p = *ExactRecoveryProbability(*group, 2);
  const double ring_p = *ExactRecoveryProbability(*ring, 2);
  EXPECT_NEAR(group_p, 4.0 / 6.0, 1e-9);
  EXPECT_NEAR(ring_p, 2.0 / 6.0, 1e-9);
  EXPECT_NEAR((1.0 - ring_p) / (1.0 - group_p), 2.0, 1e-9);
}

TEST(ProbabilityTest, RingProbabilityFigure9Gap) {
  // Figure 9 calls out Ring being 25.0% lower than GEMINI at N=16, m=2,
  // k=3: that figure comes from the analytic ring estimate (0.6 vs 0.8).
  const double group_p = Corollary1LowerBound(16, 2, 3);
  const double ring_p = RingAnalyticLowerBound(16, 2, 3);
  EXPECT_NEAR(group_p, 0.80, 1e-9);
  EXPECT_NEAR(ring_p, 0.60, 1e-9);
  EXPECT_NEAR(1.0 - ring_p / group_p, 0.25, 1e-9);
  // The analytic estimate is a true lower bound on the exact ring
  // probability, which in turn stays below the group strategy's.
  const auto ring = BuildRingPlacement(16, 2);
  const double ring_exact = *ExactRecoveryProbability(*ring, 3);
  EXPECT_GE(ring_exact, ring_p - 1e-9);
  EXPECT_LT(ring_exact, group_p);
}

// Theorem 1 property sweep: group placement is optimal (meets the upper
// bound), ring never beats group, and the mixed strategy is within the
// (2m-3)/C(N,m) gap of the bound.
class TheoremSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TheoremSweepTest, GroupOptimalAndMixedNearOptimal) {
  const auto [num_machines, num_replicas] = GetParam();
  if (num_replicas > num_machines) {
    GTEST_SKIP();
  }
  const int k = num_replicas;  // The k = m case Theorem 1 analyzes.
  const auto mixed = BuildMixedPlacement(num_machines, num_replicas);
  ASSERT_TRUE(mixed.ok());
  const auto mixed_p = ExactRecoveryProbability(*mixed, k);
  ASSERT_TRUE(mixed_p.ok());

  const auto ring = BuildRingPlacement(num_machines, num_replicas);
  ASSERT_TRUE(ring.ok());
  const auto ring_p = ExactRecoveryProbability(*ring, k);
  ASSERT_TRUE(ring_p.ok());

  // The proof's upper bound: at most 1 - ceil(N/m)/C(N,m) of failure sets
  // can be fatal... phrased as probability: P <= 1 - ceil(N/m)/C(N,m).
  const double upper_bound =
      1.0 - std::ceil(static_cast<double>(num_machines) / num_replicas) /
                BinomialCoefficient(num_machines, num_replicas);
  EXPECT_LE(*mixed_p, upper_bound + 1e-9);
  EXPECT_LE(*ring_p, *mixed_p + 1e-9) << "ring beat mixed";

  if (num_machines % num_replicas == 0) {
    // Optimality: group placement achieves the bound exactly.
    EXPECT_NEAR(*mixed_p, upper_bound, 1e-9);
  } else if (num_replicas >= 2) {
    // Near-optimality: within the Theorem 1 gap.
    const double gap = MixedStrategyGapBound(num_machines, num_replicas);
    EXPECT_GE(*mixed_p + gap + 1e-9, upper_bound)
        << "mixed strategy fell outside the Theorem 1 gap";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremSweepTest,
    ::testing::Combine(::testing::Values(4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 16),
                       ::testing::Values(2, 3, 4)));

TEST(ProbabilityTest, ExactRefusesHugeEnumerations) {
  const auto plan = BuildGroupPlacement(100, 2);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(ExactRecoveryProbability(*plan, 50, /*max_combinations=*/1000).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ProbabilityTest, MonteCarloAgreesWithExact) {
  const auto plan = BuildGroupPlacement(16, 2);
  ASSERT_TRUE(plan.ok());
  Rng rng(99);
  const double exact = *ExactRecoveryProbability(*plan, 3);
  const double sampled = MonteCarloRecoveryProbability(*plan, 3, 20000, rng);
  EXPECT_NEAR(sampled, exact, 0.01);
}

TEST(ProbabilityTest, EdgeCases) {
  const auto plan = BuildGroupPlacement(4, 2);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(*ExactRecoveryProbability(*plan, 0), 1.0);  // Nothing failed.
  EXPECT_DOUBLE_EQ(*ExactRecoveryProbability(*plan, 4), 0.0);  // Everything failed.
  EXPECT_DOUBLE_EQ(Corollary1LowerBound(4, 2, 0), 1.0);
}

}  // namespace
}  // namespace gemini
