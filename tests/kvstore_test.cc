// Tests for the replicated key-value store: Raft-style election and
// replication, leases/TTL, watches, failover, and catch-up after reset.
#include <gtest/gtest.h>

#include "src/cluster/fabric.h"
#include "src/kvstore/kv_store.h"
#include "src/sim/simulator.h"

namespace gemini {
namespace {

class KvStoreTest : public ::testing::Test {
 protected:
  explicit KvStoreTest(int nodes = 3) : alive_(16, true) {
    FabricConfig config;
    fabric_ = std::make_unique<Fabric>(sim_, 16, config);
    fabric_->set_liveness_check(
        [this](int rank) { return alive_[static_cast<size_t>(rank)]; });
    std::vector<int> ranks;
    for (int i = 0; i < nodes; ++i) {
      ranks.push_back(i);
    }
    kv_ = std::make_unique<KvStoreCluster>(
        sim_, *fabric_, ranks, [this](int rank) { return alive_[static_cast<size_t>(rank)]; },
        KvStoreConfig{}, /*seed=*/1234);
    kv_->Start();
  }

  // Runs until a leader exists (or fails the test).
  void AwaitLeader() {
    for (int i = 0; i < 100 && !kv_->LeaderRank().has_value(); ++i) {
      sim_.RunUntil(sim_.now() + Millis(100));
    }
    ASSERT_TRUE(kv_->LeaderRank().has_value()) << "no leader elected";
  }

  void Settle(TimeNs duration = Seconds(1)) { sim_.RunUntil(sim_.now() + duration); }

  Simulator sim_;
  std::vector<bool> alive_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<KvStoreCluster> kv_;
};

TEST_F(KvStoreTest, ElectsExactlyOneLeader) {
  AwaitLeader();
  int leaders = 0;
  for (int i = 0; i < kv_->num_nodes(); ++i) {
    if (kv_->node(i).role() == KvNode::Role::kLeader) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);
}

TEST_F(KvStoreTest, PutThenGet) {
  AwaitLeader();
  Status put_result = InternalError("pending");
  kv_->Put("/k", "v", kNoLease, [&](Status status) { put_result = status; });
  Settle();
  EXPECT_TRUE(put_result.ok()) << put_result;
  const StatusOr<KvEntry> entry = kv_->Get("/k");
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry->value, "v");
  EXPECT_EQ(entry->lease, kNoLease);
}

TEST_F(KvStoreTest, GetMissingKeyIsNotFound) {
  AwaitLeader();
  EXPECT_EQ(kv_->Get("/nope").status().code(), StatusCode::kNotFound);
}

TEST_F(KvStoreTest, PutBeforeLeaderElectedFailsUnavailable) {
  // No settling: immediately propose.
  Status result = Status::Ok();
  kv_->Put("/k", "v", kNoLease, [&](Status status) { result = status; });
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
}

TEST_F(KvStoreTest, OverwriteUpdatesValueAndModIndex) {
  AwaitLeader();
  kv_->Put("/k", "v1", kNoLease, [](Status) {});
  Settle();
  const uint64_t first_index = kv_->Get("/k")->mod_index;
  kv_->Put("/k", "v2", kNoLease, [](Status) {});
  Settle();
  const StatusOr<KvEntry> entry = kv_->Get("/k");
  EXPECT_EQ(entry->value, "v2");
  EXPECT_GT(entry->mod_index, first_index);
}

TEST_F(KvStoreTest, DeleteRemovesKey) {
  AwaitLeader();
  kv_->Put("/k", "v", kNoLease, [](Status) {});
  Settle();
  kv_->Delete("/k", [](Status) {});
  Settle();
  EXPECT_EQ(kv_->Get("/k").status().code(), StatusCode::kNotFound);
}

TEST_F(KvStoreTest, ListReturnsPrefixMatchesOnly) {
  AwaitLeader();
  kv_->Put("/health/0", "ok", kNoLease, [](Status) {});
  kv_->Put("/health/1", "ok", kNoLease, [](Status) {});
  kv_->Put("/other", "x", kNoLease, [](Status) {});
  Settle();
  const auto entries = kv_->List("/health/");
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries.contains("/health/0"));
  EXPECT_TRUE(entries.contains("/health/1"));
}

TEST_F(KvStoreTest, CommittedStateReplicatesToFollowers) {
  AwaitLeader();
  kv_->Put("/k", "v", kNoLease, [](Status) {});
  Settle(Seconds(2));
  for (int i = 0; i < kv_->num_nodes(); ++i) {
    const auto entry = kv_->node(i).GetApplied("/k");
    ASSERT_TRUE(entry.has_value()) << "node " << i << " missing the committed key";
    EXPECT_EQ(entry->value, "v");
  }
}

TEST_F(KvStoreTest, PutIfAbsentFirstWriterWins) {
  AwaitLeader();
  kv_->PutIfAbsent("/root", "worker-3", kNoLease, [](Status) {});
  kv_->PutIfAbsent("/root", "worker-7", kNoLease, [](Status) {});
  Settle();
  EXPECT_EQ(kv_->Get("/root")->value, "worker-3");
}

TEST_F(KvStoreTest, PutIfAbsentAfterDeleteSucceeds) {
  AwaitLeader();
  kv_->PutIfAbsent("/root", "a", kNoLease, [](Status) {});
  Settle();
  kv_->Delete("/root", [](Status) {});
  Settle();
  kv_->PutIfAbsent("/root", "b", kNoLease, [](Status) {});
  Settle();
  EXPECT_EQ(kv_->Get("/root")->value, "b");
}

TEST_F(KvStoreTest, LeaseGrantReturnsId) {
  AwaitLeader();
  StatusOr<LeaseId> granted = InternalError("pending");
  kv_->LeaseGrant(Seconds(5), [&](StatusOr<LeaseId> lease) { granted = std::move(lease); });
  Settle();
  ASSERT_TRUE(granted.ok()) << granted.status();
  EXPECT_GT(*granted, 0u);
}

TEST_F(KvStoreTest, LeaseExpiryDeletesAttachedKeys) {
  AwaitLeader();
  StatusOr<LeaseId> granted = InternalError("pending");
  kv_->LeaseGrant(Seconds(2), [&](StatusOr<LeaseId> lease) { granted = std::move(lease); });
  Settle();
  ASSERT_TRUE(granted.ok());
  kv_->Put("/health/9", "ok", *granted, [](Status) {});
  Settle();
  EXPECT_TRUE(kv_->Get("/health/9").ok());
  // Let the lease expire (no keepalive).
  Settle(Seconds(4));
  EXPECT_EQ(kv_->Get("/health/9").status().code(), StatusCode::kNotFound);
}

TEST_F(KvStoreTest, KeepAliveExtendsLease) {
  AwaitLeader();
  StatusOr<LeaseId> granted = InternalError("pending");
  kv_->LeaseGrant(Seconds(2), [&](StatusOr<LeaseId> lease) { granted = std::move(lease); });
  Settle();
  kv_->Put("/health/9", "ok", *granted, [](Status) {});
  Settle();
  // Keep alive every second for 6 seconds; key must survive.
  for (int i = 0; i < 6; ++i) {
    kv_->LeaseKeepAlive(*granted, [](Status) {});
    Settle(Seconds(1));
  }
  EXPECT_TRUE(kv_->Get("/health/9").ok());
}

TEST_F(KvStoreTest, LeaseRevokeDeletesKeysImmediately) {
  AwaitLeader();
  StatusOr<LeaseId> granted = InternalError("pending");
  kv_->LeaseGrant(Hours(1), [&](StatusOr<LeaseId> lease) { granted = std::move(lease); });
  Settle();
  kv_->Put("/a", "1", *granted, [](Status) {});
  kv_->Put("/b", "2", *granted, [](Status) {});
  Settle();
  kv_->LeaseRevoke(*granted, [](Status) {});
  Settle();
  EXPECT_EQ(kv_->Get("/a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(kv_->Get("/b").status().code(), StatusCode::kNotFound);
}

TEST_F(KvStoreTest, PutBatchCommitsAllEntriesInOneLogEntry) {
  AwaitLeader();
  int leader_node = -1;
  for (int i = 0; i < kv_->num_nodes(); ++i) {
    if (kv_->node(i).role() == KvNode::Role::kLeader) {
      leader_node = i;
    }
  }
  ASSERT_GE(leader_node, 0);
  std::vector<WatchEvent> events;
  kv_->Watch("/ckpt/", [&](const WatchEvent& event) { events.push_back(event); });
  const uint64_t committed_before = kv_->node(leader_node).commit_index();
  Status result = InternalError("pending");
  kv_->PutBatch({{"/ckpt/rank/0", "7"}, {"/ckpt/rank/1", "7"}, {"/ckpt/block", "7"}},
                kNoLease, [&](Status status) { result = status; });
  Settle();
  ASSERT_TRUE(result.ok()) << result;
  // The whole batch rode ONE log entry — a single consensus round.
  EXPECT_EQ(kv_->node(leader_node).commit_index(), committed_before + 1);
  // Every entry is visible, stamped with the same mod revision.
  const StatusOr<KvEntry> first = kv_->Get("/ckpt/rank/0");
  const StatusOr<KvEntry> last = kv_->Get("/ckpt/block");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(first->value, "7");
  EXPECT_EQ(last->value, "7");
  EXPECT_EQ(first->mod_index, last->mod_index);
  // Each put still produced its own watch event, in batch order.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].key, "/ckpt/rank/0");
  EXPECT_EQ(events[1].key, "/ckpt/rank/1");
  EXPECT_EQ(events[2].key, "/ckpt/block");
}

TEST_F(KvStoreTest, PutBatchAppliesDuplicateKeysInOrder) {
  AwaitLeader();
  Status result = InternalError("pending");
  kv_->PutBatch({{"/k", "first"}, {"/k", "second"}}, kNoLease,
                [&](Status status) { result = status; });
  Settle();
  ASSERT_TRUE(result.ok());
  const StatusOr<KvEntry> entry = kv_->Get("/k");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->value, "second") << "later batch entries must win collisions";
}

TEST_F(KvStoreTest, EmptyPutBatchSucceedsWithoutProposing) {
  // Vacuous commit: needs no leader and appends nothing to any log.
  Status result = InternalError("pending");
  kv_->PutBatch({}, kNoLease, [&](Status status) { result = status; });
  EXPECT_TRUE(result.ok());
}

TEST_F(KvStoreTest, PutBatchReplicatesToFollowers) {
  AwaitLeader();
  kv_->PutBatch({{"/a", "1"}, {"/b", "2"}}, kNoLease, [](Status) {});
  Settle();
  for (int i = 0; i < kv_->num_nodes(); ++i) {
    const auto& state = kv_->node(i).applied_state();
    ASSERT_TRUE(state.contains("/a")) << "node " << i;
    ASSERT_TRUE(state.contains("/b")) << "node " << i;
    EXPECT_EQ(state.at("/a").value, "1");
    EXPECT_EQ(state.at("/b").value, "2");
  }
}

TEST_F(KvStoreTest, WatchSeesPutAndDelete) {
  AwaitLeader();
  std::vector<WatchEvent> events;
  kv_->Watch("/health/", [&](const WatchEvent& event) { events.push_back(event); });
  kv_->Put("/health/3", "ok", kNoLease, [](Status) {});
  kv_->Put("/unrelated", "x", kNoLease, [](Status) {});
  Settle();
  kv_->Delete("/health/3", [](Status) {});
  Settle();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, WatchEventType::kPut);
  EXPECT_EQ(events[0].key, "/health/3");
  EXPECT_EQ(events[0].value, "ok");
  EXPECT_EQ(events[1].type, WatchEventType::kDelete);
}

TEST_F(KvStoreTest, WatchSeesLeaseExpiry) {
  AwaitLeader();
  std::vector<WatchEvent> events;
  kv_->Watch("/health/", [&](const WatchEvent& event) { events.push_back(event); });
  StatusOr<LeaseId> granted = InternalError("pending");
  kv_->LeaseGrant(Seconds(1), [&](StatusOr<LeaseId> lease) { granted = std::move(lease); });
  Settle();
  kv_->Put("/health/5", "ok", *granted, [](Status) {});
  Settle(Seconds(3));
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.back().type, WatchEventType::kExpired);
  EXPECT_EQ(events.back().key, "/health/5");
}

TEST_F(KvStoreTest, CancelledWatchStopsDelivering) {
  AwaitLeader();
  int count = 0;
  const uint64_t id = kv_->Watch("/k", [&](const WatchEvent&) { ++count; });
  kv_->Put("/k", "1", kNoLease, [](Status) {});
  Settle();
  kv_->CancelWatch(id);
  kv_->Put("/k", "2", kNoLease, [](Status) {});
  Settle();
  EXPECT_EQ(count, 1);
}

TEST_F(KvStoreTest, LeaderFailoverElectsNewLeaderAndKeepsData) {
  AwaitLeader();
  kv_->Put("/k", "v", kNoLease, [](Status) {});
  Settle();
  const int old_leader = *kv_->LeaderRank();
  alive_[static_cast<size_t>(old_leader)] = false;
  // A new leader emerges among the survivors.
  for (int i = 0; i < 100; ++i) {
    Settle(Millis(200));
    const auto leader = kv_->LeaderRank();
    if (leader.has_value() && *leader != old_leader) {
      break;
    }
  }
  const auto leader = kv_->LeaderRank();
  ASSERT_TRUE(leader.has_value());
  EXPECT_NE(*leader, old_leader);
  // Committed data survived the failover.
  EXPECT_EQ(kv_->Get("/k")->value, "v");
  // And the store still accepts writes.
  Status result = InternalError("pending");
  kv_->Put("/k2", "v2", kNoLease, [&](Status status) { result = status; });
  Settle();
  EXPECT_TRUE(result.ok());
}

TEST_F(KvStoreTest, NoQuorumMeansNoLeader) {
  AwaitLeader();
  alive_[0] = false;
  alive_[1] = false;
  Settle(Seconds(5));
  EXPECT_FALSE(kv_->LeaderRank().has_value());
}

TEST_F(KvStoreTest, ResetNodeCatchesUpFromLeader) {
  AwaitLeader();
  for (int i = 0; i < 5; ++i) {
    kv_->Put("/key/" + std::to_string(i), "v", kNoLease, [](Status) {});
  }
  Settle(Seconds(2));
  // Find a follower, wipe it (machine replacement), let it catch up.
  int follower = -1;
  for (int i = 0; i < kv_->num_nodes(); ++i) {
    if (kv_->node(i).role() != KvNode::Role::kLeader) {
      follower = i;
      break;
    }
  }
  ASSERT_GE(follower, 0);
  kv_->node(follower).ResetAndRestart();
  EXPECT_TRUE(kv_->node(follower).applied_state().empty());
  Settle(Seconds(3));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(kv_->node(follower).GetApplied("/key/" + std::to_string(i)).has_value())
        << "follower missed /key/" << i << " after catch-up";
  }
}

TEST_F(KvStoreTest, ManyWritesAllCommitInOrder) {
  AwaitLeader();
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    kv_->Put("/seq", std::to_string(i), kNoLease, [&](Status status) {
      if (status.ok()) {
        ++completed;
      }
    });
    Settle(Millis(300));
  }
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(kv_->Get("/seq")->value, "49");
}

TEST_F(KvStoreTest, PartitionedLeaderStepsAside) {
  AwaitLeader();
  kv_->Put("/k", "v", kNoLease, [](Status) {});
  Settle();
  const int old_leader = *kv_->LeaderRank();
  // Cut the leader off from both followers (it stays alive).
  fabric_->set_partition_check([old_leader](int src, int dst) {
    return src != old_leader && dst != old_leader;
  });
  // The majority side elects a new leader.
  int new_leader = -1;
  for (int i = 0; i < 200; ++i) {
    Settle(Millis(200));
    const auto leader = kv_->LeaderRank();
    if (leader.has_value() && *leader != old_leader) {
      new_leader = *leader;
      break;
    }
  }
  ASSERT_GE(new_leader, 0) << "majority side failed to elect";
  // Writes commit on the majority side while the partition persists.
  Status write = InternalError("pending");
  kv_->Put("/k2", "v2", kNoLease, [&](Status status) { write = status; });
  Settle(Seconds(2));
  EXPECT_TRUE(write.ok()) << write;
  // Heal the partition: the old leader rejoins as follower and converges.
  fabric_->set_partition_check(nullptr);
  Settle(Seconds(5));
  int leaders = 0;
  for (int i = 0; i < kv_->num_nodes(); ++i) {
    if (kv_->node(i).role() == KvNode::Role::kLeader) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1) << "healed cluster must converge to one leader";
  EXPECT_EQ(kv_->Get("/k")->value, "v");
  for (int i = 0; i < kv_->num_nodes(); ++i) {
    EXPECT_TRUE(kv_->node(i).GetApplied("/k").has_value())
        << "node " << i << " diverged after heal";
  }
}

TEST_F(KvStoreTest, MinoritySideCannotCommit) {
  AwaitLeader();
  const int leader = *kv_->LeaderRank();
  // Isolate the leader alone; immediately propose through it.
  fabric_->set_partition_check([leader](int src, int dst) {
    return src != leader && dst != leader;
  });
  Status result = Status::Ok();
  bool called = false;
  KvOp op;
  op.type = KvOpType::kPut;
  op.key = "/stranded";
  op.value = "x";
  kv_->node(leader).Propose(std::move(op), [&](Status status) {
    called = true;
    result = status;
  });
  // The majority side elects a new leader and commits an entry at a higher
  // term — Raft's condition for the stranded entry to be overwritten rather
  // than (legally) committed later.
  for (int i = 0; i < 200; ++i) {
    Settle(Millis(200));
    const auto current = kv_->LeaderRank();
    if (current.has_value() && *current != leader) {
      break;
    }
  }
  ASSERT_TRUE(kv_->LeaderRank().has_value());
  kv_->Put("/majority", "y", kNoLease, [](Status) {});
  Settle(Seconds(2));
  // Heal: the deposed leader learns of the higher term; its log suffix is
  // truncated and its pending proposal answered pessimistically.
  fabric_->set_partition_check(nullptr);
  Settle(Seconds(5));
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(kv_->Get("/stranded").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(kv_->Get("/majority")->value, "y");
}

class SingleNodeKvTest : public KvStoreTest {
 protected:
  SingleNodeKvTest() : KvStoreTest(1) {}
};

TEST_F(SingleNodeKvTest, SingleNodeClusterCommitsAlone) {
  AwaitLeader();
  Status result = InternalError("pending");
  kv_->Put("/k", "v", kNoLease, [&](Status status) { result = status; });
  Settle();
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(kv_->Get("/k")->value, "v");
}

class FiveNodeKvTest : public KvStoreTest {
 protected:
  FiveNodeKvTest() : KvStoreTest(5) {}
};

TEST_F(FiveNodeKvTest, SurvivesTwoNodeFailures) {
  AwaitLeader();
  kv_->Put("/k", "v", kNoLease, [](Status) {});
  Settle();
  alive_[static_cast<size_t>(*kv_->LeaderRank())] = false;
  Settle(Seconds(3));
  ASSERT_TRUE(kv_->LeaderRank().has_value());
  alive_[static_cast<size_t>(*kv_->LeaderRank())] = false;
  Settle(Seconds(3));
  ASSERT_TRUE(kv_->LeaderRank().has_value());
  EXPECT_EQ(kv_->Get("/k")->value, "v");
}

}  // namespace
}  // namespace gemini
