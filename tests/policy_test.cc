// Protection-policy engine tests: PolicyConfig validation, the four concrete
// policies' decisions and recovery chains driven end-to-end through
// GeminiSystem, and the ChameleonSelector's deterministic online switching.
// The strongest assertions compare post-recovery trainer state bit-exactly
// against an uninterrupted reference run — the same bar the pre-refactor
// recovery paths were held to.
#include <gtest/gtest.h>

#include "src/gemini/gemini_system.h"
#include "src/policy/chameleon_selector.h"
#include "src/policy/cost_model.h"
#include "src/policy/protection_policy.h"

namespace gemini {
namespace {

GeminiConfig SmallConfig() {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 32;
  config.seed = 2024;
  config.cloud.num_standby = 2;
  return config;
}

// Reference trainer state after `iterations` uninterrupted steps.
std::vector<std::vector<float>> ReferenceShards(const GeminiConfig& config, int64_t iterations) {
  ShardedTrainer reference(config.model, config.num_machines, config.payload_elements,
                           config.seed);
  for (int64_t i = 0; i < iterations; ++i) {
    reference.Step();
  }
  std::vector<std::vector<float>> shards;
  for (int rank = 0; rank < config.num_machines; ++rank) {
    shards.push_back(reference.shard(rank));
  }
  return shards;
}

void ExpectStateMatchesReference(GeminiSystem& system, const GeminiConfig& config,
                                 int64_t iterations) {
  const auto reference = ReferenceShards(config, iterations);
  for (int rank = 0; rank < config.num_machines; ++rank) {
    EXPECT_EQ(system.trainer().shard(rank), reference[static_cast<size_t>(rank)])
        << "rank " << rank << " state diverged from the uninterrupted reference";
  }
}

// ---------------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------------

TEST(PolicyConfigTest, DefaultsValidate) {
  EXPECT_TRUE(PolicyConfig{}.Validate().ok());
  EXPECT_TRUE(SmallConfig().Validate().ok());
}

TEST(PolicyConfigTest, RejectsBadKnobs) {
  PolicyConfig config;
  config.checkmate.stall_fraction = -0.1;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = PolicyConfig{};
  config.tiercheck.overhead_budget = 0.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = PolicyConfig{};
  config.recompute.recompute_iterations = -1.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  // A selector cannot start as itself.
  config = PolicyConfig{};
  config.chameleon.initial = PolicyKind::kChameleon;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  // The failure-rate band must be a band.
  config = PolicyConfig{};
  config.chameleon.low_failure_rate_per_hour = 2.0;
  config.chameleon.high_failure_rate_per_hour = 1.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyConfigTest, CreateRejectsBadConfigsUniformly) {
  GeminiConfig config = SmallConfig();
  config.num_replicas = 20;
  EXPECT_FALSE(GeminiSystem::Create(config).ok());

  config = SmallConfig();
  config.gamma = 1.5;
  EXPECT_FALSE(GeminiSystem::Create(config).ok());

  config = SmallConfig();
  config.policy.checkmate.replay_cost_fraction = -0.5;
  EXPECT_FALSE(GeminiSystem::Create(config).ok());

  // And a valid config builds a fully initialized system in one call.
  const StatusOr<std::unique_ptr<GeminiSystem>> system = GeminiSystem::Create(SmallConfig());
  ASSERT_TRUE(system.ok()) << system.status();
  EXPECT_EQ((*system)->policy().kind(), PolicyKind::kGemini);
}

TEST(PolicyFactoryTest, BuildsEveryKind) {
  PolicyConfig config;
  const struct {
    PolicyKind kind;
    std::string_view name;
    bool cpu;
  } expected[] = {
      {PolicyKind::kGemini, "gemini", true},
      {PolicyKind::kTierCheck, "tiercheck", true},
      {PolicyKind::kCheckmate, "checkmate", false},
      {PolicyKind::kRecompute, "recompute", false},
      {PolicyKind::kChameleon, "chameleon", true},  // Delegates to initial=gemini.
  };
  for (const auto& want : expected) {
    config.kind = want.kind;
    const std::unique_ptr<ProtectionPolicy> policy = MakeProtectionPolicy(config);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), want.kind);
    EXPECT_EQ(policy->name(), want.name);
    EXPECT_EQ(policy->uses_cpu_checkpoints(), want.cpu);
  }
}

// ---------------------------------------------------------------------------
// GeminiPolicy: the extracted default must behave exactly as before
// ---------------------------------------------------------------------------

TEST(GeminiPolicyTest, SoftwareRecoveryRestoresBitExactState) {
  GeminiConfig config = SmallConfig();
  config.policy.kind = PolicyKind::kGemini;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kSoftware, {5});
  const StatusOr<TrainingReport> report = system.TrainUntil(60);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kLocalCpuMemory);
  ExpectStateMatchesReference(system, config, 60);
}

TEST(GeminiPolicyTest, HardwareRecoveryRestoresBitExactState) {
  GeminiConfig config = SmallConfig();
  config.policy.kind = PolicyKind::kGemini;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {6});
  const StatusOr<TrainingReport> report = system.TrainUntil(60);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kRemoteCpuMemory);
  ExpectStateMatchesReference(system, config, 60);
}

TEST(GeminiPolicyTest, PlanMatchesScheduledIteration) {
  GeminiSystem system(SmallConfig());
  ASSERT_TRUE(system.Initialize().ok());
  // The extracted policy must reproduce the host's scheduled conditions
  // decision for decision: stage at block start, commit on the block's last
  // iteration at the Algorithm-2 transmission instant.
  const IterationPlan plan = system.policy().PlanIteration(system, /*iteration=*/0,
                                                           /*has_staged_block=*/false);
  EXPECT_TRUE(plan.stage_snapshot);
  EXPECT_EQ(plan.iteration_duration, system.iteration_execution().iteration_time);
  EXPECT_EQ(plan.added_stall, 0);
  const PolicyCostReport cost = system.policy().CostReport(system);
  EXPECT_DOUBLE_EQ(cost.steady_state_overhead_fraction,
                   system.iteration_execution().overhead_fraction);
}

// ---------------------------------------------------------------------------
// TierCheckPolicy: tight, budget-capped persistent cadence
// ---------------------------------------------------------------------------

TEST(TierCheckPolicyTest, RunsPersistentCheckpointsAtTightCadence) {
  GeminiConfig config = SmallConfig();
  config.policy.kind = PolicyKind::kTierCheck;
  config.policy.tiercheck.persistent_interval = Minutes(2);
  // A loose budget so the 100B shard's ~minutes-scale serialization stall
  // still permits a minutes-scale cadence (the default 3.5% budget would
  // stretch it past an hour for this model).
  config.policy.tiercheck.overhead_budget = 0.5;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  const StatusOr<TrainingReport> report = system.TrainUntil(80, Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();
  // GEMINI's default 3 h cadence would commit zero persistent checkpoints in
  // this window; the tiered policy commits every few minutes.
  EXPECT_GE(report->persistent_checkpoints_committed, 2);
  // The cadence never violates the serialization-stall budget (CheckFreq's
  // budgeted-frequency rule, shared through the cost model).
  const TimeNs stall =
      SerializationStall(system.replica_bytes(), config.serialization_bandwidth);
  const TimeNs interval = system.policy().PersistentInterval(system);
  EXPECT_GE(interval, Minutes(2));
  EXPECT_LE(static_cast<double>(stall) / static_cast<double>(interval),
            config.policy.tiercheck.overhead_budget + 1e-9);
}

// ---------------------------------------------------------------------------
// CheckmatePolicy: gradient logging + zero-rollback replay recovery
// ---------------------------------------------------------------------------

TEST(CheckmatePolicyTest, ReplayRecoveryLosesNoProgress) {
  GeminiConfig config = SmallConfig();
  config.policy.kind = PolicyKind::kCheckmate;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kSoftware, {3});
  const StatusOr<TrainingReport> report = system.TrainUntil(60);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->recoveries.size(), 1u);
  const RecoveryRecord& recovery = report->recoveries[0];
  EXPECT_EQ(recovery.source, RecoverySource::kGradientReplay);
  // The replayed gradient stream reproduces the pre-failure state bit-exactly:
  // zero iterations of progress are lost.
  EXPECT_EQ(recovery.rollback_iteration, recovery.iteration_at_failure);
  ExpectStateMatchesReference(system, config, 60);
  // No CPU checkpoint traffic at all; the gradient log was counted instead.
  EXPECT_EQ(system.Snapshot().cpu_checkpoints_committed, 0);
  EXPECT_EQ(system.Snapshot().recoveries_from_replay, 1);
  EXPECT_GT(system.metrics().counter_value("policy.checkmate.logged_iterations"), 0);
}

// ---------------------------------------------------------------------------
// RecomputePolicy: checkpoint-free, fixed-cost in-place rebuild
// ---------------------------------------------------------------------------

TEST(RecomputePolicyTest, HardwareRecoveryRecomputesWithoutCheckpoints) {
  GeminiConfig config = SmallConfig();
  config.policy.kind = PolicyKind::kRecompute;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {6});
  const StatusOr<TrainingReport> report = system.TrainUntil(60);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kPeerRecompute);
  EXPECT_EQ(report->recoveries[0].rollback_iteration,
            report->recoveries[0].iteration_at_failure);
  ExpectStateMatchesReference(system, config, 60);
  const SystemSnapshot snapshot = system.Snapshot();
  EXPECT_EQ(snapshot.cpu_checkpoints_committed, 0);
  // The persistent tier is disabled too (only the iteration-0 seed exists).
  EXPECT_EQ(snapshot.persistent_checkpoints_committed, 0);
  EXPECT_EQ(snapshot.recoveries_from_recompute, 1);
}

// ---------------------------------------------------------------------------
// ChameleonSelector: deterministic online switching
// ---------------------------------------------------------------------------

GeminiConfig ChameleonStormConfig() {
  GeminiConfig config = SmallConfig();
  config.policy.kind = PolicyKind::kChameleon;
  config.policy.chameleon.initial = PolicyKind::kGemini;
  return config;
}

// Runs the quiet-then-storm scenario and returns the recorded switches:
// a quiet first stretch (rate 0 -> shed overhead, switch to Checkmate),
// then a burst of software failures inside the rate window (rate high ->
// buy back GEMINI's fast recovery).
std::vector<PolicySwitchEvent> RunStorm(const GeminiConfig& config) {
  GeminiSystem system(config);
  EXPECT_TRUE(system.Initialize().ok());
  for (const int minute : {20, 22, 24}) {
    system.failure_injector().InjectAt(Minutes(minute), FailureType::kSoftware, {4});
  }
  const StatusOr<TrainingReport> report = system.TrainUntil(200, Hours(3));
  EXPECT_TRUE(report.ok());
  const auto* selector = dynamic_cast<const ChameleonSelector*>(&system.policy());
  if (selector == nullptr) {
    ADD_FAILURE() << "kChameleon config did not build a ChameleonSelector";
    return {};
  }
  // The selector's bookkeeping and the exported metrics must agree.
  EXPECT_EQ(system.metrics().counter_value("policy.switches"),
            static_cast<int64_t>(selector->switches().size()));
  return selector->switches();
}

TEST(ChameleonSelectorTest, SwitchesOnFailureRateShift) {
  const std::vector<PolicySwitchEvent> switches = RunStorm(ChameleonStormConfig());
  ASSERT_GE(switches.size(), 2u);
  // Quiet cluster first: shed checkpoint overhead.
  EXPECT_EQ(switches[0].to, PolicyKind::kCheckmate);
  EXPECT_EQ(switches[0].reason, "failure_rate_low");
  // The storm pushes the observed rate over the high-water mark: buy the
  // fastest recovery back.
  EXPECT_EQ(switches[1].from, PolicyKind::kCheckmate);
  EXPECT_EQ(switches[1].to, PolicyKind::kGemini);
  EXPECT_EQ(switches[1].reason, "failure_rate_high");
  // Hysteresis: successive switches respect the minimum iteration gap.
  const ChameleonOptions defaults;
  for (size_t i = 1; i < switches.size(); ++i) {
    EXPECT_GE(switches[i].iteration - switches[i - 1].iteration,
              defaults.min_iterations_between_switches);
  }
}

TEST(ChameleonSelectorTest, SwitchHistoryIsDeterministic) {
  const std::vector<PolicySwitchEvent> first = RunStorm(ChameleonStormConfig());
  const std::vector<PolicySwitchEvent> second = RunStorm(ChameleonStormConfig());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].iteration, second[i].iteration);
    EXPECT_EQ(first[i].at, second[i].at);
    EXPECT_EQ(first[i].from, second[i].from);
    EXPECT_EQ(first[i].to, second[i].to);
    EXPECT_EQ(first[i].reason, second[i].reason);
  }
}

TEST(ChameleonSelectorTest, RecoversCorrectlyAcrossASwitch) {
  // Failures land while the selector is on Checkmate (post-quiet switch);
  // recovery must still restore bit-exact state, and training must finish.
  GeminiConfig config = ChameleonStormConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(20), FailureType::kSoftware, {4});
  const StatusOr<TrainingReport> report = system.TrainUntil(120, Hours(3));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->iterations_completed, 120);
  ExpectStateMatchesReference(system, config, 120);
}

}  // namespace
}  // namespace gemini
