// Tests for the analytic checkpointing-system models (Strawman, HighFreq,
// GEMINI), cross-checked against the paper's reported numbers.
#include <gtest/gtest.h>

#include "src/baselines/related_work.h"
#include "src/baselines/system_model.h"
#include "src/training/model_config.h"

namespace gemini {
namespace {

// GPT-2 100B on 16x p4d.24xlarge: the paper's primary evaluation setting.
CheckpointWorkload PaperWorkload() {
  CheckpointWorkload workload;
  workload.iteration_time = Seconds(62);
  workload.checkpoint_bytes_per_machine = Gpt2_100B().CheckpointBytesPerMachine(16);
  workload.num_machines = 16;
  workload.num_replicas = 2;
  return workload;
}

TEST(SystemModelTest, StrawmanUsesThreeHourInterval) {
  const SystemModel model = BuildStrawman(PaperWorkload());
  EXPECT_EQ(model.checkpoint_interval, Hours(3));
  // One persistent checkpoint: ~80 s serialization + 480 s upload at
  // 20 Gb/s for the 1.2 TB of model states.
  EXPECT_NEAR(ToSeconds(model.checkpoint_time), 555.0, 15.0);
}

TEST(SystemModelTest, StrawmanWastedTimeDominatedByHalfInterval) {
  const SystemModel model = BuildStrawman(PaperWorkload());
  // Eq (1): t_ckpt + 1.5h + t_rtvl; roughly 1.77 h.
  const double minutes = ToSeconds(model.AverageWastedTime()) / 60.0;
  EXPECT_NEAR(minutes, 106.0, 6.0);
}

TEST(SystemModelTest, HighFreqIntervalIsAboutNineIterations) {
  // Section 7.3: HighFreq checkpoints every ~9 iterations (we land on 9-10
  // depending on whether serialization overlaps the upload).
  const SystemModel model = BuildHighFreq(PaperWorkload());
  const int64_t iterations = model.checkpoint_interval / Seconds(62);
  EXPECT_GE(iterations, 8);
  EXPECT_LE(iterations, 10);
}

TEST(SystemModelTest, HighFreqSerializationTaxMatchesPaper) {
  // Section 7.3: "Even without any failures, 14.5% time is spent on
  // checkpoint serialization" — ~81 s per checkpoint every ~9 iterations.
  const SystemModel model = BuildHighFreq(PaperWorkload());
  EXPECT_NEAR(ToSeconds(model.training_block_per_checkpoint), 81.0, 3.0);
  const double tax = 1.0 - model.EffectiveTrainingRatio(/*failures_per_day=*/0.0);
  EXPECT_NEAR(tax, 0.14, 0.02);
}

TEST(SystemModelTest, GeminiSoftwareFailureWastes1Point5Iterations) {
  // Section 7.2: with no machine replaced, the average wasted time is
  // 1.5x the iteration time.
  const SystemModel model = BuildGemini(PaperWorkload(), /*replaced_machines=*/0);
  EXPECT_EQ(model.AverageWastedTime(), Seconds(62) + Seconds(31));
  EXPECT_EQ(model.training_block_per_checkpoint, 0);
}

TEST(SystemModelTest, GeminiRetrievalFromPeerUnderThreeSeconds) {
  // Section 7.2: "the retrieval time is less than three seconds".
  const SystemModel model = BuildGemini(PaperWorkload(), /*replaced_machines=*/1);
  EXPECT_LT(ToSeconds(model.retrieval_time), 3.0);
  EXPECT_GT(model.retrieval_time, 0);
}

TEST(SystemModelTest, GeminiBeatsHighFreqByOver13x) {
  // The headline claim: >13x faster failure recovery.
  const CheckpointWorkload workload = PaperWorkload();
  const SystemModel gemini = BuildGemini(workload, /*replaced_machines=*/1);
  const SystemModel highfreq = BuildHighFreq(workload);
  const double speedup = static_cast<double>(highfreq.AverageWastedTime()) /
                         static_cast<double>(gemini.AverageWastedTime());
  EXPECT_GT(speedup, 13.0);
}

TEST(SystemModelTest, GeminiRecoveryOverheadsMatchFigure14) {
  const CheckpointWorkload workload = PaperWorkload();
  // Software failure: ~15 s detection + ~162 s serialization + warm-up
  // (>4 min) => ~7 minutes total.
  const SystemModel software = BuildGemini(workload, 0);
  EXPECT_NEAR(ToSeconds(software.overheads.checkpoint_serialization), 162.0, 8.0);
  EXPECT_NEAR(ToSeconds(software.overheads.total()) / 60.0, 7.0, 1.0);
  // Hardware failure adds the ASG replacement: ~12 minutes total.
  const SystemModel hardware = BuildGemini(workload, 1);
  EXPECT_NEAR(ToSeconds(hardware.overheads.total()) / 60.0, 12.5, 1.5);
  // Standby machines mostly remove the replacement wait.
  const SystemModel standby = BuildGemini(workload, 1, 0, /*standby_machines=*/true);
  EXPECT_LT(standby.overheads.total(), hardware.overheads.total() - Minutes(4));
}

TEST(SystemModelTest, GeminiFallbackDegradesToStrawman) {
  const CheckpointWorkload workload = PaperWorkload();
  const SystemModel fallback = BuildGeminiPersistentFallback(workload);
  const SystemModel strawman = BuildStrawman(workload);
  EXPECT_EQ(fallback.AverageWastedTime(), strawman.AverageWastedTime());
}

TEST(SystemModelTest, CheckpointFrequencyRatiosMatchFigure12) {
  // Figure 12: GEMINI checkpoints every iteration — 8x more often than
  // HighFreq and >170x more often than Strawman.
  const CheckpointWorkload workload = PaperWorkload();
  const SystemModel gemini = BuildGemini(workload, 0);
  const SystemModel highfreq = BuildHighFreq(workload);
  const SystemModel strawman = BuildStrawman(workload);
  const double vs_highfreq = gemini.checkpoints_per_hour() / highfreq.checkpoints_per_hour();
  const double vs_strawman = gemini.checkpoints_per_hour() / strawman.checkpoints_per_hour();
  EXPECT_NEAR(vs_highfreq, 8.0, 2.0);
  EXPECT_GT(vs_strawman, 170.0);
}

TEST(SystemModelTest, EffectiveRatioDecreasesWithFailures) {
  const CheckpointWorkload workload = PaperWorkload();
  for (const SystemModel& model :
       {BuildGemini(workload, 0), BuildHighFreq(workload), BuildStrawman(workload)}) {
    double previous = 1.1;
    for (const double failures : {0.0, 2.0, 4.0, 8.0}) {
      const double ratio = model.EffectiveTrainingRatio(failures);
      EXPECT_LT(ratio, previous) << model.name;
      EXPECT_GE(ratio, 0.0);
      previous = ratio;
    }
  }
}

TEST(SystemModelTest, Figure15aShapes) {
  // At 8 failures/day GEMINI stays close to the no-failure baseline while
  // Strawman collapses and HighFreq sits in between.
  const CheckpointWorkload workload = PaperWorkload();
  const double gemini = BuildGemini(workload, 0).EffectiveTrainingRatio(8);
  const double highfreq = BuildHighFreq(workload).EffectiveTrainingRatio(8);
  const double strawman = BuildStrawman(workload).EffectiveTrainingRatio(8);
  EXPECT_GT(gemini, 0.92);
  EXPECT_LT(strawman, 0.55);
  EXPECT_GT(gemini, highfreq);
  EXPECT_GT(highfreq, strawman);
}

TEST(SystemModelTest, Figure15bThousandInstances) {
  // Section 7.3: with 1000 instances and OPT's 1.5%/day failure rate (15
  // failures/day), GEMINI's effective ratio stays around 91%, ~54% above
  // HighFreq's. The paper scales only the failure frequency, keeping the
  // 16-instance per-failure costs ("Based on the incurred overhead by one
  // failure, we can simulate...").
  const CheckpointWorkload workload = PaperWorkload();
  const double gemini = BuildGemini(workload, 0).EffectiveTrainingRatio(15);
  const double highfreq = BuildHighFreq(workload).EffectiveTrainingRatio(15);
  EXPECT_NEAR(gemini, 0.91, 0.03);
  EXPECT_NEAR(gemini / highfreq, 1.54, 0.20);
}

TEST(SystemModelTest, CheckpointTimeReductionGrowsWithClusterAndBandwidth) {
  // Figure 11: reduction vs N and NIC bandwidth; >250x at 16 machines and
  // 400 Gb/s, ~65x at 100 Gb/s.
  const Bytes total = Gpt2_100B().CheckpointBytesTotal();
  for (const auto& [gbps, expected_min] : std::vector<std::pair<double, double>>{
           {400.0, 200.0}, {200.0, 110.0}, {100.0, 55.0}}) {
    CheckpointWorkload workload = PaperWorkload();
    workload.nic_bandwidth = GbpsToBytesPerSecond(gbps);
    workload.checkpoint_bytes_per_machine = total / 16;
    const SystemModel gemini = BuildGemini(workload, 0);
    const SystemModel strawman = BuildStrawman(workload);
    const double reduction = static_cast<double>(strawman.checkpoint_time) /
                             static_cast<double>(gemini.checkpoint_time -
                                                 std::max<TimeNs>(0, gemini.checkpoint_time -
                                                                         workload.iteration_time));
    // checkpoint_time is clamped to >= iteration time for wasted-time math;
    // compare against the raw transmission estimate instead.
    const TimeNs raw = TransferTime(workload.checkpoint_bytes_per_machine,
                                    workload.nic_bandwidth) +
                       TransferTime(workload.checkpoint_bytes_per_machine,
                                    workload.nic_bandwidth) / 8;
    const double raw_reduction =
        static_cast<double>(strawman.checkpoint_time) / static_cast<double>(raw);
    EXPECT_GT(raw_reduction, expected_min) << gbps << " Gb/s";
    (void)reduction;
  }
}

TEST(SystemModelTest, MoreMachinesShrinkGeminiCheckpointTime) {
  // Figure 11's other axis: GEMINI's checkpoint time falls as machines are
  // added (aggregate NIC bandwidth grows) while the baselines stay flat.
  const Bytes total = Gpt2_100B().CheckpointBytesTotal();
  TimeNs previous = Hours(100);
  for (const int machines : {4, 8, 16}) {
    CheckpointWorkload workload = PaperWorkload();
    workload.num_machines = machines;
    workload.checkpoint_bytes_per_machine = total / machines;
    const TimeNs raw =
        TransferTime(workload.checkpoint_bytes_per_machine, workload.nic_bandwidth);
    EXPECT_LT(raw, previous);
    previous = raw;
    const SystemModel strawman = BuildStrawman(workload);
    // The upload term (480 s through the fixed 20 Gb/s store) never changes;
    // only the per-machine serialization share shrinks with more machines.
    EXPECT_GE(ToSeconds(strawman.checkpoint_time), 480.0) << machines;
    EXPECT_LE(ToSeconds(strawman.checkpoint_time), 900.0) << machines;
  }
}


// ---------------------------------------------------------------------------
// Related-work models (paper Section 8)
// ---------------------------------------------------------------------------

TEST(RelatedWorkTest, DeepFreezeRemovesTheStallButNotTheBottleneck) {
  const CheckpointWorkload workload = PaperWorkload();
  const SystemModel deepfreeze = BuildDeepFreeze(workload);
  const SystemModel highfreq = BuildHighFreq(workload);
  // Asynchronous serialization: an order of magnitude less stall per ckpt.
  EXPECT_LT(deepfreeze.training_block_per_checkpoint,
            highfreq.training_block_per_checkpoint / 10);
  // But the store-bound frequency and retrieval are unchanged.
  EXPECT_EQ(deepfreeze.checkpoint_interval, highfreq.checkpoint_interval);
  EXPECT_EQ(deepfreeze.retrieval_time, highfreq.retrieval_time);
}

TEST(RelatedWorkTest, CheckFreqRespectsOverheadBudget) {
  const CheckpointWorkload workload = PaperWorkload();
  CheckFreqOptions options;
  options.overhead_budget = 0.035;
  const SystemModel model = BuildCheckFreq(workload, options);
  const double overhead = static_cast<double>(model.training_block_per_checkpoint) /
                          static_cast<double>(model.checkpoint_interval);
  EXPECT_LE(overhead, options.overhead_budget + 0.001);
  // Its frequency still cannot beat the store's drain rate.
  EXPECT_GE(model.checkpoint_interval, model.checkpoint_time - workload.iteration_time);
}

TEST(RelatedWorkTest, CheckNRunTradesAccuracyRiskForFrequency) {
  const CheckpointWorkload workload = PaperWorkload();
  const SystemModel compressed = BuildCheckNRun(workload);
  const SystemModel highfreq = BuildHighFreq(workload);
  // 4x fewer persisted bytes => roughly 3-4x shorter interval and retrieval.
  EXPECT_LT(compressed.checkpoint_interval, highfreq.checkpoint_interval / 2);
  EXPECT_LT(compressed.retrieval_time, highfreq.retrieval_time / 2);
}

TEST(RelatedWorkTest, NoneApproachesGeminiWastedTime) {
  const CheckpointWorkload workload = PaperWorkload();
  const SystemModel gemini = BuildGemini(workload, 1);
  for (const SystemModel& model :
       {BuildDeepFreeze(workload), BuildCheckFreq(workload), BuildCheckNRun(workload)}) {
    EXPECT_GT(static_cast<double>(model.AverageWastedTime()) /
                  static_cast<double>(gemini.AverageWastedTime()),
              3.0)
        << model.name;
  }
}

}  // namespace
}  // namespace gemini
