// Incremental checkpoint suite (ctest label "delta"): the delta format's
// build/apply round-trips and CRC-keyed content dedupe, the epoch-sealed
// redo log (sealing, compaction, corruption), the CPU and persistent
// stores' chain paths, delta streaming through the replicator, PayloadRef
// slice / Crc32Combine edge cases, config validation of the incremental
// knobs, and the acceptance property: delta-chain recovery is bit-exact
// against full-snapshot recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/crc32.h"
#include "src/gemini/gemini_system.h"
#include "src/gemini/replicator.h"
#include "src/obs/metrics.h"
#include "src/storage/cpu_store.h"
#include "src/storage/delta.h"
#include "src/storage/persistent_store.h"
#include "src/training/trainer.h"

namespace gemini {
namespace {

// Deterministic full checkpoint: element i of (owner, iteration) is unique,
// so any misapplied chunk changes bytes the CRCs must notice.
Checkpoint MakeCheckpoint(int owner, int64_t iteration, size_t elements,
                          Bytes logical = MiB(64)) {
  Checkpoint checkpoint;
  checkpoint.owner_rank = owner;
  checkpoint.iteration = iteration;
  checkpoint.logical_bytes = logical;
  std::vector<float> values(elements);
  for (size_t i = 0; i < elements; ++i) {
    values[i] = static_cast<float>(owner) + static_cast<float>(i) * 0.5f +
                static_cast<float>(iteration) * 0.01f;
  }
  checkpoint.payload = std::move(values);
  checkpoint.StampPayloadCrc();
  return checkpoint;
}

// The checkpoint one iteration later with exactly `chunks` changed (every
// element of each listed chunk bumped), all other chunks byte-identical.
Checkpoint MutateChunks(const Checkpoint& base, int64_t iteration, size_t chunk_elements,
                        const std::vector<size_t>& chunks) {
  std::vector<float> values = base.payload.ToVector();
  for (const size_t chunk : chunks) {
    const size_t begin = chunk * chunk_elements;
    const size_t end = std::min(begin + chunk_elements, values.size());
    for (size_t i = begin; i < end; ++i) {
      values[i] += 1.0f;
    }
  }
  Checkpoint next = base;
  next.iteration = iteration;
  next.payload = std::move(values);
  next.StampPayloadCrc();
  return next;
}

// ---- Delta build/apply ----------------------------------------------------

TEST(DeltaBuildTest, SelectsOnlyContentChangedChunks) {
  const Checkpoint base = MakeCheckpoint(0, 3, 64);
  const Checkpoint next = MutateChunks(base, 4, /*chunk_elements=*/8, {1, 5});
  const auto delta = BuildDeltaCheckpoint(base, next, 8);
  ASSERT_TRUE(delta.ok()) << delta.status();
  ASSERT_EQ(delta->chunks.size(), 2u);
  EXPECT_EQ(delta->chunks[0].chunk_index, 1u);
  EXPECT_EQ(delta->chunks[1].chunk_index, 5u);
  EXPECT_EQ(delta->delta_elements(), 16u);
  // Modeled bytes prorate by the moved-element fraction: 16 of 64 elements.
  EXPECT_EQ(delta->delta_bytes, base.logical_bytes / 4);
  const auto applied = ApplyDeltaCheckpoint(base, *delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, next);
  EXPECT_EQ(applied->payload_crc, next.payload_crc);
}

TEST(DeltaBuildTest, DirtyHintIsPrunedByContentDedupe) {
  const Checkpoint base = MakeCheckpoint(0, 3, 64);
  const Checkpoint next = MutateChunks(base, 4, /*chunk_elements=*/8, {5});
  // The trainer's conservative bits flag 1, 2, and 5 dirty; 1 and 2 turn out
  // to be no-op writes and must be deduplicated away by the CRC+byte compare.
  std::vector<uint8_t> hint(8, 0);
  hint[1] = hint[2] = hint[5] = 1;
  const auto delta = BuildDeltaCheckpoint(base, next, 8, &hint);
  ASSERT_TRUE(delta.ok()) << delta.status();
  ASSERT_EQ(delta->chunks.size(), 1u);
  EXPECT_EQ(delta->chunks[0].chunk_index, 5u);
  const auto applied = ApplyDeltaCheckpoint(base, *delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, next);
}

TEST(DeltaBuildTest, IdenticalStatesProduceEmptyDelta) {
  const Checkpoint base = MakeCheckpoint(2, 7, 32);
  Checkpoint next = base;
  next.iteration = 8;  // Same bytes, newer epoch: nothing to ship.
  const auto delta = BuildDeltaCheckpoint(base, next, 4);
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_TRUE(delta->chunks.empty());
  EXPECT_EQ(delta->delta_bytes, 0);
  const auto applied = ApplyDeltaCheckpoint(base, *delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(applied->iteration, 8);
  EXPECT_EQ(applied->payload, base.payload);
}

TEST(DeltaBuildTest, RejectsMalformedInputs) {
  const Checkpoint base = MakeCheckpoint(0, 3, 64);
  const Checkpoint next = MutateChunks(base, 4, 8, {1});
  EXPECT_FALSE(BuildDeltaCheckpoint(base, next, 0).ok()) << "chunk_elements 0";
  EXPECT_FALSE(BuildDeltaCheckpoint(next, base, 8).ok()) << "backward in iterations";
  Checkpoint other_owner = next;
  other_owner.owner_rank = 1;
  EXPECT_FALSE(BuildDeltaCheckpoint(base, other_owner, 8).ok()) << "owner mismatch";
  const Checkpoint smaller = MakeCheckpoint(0, 4, 32);
  EXPECT_FALSE(BuildDeltaCheckpoint(base, smaller, 8).ok()) << "payload size mismatch";
  std::vector<uint8_t> bad_hint(3, 1);  // 64 elements / 8 = 8 chunks, not 3.
  EXPECT_FALSE(BuildDeltaCheckpoint(base, next, 8, &bad_hint).ok()) << "hint size mismatch";
}

TEST(DeltaApplyTest, RejectsCorruptChunkAndWrongBase) {
  const Checkpoint base = MakeCheckpoint(0, 3, 64);
  const Checkpoint next = MutateChunks(base, 4, 8, {2});
  auto delta = BuildDeltaCheckpoint(base, next, 8);
  ASSERT_TRUE(delta.ok()) << delta.status();

  // Applying on a base from the wrong epoch is a seal violation.
  const Checkpoint wrong_epoch = MakeCheckpoint(0, 2, 64);
  EXPECT_EQ(ApplyDeltaCheckpoint(wrong_epoch, *delta).status().code(),
            StatusCode::kFailedPrecondition);
  // Right epoch, wrong bytes: the base CRC binding must catch it.
  Checkpoint forged = MutateChunks(base, 4, 8, {0});
  forged.iteration = base.iteration;
  forged.StampPayloadCrc();
  EXPECT_EQ(ApplyDeltaCheckpoint(forged, *delta).status().code(), StatusCode::kDataLoss);

  // Bit-rot inside the delta's payload must fail the per-chunk CRC gate
  // (copy-on-write: the flip never reaches the builder's snapshot).
  ASSERT_FALSE(delta->chunks.empty());
  auto* bytes = reinterpret_cast<uint8_t*>(delta->chunks[0].data.MutableData());
  bytes[1] ^= 0x10;
  EXPECT_EQ(ApplyDeltaCheckpoint(base, *delta).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(next.ComputePayloadCrc(), next.payload_crc) << "corruption leaked into the source";
}

TEST(DeltaApplyTest, TailChunkShorterThanChunkElementsRoundTrips) {
  // 10 elements at chunk size 4: chunks {4, 4, 2} — the tail chunk's slice
  // must carry exactly the 2 remaining elements.
  const Checkpoint base = MakeCheckpoint(1, 0, 10);
  const Checkpoint next = MutateChunks(base, 1, 4, {2});
  const auto delta = BuildDeltaCheckpoint(base, next, 4);
  ASSERT_TRUE(delta.ok()) << delta.status();
  ASSERT_EQ(delta->chunks.size(), 1u);
  EXPECT_EQ(delta->chunks[0].chunk_index, 2u);
  EXPECT_EQ(delta->chunks[0].data.size(), 2u);
  const auto applied = ApplyDeltaCheckpoint(base, *delta);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(*applied, next);
}

// ---- Redo log -------------------------------------------------------------

TEST(RedoLogTest, AppendEnforcesEpochSealing) {
  const Checkpoint c0 = MakeCheckpoint(0, 0, 64);
  const Checkpoint c1 = MutateChunks(c0, 1, 8, {1});
  const Checkpoint c2 = MutateChunks(c1, 2, 8, {3});
  const Checkpoint c3 = MutateChunks(c2, 3, 8, {5});
  const auto d01 = BuildDeltaCheckpoint(c0, c1, 8);
  const auto d12 = BuildDeltaCheckpoint(c1, c2, 8);
  const auto d23 = BuildDeltaCheckpoint(c2, c3, 8);
  ASSERT_TRUE(d01.ok() && d12.ok() && d23.ok());

  RedoLog log;
  EXPECT_EQ(log.Append(*d01).code(), StatusCode::kFailedPrecondition) << "no sealed base yet";
  log.Reset(c0);
  EXPECT_TRUE(log.Append(*d01).ok());
  // Replaying the same epoch or skipping one violates the seal.
  EXPECT_EQ(log.Append(*d01).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(log.Append(*d23).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(log.Append(*d12).ok());
  EXPECT_EQ(log.latest_iteration(), 2);
  EXPECT_EQ(log.chain_length(), 2u);
  const auto materialized = log.Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status();
  EXPECT_EQ(*materialized, c2);
}

TEST(RedoLogTest, CompactFoldsChainIntoNewSealedBase) {
  const Checkpoint c0 = MakeCheckpoint(0, 0, 64);
  const Checkpoint c1 = MutateChunks(c0, 1, 8, {1});
  const Checkpoint c2 = MutateChunks(c1, 2, 8, {3, 4});
  RedoLog log(RedoLogConfig{/*max_chain_length=*/2, /*max_chain_bytes=*/0});
  log.Reset(c0);
  ASSERT_TRUE(log.Append(*BuildDeltaCheckpoint(c0, c1, 8)).ok());
  EXPECT_FALSE(log.NeedsCompaction());
  ASSERT_TRUE(log.Append(*BuildDeltaCheckpoint(c1, c2, 8)).ok());
  EXPECT_TRUE(log.NeedsCompaction());
  ASSERT_TRUE(log.Compact().ok());
  EXPECT_EQ(log.chain_length(), 0u);
  EXPECT_EQ(log.base_iteration(), 2);
  EXPECT_EQ(log.base(), c2);
  // The folded base accepts the next epoch directly.
  const Checkpoint c3 = MutateChunks(c2, 3, 8, {0});
  EXPECT_TRUE(log.Append(*BuildDeltaCheckpoint(c2, c3, 8)).ok());
}

TEST(RedoLogTest, CorruptLinkFailsMaterializeAndLeavesChainForDiagnosis) {
  const Checkpoint c0 = MakeCheckpoint(0, 0, 64);
  const Checkpoint c1 = MutateChunks(c0, 1, 8, {1});
  const Checkpoint c2 = MutateChunks(c1, 2, 8, {3});
  RedoLog log;
  log.Reset(c0);
  ASSERT_TRUE(log.Append(*BuildDeltaCheckpoint(c0, c1, 8)).ok());
  ASSERT_TRUE(log.Append(*BuildDeltaCheckpoint(c1, c2, 8)).ok());
  ASSERT_TRUE(log.CorruptDelta(/*chain_index=*/0, /*bit_index=*/5).ok());
  EXPECT_EQ(log.Materialize().status().code(), StatusCode::kDataLoss);
  // A failed fold must not destroy the chain (the read path surfaces it).
  EXPECT_FALSE(log.Compact().ok());
  EXPECT_EQ(log.chain_length(), 2u);
  EXPECT_EQ(log.base(), c0);
  EXPECT_EQ(log.CorruptDelta(/*chain_index=*/9, 0).code(), StatusCode::kNotFound);
}

// ---- CPU store chains -----------------------------------------------------

class CpuStoreDeltaTest : public ::testing::Test {
 protected:
  CpuStoreDeltaTest() : cluster_(sim_, 1, P4d24xlarge(), FabricConfig{}), store_(cluster_.machine(0)) {
    store_.set_metrics(&metrics_);
  }

  Simulator sim_;
  Cluster cluster_;
  MetricsRegistry metrics_;
  CpuCheckpointStore store_;
};

TEST_F(CpuStoreDeltaTest, FullCommitSealsBaseAndDeltasMaterializeTransparently) {
  store_.ConfigureRedoLog(RedoLogConfig{});
  ASSERT_TRUE(store_.HostOwner(0, MiB(64)).ok());
  const Checkpoint c1 = MakeCheckpoint(0, 1, 64);
  const Checkpoint c2 = MutateChunks(c1, 2, 8, {2, 6});
  ASSERT_TRUE(store_.WriteComplete(c1).ok());
  EXPECT_EQ(store_.ChainHeadIteration(0), 1);
  ASSERT_TRUE(store_.WriteDelta(*BuildDeltaCheckpoint(c1, c2, 8)).ok());
  EXPECT_EQ(store_.ChainHeadIteration(0), 2);
  EXPECT_EQ(store_.ChainLength(0), 1u);
  EXPECT_EQ(store_.LatestIteration(0), 2);
  const auto served = store_.LatestVerified(0);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(*served, c2);
  // A stale delta (same epoch again) is rejected; callers fall back to full.
  EXPECT_FALSE(store_.WriteDelta(*BuildDeltaCheckpoint(c1, c2, 8)).ok());
  EXPECT_EQ(metrics_.counter_value("cpu_store.delta_commits"), 1);
  EXPECT_GT(metrics_.counter_value("delta.bytes_saved"), 0);
}

TEST_F(CpuStoreDeltaTest, ChainCompactsAtConfiguredCap) {
  store_.ConfigureRedoLog(RedoLogConfig{/*max_chain_length=*/2, /*max_chain_bytes=*/0});
  ASSERT_TRUE(store_.HostOwner(0, MiB(64)).ok());
  Checkpoint state = MakeCheckpoint(0, 1, 64);
  ASSERT_TRUE(store_.WriteComplete(state).ok());
  for (int64_t iteration = 2; iteration <= 5; ++iteration) {
    const Checkpoint next =
        MutateChunks(state, iteration, 8, {static_cast<size_t>(iteration % 8)});
    ASSERT_TRUE(store_.WriteDelta(*BuildDeltaCheckpoint(state, next, 8)).ok());
    state = next;
  }
  // 4 deltas at cap 2: two folds, and the chain never exceeds the cap.
  EXPECT_EQ(metrics_.counter_value("compaction.folds"), 2);
  EXPECT_EQ(store_.ChainLength(0), 0u);
  EXPECT_EQ(store_.ChainHeadIteration(0), 5);
  const auto served = store_.LatestVerified(0);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(*served, state);
}

TEST_F(CpuStoreDeltaTest, CorruptChainLinkIsCaughtByMaterializationCrc) {
  store_.ConfigureRedoLog(RedoLogConfig{});
  ASSERT_TRUE(store_.HostOwner(0, MiB(64)).ok());
  const Checkpoint c1 = MakeCheckpoint(0, 1, 64);
  const Checkpoint c2 = MutateChunks(c1, 2, 8, {2});
  ASSERT_TRUE(store_.WriteComplete(c1).ok());
  ASSERT_TRUE(store_.WriteDelta(*BuildDeltaCheckpoint(c1, c2, 8)).ok());
  ASSERT_TRUE(store_.CorruptChainDelta(0, /*chain_index=*/0, /*bit_index=*/3).ok());
  // The whole replica is treated lost — serving the intact prefix would hand
  // recovery a mixed-iteration state.
  EXPECT_FALSE(store_.LatestVerified(0).has_value());
  EXPECT_GE(metrics_.counter_value("cpu_store.crc_failures"), 1);
}

// ---- Persistent store chains ----------------------------------------------

class PersistentDeltaTest : public ::testing::Test {
 protected:
  PersistentDeltaTest() : store_(sim_, PersistentStoreConfig{}) { store_.set_metrics(&metrics_); }

  Simulator sim_;
  MetricsRegistry metrics_;
  PersistentStore store_;
};

TEST_F(PersistentDeltaTest, SaveDeltaMaterializesAtArrivalAndAdvancesDurableEpoch) {
  store_.ConfigureRedoLog(RedoLogConfig{});
  const Checkpoint c0 = MakeCheckpoint(0, 0, 64);
  const Checkpoint c1 = MutateChunks(c0, 1, 8, {4});
  store_.SeedImmediate(c0, /*expected_world_size=*/1);
  EXPECT_EQ(store_.DeltaBaseIteration(0), 0);
  Status result = InternalError("done not called");
  store_.SaveDelta(*BuildDeltaCheckpoint(c0, c1, 8), /*expected_world_size=*/1,
                   [&](Status status) { result = status; });
  sim_.Run();
  ASSERT_TRUE(result.ok()) << result;
  // The retrieval surface is chain-free: the materialized full shard is what
  // became durable.
  EXPECT_EQ(store_.durable_epoch(), 1);
  const auto durable = store_.Peek(0, 1);
  ASSERT_TRUE(durable.has_value());
  EXPECT_EQ(*durable, c1);
  EXPECT_EQ(store_.DeltaBaseIteration(0), 1);
  EXPECT_EQ(store_.ChainLength(0), 1u);
}

TEST_F(PersistentDeltaTest, SealViolationSurfacesThroughDone) {
  store_.ConfigureRedoLog(RedoLogConfig{});
  const Checkpoint c0 = MakeCheckpoint(0, 0, 64);
  const Checkpoint c1 = MutateChunks(c0, 1, 8, {4});
  const Checkpoint c2 = MutateChunks(c1, 2, 8, {5});
  store_.SeedImmediate(c0, 1);
  // A delta based on iteration 1 cannot seal onto the head at iteration 0.
  Status result = Status::Ok();
  store_.SaveDelta(*BuildDeltaCheckpoint(c1, c2, 8), 1, [&](Status status) { result = status; });
  sim_.Run();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(store_.durable_epoch(), 0) << "a rejected delta must not advance the watermark";
}

TEST_F(PersistentDeltaTest, FullSaveResealsTheChainBase) {
  store_.ConfigureRedoLog(RedoLogConfig{});
  const Checkpoint c0 = MakeCheckpoint(0, 0, 64);
  const Checkpoint c1 = MutateChunks(c0, 1, 8, {4});
  const Checkpoint c2 = MutateChunks(c1, 2, 8, {6});
  store_.SeedImmediate(c0, 1);
  Status delta_result = InternalError("pending");
  store_.SaveDelta(*BuildDeltaCheckpoint(c0, c1, 8), 1,
                   [&](Status status) { delta_result = status; });
  Status full_result = InternalError("pending");
  store_.Save(c2, 1, [&](Status status) { full_result = status; });
  sim_.Run();
  ASSERT_TRUE(delta_result.ok()) << delta_result;
  ASSERT_TRUE(full_result.ok()) << full_result;
  EXPECT_EQ(store_.DeltaBaseIteration(0), 2);
  EXPECT_EQ(store_.ChainLength(0), 0u) << "a full save subsumes the chain";
  EXPECT_EQ(store_.durable_epoch(), 2);
}

// ---- Trainer dirty tracking -----------------------------------------------

TEST(TrainerDirtyTest, TakeDirtyChunksReturnsAccumulatedBitsAndClears) {
  ShardedTrainer trainer(Gpt2_10B(), /*num_machines=*/2, /*payload_elements=*/32, /*seed=*/7);
  trainer.SetSparseUpdates(0.25, /*chunk_elements=*/4);
  trainer.EnableDirtyTracking(4);
  ASSERT_EQ(trainer.dirty_chunk_count(), 8u);
  const Checkpoint before = trainer.MakeCheckpoint(0);
  trainer.Step();
  const Checkpoint after = trainer.MakeCheckpoint(0);
  const std::vector<uint8_t> bits = trainer.TakeDirtyChunks(0);
  ASSERT_EQ(bits.size(), 8u);
  // The bits are a conservative superset of the truly changed chunks.
  for (size_t chunk = 0; chunk < bits.size(); ++chunk) {
    const size_t begin = chunk * 4;
    const bool changed =
        !std::equal(before.payload.begin() + begin, before.payload.begin() + begin + 4,
                    after.payload.begin() + begin);
    if (changed) {
      EXPECT_NE(bits[chunk], 0) << "changed chunk " << chunk << " missing its dirty bit";
    }
  }
  // Take-and-clear: with no step in between, nothing is dirty.
  const std::vector<uint8_t> cleared = trainer.TakeDirtyChunks(0);
  EXPECT_TRUE(std::all_of(cleared.begin(), cleared.end(), [](uint8_t b) { return b == 0; }));
  // A restore conservatively marks the whole shard dirty.
  ASSERT_TRUE(trainer.RestoreShard(after).ok());
  const std::vector<uint8_t> after_restore = trainer.TakeDirtyChunks(0);
  EXPECT_TRUE(
      std::all_of(after_restore.begin(), after_restore.end(), [](uint8_t b) { return b != 0; }));
}

// ---- PayloadRef slice / Crc32Combine edge cases ---------------------------

TEST(PayloadSliceEdgeTest, ZeroLengthAndEndSlices) {
  const PayloadRef payload(std::vector<float>{1.f, 2.f, 3.f, 4.f, 5.f});
  const PayloadRef mid_empty = payload.Slice(2, 0);
  EXPECT_TRUE(mid_empty.empty());
  EXPECT_EQ(mid_empty.size_bytes(), 0u);
  EXPECT_TRUE(mid_empty.SharesBufferWith(payload)) << "an empty view still pins the buffer";
  // Slice exactly at the end: offset == size, zero elements — legal, empty.
  const PayloadRef end_empty = payload.Slice(5, 0);
  EXPECT_TRUE(end_empty.empty());
  EXPECT_EQ(end_empty, std::vector<float>{});
  // The final elements through a slice-at-end view.
  const PayloadRef tail = payload.Slice(3, 2);
  EXPECT_EQ(tail, (std::vector<float>{4.f, 5.f}));
  // Slices of slices keep composing offsets; the tail of the tail is {5}.
  EXPECT_EQ(tail.Slice(1, 1), std::vector<float>{5.f});
  EXPECT_EQ(tail.Slice(2, 0).size(), 0u);
  // Zero-length views compare equal regardless of position.
  EXPECT_EQ(mid_empty, end_empty);
  // An empty default ref has no buffer at all.
  const PayloadRef null_ref;
  EXPECT_EQ(null_ref.data(), nullptr);
  EXPECT_FALSE(null_ref.SharesBufferWith(payload));
}

TEST(Crc32CombineEdgeTest, EmptySegmentsAreIdentityElements) {
  const std::vector<uint8_t> data = {0xDE, 0xAD, 0xBE, 0xEF, 0x42, 0x00, 0x17};
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t empty = Crc32(data.data(), 0);
  // CRC of zero bytes never perturbs a combination, on either side.
  EXPECT_EQ(Crc32Combine(whole, empty, 0), whole);
  EXPECT_EQ(Crc32Combine(empty, whole, data.size()), whole);
  EXPECT_EQ(Crc32Combine(empty, empty, 0), empty);
  // Interleaving empty segments into a multi-way split changes nothing.
  const uint32_t a = Crc32(data.data(), 3);
  const uint32_t b = Crc32(data.data() + 3, 4);
  uint32_t combined = Crc32Combine(a, empty, 0);
  combined = Crc32Combine(combined, b, 4);
  combined = Crc32Combine(combined, empty, 0);
  EXPECT_EQ(combined, whole);
}

TEST(Crc32CombineEdgeTest, MultiSegmentCombineMatchesOneShot) {
  std::vector<uint8_t> data(1024);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t whole = Crc32(data.data(), data.size());
  // Uneven segmentation, including a 1-byte and a 0-byte segment.
  const size_t cuts[] = {0, 1, 7, 7, 512, 1024};
  uint32_t combined = Crc32(data.data(), cuts[1]);
  for (size_t i = 1; i + 1 < std::size(cuts); ++i) {
    const size_t length = cuts[i + 1] - cuts[i];
    combined = Crc32Combine(combined, Crc32(data.data() + cuts[i], length), length);
  }
  EXPECT_EQ(combined, whole);
}

// ---- Config validation ----------------------------------------------------

TEST(IncrementalConfigTest, ValidateRejectsDegenerateKnobs) {
  GeminiConfig config;
  config.incremental.enabled = true;
  EXPECT_TRUE(config.Validate().ok()) << "defaults must validate with the mode on";

  // A compaction cap of 0 would let chains grow without bound.
  config.incremental.max_chain_length = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.incremental.max_chain_length = 8;

  config.incremental.chunk_elements = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.incremental.chunk_elements = 16;

  config.incremental.max_chain_bytes = -1;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.incremental.max_chain_bytes = 0;

  // The sparse-update knob shapes the workload even with the mode off.
  config.incremental.enabled = false;
  config.incremental.sparse_update_fraction = 0.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.incremental.sparse_update_fraction = 1.5;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.incremental.sparse_update_fraction = 1.0;

  // With the mode off, the chain knobs are inert and must not reject.
  config.incremental.max_chain_length = 0;
  EXPECT_TRUE(config.Validate().ok());
}

// ---- Replicator delta streaming -------------------------------------------

class ReplicateDeltaTest : public ::testing::Test {
 protected:
  static constexpr int kMachines = 4;

  ReplicateDeltaTest() {
    FabricConfig fabric;
    fabric.link_bandwidth = P4d24xlarge().network_bandwidth;
    cluster_ = std::make_unique<Cluster>(sim_, kMachines, P4d24xlarge(), fabric);
    placement_ = *BuildMixedPlacement(kMachines, 2);
    trainer_ = std::make_unique<ShardedTrainer>(Gpt2_10B(), kMachines, 64, /*seed=*/5);
    trainer_->SetSparseUpdates(0.25, /*chunk_elements=*/8);
    const Bytes replica = Gpt2_10B().CheckpointBytesPerMachine(kMachines);
    for (int rank = 0; rank < kMachines; ++rank) {
      stores_.push_back(std::make_unique<CpuCheckpointStore>(cluster_->machine(rank)));
      stores_.back()->ConfigureRedoLog(RedoLogConfig{});
      stores_.back()->set_metrics(&metrics_);
    }
    for (int owner = 0; owner < kMachines; ++owner) {
      for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
        EXPECT_TRUE(stores_[static_cast<size_t>(holder)]->HostOwner(owner, replica).ok());
      }
    }
    config_.metrics = &metrics_;
  }

  std::vector<CpuCheckpointStore*> StorePointers() {
    std::vector<CpuCheckpointStore*> out;
    for (auto& store : stores_) {
      out.push_back(store.get());
    }
    return out;
  }

  std::vector<Checkpoint> Snapshots() {
    std::vector<Checkpoint> snapshots;
    for (int rank = 0; rank < kMachines; ++rank) {
      snapshots.push_back(trainer_->MakeCheckpoint(rank));
    }
    return snapshots;
  }

  // Chunks for one remote replica: fixed-size slices of the checkpoint.
  std::vector<ChunkAssignment> EvenChunks(int count) {
    const Bytes replica = Gpt2_10B().CheckpointBytesPerMachine(kMachines);
    std::vector<ChunkAssignment> chunks;
    Bytes offset = 0;
    for (int i = 0; i < count; ++i) {
      const Bytes size = i + 1 == count ? replica - offset : replica / count;
      chunks.push_back(ChunkAssignment{i, size, 0, offset});
      offset += size;
    }
    return chunks;
  }

  // Full replication pass to seal every holder's chain base.
  void SealBasesAt(const std::vector<Checkpoint>& snapshots) {
    std::optional<ReplicationOutcome> outcome;
    ReplicateSnapshot(*cluster_, placement_, StorePointers(), snapshots, EvenChunks(16), config_,
                      [&](ReplicationOutcome result) { outcome = result; });
    sim_.Run();
    ASSERT_TRUE(outcome.has_value());
    ASSERT_TRUE(outcome->status.ok()) << outcome->status;
  }

  Simulator sim_;
  MetricsRegistry metrics_;
  std::unique_ptr<Cluster> cluster_;
  PlacementPlan placement_;
  std::unique_ptr<ShardedTrainer> trainer_;
  std::vector<std::unique_ptr<CpuCheckpointStore>> stores_;
  ReplicatorConfig config_;
};

TEST_F(ReplicateDeltaTest, StreamsDeltasAndCommitsBitIdenticalState) {
  trainer_->Step();
  const std::vector<Checkpoint> bases = Snapshots();
  SealBasesAt(bases);
  trainer_->Step();
  const std::vector<Checkpoint> snapshots = Snapshots();
  std::vector<std::optional<DeltaCheckpoint>> deltas;
  for (int owner = 0; owner < kMachines; ++owner) {
    const auto delta = BuildDeltaCheckpoint(bases[static_cast<size_t>(owner)],
                                            snapshots[static_cast<size_t>(owner)], 8);
    ASSERT_TRUE(delta.ok()) << delta.status();
    deltas.emplace_back(*delta);
  }
  const Bytes chunk_bytes = Gpt2_10B().CheckpointBytesPerMachine(kMachines) / 16;
  std::optional<ReplicationOutcome> outcome;
  ReplicateDeltaSnapshot(*cluster_, placement_, StorePointers(), snapshots, deltas, chunk_bytes,
                         config_, [&](ReplicationOutcome result) { outcome = result; });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->status.ok()) << outcome->status;
  for (int owner = 0; owner < kMachines; ++owner) {
    for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
      auto& store = *stores_[static_cast<size_t>(holder)];
      const auto stored = store.LatestVerified(owner);
      ASSERT_TRUE(stored.has_value()) << "holder " << holder << " missing owner " << owner;
      EXPECT_EQ(*stored, snapshots[static_cast<size_t>(owner)])
          << "holder " << holder << " owner " << owner << " bytes diverged";
      EXPECT_EQ(store.ChainLength(owner), 1u)
          << "holder " << holder << " took the full-stream path for owner " << owner;
    }
  }
  EXPECT_GE(metrics_.counter_value("replicator.delta_streams"), 1);
  EXPECT_GT(metrics_.counter_value("delta.bytes_saved"), 0);
}

TEST_F(ReplicateDeltaTest, HolderWithoutSealedBaseFallsBackToFullStream) {
  trainer_->Step();
  const std::vector<Checkpoint> bases = Snapshots();
  SealBasesAt(bases);
  // Holder of owner 0's remote replica loses its base (re-hosted slot).
  const int remote_holder = placement_.replica_sets[0][1];
  const Bytes replica = Gpt2_10B().CheckpointBytesPerMachine(kMachines);
  stores_[static_cast<size_t>(remote_holder)]->DropOwner(0);
  ASSERT_TRUE(stores_[static_cast<size_t>(remote_holder)]->HostOwner(0, replica).ok());
  trainer_->Step();
  const std::vector<Checkpoint> snapshots = Snapshots();
  std::vector<std::optional<DeltaCheckpoint>> deltas(kMachines);
  deltas[0] = *BuildDeltaCheckpoint(bases[0], snapshots[0], 8);
  // Owners 1..3 offer no delta at all: they must take the full path too.
  std::optional<ReplicationOutcome> outcome;
  ReplicateDeltaSnapshot(*cluster_, placement_, StorePointers(), snapshots, deltas, replica / 16,
                         config_, [&](ReplicationOutcome result) { outcome = result; });
  sim_.Run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->status.ok()) << outcome->status;
  for (int owner = 0; owner < kMachines; ++owner) {
    for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
      auto& store = *stores_[static_cast<size_t>(holder)];
      const auto stored = store.LatestVerified(owner);
      ASSERT_TRUE(stored.has_value()) << "holder " << holder << " missing owner " << owner;
      EXPECT_EQ(*stored, snapshots[static_cast<size_t>(owner)]);
    }
  }
  // The re-hosted holder committed a fresh full base; owner 0's other
  // holders extended their chains.
  EXPECT_EQ(stores_[static_cast<size_t>(remote_holder)]->ChainLength(0), 0u);
  EXPECT_EQ(stores_[static_cast<size_t>(remote_holder)]->ChainHeadIteration(0),
            snapshots[0].iteration);
  const int local_holder = placement_.replica_sets[0][0];
  EXPECT_EQ(stores_[static_cast<size_t>(local_holder)]->ChainLength(0), 1u);
}

// ---- End-to-end: delta-chain recovery is bit-exact ------------------------

GeminiConfig EndToEndConfig(bool incremental) {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 32;
  config.seed = 2024;
  config.cloud.num_standby = 4;
  // The sparse workload runs in BOTH modes so the trajectories are the
  // identical MoE-style stream; only the checkpoint encoding differs.
  config.incremental.sparse_update_fraction = 0.25;
  config.incremental.chunk_elements = 4;
  config.incremental.enabled = incremental;
  return config;
}

TEST(DeltaEndToEndTest, IncrementalRecoveryBitExactVsFullSnapshotRecovery) {
  // Acceptance gate: with the same failure injected, a run protected by
  // delta chains must recover to bit-exactly the state a full-snapshot run
  // recovers to (both equal to the uninterrupted reference).
  constexpr int64_t kTarget = 10;
  std::vector<std::vector<float>> shards[2];
  for (const bool incremental : {false, true}) {
    const GeminiConfig config = EndToEndConfig(incremental);
    GeminiSystem system(config);
    ASSERT_TRUE(system.Initialize().ok());
    system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
    const auto report = system.TrainUntil(kTarget, /*sim_deadline=*/Hours(4));
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_EQ(report->iterations_completed, kTarget);
    ASSERT_GE(report->recoveries.size(), 1u);
    for (int rank = 0; rank < config.num_machines; ++rank) {
      shards[incremental ? 1 : 0].push_back(system.trainer().shard(rank));
    }
    if (incremental) {
      const SystemSnapshot snapshot = system.Snapshot();
      EXPECT_GT(snapshot.delta_commits, 0) << "the incremental run never shipped a delta";
      EXPECT_GT(snapshot.delta_bytes_saved, 0);
      EXPECT_LT(system.incremental_delta_fraction(), 1.0);
    } else {
      EXPECT_DOUBLE_EQ(system.incremental_delta_fraction(), 1.0);
    }
  }
  // Uninterrupted reference under the same sparse workload.
  const GeminiConfig config = EndToEndConfig(false);
  ShardedTrainer reference(config.model, config.num_machines, config.payload_elements,
                           config.seed);
  reference.SetSparseUpdates(config.incremental.sparse_update_fraction,
                             static_cast<size_t>(config.incremental.chunk_elements));
  for (int64_t i = 0; i < kTarget; ++i) {
    reference.Step();
  }
  for (int rank = 0; rank < config.num_machines; ++rank) {
    EXPECT_EQ(shards[0][static_cast<size_t>(rank)], reference.shard(rank))
        << "full-snapshot run diverged at rank " << rank;
    EXPECT_EQ(shards[1][static_cast<size_t>(rank)], reference.shard(rank))
        << "delta-chain run diverged at rank " << rank;
  }
}

}  // namespace
}  // namespace gemini
