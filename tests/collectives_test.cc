// Tests for the collective communication library (the NCCL stand-in):
// analytic ring costs and real data-plane correctness.
#include <gtest/gtest.h>

#include <numeric>

#include "src/cluster/cluster.h"
#include "src/collectives/collectives.h"

namespace gemini {
namespace {

// ---------------------------------------------------------------------------
// Analytic cost model
// ---------------------------------------------------------------------------

TEST(RingCostModelTest, AllGatherFormula) {
  RingCostModel model;
  model.link_bandwidth = 1e9;
  model.alpha = Micros(10);
  // 8 ranks, 8 GB total: 7 steps of 1 GB each.
  const TimeNs t = model.AllGatherTime(8'000'000'000, 8);
  EXPECT_EQ(t, 7 * (Micros(10) + Seconds(1)));
}

TEST(RingCostModelTest, SingleRankIsFree) {
  RingCostModel model;
  model.link_bandwidth = 1e9;
  EXPECT_EQ(model.AllGatherTime(1'000'000, 1), 0);
  EXPECT_EQ(model.BroadcastTime(1'000'000, 1), 0);
}

TEST(RingCostModelTest, AllReduceIsTwiceAllGather) {
  RingCostModel model;
  model.link_bandwidth = 1e9;
  model.alpha = Micros(5);
  const Bytes bytes = 4'000'000'000;
  EXPECT_EQ(model.AllReduceTime(bytes, 4), 2 * model.AllGatherTime(bytes, 4));
}

TEST(RingCostModelTest, EfficiencyScalesBandwidthOnly) {
  RingCostModel full{1e9, 0, 1.0};
  RingCostModel half{1e9, 0, 0.5};
  EXPECT_EQ(half.AllGatherTime(8'000'000'000, 8), 2 * full.AllGatherTime(8'000'000'000, 8));
}

TEST(RingCostModelTest, BroadcastChainScalesWithGroupSize) {
  RingCostModel model{1e9, Micros(10), 1.0};
  const TimeNs two = model.BroadcastTime(1'000'000'000, 2);
  const TimeNs four = model.BroadcastTime(1'000'000'000, 4);
  EXPECT_EQ(four, 3 * two);
}

// ---------------------------------------------------------------------------
// Data-plane collectives
// ---------------------------------------------------------------------------

class CommunicatorTest : public ::testing::TestWithParam<int> {
 protected:
  CommunicatorTest() {
    FabricConfig config;
    config.link_bandwidth = 1e12;  // Fast; correctness tests don't need realism.
    config.alpha = Micros(1);
    fabric_ = std::make_unique<Fabric>(sim_, 16, config);
  }

  std::vector<int> Ranks(int n) {
    std::vector<int> ranks(static_cast<size_t>(n));
    std::iota(ranks.begin(), ranks.end(), 0);
    return ranks;
  }

  Simulator sim_;
  std::unique_ptr<Fabric> fabric_;
};

TEST_P(CommunicatorTest, AllGatherConcatenatesShardsInOrder) {
  const int n = GetParam();
  Communicator comm(*fabric_, Ranks(n));
  std::vector<FloatVec> shards;
  FloatVec expected;
  for (int i = 0; i < n; ++i) {
    FloatVec shard = {static_cast<float>(i), static_cast<float>(i) + 0.5f};
    expected.insert(expected.end(), shard.begin(), shard.end());
    shards.push_back(std::move(shard));
  }
  std::optional<FloatVec> result;
  comm.AllGather(shards, [&](StatusOr<FloatVec> out) {
    ASSERT_TRUE(out.ok()) << out.status();
    result = std::move(out).value();
  });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, expected);
}

TEST_P(CommunicatorTest, ReduceScatterSumsChunks) {
  const int n = GetParam();
  Communicator comm(*fabric_, Ranks(n));
  const size_t chunk = 3;
  std::vector<FloatVec> inputs;
  for (int r = 0; r < n; ++r) {
    FloatVec input(static_cast<size_t>(n) * chunk);
    for (size_t i = 0; i < input.size(); ++i) {
      input[i] = static_cast<float>(r + 1) * static_cast<float>(i);
    }
    inputs.push_back(std::move(input));
  }
  // Expected reduced chunk c element e: sum over r of (r+1)*(c*chunk+e).
  const float rank_sum = static_cast<float>(n * (n + 1)) / 2.0f;

  std::optional<std::vector<FloatVec>> result;
  comm.ReduceScatter(inputs, [&](StatusOr<std::vector<FloatVec>> out) {
    ASSERT_TRUE(out.ok()) << out.status();
    result = std::move(out).value();
  });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    const FloatVec& reduced = (*result)[static_cast<size_t>(c)];
    ASSERT_EQ(reduced.size(), chunk);
    for (size_t e = 0; e < chunk; ++e) {
      const float expected =
          rank_sum * static_cast<float>(static_cast<size_t>(c) * chunk + e);
      EXPECT_FLOAT_EQ(reduced[e], expected) << "chunk " << c << " elem " << e;
    }
  }
}

TEST_P(CommunicatorTest, AllReduceMatchesElementwiseSum) {
  const int n = GetParam();
  Communicator comm(*fabric_, Ranks(n));
  const size_t length = static_cast<size_t>(n) * 2;
  std::vector<FloatVec> inputs;
  FloatVec expected(length, 0.0f);
  for (int r = 0; r < n; ++r) {
    FloatVec input(length);
    for (size_t i = 0; i < length; ++i) {
      input[i] = static_cast<float>(r) + static_cast<float>(i) * 0.25f;
      expected[i] += input[i];
    }
    inputs.push_back(std::move(input));
  }
  std::optional<FloatVec> result;
  comm.AllReduce(inputs, [&](StatusOr<FloatVec> out) {
    ASSERT_TRUE(out.ok()) << out.status();
    result = std::move(out).value();
  });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), length);
  for (size_t i = 0; i < length; ++i) {
    EXPECT_FLOAT_EQ((*result)[i], expected[i]);
  }
}

TEST_P(CommunicatorTest, BroadcastDeliversRootData) {
  const int n = GetParam();
  Communicator comm(*fabric_, Ranks(n));
  const FloatVec data = {1.0f, 2.0f, 3.0f};
  std::optional<FloatVec> result;
  comm.Broadcast(/*root_index=*/0, data, [&](StatusOr<FloatVec> out) {
    ASSERT_TRUE(out.ok()) << out.status();
    result = std::move(out).value();
  });
  sim_.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, data);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CommunicatorTest, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(CommunicatorFailureTest, AllGatherFailsWhenMemberDies) {
  Simulator sim;
  FabricConfig config;
  config.link_bandwidth = 4e3;  // Slow link: small real payloads take ~1 s.
  Fabric fabric(sim, 4, config);
  bool dead = false;
  fabric.set_liveness_check([&](int rank) { return rank != 2 || !dead; });

  Communicator comm(fabric, {0, 1, 2, 3});
  std::vector<FloatVec> shards(4, FloatVec(1000, 1.0f));
  Status result = Status::Ok();
  bool called = false;
  comm.AllGather(shards, [&](StatusOr<FloatVec> out) {
    called = true;
    result = out.ok() ? Status::Ok() : out.status();
  });
  sim.ScheduleAt(Millis(100), [&] { dead = true; });
  sim.Run();
  EXPECT_TRUE(called);
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
}


TEST(CommunicatorEdgeTest, BroadcastFromNonZeroRoot) {
  Simulator sim;
  FabricConfig config;
  config.link_bandwidth = 1e9;
  Fabric fabric(sim, 4, config);
  Communicator comm(fabric, {0, 1, 2, 3});
  const FloatVec data = {7.0f, 8.0f};
  std::optional<FloatVec> result;
  comm.Broadcast(/*root_index=*/2, data, [&](StatusOr<FloatVec> out) {
    ASSERT_TRUE(out.ok());
    result = std::move(out).value();
  });
  sim.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, data);
}

TEST(CommunicatorEdgeTest, SequentialOperationsOnOneCommunicator) {
  Simulator sim;
  FabricConfig config;
  config.link_bandwidth = 1e9;
  Fabric fabric(sim, 3, config);
  Communicator comm(fabric, {0, 1, 2});
  std::vector<FloatVec> shards = {{1.0f}, {2.0f}, {3.0f}};
  std::optional<FloatVec> first;
  std::optional<FloatVec> second;
  comm.AllGather(shards, [&](StatusOr<FloatVec> out) {
    ASSERT_TRUE(out.ok());
    first = std::move(out).value();
    // Issue a second collective from inside the first's completion.
    comm.AllGather({{4.0f}, {5.0f}, {6.0f}}, [&](StatusOr<FloatVec> out2) {
      ASSERT_TRUE(out2.ok());
      second = std::move(out2).value();
    });
  });
  sim.Run();
  EXPECT_EQ(first, (FloatVec{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(second, (FloatVec{4.0f, 5.0f, 6.0f}));
}

TEST(CommunicatorEdgeTest, ReduceScatterHandlesNegativesAndZeros) {
  Simulator sim;
  FabricConfig config;
  config.link_bandwidth = 1e9;
  Fabric fabric(sim, 2, config);
  Communicator comm(fabric, {0, 1});
  std::vector<FloatVec> inputs = {{-1.0f, 0.0f}, {1.0f, -2.5f}};
  std::optional<std::vector<FloatVec>> result;
  comm.ReduceScatter(inputs, [&](StatusOr<std::vector<FloatVec>> out) {
    ASSERT_TRUE(out.ok());
    result = std::move(out).value();
  });
  sim.Run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FLOAT_EQ((*result)[0][0], 0.0f);
  EXPECT_FLOAT_EQ((*result)[1][0], -2.5f);
}

TEST(CommunicatorTimingTest, AllGatherTimeMatchesCostModel) {
  Simulator sim;
  FabricConfig config;
  config.link_bandwidth = 4e3;
  config.alpha = Micros(10);
  Fabric fabric(sim, 4, config);
  Communicator comm(fabric, {0, 1, 2, 3});

  // 4 shards of 4 KB at 4 KB/s: 3 ring steps, 1 s + alpha each.
  std::vector<FloatVec> shards(4, FloatVec(1000, 1.0f));
  TimeNs done_at = -1;
  comm.AllGather(shards, [&](StatusOr<FloatVec> out) {
    ASSERT_TRUE(out.ok());
    done_at = sim.now();
  });
  sim.Run();
  RingCostModel model{config.link_bandwidth, config.alpha, 1.0};
  EXPECT_EQ(done_at, model.AllGatherTime(16'000, 4));
}

}  // namespace
}  // namespace gemini
