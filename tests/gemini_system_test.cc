// End-to-end integration tests for GeminiSystem: training with
// per-iteration in-memory checkpoints, failure detection through the
// distributed KV store, and the three recovery paths of Section 6.2. The
// strongest assertions compare post-recovery trainer state bit-exactly
// against an uninterrupted reference run.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/common/stats.h"
#include "src/gemini/gemini_system.h"

namespace gemini {
namespace {

GeminiConfig SmallConfig() {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 32;
  config.seed = 2024;
  config.cloud.num_standby = 2;
  return config;
}

// Reference trainer state after `iterations` uninterrupted steps.
std::vector<std::vector<float>> ReferenceShards(const GeminiConfig& config, int64_t iterations) {
  ShardedTrainer reference(config.model, config.num_machines, config.payload_elements,
                           config.seed);
  for (int64_t i = 0; i < iterations; ++i) {
    reference.Step();
  }
  std::vector<std::vector<float>> shards;
  for (int rank = 0; rank < config.num_machines; ++rank) {
    shards.push_back(reference.shard(rank));
  }
  return shards;
}

void ExpectStateMatchesReference(GeminiSystem& system, const GeminiConfig& config,
                                 int64_t iterations) {
  const auto reference = ReferenceShards(config, iterations);
  for (int rank = 0; rank < config.num_machines; ++rank) {
    EXPECT_EQ(system.trainer().shard(rank), reference[static_cast<size_t>(rank)])
        << "rank " << rank << " state diverged from the uninterrupted reference";
  }
}

TEST(GeminiSystemTest, InitializeBuildsPlacementAndReservations) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());

  const SystemSnapshot snapshot = system.Snapshot();
  EXPECT_EQ(snapshot.placement_strategy, "mixed");
  EXPECT_EQ(snapshot.num_machines, 8);
  EXPECT_EQ(snapshot.num_replicas, 2);
  EXPECT_EQ(snapshot.num_placement_groups, 4);

  // Every machine hosts exactly its replica-set owners, double-buffered.
  const Bytes replica = config.model.CheckpointBytesPerMachine(8);
  for (int rank = 0; rank < 8; ++rank) {
    EXPECT_EQ(system.cpu_store(rank).reserved_bytes(), 2 * 2 * replica);
    // The checkpoint communication buffer is reserved on every GPU.
    EXPECT_EQ(system.cluster().machine(rank).gpu(0).used(), config.reserved_buffer_per_gpu);
  }
  // Scheduling found a zero-overhead plan checkpointing every iteration.
  EXPECT_LT(snapshot.checkpoint_overhead_fraction, 0.005);
  EXPECT_TRUE(snapshot.checkpoint_fits_iteration);
  EXPECT_EQ(snapshot.checkpoint_interval_iterations, 1);
  EXPECT_TRUE(system.iteration_execution().partition.fits_within_idle_time);
  // Profiling matched the paper's stability observation.
  EXPECT_EQ(snapshot.profiled_iterations, config.profile_iterations);
  EXPECT_LT(snapshot.profile_max_normalized_stddev, 0.10);
  // Nothing has run yet.
  EXPECT_EQ(snapshot.iterations_completed, 0);
  EXPECT_EQ(snapshot.recoveries, 0);
  // The persistent tier holds the initial global checkpoint.
  EXPECT_EQ(system.persistent_store().LatestCompleteIteration(), 0);
}

TEST(GeminiSystemTest, InitializeRejectsBadConfig) {
  GeminiConfig config = SmallConfig();
  config.num_replicas = 20;
  GeminiSystem system(config);
  EXPECT_FALSE(system.Initialize().ok());
}

TEST(GeminiSystemTest, DoubleInitializeFails) {
  GeminiSystem system(SmallConfig());
  ASSERT_TRUE(system.Initialize().ok());
  EXPECT_EQ(system.Initialize().code(), StatusCode::kFailedPrecondition);
}

TEST(GeminiSystemTest, FailureFreeTrainingCheckpointsEveryIteration) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  const auto report = system.TrainUntil(10);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->iterations_completed, 10);
  EXPECT_TRUE(report->recoveries.empty());
  // Optimal checkpoint frequency: one CPU checkpoint per iteration.
  EXPECT_EQ(report->cpu_checkpoints_committed, 10);
  // Wall time is just 10 iterations (no overhead from checkpointing).
  EXPECT_EQ(report->wall_time, 10 * report->iteration_time);
  EXPECT_NEAR(report->effective_training_ratio(), 1.0, 1e-9);
  ExpectStateMatchesReference(system, config, 10);

  // Every machine holds the latest committed checkpoint for all its owners.
  for (int owner = 0; owner < 8; ++owner) {
    for (const int holder : system.placement().replica_sets[static_cast<size_t>(owner)]) {
      EXPECT_GE(system.cpu_store(holder).LatestIteration(owner), 9);
    }
  }

  // The metrics registry saw the same run: 10 steps, 10 global commits, one
  // store-level commit per (owner, holder) pair each iteration, no failures.
  const MetricsRegistry& metrics = system.metrics();
  EXPECT_EQ(metrics.counter_value("trainer.steps"), 10);
  EXPECT_EQ(metrics.counter_value("system.cpu_checkpoint_commits"), 10);
  EXPECT_EQ(metrics.counter_value("cpu_store.commits"), 10 * 8 * 2);
  EXPECT_EQ(metrics.counter_value("system.failures_detected"), 0);
  EXPECT_GT(metrics.counter_value("agent.keepalives"), 0);
  EXPECT_GE(metrics.counter_value("kv.elections_won"), 1);

  // And the tracer recorded one iteration span per iteration plus the
  // commits, all on simulated time.
  EXPECT_EQ(system.tracer().CountNamed("iteration"), 10);
  EXPECT_EQ(system.tracer().CountNamed("checkpoint_commit"), 10);
  const SystemSnapshot snapshot = system.Snapshot();
  EXPECT_EQ(snapshot.iterations_completed, 10);
  EXPECT_EQ(snapshot.cpu_checkpoints_committed, 10);
  EXPECT_EQ(snapshot.recoveries, 0);
}

TEST(GeminiSystemTest, RootAgentElectedDuringTraining) {
  GeminiSystem system(SmallConfig());
  ASSERT_TRUE(system.Initialize().ok());
  ASSERT_TRUE(system.TrainUntil(2).ok());
  const auto root = system.kvstore().Get(kRootKey);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->value, std::to_string(system.root_rank()));
}

TEST(GeminiSystemTest, SoftwareFailureRecoversFromLocalCpuMemory) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  // Crash a process mid-training.
  system.failure_injector().InjectAt(Minutes(3), FailureType::kSoftware, {6});
  const auto report = system.TrainUntil(8);
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_EQ(report->recoveries.size(), 1u);
  const RecoveryRecord& recovery = report->recoveries[0];
  EXPECT_EQ(recovery.type, FailureType::kSoftware);
  EXPECT_EQ(recovery.source, RecoverySource::kLocalCpuMemory);
  EXPECT_EQ(recovery.failed_ranks, (std::vector<int>{6}));
  // Rollback loses at most one iteration of progress (per-iteration ckpts).
  EXPECT_LE(recovery.iteration_at_failure - recovery.rollback_iteration, 1);
  // Downtime is dominated by serialization (m replicas of C bytes each at
  // ~1 GB/s) plus the restart warm-up (Figure 14's structure).
  const TimeNs expected =
      config.num_replicas * TransferTime(config.model.CheckpointBytesPerMachine(8),
                                         config.serialization_bandwidth) +
      config.restart_warmup;
  EXPECT_NEAR(ToSeconds(recovery.downtime), ToSeconds(expected), 10.0);
  // Wasted time is bounded by ~1 iteration + retrieval, far below baselines.
  EXPECT_LE(recovery.wasted_time, 2 * report->iteration_time);
  EXPECT_EQ(report->iterations_completed, 8);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(GeminiSystemTest, HardwareFailureRecoversFromGroupPeer) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
  const auto report = system.TrainUntil(8);
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_EQ(report->recoveries.size(), 1u);
  const RecoveryRecord& recovery = report->recoveries[0];
  EXPECT_EQ(recovery.type, FailureType::kHardware);
  EXPECT_EQ(recovery.source, RecoverySource::kRemoteCpuMemory);
  // The machine was actually replaced.
  EXPECT_EQ(system.cluster().machine(7).incarnation(), 1);
  EXPECT_EQ(system.cloud_operator().total_replacements(), 1);
  // Retrieval from the peer is seconds, so wasted time stays ~1.5 iteration.
  EXPECT_LE(recovery.wasted_time, 2 * report->iteration_time);
  ExpectStateMatchesReference(system, config, 8);

  // The replaced machine hosts its owners again and receives new replicas.
  for (int owner : {6, 7}) {
    EXPECT_GE(system.cpu_store(7).LatestIteration(owner), 7) << "owner " << owner;
  }
}

TEST(GeminiSystemTest, TwoFailuresInDifferentGroupsStillUseCpuMemory) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  // Ranks 5 and 7 sit in groups {4,5} and {6,7}: both have alive peers.
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {5, 7});
  const auto report = system.TrainUntil(8);
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kRemoteCpuMemory);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(GeminiSystemTest, WholeGroupLossFallsBackToPersistentStorage) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  // Group {4,5} dies entirely: both replicas of both checkpoints are gone.
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {4, 5});
  const auto report = system.TrainUntil(6);
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 1u);
  const RecoveryRecord& recovery = report->recoveries[0];
  EXPECT_EQ(recovery.source, RecoverySource::kPersistentStorage);
  // The only complete persistent checkpoint is the initial one: training
  // rolled all the way back (the paper's motivating disaster case).
  EXPECT_EQ(recovery.rollback_iteration, 0);
  EXPECT_GT(recovery.wasted_time, 3 * report->iteration_time);
  ExpectStateMatchesReference(system, config, 6);
}

TEST(GeminiSystemTest, RootMachineFailurePromotesNewRootAndRecovers) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  // Train briefly so a root gets elected, then kill that exact machine.
  ASSERT_TRUE(system.TrainUntil(2).ok());
  const int old_root = system.root_rank();
  // Keep the KV quorum alive: if the root sits on a KV rank (0..2), that is
  // fine — two of three servers survive.
  system.failure_injector().InjectAt(system.sim().now() + Minutes(1), FailureType::kHardware,
                                     {old_root});
  const auto report = system.TrainUntil(6);
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_NE(system.root_rank(), old_root) << "a new root agent must have been promoted";
  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries.back().type, FailureType::kHardware);
  ExpectStateMatchesReference(system, config, 6);
}

TEST(GeminiSystemTest, MultipleSequentialFailures) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(3), FailureType::kSoftware, {3});
  system.failure_injector().InjectAt(Minutes(16), FailureType::kHardware, {6});
  const auto report = system.TrainUntil(12);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->recoveries.size(), 2u);
  EXPECT_EQ(report->iterations_completed, 12);
  ExpectStateMatchesReference(system, config, 12);
}

TEST(GeminiSystemTest, PersistentCheckpointsHappenOnSchedule) {
  GeminiConfig config = SmallConfig();
  config.persistent_checkpoint_interval = Minutes(5);
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  const auto report = system.TrainUntil(10);  // ~11 minutes of training.
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->persistent_checkpoints_committed, 1);
  EXPECT_GT(system.persistent_store().LatestCompleteIteration(), 0);
  // Serialization for persistent checkpoints blocks training briefly.
  EXPECT_GT(report->wall_time, 10 * report->iteration_time);
}

TEST(GeminiSystemTest, ThreeReplicasSurviveTwoGroupMembersFailing) {
  GeminiConfig config = SmallConfig();
  config.num_machines = 9;
  config.num_replicas = 3;  // Groups of three.
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  // Two of group {6,7,8} die; the third member still holds their replicas.
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7, 8});
  const auto report = system.TrainUntil(8);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kRemoteCpuMemory);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(GeminiSystemTest, WastedTimeBeatsBaselineByOrderOfMagnitude) {
  // The headline 13x claim, measured end-to-end: GEMINI's measured wasted
  // time for a hardware failure vs the analytic HighFreq baseline.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
  const auto report = system.TrainUntil(8);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->recoveries.size(), 1u);

  CheckpointWorkload workload;
  workload.iteration_time = report->iteration_time;
  workload.checkpoint_bytes_per_machine = config.model.CheckpointBytesPerMachine(8);
  workload.num_machines = 8;
  const SystemModel highfreq = BuildHighFreq(workload);
  const double speedup = static_cast<double>(highfreq.AverageWastedTime()) /
                         static_cast<double>(report->recoveries[0].wasted_time);
  EXPECT_GT(speedup, 13.0);
}

TEST(GeminiSystemTest, CheckpointWatermarkPublishedAsOneBatchedProposal) {
  // Identical runs with the watermark off and on: the difference in KV
  // proposals must be exactly one per checkpoint block (the batched
  // publish), not one per key — 5 blocks of (8 ranks + 1 block key) would
  // cost 45 extra proposals unbatched.
  GeminiConfig config = SmallConfig();
  GeminiSystem baseline(config);
  ASSERT_TRUE(baseline.Initialize().ok());
  ASSERT_TRUE(baseline.TrainUntil(5).ok());
  const int64_t proposals_off = baseline.metrics().counter_value("kv.proposals");

  config.publish_checkpoint_watermark = true;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  const auto report = system.TrainUntil(5);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->cpu_checkpoints_committed, 5);
  // The per-rank watermarks and the block key are visible...
  const StatusOr<KvEntry> block = system.kvstore().Get("ckpt/watermark/block");
  ASSERT_TRUE(block.ok()) << block.status();
  EXPECT_EQ(block->value, "4");  // Last committed snapshot iteration.
  const auto ranks = system.kvstore().List("ckpt/watermark/rank/");
  EXPECT_EQ(static_cast<int>(ranks.size()), config.num_machines);
  for (const auto& [key, entry] : ranks) {
    EXPECT_EQ(entry.value, "4") << key;
  }
  // ...and cost one consensus round per checkpoint block.
  const int64_t proposals_on = system.metrics().counter_value("kv.proposals");
  EXPECT_EQ(proposals_on, proposals_off + 5) << "watermarks were not batched";
}

TEST(GeminiSystemTest, WatermarkOffByDefaultLeavesKvStateUntouched) {
  GeminiSystem system(SmallConfig());
  ASSERT_TRUE(system.Initialize().ok());
  ASSERT_TRUE(system.TrainUntil(3).ok());
  EXPECT_TRUE(system.kvstore().List("ckpt/").empty());
}

TEST(GeminiSystemTest, PipelineThreadsDoNotChangeSimulatedResults) {
  // pipeline_threads parallelizes host-side serialization/CRC only: wall
  // time, trained state, and every commit must be identical to the default.
  GeminiConfig config = SmallConfig();
  config.persistent_checkpoint_interval = Minutes(2);  // Exercise the store.
  std::vector<TimeNs> wall_times;
  for (const int threads : {1, 4}) {
    config.pipeline_threads = threads;
    GeminiSystem system(config);
    ASSERT_TRUE(system.Initialize().ok());
    system.failure_injector().InjectAt(Minutes(3), FailureType::kHardware, {6});
    const auto report = system.TrainUntil(6);
    ASSERT_TRUE(report.ok()) << report.status();
    wall_times.push_back(report->wall_time);
    ExpectStateMatchesReference(system, config, 6);
  }
  EXPECT_EQ(wall_times[0], wall_times[1])
      << "host-side threads leaked into simulated time";
}

TEST(GeminiSystemTest, DeterministicAcrossRuns) {
  GeminiConfig config = SmallConfig();
  std::vector<TimeNs> wall_times;
  for (int run = 0; run < 2; ++run) {
    GeminiSystem system(config);
    ASSERT_TRUE(system.Initialize().ok());
    system.failure_injector().InjectAt(Minutes(3), FailureType::kHardware, {6});
    const auto report = system.TrainUntil(6);
    ASSERT_TRUE(report.ok());
    wall_times.push_back(report->wall_time);
  }
  EXPECT_EQ(wall_times[0], wall_times[1]) << "simulation must be bit-reproducible";
}

TEST(GeminiSystemTest, HolderDeathDuringRecoveryFallsBackToPersistent) {
  // Rank 7 dies; while its recovery is under way its group peer (rank 6,
  // the only CPU-memory holder of rank 7's checkpoint) also dies. Retrieval
  // must detect the loss and fall back to the persistent tier instead of
  // hanging or restoring stale state.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
  // Detection takes ~15 s and replacement ~10 s (standby); the peer dies in
  // the middle of the serialization window, before retrieval begins.
  system.failure_injector().InjectAt(Minutes(5), FailureType::kHardware, {6});
  const auto report = system.TrainUntil(8, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kPersistentStorage);
  // State still converges to the uninterrupted reference.
  if (report->iterations_completed == 8) {
    ExpectStateMatchesReference(system, config, 8);
  }
}

TEST(GeminiSystemTest, PersistentFallbackUsesLatestPersistentCheckpoint) {
  // With frequent persistent checkpoints, a whole-group loss rolls back to
  // the latest *complete* persistent iteration, not to zero.
  GeminiConfig config = SmallConfig();
  config.persistent_checkpoint_interval = Minutes(4);
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(10), FailureType::kHardware, {4, 5});
  const auto report = system.TrainUntil(12, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GE(report->recoveries.size(), 1u);
  const RecoveryRecord& recovery = report->recoveries[0];
  EXPECT_EQ(recovery.source, RecoverySource::kPersistentStorage);
  EXPECT_GT(recovery.rollback_iteration, 0)
      << "should roll back to the mid-training persistent checkpoint";
  ExpectStateMatchesReference(system, config, report->iterations_completed);
}

TEST(GeminiSystemTest, SingleReplicaConfigSurvivesSoftwareButNotHardware) {
  // m=1 keeps only the local replica: software failures recover locally,
  // but losing a machine loses its only CPU copy.
  GeminiConfig config = SmallConfig();
  config.num_replicas = 1;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(3), FailureType::kSoftware, {2});
  system.failure_injector().InjectAt(Minutes(15), FailureType::kHardware, {7});
  const auto report = system.TrainUntil(10, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GE(report->recoveries.size(), 2u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kLocalCpuMemory);
  EXPECT_EQ(report->recoveries[1].source, RecoverySource::kPersistentStorage);
  ExpectStateMatchesReference(system, config, report->iterations_completed);
}

TEST(GeminiSystemTest, AverageWastedTimeMatchesEquation1) {
  // Property test of Eq. (1): failures uniformly distributed within the
  // checkpoint interval waste on average t_ckpt + 1/(2f) + t_rtvl. With
  // per-iteration checkpoints and near-zero retrieval that is 1.5 T_iter.
  // We sweep the failure instant across one iteration and average the
  // measured wasted time (including the discarded in-flight fraction).
  RunningStat wasted_iterations;
  double commit_fraction = 1.0;
  for (int phase = 0; phase < 8; ++phase) {
    GeminiConfig config = SmallConfig();
    GeminiSystem system(config);
    ASSERT_TRUE(system.Initialize().ok());
    const TimeNs iteration = system.iteration_execution().iteration_time;
    commit_fraction = static_cast<double>(std::min(
                          system.iteration_execution().checkpoint_done, iteration)) /
                      static_cast<double>(iteration);
    // A failure somewhere within the 4th iteration.
    const TimeNs inject_at = 3 * iteration + iteration * phase / 8 + Seconds(1);
    system.failure_injector().InjectAt(inject_at, FailureType::kSoftware, {5});
    const auto report = system.TrainUntil(8);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->recoveries.size(), 1u);
    const TimeNs in_flight = inject_at - 3 * iteration;
    wasted_iterations.Add(
        (static_cast<double>(report->recoveries[0].wasted_time) +
         static_cast<double>(in_flight)) /
        static_cast<double>(iteration));
  }
  // With the checkpoint committing at fraction c of the iteration, a
  // uniformly-placed failure wastes on average (c + 0.5) iterations: one
  // extra iteration is lost only when the failure precedes the commit.
  // Eq. (1)'s 1.5 T_iter is the conservative c = 1 case and upper-bounds us.
  EXPECT_NEAR(wasted_iterations.mean(), commit_fraction + 0.5, 0.2);
  EXPECT_LE(wasted_iterations.mean(), 1.5 + 1e-9);
}

TEST(GeminiSystemTest, DiskBackedPersistentTierRoundTripsThroughFiles) {
  // With disk backing on, the group-loss fallback restores state from real
  // serialized files (CRC-checked), end to end.
  GeminiConfig config = SmallConfig();
  config.persistent.disk_dir = ::testing::TempDir() + "/gemini_system_fsx";
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {4, 5});
  const auto report = system.TrainUntil(6, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kPersistentStorage);
  ExpectStateMatchesReference(system, config, report->iterations_completed);
  std::error_code ec;
  std::filesystem::remove_all(config.persistent.disk_dir, ec);
}

TEST(GeminiSystemTest, FrequencyAmortizationKeepsTrainingFree) {
  // Four replicas of GPT-2 40B on 16x p3dn cannot checkpoint every
  // iteration; the system amortizes across k iterations (Section 5.3) while
  // keeping iteration time at baseline and recovery correct.
  GeminiConfig config;
  config.model = Gpt2_40B();
  config.instance = P3dn24xlarge();
  config.num_machines = 16;
  config.num_replicas = 4;
  config.payload_elements = 32;
  config.seed = 99;
  config.cloud.num_standby = 1;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  const int interval = system.checkpoint_interval_iterations();
  EXPECT_GT(interval, 1);
  EXPECT_LT(system.iteration_execution().overhead_fraction, 0.005);

  system.failure_injector().InjectAt(Minutes(8), FailureType::kHardware, {13});
  const auto report = system.TrainUntil(12, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();
  // Fewer commits than iterations (one per k-block).
  EXPECT_LE(report->cpu_checkpoints_committed, 12 / interval + 1);
  EXPECT_GE(report->cpu_checkpoints_committed, 12 / interval - 1);
  ASSERT_GE(report->recoveries.size(), 1u);
  // Rollback distance is bounded by two checkpoint blocks.
  const RecoveryRecord& recovery = report->recoveries[0];
  EXPECT_LE(recovery.iteration_at_failure - recovery.rollback_iteration, 2 * interval);
  // Bit-exact convergence still holds.
  ShardedTrainer reference(config.model, config.num_machines, config.payload_elements,
                           config.seed);
  for (int64_t i = 0; i < report->iterations_completed; ++i) {
    reference.Step();
  }
  for (int rank = 0; rank < config.num_machines; ++rank) {
    EXPECT_EQ(system.trainer().shard(rank), reference.shard(rank)) << "rank " << rank;
  }
}

TEST(GeminiSystemTest, ReportMetricsAreInternallyConsistent) {
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(3), FailureType::kSoftware, {6});
  const auto report = system.TrainUntil(10);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->recoveries.size(), 1u);
  const RecoveryRecord& recovery = report->recoveries[0];
  // Wall time decomposes into productive iterations, the re-done rollback
  // iterations, detection latency, the discarded in-flight fraction, and
  // the recovery downtime (all non-negative, summing within one iteration
  // of the measured wall time).
  const TimeNs redone = (recovery.iteration_at_failure - recovery.rollback_iteration) *
                        report->iteration_time;
  const TimeNs accounted =
      report->iterations_completed * report->iteration_time + redone + recovery.downtime;
  EXPECT_GE(report->wall_time, accounted - report->iteration_time);
  EXPECT_LE(report->wall_time, accounted + 2 * report->iteration_time);
  EXPECT_GT(report->effective_training_ratio(), 0.0);
  EXPECT_LE(report->effective_training_ratio(), 1.0);
  EXPECT_GE(recovery.training_resumed_at, recovery.failure_detected_at);
}

TEST(GeminiSystemTest, KvQuorumLossStopsDetectionButDeadlineTerminates) {
  // Losing two of three KV servers removes the quorum: failures can no
  // longer be detected (a real etcd deployment would page an operator).
  // The simulated-time deadline guarantees the run still terminates and
  // reports the stall.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(3), FailureType::kHardware, {0, 1});
  const auto report = system.TrainUntil(10, /*sim_deadline=*/Minutes(12));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_LT(report->iterations_completed, 10);
  EXPECT_TRUE(report->recoveries.empty())
      << "no quorum means no root-agent detection, so no recovery can run";
}

TEST(GeminiSystemTest, StandbyMachinesShortenHardwareDowntime) {
  // At 16 machines the per-machine serialization (~150 s) no longer masks
  // the ASG provisioning delay (4-7 min), so standby machines visibly
  // shorten recovery, as Section 6.2 argues.
  GeminiConfig with_standby = SmallConfig();
  with_standby.num_machines = 16;
  with_standby.cloud.num_standby = 2;
  GeminiConfig without_standby = SmallConfig();
  without_standby.num_machines = 16;
  without_standby.cloud.num_standby = 0;

  auto measure_downtime = [](const GeminiConfig& config) -> TimeNs {
    GeminiSystem system(config);
    EXPECT_TRUE(system.Initialize().ok());
    system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
    const auto report = system.TrainUntil(8);
    EXPECT_TRUE(report.ok());
    if (!report.ok() || report->recoveries.empty()) {
      return 0;
    }
    return report->recoveries[0].downtime;
  };
  const TimeNs downtime_with = measure_downtime(with_standby);
  const TimeNs downtime_without = measure_downtime(without_standby);
  // ASG provisioning (4-7 min) vs standby activation (~10 s); recovery-time
  // serialization (~161 s) overlaps the replacement, so the net saving is
  // the provisioning tail beyond serialization.
  EXPECT_LT(downtime_with + Minutes(1), downtime_without);
}

}  // namespace
}  // namespace gemini
