// Tests for checkpoint serialization, the CPU-memory checkpoint store
// (double buffering), and the persistent store.
#include <gtest/gtest.h>

#include "src/cluster/instance_spec.h"
#include "src/cluster/machine.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/storage/cpu_store.h"
#include "src/storage/persistent_store.h"
#include "src/storage/serializer.h"

#include <filesystem>
#include <fstream>

namespace gemini {
namespace {

Checkpoint MakeCheckpoint(int owner, int64_t iteration, Bytes logical, size_t payload = 16) {
  Checkpoint checkpoint;
  checkpoint.owner_rank = owner;
  checkpoint.iteration = iteration;
  checkpoint.logical_bytes = logical;
  std::vector<float> values(payload);
  for (size_t i = 0; i < payload; ++i) {
    values[i] = static_cast<float>(owner) + static_cast<float>(i) * 0.5f +
                static_cast<float>(iteration) * 0.01f;
  }
  checkpoint.payload = std::move(values);
  return checkpoint;
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

TEST(SerializerTest, RoundTripsAllFields) {
  const Checkpoint original = MakeCheckpoint(7, 42, GiB(75), 128);
  const std::vector<uint8_t> blob = SerializeCheckpoint(original);
  const StatusOr<Checkpoint> restored = DeserializeCheckpoint(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*restored, original);
}

TEST(SerializerTest, RoundTripsEmptyPayload) {
  Checkpoint original = MakeCheckpoint(0, 0, 0, 0);
  const StatusOr<Checkpoint> restored = DeserializeCheckpoint(SerializeCheckpoint(original));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, original);
}

TEST(SerializerTest, SharedFormIsByteIdenticalAtAnyThreadCount) {
  // SerializeCheckpointShared with a worker pool must produce exactly the
  // bytes of the single-threaded SerializeCheckpoint — segmented payload
  // copies and rank-order-combined per-segment CRCs change wall-clock only.
  // A payload above the 64 KiB/segment fan-out cutoff engages the pool.
  const Checkpoint original = MakeCheckpoint(3, 17, GiB(10), 128 * 1024);
  const std::vector<uint8_t> reference = SerializeCheckpoint(original);
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    BlobPool blobs;
    const auto blob =
        SerializeCheckpointShared(original, SerializeOptions{&pool, &blobs});
    ASSERT_NE(blob, nullptr);
    EXPECT_EQ(*blob, reference) << threads << " threads";
  }
  // Null options degrade to the plain path.
  const auto plain = SerializeCheckpointShared(original, SerializeOptions{});
  EXPECT_EQ(*plain, reference);
}

TEST(SerializerTest, BlobPoolRecyclesReturnedBuffers) {
  BlobPool pool;
  const Checkpoint checkpoint = MakeCheckpoint(1, 2, MiB(1), 1024);
  std::shared_ptr<std::vector<uint8_t>> first =
      SerializeCheckpointShared(checkpoint, SerializeOptions{nullptr, &pool});
  const std::vector<uint8_t>* first_buffer = first.get();
  EXPECT_EQ(pool.allocated_buffers(), 1u);
  first.reset();  // Back to the pool.
  const auto second =
      SerializeCheckpointShared(checkpoint, SerializeOptions{nullptr, &pool});
  EXPECT_EQ(second.get(), first_buffer) << "buffer was not recycled";
  EXPECT_EQ(pool.allocated_buffers(), 1u);
  // A buffer still referenced cannot be handed out again.
  const auto third =
      SerializeCheckpointShared(checkpoint, SerializeOptions{nullptr, &pool});
  EXPECT_NE(third.get(), second.get());
  EXPECT_EQ(pool.allocated_buffers(), 2u);
}

TEST(SerializerTest, RejectsBadMagic) {
  std::vector<uint8_t> blob = SerializeCheckpoint(MakeCheckpoint(1, 1, 100));
  blob[0] = 'X';
  EXPECT_EQ(DeserializeCheckpoint(blob).status().code(), StatusCode::kDataLoss);
}

TEST(SerializerTest, RejectsTruncatedBlob) {
  std::vector<uint8_t> blob = SerializeCheckpoint(MakeCheckpoint(1, 1, 100));
  blob.resize(blob.size() / 2);
  EXPECT_EQ(DeserializeCheckpoint(blob).status().code(), StatusCode::kDataLoss);
}

TEST(SerializerTest, RejectsEmptyBlob) {
  EXPECT_EQ(DeserializeCheckpoint({}).status().code(), StatusCode::kDataLoss);
}

// Property: any single corrupted byte must be detected by the CRC. (A
// recovery path silently loading corrupt state would be a correctness
// disaster, so this sweeps byte positions across the blob.)
class SerializerCorruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializerCorruptionTest, DetectsByteCorruption) {
  std::vector<uint8_t> blob = SerializeCheckpoint(MakeCheckpoint(3, 9, GiB(1), 64));
  const size_t position = static_cast<size_t>(GetParam()) * (blob.size() - 1) / 16;
  blob[position] ^= 0xA5;
  EXPECT_FALSE(DeserializeCheckpoint(blob).ok())
      << "corruption at byte " << position << " of " << blob.size() << " went undetected";
}

INSTANTIATE_TEST_SUITE_P(BytePositions, SerializerCorruptionTest, ::testing::Range(0, 17));

TEST(SerializationModelTest, MatchesPaperMeasurements) {
  // 75 GiB replica at ~1 GB/s is ~81 s (HighFreq's per-checkpoint
  // serialization); two replicas at recovery are ~162 s (Figure 14).
  SerializationModel model;
  const Bytes replica = 75'000'000'000;  // GPT-2 100B / 16 machines.
  EXPECT_NEAR(ToSeconds(model.SerializeTime(replica)), 81.0, 1.0);
  EXPECT_NEAR(ToSeconds(2 * model.SerializeTime(replica)), 162.0, 2.0);
}

// ---------------------------------------------------------------------------
// CpuCheckpointStore
// ---------------------------------------------------------------------------

class CpuStoreTest : public ::testing::Test {
 protected:
  CpuStoreTest() : machine_(0, 0, P4d24xlarge()), store_(machine_) {}

  Machine machine_;
  CpuCheckpointStore store_;
};

TEST_F(CpuStoreTest, HostOwnerReservesDoubleBuffer) {
  ASSERT_TRUE(store_.HostOwner(0, GiB(75)).ok());
  EXPECT_EQ(store_.reserved_bytes(), GiB(150));
  EXPECT_EQ(machine_.cpu_memory_used(), GiB(150));
  EXPECT_TRUE(store_.Hosts(0));
  EXPECT_FALSE(store_.Hosts(1));
}

TEST_F(CpuStoreTest, HostOwnerIdempotentForSameSize) {
  ASSERT_TRUE(store_.HostOwner(0, GiB(10)).ok());
  ASSERT_TRUE(store_.HostOwner(0, GiB(10)).ok());
  EXPECT_EQ(store_.reserved_bytes(), GiB(20));
  EXPECT_EQ(store_.HostOwner(0, GiB(20)).code(), StatusCode::kAlreadyExists);
}

TEST_F(CpuStoreTest, HostOwnerFailsWhenCpuMemoryExhausted) {
  // p4d has 1152 GiB; two 300 GiB owners (600 GiB each double-buffered)
  // exceed it.
  ASSERT_TRUE(store_.HostOwner(0, GiB(300)).ok());
  EXPECT_EQ(store_.HostOwner(1, GiB(300)).code(), StatusCode::kResourceExhausted);
}

TEST_F(CpuStoreTest, DropOwnerFreesMemory) {
  ASSERT_TRUE(store_.HostOwner(0, GiB(75)).ok());
  store_.DropOwner(0);
  EXPECT_EQ(machine_.cpu_memory_used(), 0);
  EXPECT_FALSE(store_.Hosts(0));
}

TEST_F(CpuStoreTest, ChunkedWriteCommitsWhenComplete) {
  ASSERT_TRUE(store_.HostOwner(2, 1000).ok());
  ASSERT_TRUE(store_.BeginWrite(2, 5).ok());
  ASSERT_TRUE(store_.AppendChunk(2, 400).ok());
  ASSERT_TRUE(store_.AppendChunk(2, 600).ok());
  ASSERT_TRUE(store_.CommitWrite(MakeCheckpoint(2, 5, 1000)).ok());
  EXPECT_EQ(store_.LatestIteration(2), 5);
}

TEST_F(CpuStoreTest, CommitWithMissingBytesFails) {
  ASSERT_TRUE(store_.HostOwner(2, 1000).ok());
  ASSERT_TRUE(store_.BeginWrite(2, 5).ok());
  ASSERT_TRUE(store_.AppendChunk(2, 400).ok());
  EXPECT_EQ(store_.CommitWrite(MakeCheckpoint(2, 5, 1000)).code(), StatusCode::kDataLoss);
}

TEST_F(CpuStoreTest, ChunkOverflowFails) {
  ASSERT_TRUE(store_.HostOwner(2, 1000).ok());
  ASSERT_TRUE(store_.BeginWrite(2, 5).ok());
  EXPECT_EQ(store_.AppendChunk(2, 1500).code(), StatusCode::kInvalidArgument);
}

TEST_F(CpuStoreTest, DoubleBufferKeepsCompletedWhileWriting) {
  // The core crash-consistency property: an in-progress checkpoint never
  // clobbers the completed one.
  ASSERT_TRUE(store_.HostOwner(2, 1000).ok());
  ASSERT_TRUE(store_.WriteComplete(MakeCheckpoint(2, 5, 1000)).ok());
  ASSERT_TRUE(store_.BeginWrite(2, 6).ok());
  ASSERT_TRUE(store_.AppendChunk(2, 500).ok());
  // Failure strikes mid-write: the previous checkpoint must still be there.
  const std::optional<Checkpoint> latest = store_.Latest(2);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iteration, 5);
  store_.AbortWrite(2);
  EXPECT_EQ(store_.LatestIteration(2), 5);
}

TEST_F(CpuStoreTest, CommitSwapsBuffers) {
  ASSERT_TRUE(store_.HostOwner(2, 1000).ok());
  ASSERT_TRUE(store_.WriteComplete(MakeCheckpoint(2, 5, 1000)).ok());
  ASSERT_TRUE(store_.WriteComplete(MakeCheckpoint(2, 6, 1000)).ok());
  EXPECT_EQ(store_.LatestIteration(2), 6);
}

TEST_F(CpuStoreTest, WriteToUnhostedOwnerFails) {
  EXPECT_EQ(store_.BeginWrite(9, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store_.AppendChunk(9, 1).code(), StatusCode::kFailedPrecondition);
}

TEST_F(CpuStoreTest, CommitIterationMismatchFails) {
  ASSERT_TRUE(store_.HostOwner(2, 1000).ok());
  ASSERT_TRUE(store_.BeginWrite(2, 5).ok());
  ASSERT_TRUE(store_.AppendChunk(2, 1000).ok());
  EXPECT_EQ(store_.CommitWrite(MakeCheckpoint(2, 7, 1000)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CpuStoreTest, ResetForMachineDropsEverything) {
  ASSERT_TRUE(store_.HostOwner(2, 1000).ok());
  ASSERT_TRUE(store_.WriteComplete(MakeCheckpoint(2, 5, 1000)).ok());
  Machine replacement(0, 1, P4d24xlarge());
  store_.ResetForMachine(replacement);
  EXPECT_FALSE(store_.Hosts(2));
  EXPECT_EQ(store_.Latest(2), std::nullopt);
  EXPECT_EQ(replacement.cpu_memory_used(), 0);
}

TEST_F(CpuStoreTest, LatestIterationForUnknownOwnerIsMinusOne) {
  EXPECT_EQ(store_.LatestIteration(4), -1);
}

TEST_F(CpuStoreTest, MultipleOwnersAreIndependent) {
  ASSERT_TRUE(store_.HostOwner(0, 1000).ok());
  ASSERT_TRUE(store_.HostOwner(1, 1000).ok());
  ASSERT_TRUE(store_.WriteComplete(MakeCheckpoint(0, 3, 1000)).ok());
  ASSERT_TRUE(store_.WriteComplete(MakeCheckpoint(1, 4, 1000)).ok());
  EXPECT_EQ(store_.Latest(0)->iteration, 3);
  EXPECT_EQ(store_.Latest(1)->iteration, 4);
}

// ---------------------------------------------------------------------------
// Payload sharing (PayloadRef / PayloadPool / copy-on-write)
// ---------------------------------------------------------------------------

TEST(PayloadRefTest, CopiesShareOneBuffer) {
  PayloadRef original(std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f});
  PayloadRef copy = original;
  EXPECT_TRUE(copy.SharesBufferWith(original));
  EXPECT_EQ(copy, original);
  EXPECT_EQ(original.use_count(), 2);
}

TEST(PayloadRefTest, SliceViewsSameBufferWithoutCopying) {
  PayloadRef full(std::vector<float>{0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f});
  PayloadRef view = full.Slice(2, 3);
  EXPECT_TRUE(view.SharesBufferWith(full));
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 2.0f);
  EXPECT_EQ(view[2], 4.0f);
}

TEST(PayloadRefTest, MutableDataDetachesOntoPrivateCopy) {
  PayloadRef original(std::vector<float>{1.0f, 2.0f, 3.0f});
  PayloadRef corrupted = original;
  corrupted.MutableData()[1] = -99.0f;
  EXPECT_FALSE(corrupted.SharesBufferWith(original));
  EXPECT_EQ(original[1], 2.0f);  // The other holder never sees the write.
  EXPECT_EQ(corrupted[1], -99.0f);
}

TEST(PayloadPoolTest, RecyclesReleasedBuffersButNotPinnedOnes) {
  PayloadPool pool;
  std::shared_ptr<std::vector<float>> first = pool.Acquire(64);
  std::vector<float>* first_raw = first.get();
  // Still referenced (a store's completed slot would hold it like this): a
  // second Acquire must not hand the same buffer out again.
  std::shared_ptr<std::vector<float>> second = pool.Acquire(64);
  EXPECT_NE(second.get(), first_raw);
  EXPECT_EQ(pool.allocated_buffers(), 2u);
  // Once released, the buffer is reused instead of allocating a third.
  pool.Release(std::move(first));
  std::shared_ptr<std::vector<float>> third = pool.Acquire(32);
  EXPECT_EQ(third.get(), first_raw);
  EXPECT_EQ(third->size(), 32u);
  EXPECT_EQ(pool.allocated_buffers(), 2u);
}

TEST_F(CpuStoreTest, CommittedCheckpointsAcrossStoresAliasOneBuffer) {
  // GeminiSystem hands the same staged snapshot to every holder; with
  // PayloadRef those commits are refcount bumps, not float copies.
  Machine other_machine(1, 0, P4d24xlarge());
  CpuCheckpointStore other_store(other_machine);
  ASSERT_TRUE(store_.HostOwner(2, 1000).ok());
  ASSERT_TRUE(other_store.HostOwner(2, 1000).ok());
  Checkpoint snapshot = MakeCheckpoint(2, 5, 1000);
  snapshot.StampPayloadCrc();
  ASSERT_TRUE(store_.WriteComplete(snapshot).ok());
  ASSERT_TRUE(other_store.WriteComplete(snapshot).ok());
  const std::optional<Checkpoint> a = store_.Latest(2);
  const std::optional<Checkpoint> b = other_store.Latest(2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(a->payload.SharesBufferWith(b->payload));
  EXPECT_TRUE(a->payload.SharesBufferWith(snapshot.payload));
}

TEST_F(CpuStoreTest, CorruptionOnOneHolderNeverLeaksToSiblings) {
  // Bit-rot injected into one replica must detach it onto a private copy:
  // the sibling holder keeps serving verified, clean bytes.
  Machine other_machine(1, 0, P4d24xlarge());
  CpuCheckpointStore other_store(other_machine);
  ASSERT_TRUE(store_.HostOwner(2, 5).ok());
  ASSERT_TRUE(other_store.HostOwner(2, 5).ok());
  Checkpoint snapshot = MakeCheckpoint(2, 7, 5);
  snapshot.StampPayloadCrc();
  ASSERT_TRUE(store_.WriteComplete(snapshot).ok());
  ASSERT_TRUE(other_store.WriteComplete(snapshot).ok());
  ASSERT_TRUE(store_.CorruptLatest(2, 13).ok());
  // The corrupted holder fails its CRC re-check; the sibling still passes and
  // its bytes are untouched.
  EXPECT_EQ(store_.LatestVerified(2), std::nullopt);
  const std::optional<Checkpoint> clean = other_store.LatestVerified(2);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->payload, snapshot.payload);
  EXPECT_FALSE(store_.Latest(2)->payload.SharesBufferWith(clean->payload));
}

// ---------------------------------------------------------------------------
// PersistentStore
// ---------------------------------------------------------------------------

class PersistentStoreTest : public ::testing::Test {
 protected:
  PersistentStoreTest() {
    PersistentStoreConfig config;
    config.aggregate_bandwidth = 1e9;  // 1 GB/s.
    config.request_latency = Millis(1);
    store_ = std::make_unique<PersistentStore>(sim_, config);
  }

  Simulator sim_;
  std::unique_ptr<PersistentStore> store_;
};

TEST_F(PersistentStoreTest, SaveTakesBandwidthLimitedTime) {
  TimeNs done_at = -1;
  store_->Save(MakeCheckpoint(0, 1, 2'000'000'000), 1, [&](Status status) {
    EXPECT_TRUE(status.ok());
    done_at = sim_.now();
  });
  sim_.Run();
  EXPECT_EQ(done_at, Seconds(2) + Millis(1));
  EXPECT_EQ(store_->bytes_written(), 2'000'000'000);
}

TEST_F(PersistentStoreTest, ConcurrentSavesShareAggregateBandwidth) {
  std::vector<TimeNs> completions;
  for (int rank = 0; rank < 3; ++rank) {
    store_->Save(MakeCheckpoint(rank, 1, 1'000'000'000), 3,
                 [&](Status) { completions.push_back(sim_.now()); });
  }
  sim_.Run();
  ASSERT_EQ(completions.size(), 3u);
  // FIFO through the shared pipe: 1 s apart each (the 20 Gb/s FSx effect).
  EXPECT_EQ(completions[2], Seconds(3) + Millis(3));
}

TEST_F(PersistentStoreTest, CompleteIterationRequiresAllShards) {
  store_->Save(MakeCheckpoint(0, 5, 1000), 2, [](Status) {});
  sim_.Run();
  EXPECT_EQ(store_->LatestCompleteIteration(), -1);
  store_->Save(MakeCheckpoint(1, 5, 1000), 2, [](Status) {});
  sim_.Run();
  EXPECT_EQ(store_->LatestCompleteIteration(), 5);
}

TEST_F(PersistentStoreTest, LatestCompletePrefersNewest) {
  for (const int64_t iteration : {5, 10}) {
    for (int rank = 0; rank < 2; ++rank) {
      store_->SeedImmediate(MakeCheckpoint(rank, iteration, 1000), 2);
    }
  }
  // Iteration 12 is incomplete.
  store_->SeedImmediate(MakeCheckpoint(0, 12, 1000), 2);
  EXPECT_EQ(store_->LatestCompleteIteration(), 10);
}

TEST_F(PersistentStoreTest, RetrieveReturnsStoredShard) {
  const Checkpoint original = MakeCheckpoint(1, 7, 1'000'000'000);
  store_->SeedImmediate(original, 2);
  std::optional<Checkpoint> fetched;
  TimeNs done_at = -1;
  store_->Retrieve(1, 7, [&](StatusOr<Checkpoint> result) {
    ASSERT_TRUE(result.ok()) << result.status();
    fetched = std::move(result).value();
    done_at = sim_.now();
  });
  sim_.Run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, original);
  EXPECT_EQ(done_at, Seconds(1) + Millis(1));  // Bandwidth-limited read.
}

TEST_F(PersistentStoreTest, RetrieveMissingShardIsNotFound) {
  Status result = Status::Ok();
  store_->Retrieve(0, 99, [&](StatusOr<Checkpoint> out) { result = out.status(); });
  sim_.Run();
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
}

class DiskBackedPersistentStoreTest : public ::testing::Test {
 protected:
  DiskBackedPersistentStoreTest() {
    dir_ = ::testing::TempDir() + "/gemini_fsx_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    PersistentStoreConfig config;
    config.aggregate_bandwidth = 1e9;
    config.request_latency = Millis(1);
    config.disk_dir = dir_;
    store_ = std::make_unique<PersistentStore>(sim_, config);
  }
  ~DiskBackedPersistentStoreTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Simulator sim_;
  std::string dir_;
  std::unique_ptr<PersistentStore> store_;
};

TEST_F(DiskBackedPersistentStoreTest, SaveWritesSerializedFile) {
  const Checkpoint original = MakeCheckpoint(2, 9, 1'000'000, 64);
  Status saved = InternalError("pending");
  store_->Save(original, 1, [&](Status status) { saved = status; });
  sim_.Run();
  ASSERT_TRUE(saved.ok()) << saved;
  const std::string path = store_->ShardPath(2, 9);
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  EXPECT_GT(std::filesystem::file_size(path), original.payload.size() * sizeof(float));
}

TEST_F(DiskBackedPersistentStoreTest, RetrieveRoundTripsThroughDisk) {
  const Checkpoint original = MakeCheckpoint(3, 12, 2'000'000, 128);
  store_->Save(original, 1, [](Status) {});
  sim_.Run();
  std::optional<Checkpoint> fetched;
  store_->Retrieve(3, 12, [&](StatusOr<Checkpoint> result) {
    ASSERT_TRUE(result.ok()) << result.status();
    fetched = std::move(result).value();
  });
  sim_.Run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, original);
}

TEST_F(DiskBackedPersistentStoreTest, CorruptedFileIsDetectedOnRetrieve) {
  store_->Save(MakeCheckpoint(0, 5, 1'000'000, 64), 1, [](Status) {});
  sim_.Run();
  // Flip a byte in the middle of the on-disk blob.
  const std::string path = store_->ShardPath(0, 5);
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(40);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    file.seekp(40);
    file.write(&byte, 1);
  }
  Status result = Status::Ok();
  store_->Retrieve(0, 5, [&](StatusOr<Checkpoint> out) { result = out.status(); });
  sim_.Run();
  EXPECT_EQ(result.code(), StatusCode::kDataLoss);
}

TEST_F(DiskBackedPersistentStoreTest, DeletedFileSurfacesAsNotFound) {
  store_->Save(MakeCheckpoint(1, 7, 1'000'000, 32), 1, [](Status) {});
  sim_.Run();
  std::filesystem::remove(store_->ShardPath(1, 7));
  Status result = Status::Ok();
  store_->Retrieve(1, 7, [&](StatusOr<Checkpoint> out) { result = out.status(); });
  sim_.Run();
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// PersistentStore retrieval retry cascade
// ---------------------------------------------------------------------------

class PersistentRetryTest : public ::testing::Test {
 protected:
  PersistentRetryTest() {
    PersistentStoreConfig config;
    config.aggregate_bandwidth = 1e9;
    config.request_latency = Millis(1);
    config.retrieval_max_attempts = 4;
    config.retrieval_backoff_base = Millis(100);
    config.retrieval_backoff_cap = Millis(400);
    store_ = std::make_unique<PersistentStore>(sim_, config);
    store_->set_metrics(&metrics_);
  }

  Simulator sim_;
  MetricsRegistry metrics_;
  std::unique_ptr<PersistentStore> store_;
};

TEST_F(PersistentRetryTest, TransientFaultsRetryThenSucceed) {
  const Checkpoint original = MakeCheckpoint(0, 3, 1'000'000, 32);
  store_->SeedImmediate(original, 1);
  // First two attempts fail; the third reads clean bytes.
  store_->set_fault_hook([](int, int64_t, int attempt) {
    return attempt < 2 ? UnavailableError("injected link flap") : Status::Ok();
  });
  std::optional<Checkpoint> fetched;
  store_->Retrieve(0, 3, [&](StatusOr<Checkpoint> result) {
    ASSERT_TRUE(result.ok()) << result.status();
    fetched = std::move(result).value();
  });
  sim_.Run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, original);
  EXPECT_EQ(metrics_.counter_value("persistent_store.retries"), 2);
  EXPECT_EQ(metrics_.counter_value("persistent_store.crc_failures"), 0);
}

TEST_F(PersistentRetryTest, RetriesBackOffExponentiallyUpToCap) {
  store_->SeedImmediate(MakeCheckpoint(0, 3, 1'000'000, 32), 1);
  std::vector<TimeNs> attempt_times;
  store_->set_fault_hook([&](int, int64_t, int) {
    attempt_times.push_back(sim_.now());
    return UnavailableError("always down");
  });
  Status result = Status::Ok();
  store_->Retrieve(0, 3, [&](StatusOr<Checkpoint> out) { result = out.status(); });
  sim_.Run();
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  ASSERT_EQ(attempt_times.size(), 4u);  // Attempt cap honoured.
  // Gaps: backoff (100ms, 200ms, 400ms-capped) plus one re-read each.
  const TimeNs reread = Millis(1) + Millis(1);  // latency + 1MB at 1 GB/s.
  EXPECT_EQ(attempt_times[1] - attempt_times[0], Millis(100) + reread);
  EXPECT_EQ(attempt_times[2] - attempt_times[1], Millis(200) + reread);
  EXPECT_EQ(attempt_times[3] - attempt_times[2], Millis(400) + reread);
  EXPECT_EQ(metrics_.counter_value("persistent_store.retries"), 3);
}

TEST_F(PersistentRetryTest, CorruptShardFailsCrcAcrossAllAttempts) {
  Checkpoint stamped = MakeCheckpoint(1, 5, 1'000'000, 64);
  stamped.StampPayloadCrc();
  store_->SeedImmediate(std::move(stamped), 1);
  ASSERT_TRUE(store_->CorruptShard(1, 5, /*bit_index=*/13).ok());
  Status result = Status::Ok();
  store_->Retrieve(1, 5, [&](StatusOr<Checkpoint> out) { result = out.status(); });
  sim_.Run();
  // The flipped bit never heals, so every attempt trips the CRC check and
  // the final status is data loss.
  EXPECT_EQ(result.code(), StatusCode::kDataLoss);
  EXPECT_EQ(metrics_.counter_value("persistent_store.crc_failures"), 4);
  EXPECT_EQ(metrics_.counter_value("persistent_store.retries"), 3);
  EXPECT_EQ(metrics_.counter_value("persistent_store.corruptions"), 1);
}

TEST_F(PersistentRetryTest, MissingShardIsPermanentAndNeverRetried) {
  Status result = Status::Ok();
  store_->Retrieve(0, 99, [&](StatusOr<Checkpoint> out) { result = out.status(); });
  sim_.Run();
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
  EXPECT_EQ(metrics_.counter_value("persistent_store.retries"), 0);
}

TEST_F(DiskBackedPersistentStoreTest, CorruptShardRewritesDiskAndRetriesExhaust) {
  MetricsRegistry metrics;
  store_->set_metrics(&metrics);
  Checkpoint stamped = MakeCheckpoint(2, 8, 1'000'000, 64);
  stamped.StampPayloadCrc();
  store_->Save(std::move(stamped), 1, [](Status) {});
  sim_.Run();
  ASSERT_TRUE(store_->CorruptShard(2, 8, /*bit_index=*/7).ok());
  Status result = Status::Ok();
  store_->Retrieve(2, 8, [&](StatusOr<Checkpoint> out) { result = out.status(); });
  sim_.Run();
  // The disk file carries the stale CRC stamp over flipped payload bytes, so
  // the deserialize path rejects it on every attempt.
  EXPECT_EQ(result.code(), StatusCode::kDataLoss);
  EXPECT_EQ(metrics.counter_value("persistent_store.crc_failures"), 4);
  EXPECT_EQ(metrics.counter_value("persistent_store.retries"), 3);
}

// ---------------------------------------------------------------------------
// Shared checkpoint-tier surface (CheckpointStore + RetryPolicy)
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffDoublesUpToCap) {
  const RetryPolicy policy{/*max_attempts=*/5, /*backoff_base=*/Millis(100),
                           /*backoff_cap=*/Millis(400)};
  EXPECT_EQ(policy.BackoffBefore(0), 0);  // First attempt is immediate.
  EXPECT_EQ(policy.BackoffBefore(1), Millis(100));
  EXPECT_EQ(policy.BackoffBefore(2), Millis(200));
  EXPECT_EQ(policy.BackoffBefore(3), Millis(400));
  EXPECT_EQ(policy.BackoffBefore(4), Millis(400));  // Capped thereafter.
}

TEST(RetryPolicyTest, ExhaustionCountsAttemptsMade) {
  const RetryPolicy policy{/*max_attempts=*/3, Millis(1), Millis(8)};
  EXPECT_FALSE(policy.Exhausted(0));
  EXPECT_FALSE(policy.Exhausted(2));
  EXPECT_TRUE(policy.Exhausted(3));
  EXPECT_TRUE(policy.Exhausted(4));
}

TEST(CheckpointStoreInterfaceTest, BothTiersServeTheSharedReadSurface) {
  // A recovery path holding only CheckpointStore* must get identical
  // verified-read and corruption-detection semantics from either tier.
  Simulator sim;
  Machine machine(0, 0, P4d24xlarge());
  CpuCheckpointStore cpu(machine);
  ASSERT_TRUE(cpu.HostOwner(1, 1000).ok());
  PersistentStoreConfig config;
  config.aggregate_bandwidth = 1e9;
  PersistentStore persistent(sim, config);

  Checkpoint snapshot = MakeCheckpoint(1, 9, 1000);
  snapshot.StampPayloadCrc();
  ASSERT_TRUE(cpu.WriteComplete(snapshot).ok());
  persistent.SeedImmediate(snapshot, 1);

  CheckpointStore* const tiers[] = {&cpu, &persistent};
  EXPECT_EQ(tiers[0]->tier_name(), "cpu_memory");
  EXPECT_EQ(tiers[1]->tier_name(), "persistent");
  for (CheckpointStore* tier : tiers) {
    EXPECT_EQ(tier->LatestIteration(1), 9) << tier->tier_name();
    EXPECT_EQ(tier->LatestIteration(5), -1) << tier->tier_name();
    const std::optional<Checkpoint> verified = tier->LatestVerified(1);
    ASSERT_TRUE(verified.has_value()) << tier->tier_name();
    EXPECT_EQ(verified->payload, snapshot.payload) << tier->tier_name();
    // Bit-rot through the shared corruption door must make the tier refuse
    // to serve the replica.
    ASSERT_TRUE(tier->CorruptLatest(1, /*bit_index=*/21).ok()) << tier->tier_name();
    EXPECT_EQ(tier->LatestVerified(1), std::nullopt) << tier->tier_name();
    EXPECT_EQ(tier->CorruptLatest(5, 0).code(), StatusCode::kNotFound)
        << tier->tier_name();
  }
}

TEST_F(PersistentStoreTest, TransferCostMatchesMtNlgSanityCheck) {
  // Paper Section 2.2: MT-NLG's 530B-parameter model states over a 20 Gb/s
  // store take ~42 minutes.
  PersistentStoreConfig config;  // Default 20 Gb/s.
  PersistentStore fsx(sim_, config);
  const Bytes mt_nlg = 530'000'000'000LL * 12;
  EXPECT_NEAR(ToSeconds(fsx.TransferCost(mt_nlg)) / 60.0, 42.4, 0.5);
}

}  // namespace
}  // namespace gemini
