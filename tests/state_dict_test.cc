// Tests for named-tensor state dictionaries and the transformer model-state
// inventory (the 12 bytes/parameter cross-check).
#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/storage/state_dict.h"
#include "src/training/model_state.h"

namespace gemini {
namespace {

TensorSpec Spec(const std::string& name, std::vector<int64_t> shape,
                DType dtype = DType::kFloat32) {
  return TensorSpec{name, std::move(shape), dtype};
}

// ---------------------------------------------------------------------------
// TensorSpec
// ---------------------------------------------------------------------------

TEST(TensorSpecTest, ElementAndByteCounts) {
  EXPECT_EQ(Spec("a", {3, 4}).NumElements(), 12);
  EXPECT_EQ(Spec("a", {3, 4}).ByteSize(), 48);
  EXPECT_EQ(Spec("h", {8}, DType::kFloat16).ByteSize(), 16);
  EXPECT_EQ(Spec("scalarless", {}).NumElements(), 0);
}

TEST(TensorSpecTest, DTypeHelpers) {
  EXPECT_EQ(DTypeSize(DType::kFloat32), 4);
  EXPECT_EQ(DTypeSize(DType::kFloat16), 2);
  EXPECT_EQ(DTypeName(DType::kFloat32), "float32");
}

// ---------------------------------------------------------------------------
// Model-state inventory
// ---------------------------------------------------------------------------

TEST(ModelStateTest, TwelveBytesPerFormulaParameter) {
  // The explicit tensor enumeration must equal 12 bytes per formula
  // parameter: three fp32 copies of every parameter element.
  for (const ModelConfig& model : {Gpt2_20B(), Gpt2_100B()}) {
    const std::vector<TensorSpec> specs = BuildModelStateSpecs(model);
    const Bytes expected_at_least = model.FormulaParams() * 12;
    const double ratio = static_cast<double>(TotalBytes(specs)) /
                         static_cast<double>(expected_at_least);
    EXPECT_GT(ratio, 0.999) << model.name;
    EXPECT_LT(ratio, 1.01) << model.name;  // Layer norms add a little.
  }
}

TEST(ModelStateTest, ThreeStatesPerParameterTensor) {
  const std::vector<TensorSpec> specs = BuildModelStateSpecs(Gpt2_10B());
  // 6 tensors per layer + embedding + final LN, times 3 states.
  EXPECT_EQ(static_cast<int>(specs.size()), (6 * 46 + 2) * 3);
  std::set<std::string> names;
  for (const TensorSpec& spec : specs) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    EXPECT_EQ(spec.dtype, DType::kFloat32);
  }
  EXPECT_TRUE(names.contains("layers.0.attn.qkv.master"));
  EXPECT_TRUE(names.contains("layers.45.mlp.down.exp_avg_sq"));
  EXPECT_TRUE(names.contains("embedding.word.exp_avg"));
}

TEST(ModelStateTest, ShardsPartitionEveryTensorExactly) {
  const std::vector<TensorSpec> full = BuildModelStateSpecs(Gpt2_10B());
  const int shards = 16;
  Bytes sharded_total = 0;
  for (int rank = 0; rank < shards; ++rank) {
    sharded_total += TotalBytes(ShardSpecs(full, rank, shards));
  }
  EXPECT_EQ(sharded_total, TotalBytes(full));
}

TEST(ModelStateTest, ShardsAreBalanced) {
  const std::vector<TensorSpec> full = BuildModelStateSpecs(Gpt2_40B());
  const int shards = 16;
  Bytes smallest = TotalBytes(ShardSpecs(full, 0, shards));
  Bytes largest = smallest;
  for (int rank = 1; rank < shards; ++rank) {
    const Bytes bytes = TotalBytes(ShardSpecs(full, rank, shards));
    smallest = std::min(smallest, bytes);
    largest = std::max(largest, bytes);
  }
  EXPECT_LT(static_cast<double>(largest - smallest) / static_cast<double>(largest), 1e-3);
}

TEST(ModelStateTest, ShardNamesEncodeRank) {
  const std::vector<TensorSpec> shard = ShardSpecs(BuildModelStateSpecs(Gpt2_10B()), 3, 8);
  for (const TensorSpec& spec : shard) {
    EXPECT_NE(spec.name.find("/shard3-of-8"), std::string::npos) << spec.name;
    EXPECT_EQ(spec.shape.size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// StateDict
// ---------------------------------------------------------------------------

StateDict SmallDict() {
  StateDict dict;
  EXPECT_TRUE(dict.AddTensor(Spec("w", {2, 3}), {1, 2, 3, 4, 5, 6}).ok());
  EXPECT_TRUE(dict.AddTensor(Spec("b", {3}), {0.5f, -0.5f, 0.25f}).ok());
  return dict;
}

TEST(StateDictTest, AddAndLookup) {
  const StateDict dict = SmallDict();
  EXPECT_EQ(dict.num_tensors(), 2);
  EXPECT_TRUE(dict.Contains("w"));
  ASSERT_NE(dict.FindSpec("w"), nullptr);
  EXPECT_EQ(dict.FindSpec("w")->shape, (std::vector<int64_t>{2, 3}));
  ASSERT_NE(dict.FindData("b"), nullptr);
  EXPECT_EQ(dict.FindData("b")->size(), 3u);
  EXPECT_EQ(dict.FindSpec("missing"), nullptr);
  EXPECT_EQ(dict.TotalLogicalBytes(), 9 * 4);
}

TEST(StateDictTest, RejectsDuplicatesAndSizeMismatch) {
  StateDict dict = SmallDict();
  EXPECT_EQ(dict.AddTensor(Spec("w", {1}), {1.0f}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(dict.AddTensor(Spec("x", {4}), {1.0f}).code(), StatusCode::kInvalidArgument);
}

TEST(StateDictTest, SerializationRoundTrips) {
  const StateDict dict = SmallDict();
  const StatusOr<StateDict> restored = DeserializeStateDict(SerializeStateDict(dict));
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*restored, dict);
  EXPECT_EQ(restored->names(), dict.names());  // Order preserved.
}

TEST(StateDictTest, EmptyDictRoundTrips) {
  const StateDict dict;
  const StatusOr<StateDict> restored = DeserializeStateDict(SerializeStateDict(dict));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_tensors(), 0);
}

TEST(StateDictTest, CorruptionIsDetected) {
  std::vector<uint8_t> blob = SerializeStateDict(SmallDict());
  blob[blob.size() / 2] ^= 0x42;
  EXPECT_EQ(DeserializeStateDict(blob).status().code(), StatusCode::kDataLoss);
}

TEST(StateDictTest, TruncationIsDetected) {
  std::vector<uint8_t> blob = SerializeStateDict(SmallDict());
  blob.resize(blob.size() - 5);
  EXPECT_FALSE(DeserializeStateDict(blob).ok());
}

TEST(StateDictTest, RealisticShardRoundTrip) {
  // Build a populated ZeRO-3 shard with small synthetic tensors, serialize,
  // restore, compare bit-exactly.
  Rng rng(17);
  StateDict dict;
  ModelConfig tiny = Gpt2_10B();
  tiny.num_layers = 2;
  tiny.hidden_size = 8;
  tiny.intermediate_size = 32;
  tiny.vocab_size = 64;
  for (TensorSpec spec : ShardSpecs(BuildModelStateSpecs(tiny), 1, 4)) {
    std::vector<float> data(static_cast<size_t>(spec.NumElements()));
    for (float& value : data) {
      value = static_cast<float>(rng.NextDouble());
    }
    ASSERT_TRUE(dict.AddTensor(std::move(spec), std::move(data)).ok());
  }
  EXPECT_GT(dict.num_tensors(), 10);
  const StatusOr<StateDict> restored = DeserializeStateDict(SerializeStateDict(dict));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, dict);
}

}  // namespace
}  // namespace gemini
