// Chaos tests for the hardened recovery path: overlapping (cascading)
// failures merged into one recovery case, the per-rank retrieval retry
// cascade with CRC verification, and background replica re-protection. The
// strongest assertions compare post-recovery trainer state bit-exactly
// against an uninterrupted reference run and account for every injected
// FailureReport (none silently dropped).
#include <gtest/gtest.h>

#include "src/gemini/gemini_system.h"

namespace gemini {
namespace {

GeminiConfig SmallConfig() {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 32;
  config.seed = 2024;
  config.cloud.num_standby = 4;
  return config;
}

std::vector<std::vector<float>> ReferenceShards(const GeminiConfig& config, int64_t iterations) {
  ShardedTrainer reference(config.model, config.num_machines, config.payload_elements,
                           config.seed);
  for (int64_t i = 0; i < iterations; ++i) {
    reference.Step();
  }
  std::vector<std::vector<float>> shards;
  for (int rank = 0; rank < config.num_machines; ++rank) {
    shards.push_back(reference.shard(rank));
  }
  return shards;
}

void ExpectStateMatchesReference(GeminiSystem& system, const GeminiConfig& config,
                                 int64_t iterations) {
  const auto reference = ReferenceShards(config, iterations);
  for (int rank = 0; rank < config.num_machines; ++rank) {
    EXPECT_EQ(system.trainer().shard(rank), reference[static_cast<size_t>(rank)])
        << "rank " << rank << " state diverged from the uninterrupted reference";
  }
}

// Every report the root agent issued must be accounted for: it either became
// its own RecoveryRecord (fresh case or absorbed into one) or was recognized
// as a duplicate of an in-flight case. Nothing falls on the floor.
void ExpectNoDroppedReports(const GeminiSystem& system, const TrainingReport& report) {
  const int64_t reported = system.metrics().counter_value("agent.failures_reported");
  const int64_t deduplicated =
      system.metrics().counter_value("system.failure_reports.deduplicated");
  EXPECT_EQ(reported, static_cast<int64_t>(report.recoveries.size()) + deduplicated)
      << "some FailureReports were neither recorded nor deduplicated";
}

TEST(ChaosTest, SecondHardwareFailureDuringPeerRetrievalYieldsTwoRecords) {
  // Rank 7 dies; while its recovery is serializing, rank 5 (a different
  // placement group) dies too. The second failure must be absorbed into the
  // active case — not dropped — and both machines must come back from CPU
  // memory with bit-identical state, recorded as TWO RecoveryRecords.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
  system.failure_injector().ArmOnTrigger(kTriggerRecoveryStart, FailureType::kHardware, {5},
                                         Seconds(20));
  const auto report = system.TrainUntil(8, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_EQ(report->recoveries.size(), 2u) << "the absorbed failure must keep its own record";
  for (const RecoveryRecord& recovery : report->recoveries) {
    EXPECT_EQ(recovery.type, FailureType::kHardware);
    EXPECT_EQ(recovery.source, RecoverySource::kRemoteCpuMemory)
        << "groups {4,5} and {6,7} each kept a survivor; CPU memory suffices";
  }
  // The two records share the resolution but keep their own detection times.
  EXPECT_LT(report->recoveries[0].failure_detected_at,
            report->recoveries[1].failure_detected_at);
  EXPECT_EQ(report->recoveries[0].training_resumed_at,
            report->recoveries[1].training_resumed_at);
  EXPECT_GE(system.metrics().counter_value("system.recoveries.preempted"), 1);
  ExpectNoDroppedReports(system, *report);
  EXPECT_EQ(report->iterations_completed, 8);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(ChaosTest, FlakyHolderLinkResolvesFromCpuMemoryAfterRetry) {
  // m=2 leaves exactly one remote holder (rank 6) for the dead rank 7. The
  // 6->7 link drops the first retrieval transfer; the retry cascade must try
  // again (same holder — it is the only one) and still resolve from CPU
  // memory rather than falling back to the persistent tier.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
  // Pair (6,7) carries only retrieval traffic in this configuration (KV
  // servers are ranks 0-2), so failing its first use hits exactly the
  // retrieval transfer.
  auto drops_remaining = std::make_shared<int>(1);
  system.cluster().fabric().set_partition_check([drops_remaining](int src, int dst) {
    const bool pair67 = (src == 6 && dst == 7) || (src == 7 && dst == 6);
    if (pair67 && *drops_remaining > 0) {
      --*drops_remaining;
      return false;
    }
    return true;
  });
  const auto report = system.TrainUntil(8, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kRemoteCpuMemory)
      << "a transient link failure must not force a persistent-tier rollback";
  EXPECT_GE(system.metrics().counter_value("replicator.retries"), 1);
  ExpectNoDroppedReports(system, *report);
  EXPECT_EQ(report->iterations_completed, 8);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(ChaosTest, CorruptedReplicaForcesRetryCascadeToNextHolder) {
  // m=3 gives the dead rank 8 two remote holders (6 and 7). The first
  // holder's replica is bit-flipped right as retrieval starts; the CRC check
  // must reject it and the cascade must fetch the intact copy from the next
  // holder — still from CPU memory, still bit-identical.
  GeminiConfig config = SmallConfig();
  config.num_machines = 9;
  config.num_replicas = 3;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {8});
  system.failure_injector().ArmCorruptionOnTrigger(kTriggerRetrievalStart, /*holder_rank=*/6,
                                                   /*owner_rank=*/8, /*bit_index=*/7);
  const auto report = system.TrainUntil(8, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kRemoteCpuMemory);
  EXPECT_GE(system.metrics().counter_value("cpu_store.crc_failures"), 1)
      << "the corrupted replica must be caught by its CRC";
  EXPECT_GE(system.metrics().counter_value("replicator.retries"), 1);
  EXPECT_GE(system.metrics().counter_value("injector.corruptions_injected"), 1);
  ExpectNoDroppedReports(system, *report);
  EXPECT_EQ(report->iterations_completed, 8);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(ChaosTest, CorruptedDeltaChainLinkForcesCascadeToIntactHolder) {
  // Incremental mode, m=3: the dead rank 8 has two remote holders (6 and 7),
  // each protecting it with a redo chain (base + deltas). A mid-chain link on
  // the first holder is bit-flipped as retrieval starts; materialization must
  // reject the whole chain at the CRC gate (serving the intact prefix would
  // hand recovery a stale mix) and the retry cascade must fall back to the
  // next holder's verified chain — still CPU memory, still bit-identical.
  GeminiConfig config = SmallConfig();
  config.num_machines = 9;
  config.num_replicas = 3;
  config.incremental.enabled = true;
  config.incremental.chunk_elements = 4;
  // Keep every delta in the chain (no folds) so the armed link index exists.
  config.incremental.max_chain_length = 64;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {8});
  system.failure_injector().ArmDeltaCorruptionOnTrigger(kTriggerRetrievalStart,
                                                        /*holder_rank=*/6, /*owner_rank=*/8,
                                                        /*chain_index=*/0, /*bit_index=*/7);
  const auto report = system.TrainUntil(8, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kRemoteCpuMemory);
  EXPECT_GE(system.metrics().counter_value("injector.corruptions_injected"), 1)
      << "the armed chain link was never flipped (chain empty at the trigger?)";
  EXPECT_GE(system.metrics().counter_value("cpu_store.crc_failures"), 1)
      << "the corrupted chain must be rejected at materialization";
  EXPECT_GE(system.metrics().counter_value("replicator.retries"), 1);
  ExpectNoDroppedReports(system, *report);
  EXPECT_EQ(report->iterations_completed, 8);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(ChaosTest, SoftwareFailureWithCorruptLocalChainFallsBackToDurableBase) {
  // Software failure on rank 7: local CPU memory survives and would normally
  // serve the restore (GEMINI's case-2 plan is local CPU -> persistent; no
  // peer fetch). Rank 7's own delta chain for itself is corrupted right as
  // recovery starts, so the local materialization must fail its CRC gate and
  // the cascade must fall back to the last verified durable base in the
  // persistent tier — never a silently mixed-iteration state.
  GeminiConfig config = SmallConfig();
  config.incremental.enabled = true;
  config.incremental.chunk_elements = 4;
  config.incremental.max_chain_length = 64;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kSoftware, {7});
  system.failure_injector().ArmDeltaCorruptionOnTrigger(kTriggerRecoveryStart,
                                                        /*holder_rank=*/7, /*owner_rank=*/7,
                                                        /*chain_index=*/0, /*bit_index=*/11);
  const auto report = system.TrainUntil(8, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 1u);
  EXPECT_EQ(report->recoveries[0].type, FailureType::kSoftware);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kPersistentStorage)
      << "the corrupt local chain must push recovery to the durable tier";
  EXPECT_GE(system.metrics().counter_value("injector.corruptions_injected"), 1);
  EXPECT_GE(system.metrics().counter_value("cpu_store.crc_failures"), 1);
  EXPECT_LE(report->recoveries[0].rollback_iteration, report->recoveries[0].iteration_at_failure)
      << "the durable base can only be at or before the failure point";
  ExpectNoDroppedReports(system, *report);
  EXPECT_EQ(report->iterations_completed, 8);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(ChaosTest, SoftwareFailureDuringReprotectionBothRecover) {
  // A hardware failure leaves the replaced machine's replica slots empty;
  // the background re-protection pass starts at resume. A software failure
  // landing right then must recover independently, and re-protection must
  // still restore full replica sets and export the degraded window.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
  system.failure_injector().ArmOnTrigger(kTriggerReprotectionStart, FailureType::kSoftware, {3});
  const auto report = system.TrainUntil(10, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 2u);
  EXPECT_EQ(report->recoveries[0].type, FailureType::kHardware);
  EXPECT_EQ(report->recoveries[0].source, RecoverySource::kRemoteCpuMemory);
  EXPECT_EQ(report->recoveries[1].type, FailureType::kSoftware);
  // Re-protection completed and the vulnerability window was measured.
  EXPECT_GE(system.metrics().counter_value("system.reprotections"), 1);
  EXPECT_GT(system.metrics().gauge_value("system.redundancy.degraded_seconds"), 0.0);
  EXPECT_GE(system.metrics().counter_value("replicator.reprotected_replicas"), 1);
  // The replaced machine holds current replicas for all its owners again.
  for (int owner : {6, 7}) {
    EXPECT_GE(system.cpu_store(7).LatestIteration(owner), 0) << "owner " << owner;
  }
  ExpectNoDroppedReports(system, *report);
  EXPECT_EQ(report->iterations_completed, 10);
  ExpectStateMatchesReference(system, config, 10);
}

TEST(ChaosTest, CorrelatedBurstAcrossGroupsRecoversFromCpuMemory) {
  // Rack-style correlated burst: three machines in three different placement
  // groups die two seconds apart. Every group keeps a survivor, so all three
  // must come back from CPU memory, with every report accounted for.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectBurstAt(Minutes(4), FailureType::kHardware, {3, 5, 7},
                                          Seconds(2));
  const auto report = system.TrainUntil(8, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 1u);
  for (const RecoveryRecord& recovery : report->recoveries) {
    EXPECT_EQ(recovery.source, RecoverySource::kRemoteCpuMemory);
  }
  // All three victims were replaced and re-protected or refilled by later
  // foreground commits.
  EXPECT_EQ(system.cloud_operator().total_replacements(), 3);
  ExpectNoDroppedReports(system, *report);
  EXPECT_EQ(report->iterations_completed, 8);
  ExpectStateMatchesReference(system, config, 8);
}

TEST(ChaosTest, FailureSoakNoReportDroppedAndStateBitIdentical) {
  // Soak: a scripted storm of software and hardware failures (KV quorum
  // ranks 0-2 spared so detection keeps working), including back-to-back
  // arrivals that overlap recovery windows. Training must reach the target
  // with bit-identical state and zero dropped FailureReports.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  FailureInjector& injector = system.failure_injector();
  injector.InjectAt(Minutes(3), FailureType::kSoftware, {4});
  injector.InjectAt(Minutes(3) + Seconds(30), FailureType::kSoftware, {6});
  injector.InjectAt(Minutes(30), FailureType::kHardware, {7});
  injector.InjectAt(Minutes(30) + Seconds(45), FailureType::kSoftware, {3});
  injector.InjectAt(Minutes(70), FailureType::kHardware, {5});
  injector.InjectAt(Minutes(100), FailureType::kSoftware, {6});
  const auto report = system.TrainUntil(24, /*sim_deadline=*/Hours(8));
  ASSERT_TRUE(report.ok()) << report.status();

  EXPECT_EQ(report->iterations_completed, 24);
  EXPECT_GE(report->recoveries.size(), 4u);
  ExpectNoDroppedReports(system, *report);
  ExpectStateMatchesReference(system, config, 24);
  // Machines all healthy at the end of the storm.
  for (int rank = 0; rank < config.num_machines; ++rank) {
    EXPECT_TRUE(system.cluster().machine(rank).process_running()) << "rank " << rank;
  }
}

TEST(ChaosTest, ReprotectionRestoresReplicasWithoutSlowingTraining) {
  // Fig 7 invariant: background re-protection traffic must not change the
  // steady-state iteration time. Compare wall clock of the post-recovery
  // iterations against the analytic iteration time.
  GeminiConfig config = SmallConfig();
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(4), FailureType::kHardware, {7});
  const auto report = system.TrainUntil(12, /*sim_deadline=*/Hours(4));
  ASSERT_TRUE(report.ok()) << report.status();

  ASSERT_GE(report->recoveries.size(), 1u);
  const RecoveryRecord& recovery = report->recoveries[0];
  // Everything after resume ran at exactly the scheduled iteration time even
  // while re-protection streamed replicas in the background.
  const int64_t iterations_after_resume =
      report->iterations_completed - recovery.rollback_iteration;
  const TimeNs elapsed_after_resume =
      system.sim().now() - recovery.training_resumed_at;
  EXPECT_EQ(elapsed_after_resume, iterations_after_resume * report->iteration_time)
      << "re-protection must ride the idle spans, not stretch iterations";
  EXPECT_GE(system.metrics().counter_value("system.reprotections"), 1);
  EXPECT_GT(system.metrics().gauge_value("system.redundancy.degraded_seconds"), 0.0);
  ExpectStateMatchesReference(system, config, 12);
}

}  // namespace
}  // namespace gemini
