// Tests for model configurations (Table 2), the ZeRO-3 timeline generator,
// the online profiler, and the sharded trainer's recovery-replay property.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/training/model_config.h"
#include "src/training/profiler.h"
#include "src/training/timeline.h"
#include "src/training/trainer.h"

namespace gemini {
namespace {

// ---------------------------------------------------------------------------
// ModelConfig (Table 2)
// ---------------------------------------------------------------------------

TEST(ModelConfigTest, Table2HasAllRows) {
  EXPECT_EQ(Table2Models().size(), 8u);
  for (const char* name : {"GPT-2 10B", "GPT-2 20B", "GPT-2 40B", "RoBERTa 40B", "BERT 40B",
                           "GPT-2 100B", "RoBERTa 100B", "BERT 100B"}) {
    EXPECT_NE(FindModel(name), nullptr) << name;
  }
  EXPECT_EQ(FindModel("GPT-5"), nullptr);
}

TEST(ModelConfigTest, Gpt2100BMatchesTable2) {
  const ModelConfig model = Gpt2_100B();
  EXPECT_EQ(model.hidden_size, 8192);
  EXPECT_EQ(model.intermediate_size, 32768);
  EXPECT_EQ(model.num_layers, 124);
  EXPECT_EQ(model.attention_heads, 64);
  EXPECT_EQ(model.nominal_params, 100'000'000'000LL);
}

TEST(ModelConfigTest, Gpt210BMatchesTable2) {
  const ModelConfig model = Gpt2_10B();
  EXPECT_EQ(model.hidden_size, 2560);
  EXPECT_EQ(model.intermediate_size, 10240);
  EXPECT_EQ(model.num_layers, 46);
  EXPECT_EQ(model.attention_heads, 40);
}

TEST(ModelConfigTest, CheckpointSizeMatchesPaper) {
  // Section 5.2: the GPT2-100B checkpoint on each of 128 GPUs is 9.4 GB.
  const ModelConfig model = Gpt2_100B();
  const double gb = static_cast<double>(model.CheckpointBytesPerGpu(128)) / 1e9;
  EXPECT_NEAR(gb, 9.4, 0.05);
}

TEST(ModelConfigTest, CheckpointIs12BytesPerParam) {
  const ModelConfig model = Gpt2_40B();
  EXPECT_EQ(model.CheckpointBytesTotal(), model.nominal_params * 12);
  EXPECT_EQ(model.CheckpointBytesPerMachine(16), model.nominal_params * 12 / 16);
}

TEST(ModelConfigTest, FormulaParamsNearNominalForLargeModels) {
  // The transformer formula should land within ~5% of the headline size for
  // the big configurations (the 10B config is loosely named in the paper).
  for (ModelConfig (*make)() : {&Gpt2_100B, &Gpt2_40B, &Gpt2_20B}) {
    const ModelConfig model = make();
    const double ratio = static_cast<double>(model.FormulaParams()) /
                         static_cast<double>(model.nominal_params);
    EXPECT_GT(ratio, 0.95) << model.name;
    EXPECT_LT(ratio, 1.05) << model.name;
  }
}

TEST(ModelConfigTest, TokensPerGpu) {
  EXPECT_EQ(Gpt2_100B().TokensPerGpuPerIteration(), 8 * 512);
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

TimelineParams Params(const ModelConfig& model, const InstanceSpec& instance, int machines) {
  TimelineParams params;
  params.model = model;
  params.instance = instance;
  params.num_machines = machines;
  return params;
}

TEST(TimelineTest, SegmentsAreOrderedAndNonOverlapping) {
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_100B(), P4d24xlarge(), 16));
  ASSERT_FALSE(timeline.comm.empty());
  TimeNs cursor = 0;
  for (const CommSegment& segment : timeline.comm) {
    EXPECT_GE(segment.start, cursor);
    EXPECT_GT(segment.duration, 0);
    cursor = segment.end();
  }
  EXPECT_LE(cursor, timeline.iteration_time);
}

TEST(TimelineTest, IdlePlusBusyEqualsIteration) {
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_40B(), P3dn24xlarge(), 16));
  EXPECT_EQ(timeline.TotalIdle() + timeline.TotalCommBusy(), timeline.iteration_time);
}

TEST(TimelineTest, CalibrationAnchorsP4d) {
  // Anchor 1 (src/training/calibration.h): GPT-2 100B on 16x p4d lands near
  // the paper's 62 s iteration and ~12.5 s idle time.
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_100B(), P4d24xlarge(), 16));
  EXPECT_NEAR(ToSeconds(timeline.iteration_time), 62.0, 8.0);
  EXPECT_NEAR(ToSeconds(timeline.TotalIdle()), 12.5, 5.0);
}

TEST(TimelineTest, CalibrationAnchorsP3dn) {
  // Anchor 2: GPT-2 40B on 16x p3dn near 38-41 s iteration, ~4-6 s idle.
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_40B(), P3dn24xlarge(), 16));
  EXPECT_NEAR(ToSeconds(timeline.iteration_time), 40.0, 4.0);
  EXPECT_NEAR(ToSeconds(timeline.TotalIdle()), 5.0, 2.0);
}

TEST(TimelineTest, IdleSpansTileTheGaps) {
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_20B(), P3dn24xlarge(), 16));
  for (const IdleSpan& span : timeline.idle_spans) {
    EXPECT_GT(span.length, 0);
    EXPECT_GE(span.start, 0);
    EXPECT_LE(span.end(), timeline.iteration_time);
    // No comm segment may overlap an idle span.
    for (const CommSegment& segment : timeline.comm) {
      const bool disjoint = segment.end() <= span.start || segment.start >= span.end();
      EXPECT_TRUE(disjoint) << "comm segment overlaps idle span";
    }
  }
}

TEST(TimelineTest, MoreMachinesShrinkCompute) {
  // Per-GPU work halves when the (sharded) model spreads over twice the
  // machines... compute stays constant per GPU but communication grows; at
  // minimum the iteration time must stay positive and finite.
  const IterationTimeline t16 = BuildZero3Timeline(Params(Gpt2_100B(), P4d24xlarge(), 16));
  const IterationTimeline t32 = BuildZero3Timeline(Params(Gpt2_100B(), P4d24xlarge(), 32));
  EXPECT_GT(t16.iteration_time, 0);
  EXPECT_GT(t32.iteration_time, 0);
}

TEST(TimelineTest, LargestSpanMatchesPaperScale) {
  // The paper profiles a largest idle span of ~1.6 s (GPT-2 40B on p3dn);
  // the generated structure should produce sub-iteration spans of the same
  // order of magnitude (hundreds of ms to ~2 s).
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_40B(), P3dn24xlarge(), 16));
  TimeNs largest = 0;
  for (const IdleSpan& span : timeline.idle_spans) {
    largest = std::max(largest, span.length);
  }
  EXPECT_GT(largest, Millis(300));
  EXPECT_LT(largest, Seconds(3));
}

TEST(TimelineTest, ExtractIdleSpansHandlesEmptyComm) {
  const std::vector<IdleSpan> spans = ExtractIdleSpans({}, Seconds(10));
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start, 0);
  EXPECT_EQ(spans[0].length, Seconds(10));
}

TEST(TimelineTest, ExtractIdleSpansSkipsZeroGaps) {
  std::vector<CommSegment> comm = {
      {0, Seconds(1), CommKind::kForwardAllGather, 0},
      {Seconds(1), Seconds(1), CommKind::kForwardAllGather, 1},  // back-to-back
      {Seconds(3), Seconds(1), CommKind::kForwardAllGather, 2},
  };
  const std::vector<IdleSpan> spans = ExtractIdleSpans(comm, Seconds(5));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].start, Seconds(2));
  EXPECT_EQ(spans[0].length, Seconds(1));
  EXPECT_EQ(spans[1].start, Seconds(4));
}

class TimelineSweepTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*, int>> {};

TEST_P(TimelineSweepTest, InvariantsAcrossWorkloads) {
  const auto [model_name, instance_name, machines] = GetParam();
  const ModelConfig* model = FindModel(model_name);
  const InstanceSpec* instance = FindInstanceSpec(instance_name);
  ASSERT_NE(model, nullptr);
  ASSERT_NE(instance, nullptr);
  const IterationTimeline timeline = BuildZero3Timeline(Params(*model, *instance, machines));
  EXPECT_GT(timeline.iteration_time, 0);
  EXPECT_GT(timeline.TotalCommBusy(), 0);
  EXPECT_EQ(timeline.TotalIdle() + timeline.TotalCommBusy(), timeline.iteration_time);
  EXPECT_EQ(timeline.iteration_time, timeline.update_start + timeline.update_duration);
  EXPECT_FALSE(timeline.idle_spans.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TimelineSweepTest,
    ::testing::Values(
        std::make_tuple("GPT-2 10B", "p3dn.24xlarge", 16),
        std::make_tuple("GPT-2 20B", "p3dn.24xlarge", 16),
        std::make_tuple("GPT-2 40B", "p3dn.24xlarge", 16),
        std::make_tuple("RoBERTa 40B", "p3dn.24xlarge", 16),
        std::make_tuple("BERT 40B", "p3dn.24xlarge", 16),
        std::make_tuple("GPT-2 100B", "p4d.24xlarge", 16),
        std::make_tuple("RoBERTa 100B", "p4d.24xlarge", 16),
        std::make_tuple("BERT 100B", "p4d.24xlarge", 16),
        std::make_tuple("GPT-2 100B", "p4d.24xlarge", 4),
        std::make_tuple("GPT-2 100B", "p4d.24xlarge", 64)));

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

TEST(ProfilerTest, MeansTrackNominalSpans) {
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_100B(), P4d24xlarge(), 16));
  Rng rng(7);
  const ProfileResult result = ProfileIdleSpans(timeline, ProfilerConfig{}, rng);
  ASSERT_EQ(result.spans.size(), timeline.idle_spans.size());
  for (size_t i = 0; i < result.spans.size(); ++i) {
    const double nominal = static_cast<double>(timeline.idle_spans[i].length);
    EXPECT_NEAR(static_cast<double>(result.spans[i].length), nominal, nominal * 0.1);
    EXPECT_EQ(result.spans[i].start, timeline.idle_spans[i].start);
  }
}

TEST(ProfilerTest, NormalizedStddevBelowTenPercent) {
  // Section 5.4: "The normalized standard deviation of the measurements is
  // less than 10%."
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_100B(), P4d24xlarge(), 16));
  Rng rng(11);
  const ProfileResult result = ProfileIdleSpans(timeline, ProfilerConfig{}, rng);
  EXPECT_LT(result.max_normalized_stddev, 0.10);
  EXPECT_GT(result.max_normalized_stddev, 0.0);
  EXPECT_EQ(result.iterations_profiled, 20);
}

TEST(ProfilerTest, DeterministicGivenSeed) {
  const IterationTimeline timeline =
      BuildZero3Timeline(Params(Gpt2_40B(), P3dn24xlarge(), 16));
  Rng rng_a(3);
  Rng rng_b(3);
  const ProfileResult a = ProfileIdleSpans(timeline, ProfilerConfig{}, rng_a);
  const ProfileResult b = ProfileIdleSpans(timeline, ProfilerConfig{}, rng_b);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].length, b.spans[i].length);
  }
}

// ---------------------------------------------------------------------------
// ShardedTrainer
// ---------------------------------------------------------------------------

TEST(TrainerTest, StepAdvancesIterationAndMutatesState) {
  ShardedTrainer trainer(Gpt2_10B(), 4, 32, /*seed=*/1);
  const std::vector<float> before = trainer.shard(0);
  trainer.Step();
  EXPECT_EQ(trainer.iteration(), 1);
  EXPECT_NE(trainer.shard(0), before);
}

TEST(TrainerTest, DeterministicAcrossInstances) {
  ShardedTrainer a(Gpt2_10B(), 4, 32, 7);
  ShardedTrainer b(Gpt2_10B(), 4, 32, 7);
  for (int i = 0; i < 5; ++i) {
    a.Step();
    b.Step();
  }
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(a.shard(rank), b.shard(rank));
  }
}

TEST(TrainerTest, DifferentSeedsDiverge) {
  ShardedTrainer a(Gpt2_10B(), 2, 32, 1);
  ShardedTrainer b(Gpt2_10B(), 2, 32, 2);
  a.Step();
  b.Step();
  EXPECT_NE(a.shard(0), b.shard(0));
}

TEST(TrainerTest, CheckpointCarriesLogicalSize) {
  ShardedTrainer trainer(Gpt2_100B(), 16, 32, 1);
  const Checkpoint checkpoint = trainer.MakeCheckpoint(3);
  EXPECT_EQ(checkpoint.owner_rank, 3);
  EXPECT_EQ(checkpoint.iteration, 0);
  EXPECT_EQ(checkpoint.logical_bytes, Gpt2_100B().CheckpointBytesPerMachine(16));
  EXPECT_EQ(checkpoint.payload, trainer.shard(3));
}

// The core recovery-correctness property: restore-at-k then replay-to-j is
// bit-identical to an uninterrupted run. Parameterized over checkpoint and
// target iterations.
class TrainerReplayTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrainerReplayTest, RestoreThenReplayIsBitExact) {
  const auto [checkpoint_at, replay_to] = GetParam();
  const int num_machines = 5;
  ShardedTrainer reference(Gpt2_20B(), num_machines, 64, 17);
  ShardedTrainer crashed(Gpt2_20B(), num_machines, 64, 17);

  // Run both to the checkpoint; snapshot the crashed one.
  for (int i = 0; i < checkpoint_at; ++i) {
    reference.Step();
    crashed.Step();
  }
  std::vector<Checkpoint> snapshot;
  for (int rank = 0; rank < num_machines; ++rank) {
    snapshot.push_back(crashed.MakeCheckpoint(rank));
  }
  // The crashed trainer keeps going past the checkpoint, then "fails".
  for (int i = checkpoint_at; i < replay_to; ++i) {
    reference.Step();
    crashed.Step();
  }
  crashed.Step();  // Extra divergence past the failure point.
  ASSERT_TRUE(crashed.RestoreAll(snapshot).ok());
  EXPECT_EQ(crashed.iteration(), checkpoint_at);
  // Replay.
  while (crashed.iteration() < replay_to) {
    crashed.Step();
  }
  for (int rank = 0; rank < num_machines; ++rank) {
    EXPECT_EQ(crashed.shard(rank), reference.shard(rank)) << "rank " << rank << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Replays, TrainerReplayTest,
                         ::testing::Values(std::make_tuple(0, 3), std::make_tuple(2, 2),
                                           std::make_tuple(2, 6), std::make_tuple(5, 9),
                                           std::make_tuple(1, 10)));

TEST(TrainerTest, RestoreAllRejectsMixedIterations) {
  ShardedTrainer trainer(Gpt2_10B(), 2, 16, 1);
  std::vector<Checkpoint> set;
  set.push_back(trainer.MakeCheckpoint(0));
  trainer.Step();
  set.push_back(trainer.MakeCheckpoint(1));
  EXPECT_EQ(trainer.RestoreAll(set).code(), StatusCode::kFailedPrecondition);
}

TEST(TrainerTest, RestoreAllRejectsDuplicateRanks) {
  ShardedTrainer trainer(Gpt2_10B(), 2, 16, 1);
  std::vector<Checkpoint> set = {trainer.MakeCheckpoint(0), trainer.MakeCheckpoint(0)};
  EXPECT_EQ(trainer.RestoreAll(set).code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, RestoreAllRejectsWrongCount) {
  ShardedTrainer trainer(Gpt2_10B(), 3, 16, 1);
  std::vector<Checkpoint> set = {trainer.MakeCheckpoint(0)};
  EXPECT_EQ(trainer.RestoreAll(set).code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, RestoreShardRejectsSizeMismatch) {
  ShardedTrainer trainer(Gpt2_10B(), 2, 16, 1);
  Checkpoint checkpoint = trainer.MakeCheckpoint(0);
  checkpoint.payload = checkpoint.payload.Slice(0, 8);
  EXPECT_EQ(trainer.RestoreShard(checkpoint).code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, RestoreShardRejectsBadRank) {
  ShardedTrainer trainer(Gpt2_10B(), 2, 16, 1);
  Checkpoint checkpoint = trainer.MakeCheckpoint(0);
  checkpoint.owner_rank = 9;
  EXPECT_EQ(trainer.RestoreShard(checkpoint).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gemini
