// Observability layer: metric semantics, deterministic JSON serialization,
// run tracing, and the end-to-end guarantees the layer makes — same-seed
// runs export byte-identical traces, and recovery spans reconcile with the
// RecoveryRecord the system reports.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/json_writer.h"
#include "src/gemini/gemini_system.h"
#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"
#include "src/sim/simulator.h"

namespace gemini {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, CompactObjectAndArray) {
  JsonWriter json;
  json.BeginObject();
  json.Key("a").Value(1);
  json.Key("b").BeginArray();
  json.Value("x").Value(true).Value(2.5);
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(), R"({"a":1,"b":["x",true,2.5]})");
}

TEST(JsonWriterTest, IndentedOutput) {
  JsonWriter json(2);
  json.BeginObject();
  json.Key("k").Value("v");
  json.EndObject();
  EXPECT_EQ(json.str(), "{\n  \"k\": \"v\"\n}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, DoubleFormattingIsShortestRoundTrip) {
  EXPECT_EQ(JsonWriter::FormatDouble(62.0), "62");
  EXPECT_EQ(JsonWriter::FormatDouble(0.5), "0.5");
  EXPECT_EQ(JsonWriter::FormatDouble(1.0 / 0.0), "null");
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAccumulatesAndReadsBackByName) {
  MetricsRegistry metrics;
  metrics.counter("a.events").Increment();
  metrics.counter("a.events").Increment(4);
  EXPECT_EQ(metrics.counter_value("a.events"), 5);
  EXPECT_EQ(metrics.counter_value("never.touched"), 0);
  // The returned reference is stable: creating more metrics must not move it.
  Counter& counter = metrics.counter("a.events");
  for (int i = 0; i < 100; ++i) {
    metrics.counter("filler." + std::to_string(i));
  }
  counter.Increment();
  EXPECT_EQ(metrics.counter_value("a.events"), 6);
}

TEST(MetricsTest, GaugeSetsAndAdds) {
  MetricsRegistry metrics;
  metrics.gauge("queue.depth").Set(3.0);
  metrics.gauge("queue.depth").Add(-1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge_value("queue.depth"), 2.0);
}

TEST(MetricsTest, HistogramTracksMomentsAndQuantiles) {
  MetricsRegistry metrics;
  Histogram& histogram = metrics.histogram("latency");
  for (int i = 1; i <= 100; ++i) {
    histogram.Observe(static_cast<double>(i));
  }
  EXPECT_EQ(histogram.count(), 100);
  EXPECT_DOUBLE_EQ(histogram.stat().mean(), 50.5);
  EXPECT_NEAR(histogram.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(histogram.Quantile(0.99), 99.0, 1.0);
  ASSERT_NE(metrics.find_histogram("latency"), nullptr);
  EXPECT_EQ(metrics.find_histogram("absent"), nullptr);
}

TEST(MetricsTest, ToJsonWalksNamesInSortedOrder) {
  MetricsRegistry metrics;
  metrics.counter("z.last").Increment(2);
  metrics.counter("a.first").Increment();
  metrics.gauge("m.level").Set(1.5);
  const std::string json = metrics.ToJson();
  EXPECT_EQ(json,
            R"({"counters":{"a.first":1,"z.last":2},"gauges":{"m.level":1.5},)"
            R"("histograms":{}})");
}

// ---------------------------------------------------------------------------
// RunTracer
// ---------------------------------------------------------------------------

TEST(RunTracerTest, RecordsEventsOnSimulatedTime) {
  Simulator sim;
  RunTracer tracer(sim);
  sim.ScheduleAt(Seconds(2), [&] { tracer.Event("tick", "test"); });
  sim.Run();
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].start, Seconds(2));
  EXPECT_EQ(tracer.records()[0].kind, TraceRecordKind::kInstant);
}

TEST(RunTracerTest, SpansKeepDurationAndAttrs) {
  Simulator sim;
  RunTracer tracer(sim);
  tracer.Span("work", "test", Seconds(1), Seconds(3),
              {TraceAttr::Int("iteration", 7), TraceAttr::Text("source", "local")});
  const TraceRecord* record = tracer.Find("work");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->duration, Seconds(2));
  ASSERT_NE(record->FindAttr("iteration"), nullptr);
  EXPECT_EQ(record->FindAttr("iteration")->number, 7);
  ASSERT_NE(record->FindAttr("source"), nullptr);
  EXPECT_EQ(record->FindAttr("source")->text, "local");
  EXPECT_EQ(record->FindAttr("missing"), nullptr);
  EXPECT_EQ(tracer.CountNamed("work"), 1);
}

TEST(RunTracerTest, DisabledTracerDropsRecords) {
  Simulator sim;
  RunTracer tracer(sim);
  tracer.set_enabled(false);
  tracer.Event("dropped", "test");
  EXPECT_TRUE(tracer.records().empty());
}

TEST(RunTracerTest, ChromeTraceExportShape) {
  Simulator sim;
  RunTracer tracer(sim);
  tracer.Span("span", "rowA", Micros(1), Micros(3), {TraceAttr::Real("ratio", 0.5)});
  tracer.Event("instant", "rowB");
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ratio\":0.5"), std::string::npos);
  // Balanced braces => parseable structure.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(RunTracerTest, JsonlExportOneRecordPerLine) {
  Simulator sim;
  RunTracer tracer(sim);
  tracer.Span("a", "t", 0, Seconds(1));
  tracer.Event("b", "t");
  const std::string jsonl = tracer.ToJsonl();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"instant\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: GeminiSystem exports
// ---------------------------------------------------------------------------

GeminiConfig ObsConfig() {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 16;
  config.seed = 2024;
  config.cloud.num_standby = 2;
  return config;
}

struct RunExports {
  std::string chrome_trace;
  std::string jsonl;
  std::string metrics;
};

RunExports RunWithHardwareFailure() {
  GeminiSystem system(ObsConfig());
  EXPECT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(3), FailureType::kHardware, {6});
  const auto report = system.TrainUntil(6);
  EXPECT_TRUE(report.ok());
  RunExports exports;
  exports.chrome_trace = system.tracer().ToChromeTraceJson();
  exports.jsonl = system.tracer().ToJsonl();
  exports.metrics = system.metrics().ToJson();
  return exports;
}

TEST(ObsIntegrationTest, SameSeedRunsExportByteIdenticalArtifacts) {
  const RunExports first = RunWithHardwareFailure();
  const RunExports second = RunWithHardwareFailure();
  EXPECT_EQ(first.chrome_trace, second.chrome_trace)
      << "Chrome-trace export must be byte-identical across same-seed runs";
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.metrics, second.metrics);
  // Not trivially empty: the run recorded real spans and counters.
  EXPECT_NE(first.jsonl.find("\"name\":\"iteration\""), std::string::npos);
  EXPECT_NE(first.metrics.find("\"trainer.steps\""), std::string::npos);
}

TEST(ObsIntegrationTest, RecoverySpansReconcileWithRecoveryRecord) {
  GeminiSystem system(ObsConfig());
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(3), FailureType::kHardware, {6});
  const auto report = system.TrainUntil(6);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->recoveries.size(), 1u);
  const RecoveryRecord& record = report->recoveries[0];

  const RunTracer& tracer = system.tracer();
  // The failure->resume window appears as one "recovery" span whose timing
  // is the RecoveryRecord's, by construction.
  const TraceRecord* recovery = tracer.Find("recovery");
  ASSERT_NE(recovery, nullptr);
  EXPECT_EQ(recovery->start, record.failure_detected_at);
  EXPECT_EQ(recovery->duration, record.downtime);
  ASSERT_NE(recovery->FindAttr("downtime_ns"), nullptr);
  EXPECT_EQ(recovery->FindAttr("downtime_ns")->number, record.downtime);
  ASSERT_NE(recovery->FindAttr("wasted_time_ns"), nullptr);
  EXPECT_EQ(recovery->FindAttr("wasted_time_ns")->number, record.wasted_time);
  ASSERT_NE(recovery->FindAttr("rollback_iteration"), nullptr);
  EXPECT_EQ(recovery->FindAttr("rollback_iteration")->number, record.rollback_iteration);
  ASSERT_NE(recovery->FindAttr("source"), nullptr);
  EXPECT_EQ(recovery->FindAttr("source")->text, RecoverySourceName(record.source));

  // Detection, retrieval, and resume all left their marks, in causal order
  // and inside the recovery window.
  const TraceRecord* detected = tracer.Find("failure_detected");
  ASSERT_NE(detected, nullptr);
  EXPECT_EQ(detected->start, record.failure_detected_at);
  const TraceRecord* retrieval = tracer.Find("retrieval");
  ASSERT_NE(retrieval, nullptr);
  EXPECT_GE(retrieval->start, record.failure_detected_at);
  EXPECT_LE(retrieval->start + retrieval->duration, record.training_resumed_at);
  const TraceRecord* resumed = tracer.Find("training_resumed");
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->start, record.training_resumed_at);

  // Metrics agree with the report.
  const MetricsRegistry& metrics = system.metrics();
  EXPECT_EQ(metrics.counter_value("system.recoveries"), 1);
  EXPECT_EQ(metrics.counter_value("system.recoveries.remote_cpu"),
            record.source == RecoverySource::kRemoteCpuMemory ? 1 : 0);
  EXPECT_EQ(metrics.counter_value("system.failures_detected"), 1);
  EXPECT_EQ(metrics.counter_value("injector.failures_injected"), 1);
  EXPECT_EQ(metrics.counter_value("cloud.replacements"), 1);
  EXPECT_EQ(metrics.counter_value("cloud.standby_activations"), 1);
  EXPECT_GE(metrics.counter_value("agent.heartbeat_misses"), 1);
  EXPECT_EQ(metrics.counter_value("trainer.restores"), 1);
  const Histogram* downtime = metrics.find_histogram("system.recovery.downtime_seconds");
  ASSERT_NE(downtime, nullptr);
  EXPECT_EQ(downtime->count(), 1);
  EXPECT_DOUBLE_EQ(downtime->stat().mean(), static_cast<double>(record.downtime) / 1e9);
}

TEST(ObsIntegrationTest, FailureFreeRunHasNoRecoveryRecords) {
  GeminiSystem system(ObsConfig());
  ASSERT_TRUE(system.Initialize().ok());
  ASSERT_TRUE(system.TrainUntil(4).ok());
  EXPECT_EQ(system.tracer().CountNamed("recovery"), 0);
  EXPECT_EQ(system.tracer().CountNamed("failure_detected"), 0);
  EXPECT_EQ(system.tracer().CountNamed("iteration"), 4);
  EXPECT_EQ(system.metrics().counter_value("system.recoveries"), 0);
  // The KV store elected a leader and proposals flowed (agent heartbeats).
  EXPECT_GE(system.metrics().counter_value("kv.elections_won"), 1);
  EXPECT_GT(system.metrics().counter_value("kv.proposals"), 0);
}

}  // namespace
}  // namespace gemini
