// Tests for src/common: status, units, rng, stats, crc32, thread pool,
// table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <set>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table_printer.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"

namespace gemini {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "not_found: missing thing");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = InternalError("boom");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status UseMacros(int x, int& out) {
  GEMINI_ASSIGN_OR_RETURN(const int half, Half(x));
  GEMINI_RETURN_IF_ERROR(Status::Ok());
  out = half;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseMacros(3, out).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Units
// ---------------------------------------------------------------------------

TEST(UnitsTest, ByteConstants) {
  EXPECT_EQ(kKiB, 1024);
  EXPECT_EQ(kMiB, 1024 * 1024);
  EXPECT_EQ(GiB(2), 2LL * 1024 * 1024 * 1024);
  EXPECT_EQ(MiB(1.5), 1536 * 1024);
}

TEST(UnitsTest, TimeConstants) {
  EXPECT_EQ(Seconds(1), kSecond);
  EXPECT_EQ(Minutes(2), 120 * kSecond);
  EXPECT_EQ(Hours(1), 3600 * kSecond);
  EXPECT_DOUBLE_EQ(ToSeconds(Millis(1500)), 1.5);
}

TEST(UnitsTest, BandwidthConversionRoundTrips) {
  const BytesPerSecond bw = GbpsToBytesPerSecond(400);
  EXPECT_DOUBLE_EQ(bw, 50e9);
  EXPECT_DOUBLE_EQ(BytesPerSecondToGbps(bw), 400.0);
}

TEST(UnitsTest, TransferTimeMatchesArithmetic) {
  // 50 GB at 50 GB/s = 1 s.
  EXPECT_EQ(TransferTime(50'000'000'000, 50e9), kSecond);
  EXPECT_EQ(TransferTime(0, 1e9), 0);
}

TEST(UnitsTest, TransferTimeRoundsUp) {
  // 1 byte at 1 GB/s is 1 ns exactly; 3 bytes at 2 GB/s rounds up to 2 ns.
  EXPECT_EQ(TransferTime(1, 1e9), 1);
  EXPECT_EQ(TransferTime(3, 2e9), 2);
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(FormatBytes(GiB(9.4)), "9.40 GiB");
}

TEST(UnitsTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(Micros(12)), "12.000 us");
  EXPECT_EQ(FormatDuration(Millis(3)), "3.000 ms");
  EXPECT_EQ(FormatDuration(Seconds(62)), "1.03 min");
  EXPECT_EQ(FormatDuration(Hours(3)), "3.00 h");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, NextU64BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextU64Below(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasExpectedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(stat.mean(), 5.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(10, 4);
    ASSERT_EQ(sample.size(), 4u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 4u);
    for (const int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(23);
  const std::vector<int> sample = rng.SampleWithoutReplacement(6, 6);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(25);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng forked = a.Fork();
  EXPECT_NE(a.NextU64(), forked.NextU64());
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.stddev(), 0.0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat stat;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(x);
  }
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 9.0);
  EXPECT_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, NormalizedStddev) {
  RunningStat stat;
  stat.Add(9.0);
  stat.Add(11.0);
  EXPECT_NEAR(stat.normalized_stddev(), std::sqrt(2.0) / 10.0, 1e-12);
}

TEST(QuantileSketchTest, QuantilesOfKnownData) {
  QuantileSketch sketch;
  for (int i = 1; i <= 100; ++i) {
    sketch.Add(i);
  }
  EXPECT_NEAR(sketch.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(sketch.Quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(sketch.Quantile(0.5), 50.5, 1e-9);
}

TEST(QuantileSketchTest, InterleavedAddAndQuery) {
  QuantileSketch sketch;
  sketch.Add(10.0);
  EXPECT_EQ(sketch.Quantile(0.5), 10.0);
  sketch.Add(20.0);
  EXPECT_EQ(sketch.Quantile(1.0), 20.0);
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t oneshot = Crc32(data.data(), data.size());
  uint32_t crc = 0;
  crc = Crc32Update(crc, data.data(), 10);
  crc = Crc32Update(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, oneshot);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "checkpoint payload bytes";
  const uint32_t clean = Crc32(data.data(), data.size());
  data[5] ^= 1;
  EXPECT_NE(Crc32(data.data(), data.size()), clean);
}

TEST(Crc32Test, IncrementalMatchesOneShotAtEverySplitPoint) {
  // The sliced kernel takes different code paths depending on how the length
  // decomposes into 8-byte blocks plus a tail, and Crc32Update must chain
  // across any split — including splits that land mid-block.
  Rng rng(0x51C3DA7A);
  std::vector<uint8_t> data(97);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  const uint32_t oneshot = Crc32(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32Update(0, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, oneshot) << "split at " << split;
  }
}

TEST(Crc32Test, SlicedKernelMatchesBytewiseReference) {
  // Slicing-by-8 must be a pure speedup: bit-identical to the byte-at-a-time
  // reference on every length (0..64 exercises all block/tail combinations)
  // and on larger random buffers.
  Rng rng(0xC4C32);
  for (size_t length = 0; length <= 64; ++length) {
    std::vector<uint8_t> data(length);
    for (auto& byte : data) {
      byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    EXPECT_EQ(Crc32Update(0, data.data(), length),
              Crc32UpdateBytewise(0, data.data(), length))
        << "length " << length;
  }
  std::vector<uint8_t> big(64 * 1024 + 13);
  for (auto& byte : big) {
    byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  EXPECT_EQ(Crc32Update(0, big.data(), big.size()),
            Crc32UpdateBytewise(0, big.data(), big.size()));
  // Also with a nonzero running CRC, as the incremental path produces.
  const uint32_t seed_crc = Crc32(big.data(), 17);
  EXPECT_EQ(Crc32Update(seed_crc, big.data(), big.size()),
            Crc32UpdateBytewise(seed_crc, big.data(), big.size()));
}

TEST(Crc32Test, ImplementationNameIsKnownAndStable) {
  const char* name = Crc32ImplementationName();
  ASSERT_NE(name, nullptr);
  const std::string impl(name);
  EXPECT_TRUE(impl == "x86-pclmul" || impl == "armv8-crc32" || impl == "slicing-by-8")
      << impl;
  // Resolved once: every later call reports the same implementation.
  EXPECT_EQ(std::string(Crc32ImplementationName()), impl);
  EXPECT_EQ(Crc32ActiveKernel(), Crc32ActiveKernel());
}

TEST(Crc32Test, DispatchedKernelsAgreeOnRandomizedBuffers) {
  // All three implementations (hardware when dispatched, slicing-by-8,
  // bytewise) must be bit-identical on random lengths up to 1 MiB, at
  // unaligned starting offsets, and with nonzero running CRCs. The hardware
  // kernels only engage above their small-buffer cutoffs, so the length
  // distribution mixes tiny tails with multi-fold bodies.
  Rng rng(0xD15Fa7c4);
  const Crc32UpdateFn active = Crc32ActiveKernel();
  std::vector<uint8_t> arena(1 << 20);
  for (auto& byte : arena) {
    byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  for (int trial = 0; trial < 64; ++trial) {
    const size_t offset = static_cast<size_t>(rng.UniformInt(0, 31));
    const size_t max_length = arena.size() - offset;
    // Half the trials stress the small/cutoff lengths, half the long ones.
    const size_t length = trial % 2 == 0
                              ? static_cast<size_t>(rng.UniformInt(0, 192))
                              : static_cast<size_t>(rng.UniformInt(
                                    0, static_cast<int>(max_length)));
    const uint8_t* data = arena.data() + offset;
    const uint32_t seed_crc =
        trial % 3 == 0 ? 0u : static_cast<uint32_t>(rng.NextU64Below(1ull << 32));
    const uint32_t reference = Crc32UpdateBytewise(seed_crc, data, length);
    EXPECT_EQ(Crc32UpdateSlicing8(seed_crc, data, length), reference)
        << "slicing8 trial " << trial << " offset " << offset << " length " << length;
    EXPECT_EQ(active(seed_crc, data, length), reference)
        << Crc32ImplementationName() << " trial " << trial << " offset " << offset
        << " length " << length;
  }
}

TEST(Crc32Test, DispatchedKernelChainsAcrossArbitrarySplits) {
  // Incremental updates through the dispatched kernel must agree with the
  // bytewise reference at any split point, including splits inside the
  // hardware kernels' fold blocks.
  Rng rng(0x5E63E575);
  std::vector<uint8_t> data(4096 + 21);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  const uint32_t reference = Crc32UpdateBytewise(0, data.data(), data.size());
  const Crc32UpdateFn active = Crc32ActiveKernel();
  for (int trial = 0; trial < 48; ++trial) {
    const size_t split = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(data.size())));
    uint32_t crc = active(0, data.data(), split);
    crc = active(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, reference) << "split at " << split;
  }
}

TEST(Crc32Test, CombineMatchesWholeBufferCrc) {
  Rng rng(0xC0B13E);
  std::vector<uint8_t> data(1 << 16);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  const uint32_t whole = Crc32(data.data(), data.size());
  for (const size_t split : {size_t{0}, size_t{1}, size_t{63}, size_t{1024},
                             size_t{40000}, data.size()}) {
    const uint32_t a = Crc32(data.data(), split);
    const uint32_t b = Crc32(data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32Combine(a, b, data.size() - split), whole) << "split " << split;
  }
  // Zero-length second half is the identity.
  EXPECT_EQ(Crc32Combine(whole, 0, 0), whole);
}

TEST(Crc32Test, ParallelMatchesSequentialAtEveryThreadCount) {
  Rng rng(0x9A12A11E1);
  std::vector<uint8_t> data(3 << 20 | 0x155);  // Odd size: uneven segments.
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  const uint32_t sequential = Crc32(data.data(), data.size());
  EXPECT_EQ(Crc32Parallel(data.data(), data.size(), nullptr), sequential);
  for (const int threads : {1, 2, 3, 4, 7}) {
    ThreadPool pool(threads);
    EXPECT_EQ(Crc32Parallel(data.data(), data.size(), &pool), sequential)
        << threads << " threads";
  }
  // Small buffers skip the fan-out but still produce the same value.
  ThreadPool pool(4);
  EXPECT_EQ(Crc32Parallel(data.data(), 100, &pool), Crc32(data.data(), 100));
  EXPECT_EQ(Crc32Parallel(nullptr, 0, &pool), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SingleThreadRunsInlineInIndexOrder) {
  // threads <= 1 must spawn no workers and execute bodies inline, in index
  // order — the determinism contract the simulator-facing default relies on.
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(17, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 20u * 17u);
  pool.ParallelFor(0, [&](size_t) { total.fetch_add(1); });  // No-op.
  EXPECT_EQ(total.load(), 20u * 17u);
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name      | value"), std::string::npos);
  EXPECT_NE(out.find("long-name | 22"), std::string::npos);
}

TEST(TablePrinterTest, PadsMissingCells) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_NE(table.ToString().find("1"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<int64_t>(42)), "42");
}

}  // namespace
}  // namespace gemini
