// Randomized cross-subsystem soak tests: each seed drives a different
// schedule of failures, chunkings, or membership churn, and the invariants
// must hold for all of them. These are the "would I trust this in
// production" tests — they combine subsystems the unit suites exercise in
// isolation.
#include <gtest/gtest.h>

// GCC 12's inliner raises a false-positive -Wrestrict for std::string
// operator+ with a std::to_string temporary at -O2 (same optimizer-diagnostic
// family as GCC bug 105705, handled the same way in serializer.cc).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include "src/common/rng.h"
#include "src/gemini/gemini_system.h"
#include "src/gemini/replicator.h"
#include "src/kvstore/kv_store.h"
#include "src/schedule/partition.h"
#include "src/training/trainer.h"

namespace gemini {
namespace {

// ---------------------------------------------------------------------------
// Replicator x random chunkings: bytes must reassemble exactly no matter how
// Algorithm 2 (or anything else) slices the checkpoint.
// ---------------------------------------------------------------------------

class ReplicatorChunkFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ReplicatorChunkFuzz, ArbitraryChunkingsReassembleExactly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6271 + 3);
  const int machines = 4;
  Simulator sim;
  FabricConfig fabric_config;
  fabric_config.link_bandwidth = P4d24xlarge().network_bandwidth;
  Cluster cluster(sim, machines, P4d24xlarge(), fabric_config);
  const PlacementPlan placement = *BuildMixedPlacement(machines, 2);
  ShardedTrainer trainer(Gpt2_10B(), machines, 128, rng.NextU64());
  for (int step = 0; step < static_cast<int>(rng.UniformInt(0, 5)); ++step) {
    trainer.Step();
  }
  const Bytes replica = Gpt2_10B().CheckpointBytesPerMachine(machines);
  std::vector<std::unique_ptr<CpuCheckpointStore>> stores;
  std::vector<CpuCheckpointStore*> store_pointers;
  for (int rank = 0; rank < machines; ++rank) {
    stores.push_back(std::make_unique<CpuCheckpointStore>(cluster.machine(rank)));
    store_pointers.push_back(stores.back().get());
  }
  for (int owner = 0; owner < machines; ++owner) {
    for (const int holder : placement.replica_sets[static_cast<size_t>(owner)]) {
      ASSERT_TRUE(stores[static_cast<size_t>(holder)]->HostOwner(owner, replica).ok());
    }
  }
  // Random chunking: random count, random uneven sizes covering the replica.
  std::vector<ChunkAssignment> chunks;
  Bytes offset = 0;
  const int target_chunks = static_cast<int>(rng.UniformInt(1, 64));
  int index = 0;
  while (offset < replica) {
    Bytes size = std::min<Bytes>(replica - offset,
                                 rng.UniformInt(1, 2 * replica / target_chunks + 1));
    chunks.push_back(ChunkAssignment{index++, size, 0, offset});
    offset += size;
  }

  std::vector<Checkpoint> snapshots;
  for (int rank = 0; rank < machines; ++rank) {
    snapshots.push_back(trainer.MakeCheckpoint(rank));
  }
  ReplicatorConfig config;
  config.num_buffers = static_cast<int>(rng.UniformInt(1, 8));
  std::optional<ReplicationOutcome> outcome;
  ReplicateSnapshot(cluster, placement, store_pointers, snapshots, chunks, config,
                    [&](ReplicationOutcome result) { outcome = result; });
  sim.Run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->status.ok()) << outcome->status;
  for (int owner = 0; owner < machines; ++owner) {
    for (const int holder : placement.replica_sets[static_cast<size_t>(owner)]) {
      const auto stored = stores[static_cast<size_t>(holder)]->Latest(owner);
      ASSERT_TRUE(stored.has_value());
      EXPECT_EQ(*stored, snapshots[static_cast<size_t>(owner)])
          << "owner " << owner << " at holder " << holder << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicatorChunkFuzz, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// KV store churn: machines die and resurrect at random; whenever a quorum
// exists long enough, exactly one leader emerges and committed data is never
// lost.
// ---------------------------------------------------------------------------

class KvChurnFuzz : public ::testing::TestWithParam<int> {};

TEST_P(KvChurnFuzz, CommittedDataSurvivesMembershipChurn) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 911 + 7);
  Simulator sim;
  std::vector<bool> alive(5, true);
  FabricConfig fabric_config;
  Fabric fabric(sim, 5, fabric_config);
  fabric.set_liveness_check([&](int rank) { return alive[static_cast<size_t>(rank)]; });
  KvStoreCluster kv(
      sim, fabric, {0, 1, 2, 3, 4},
      [&](int rank) { return alive[static_cast<size_t>(rank)]; }, KvStoreConfig{},
      rng.NextU64());
  kv.Start();

  std::map<std::string, std::string> committed;
  int sequence = 0;
  for (int round = 0; round < 15; ++round) {
    // Random churn: kill or revive one node, keeping a quorum (>= 3 alive).
    const int victim = static_cast<int>(rng.UniformInt(0, 4));
    const int alive_count =
        static_cast<int>(std::count(alive.begin(), alive.end(), true));
    if (alive[static_cast<size_t>(victim)] && alive_count > 3 && rng.Bernoulli(0.5)) {
      alive[static_cast<size_t>(victim)] = false;
    } else if (!alive[static_cast<size_t>(victim)]) {
      alive[static_cast<size_t>(victim)] = true;
      kv.node(victim).ResetAndRestart();
    }
    // Let the cluster settle, then write if a leader exists.
    sim.RunUntil(sim.now() + Seconds(5));
    if (kv.LeaderRank().has_value()) {
      const std::string key = "/soak/" + std::to_string(sequence);
      const std::string value = "v" + std::to_string(sequence);
      Status result = InternalError("pending");
      kv.Put(key, value, kNoLease, [&](Status status) { result = status; });
      sim.RunUntil(sim.now() + Seconds(2));
      if (result.ok()) {
        committed[key] = value;
        ++sequence;
      }
    }
  }
  // Heal everything and verify all acknowledged writes survived.
  for (size_t rank = 0; rank < alive.size(); ++rank) {
    if (!alive[rank]) {
      alive[rank] = true;
      kv.node(static_cast<int>(rank)).ResetAndRestart();
    }
  }
  sim.RunUntil(sim.now() + Seconds(10));
  ASSERT_TRUE(kv.LeaderRank().has_value());
  EXPECT_GT(committed.size(), 0u) << "churn prevented every write; weak test";
  for (const auto& [key, value] : committed) {
    const StatusOr<KvEntry> entry = kv.Get(key);
    ASSERT_TRUE(entry.ok()) << key << " lost after churn (seed " << GetParam() << ")";
    EXPECT_EQ(entry->value, value);
  }
  // Single-leader convergence after heal.
  int leaders = 0;
  for (int i = 0; i < kv.num_nodes(); ++i) {
    leaders += kv.node(i).role() == KvNode::Role::kLeader ? 1 : 0;
  }
  EXPECT_EQ(leaders, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvChurnFuzz, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Full-system soak: random failure schedules; whenever training reaches the
// target, the state must equal the uninterrupted reference bit-for-bit.
// ---------------------------------------------------------------------------

class GeminiSoak : public ::testing::TestWithParam<int> {};

TEST_P(GeminiSoak, RandomFailureSchedulesConvergeToReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 4099 + 11);
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.payload_elements = 24;
  config.seed = 1000 + static_cast<uint64_t>(GetParam());
  config.cloud.num_standby = 2;
  config.kv_server_count = 3;

  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  // 1-3 random failures at random instants; avoid the KV quorum ranks for
  // hardware failures so detection always stays possible.
  const int failures = static_cast<int>(rng.UniformInt(1, 3));
  for (int f = 0; f < failures; ++f) {
    const TimeNs when = rng.UniformInt(Minutes(2), Minutes(25));
    const bool software = rng.Bernoulli(0.5);
    const int victim = static_cast<int>(rng.UniformInt(software ? 0 : 3, 7));
    system.failure_injector().InjectAt(
        when, software ? FailureType::kSoftware : FailureType::kHardware, {victim});
  }
  const auto report = system.TrainUntil(16, /*sim_deadline=*/Hours(6));
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->iterations_completed, 16)
      << "seed " << GetParam() << " failed to reach the target";

  ShardedTrainer reference(config.model, config.num_machines, config.payload_elements,
                           config.seed);
  for (int i = 0; i < 16; ++i) {
    reference.Step();
  }
  for (int rank = 0; rank < config.num_machines; ++rank) {
    EXPECT_EQ(system.trainer().shard(rank), reference.shard(rank))
        << "rank " << rank << " diverged under seed " << GetParam();
  }
  // Every recovery left the stores re-protected: the latest committed
  // checkpoint exists at every holder.
  for (int owner = 0; owner < config.num_machines; ++owner) {
    for (const int holder : system.placement().replica_sets[static_cast<size_t>(owner)]) {
      EXPECT_GE(system.cpu_store(holder).LatestIteration(owner), 14) << "owner " << owner;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeminiSoak, ::testing::Range(0, 8));

}  // namespace
}  // namespace gemini
