// Tests for the discrete-event simulation engine and timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"

#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace gemini {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(3), [&] { order.push_back(3); });
  sim.ScheduleAt(Seconds(1), [&] { order.push_back(1); });
  sim.ScheduleAt(Seconds(2), [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Seconds(3));
}

TEST(SimulatorTest, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  TimeNs fired_at = -1;
  sim.ScheduleAt(Seconds(5), [&] {
    sim.ScheduleAfter(Seconds(2), [&] { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Seconds(7));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(Seconds(1), [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelAfterRunReturnsFalse) {
  Simulator sim;
  const EventId id = sim.ScheduleAt(Seconds(1), [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(EventId{}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(Seconds(1), [&] { ++fired; });
  sim.ScheduleAt(Seconds(5), [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(Seconds(3)), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Seconds(3));
  // The later event still fires afterwards.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  bool ran = false;
  sim.ScheduleAt(Seconds(3), [&] { ran = true; });
  sim.RunUntil(Seconds(3));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(sim.now(), Seconds(10));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(Seconds(1), recurse);
    }
  };
  sim.ScheduleAfter(Seconds(1), recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), Seconds(5));
}

TEST(SimulatorTest, StepRunsExactlyOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventCancellingLaterEvent) {
  Simulator sim;
  bool second_ran = false;
  const EventId second = sim.ScheduleAt(Seconds(2), [&] { second_ran = true; });
  sim.ScheduleAt(Seconds(1), [&] { sim.Cancel(second); });
  sim.Run();
  EXPECT_FALSE(second_ran);
}

TEST(RepeatingTimerTest, TicksAtPeriod) {
  Simulator sim;
  std::vector<TimeNs> ticks;
  RepeatingTimer timer(sim, Seconds(2), [&] { ticks.push_back(sim.now()); });
  timer.Start();
  sim.RunUntil(Seconds(7));
  EXPECT_EQ(ticks, (std::vector<TimeNs>{Seconds(2), Seconds(4), Seconds(6)}));
}

TEST(RepeatingTimerTest, FireNowTicksImmediately) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer timer(sim, Seconds(5), [&] { ++ticks; });
  timer.Start(/*fire_now=*/true);
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(ticks, 1);
}

TEST(RepeatingTimerTest, StopHaltsTicks) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer timer(sim, Seconds(1), [&] { ++ticks; });
  timer.Start();
  sim.RunUntil(Seconds(3));
  timer.Stop();
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(timer.running());
}

TEST(RepeatingTimerTest, CallbackMayStopTimer) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer timer(sim, Seconds(1), [&] {
    if (++ticks == 2) {
      timer.Stop();
    }
  });
  timer.Start();
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(ticks, 2);
}

TEST(RepeatingTimerTest, DestructionCancelsPendingTick) {
  Simulator sim;
  int ticks = 0;
  {
    RepeatingTimer timer(sim, Seconds(1), [&] { ++ticks; });
    timer.Start();
  }
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(ticks, 0);
}

TEST(RepeatingTimerTest, RestartAfterStop) {
  Simulator sim;
  int ticks = 0;
  RepeatingTimer timer(sim, Seconds(1), [&] { ++ticks; });
  timer.Start();
  sim.RunUntil(Seconds(2));
  timer.Stop();
  timer.Start();
  sim.RunUntil(Seconds(4));
  EXPECT_EQ(ticks, 4);
}

}  // namespace
}  // namespace gemini

namespace gemini {
namespace {

// Randomized model check: the simulator must agree with a simple reference
// (sorted stable list with tombstones) on execution order under arbitrary
// schedule/cancel interleavings.
class SimulatorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorFuzzTest, MatchesReferenceModel) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 1);
  Simulator sim;
  struct Ref {
    TimeNs when;
    int tag;
    bool cancelled = false;
  };
  std::vector<Ref> reference;
  std::vector<EventId> ids;
  std::vector<int> executed;

  const int ops = 300;
  for (int i = 0; i < ops; ++i) {
    if (!ids.empty() && rng.Bernoulli(0.2)) {
      // Cancel a random event (possibly already cancelled).
      const size_t victim = static_cast<size_t>(rng.NextU64Below(ids.size()));
      const bool cancelled = sim.Cancel(ids[victim]);
      if (cancelled) {
        reference[victim].cancelled = true;
      }
    } else {
      const TimeNs when = rng.UniformInt(0, Seconds(100));
      const int tag = i;
      ids.push_back(sim.ScheduleAt(when, [&executed, tag] { executed.push_back(tag); }));
      reference.push_back(Ref{when, tag});
    }
  }
  sim.Run();

  // Reference order: by (when, insertion order), skipping cancelled.
  std::vector<int> expected;
  std::vector<size_t> order(reference.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return reference[a].when < reference[b].when;
  });
  for (const size_t i : order) {
    if (!reference[i].cancelled) {
      expected.push_back(reference[i].tag);
    }
  }
  EXPECT_EQ(executed, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzzTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace gemini
