// Tests for the parallelism-generalization extension (paper Section 9
// future work): data-parallel and pipeline-parallel timelines plus the
// generic interleaving executor, and the Trainium instance profile.
#include <gtest/gtest.h>

#include "src/schedule/generic_executor.h"
#include "src/training/parallelism.h"

namespace gemini {
namespace {

TimelineParams Gpt20BOnP4d() {
  TimelineParams params;
  params.model = Gpt2_20B();
  params.instance = P4d24xlarge();
  params.num_machines = 16;
  return params;
}

// ---------------------------------------------------------------------------
// Data-parallel timeline
// ---------------------------------------------------------------------------

TEST(DataParallelTimelineTest, ForwardPassIsNetworkSilent) {
  const IterationTimeline timeline = BuildDataParallelTimeline(Gpt20BOnP4d());
  ASSERT_FALSE(timeline.comm.empty());
  // No communication before the forward pass ends: the first idle span is a
  // long prefix of the iteration.
  ASSERT_FALSE(timeline.idle_spans.empty());
  EXPECT_EQ(timeline.idle_spans.front().start, 0);
  EXPECT_EQ(timeline.idle_spans.front().length, timeline.comm.front().start);
  // The forward pass alone is seconds of silent network.
  EXPECT_GT(timeline.idle_spans.front().length, Seconds(1));
}

TEST(DataParallelTimelineTest, BucketsQueueInOrder) {
  DataParallelOptions options;
  options.gradient_buckets = 4;
  const IterationTimeline timeline = BuildDataParallelTimeline(Gpt20BOnP4d(), options);
  EXPECT_EQ(timeline.comm.size(), 4u);
  TimeNs cursor = 0;
  for (const CommSegment& segment : timeline.comm) {
    EXPECT_GE(segment.start, cursor);
    cursor = segment.end();
  }
  EXPECT_EQ(timeline.TotalIdle() + timeline.TotalCommBusy(), timeline.iteration_time);
}

TEST(DataParallelTimelineTest, MoreBucketsImproveOverlap) {
  // Finer buckets start all-reducing earlier, shortening the iteration (or
  // at least never lengthening it beyond the per-bucket alpha overhead).
  DataParallelOptions coarse;
  coarse.gradient_buckets = 1;
  DataParallelOptions fine;
  fine.gradient_buckets = 16;
  const TimeNs coarse_time = BuildDataParallelTimeline(Gpt20BOnP4d(), coarse).iteration_time;
  const TimeNs fine_time = BuildDataParallelTimeline(Gpt20BOnP4d(), fine).iteration_time;
  EXPECT_LE(fine_time, coarse_time + Millis(10));
}

// ---------------------------------------------------------------------------
// Pipeline-parallel timeline
// ---------------------------------------------------------------------------

TEST(PipelineTimelineTest, NetworkIsMostlyIdle) {
  const IterationTimeline timeline = BuildPipelineParallelTimeline(Gpt20BOnP4d());
  // Activation hops are tiny next to compute: the network should be idle for
  // the overwhelming majority of the iteration.
  const double idle_fraction = static_cast<double>(timeline.TotalIdle()) /
                               static_cast<double>(timeline.iteration_time);
  EXPECT_GT(idle_fraction, 0.8);
}

TEST(PipelineTimelineTest, SegmentCountMatchesMicrobatches) {
  PipelineParallelOptions options;
  options.num_microbatches = 8;
  const IterationTimeline timeline =
      BuildPipelineParallelTimeline(Gpt20BOnP4d(), options);
  // Two hops per microbatch per direction.
  EXPECT_EQ(timeline.comm.size(), 4u * 8u);
  EXPECT_EQ(timeline.TotalIdle() + timeline.TotalCommBusy(), timeline.iteration_time);
}

TEST(PipelineTimelineTest, MoreMicrobatchesShrinkBubbleShare) {
  PipelineParallelOptions few;
  few.num_microbatches = 4;
  PipelineParallelOptions many;
  many.num_microbatches = 64;
  const IterationTimeline a = BuildPipelineParallelTimeline(Gpt20BOnP4d(), few);
  const IterationTimeline b = BuildPipelineParallelTimeline(Gpt20BOnP4d(), many);
  // The fill/drain bubble is fixed while useful work scales with
  // microbatches, so the bubble fraction falls.
  const double bubble_a = static_cast<double>(a.comm.front().start) /
                          static_cast<double>(a.iteration_time);
  const double bubble_b = static_cast<double>(b.comm.front().start) /
                          static_cast<double>(b.iteration_time);
  EXPECT_GT(bubble_a, bubble_b);
}

// ---------------------------------------------------------------------------
// Generic executor across strategies
// ---------------------------------------------------------------------------

class StrategyExecutorTest : public ::testing::TestWithParam<ParallelismStrategy> {};

TEST_P(StrategyExecutorTest, GeminiCheckpointFitsWithZeroOverhead) {
  const TimelineParams timeline_params = Gpt20BOnP4d();
  GenericExecutorParams params;
  params.timeline = BuildTimelineFor(GetParam(), timeline_params);
  params.instance = timeline_params.instance;
  params.checkpoint_bytes = timeline_params.model.CheckpointBytesPerMachine(16);
  const GenericExecutionResult result = ExecuteOnTimeline(params);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_LT(result.overhead_fraction, 0.01) << ParallelismStrategyName(GetParam());
  EXPECT_TRUE(result.partition.fits_within_idle_time);
  EXPECT_TRUE(result.checkpoint_within_iteration);
  // All replica traffic was scheduled.
  Bytes total = 0;
  for (const ChunkAssignment& chunk : result.partition.chunks) {
    total += chunk.bytes;
  }
  EXPECT_EQ(total, params.checkpoint_bytes);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategyExecutorTest,
                         ::testing::Values(ParallelismStrategy::kZero3,
                                           ParallelismStrategy::kDataParallel,
                                           ParallelismStrategy::kPipelineParallel));

TEST(GenericExecutorTest, MatchesDedicatedExecutorBaseline) {
  // On the ZeRO-3 timeline with no interference, both executors must agree
  // on the baseline iteration time.
  const TimelineParams timeline_params = Gpt20BOnP4d();
  GenericExecutorParams params;
  params.timeline = BuildZero3Timeline(timeline_params);
  params.instance = timeline_params.instance;
  params.checkpoint_bytes = timeline_params.model.CheckpointBytesPerMachine(16);
  const GenericExecutionResult result = ExecuteOnTimeline(params);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.baseline_iteration_time, params.timeline.iteration_time);
}

TEST(GenericExecutorTest, OversizedCheckpointProlongsIteration) {
  const TimelineParams timeline_params = Gpt20BOnP4d();
  GenericExecutorParams params;
  params.timeline = BuildZero3Timeline(timeline_params);
  params.instance = timeline_params.instance;
  // An absurd checkpoint (10x the model) cannot fit the idle spans.
  params.checkpoint_bytes = 10 * timeline_params.model.CheckpointBytesTotal();
  const GenericExecutionResult result = ExecuteOnTimeline(params);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.partition.fits_within_idle_time);
  EXPECT_GT(result.iteration_time, result.baseline_iteration_time);
}

TEST(GenericExecutorTest, SingleReplicaIsFree) {
  const TimelineParams timeline_params = Gpt20BOnP4d();
  GenericExecutorParams params;
  params.timeline = BuildDataParallelTimeline(timeline_params);
  params.instance = timeline_params.instance;
  params.checkpoint_bytes = timeline_params.model.CheckpointBytesPerMachine(16);
  params.num_replicas = 1;
  const GenericExecutionResult result = ExecuteOnTimeline(params);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.partition.chunks.empty());
  EXPECT_EQ(result.iteration_time, result.baseline_iteration_time);
}

// ---------------------------------------------------------------------------
// Trainium
// ---------------------------------------------------------------------------

TEST(TrainiumTest, SpecIsSane) {
  const InstanceSpec& spec = Trn1_32xlarge();
  EXPECT_EQ(spec.num_gpus, 16);
  EXPECT_EQ(spec.gpu_model, "Trainium");
  EXPECT_DOUBLE_EQ(BytesPerSecondToGbps(spec.network_bandwidth), 800.0);
  // Unlike the GPU instances, host memory only matches accelerator memory.
  EXPECT_EQ(spec.cpu_memory, spec.total_gpu_memory());
}

TEST(TrainiumTest, HostMemoryBoundsReplicaCapacity) {
  // With m=2 group placement each host stores 2 owners x 2 buffers = 4x the
  // per-machine checkpoint. On trn1 (512 GB host) that caps the model at
  // 512/4 = 128 GB of machine checkpoint => ~10.6B params/machine; p4d's
  // 1152 GB allows 2.25x more.
  const Bytes trn1_cap = Trn1_32xlarge().cpu_memory / 4;
  const Bytes p4d_cap = P4d24xlarge().cpu_memory / 4;
  EXPECT_EQ(trn1_cap, GiB(128));
  EXPECT_EQ(p4d_cap, GiB(288));
}

TEST(TrainiumTest, Zero3CheckpointingStillFree) {
  TimelineParams params;
  params.model = Gpt2_20B();
  params.instance = Trn1_32xlarge();
  params.num_machines = 16;
  GenericExecutorParams exec;
  exec.timeline = BuildZero3Timeline(params);
  exec.instance = params.instance;
  exec.checkpoint_bytes = params.model.CheckpointBytesPerMachine(16);
  const GenericExecutionResult result = ExecuteOnTimeline(exec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_LT(result.overhead_fraction, 0.01);
  EXPECT_TRUE(result.partition.fits_within_idle_time);
}

}  // namespace
}  // namespace gemini
