// Tests for machines, GPUs, the fabric, PCIe engines, and the instance
// catalog (paper Table 1).
#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/instance_spec.h"

namespace gemini {
namespace {

// ---------------------------------------------------------------------------
// Instance catalog (Table 1)
// ---------------------------------------------------------------------------

TEST(InstanceCatalogTest, HasAllTable1Rows) {
  EXPECT_EQ(InstanceCatalog().size(), 7u);
  for (const char* name : {"p3dn.24xlarge", "p4d.24xlarge", "ND40rs_v2", "ND96asr_v4",
                           "n1-8-v100", "a2-highgpu-8g", "DGX A100"}) {
    EXPECT_NE(FindInstanceSpec(name), nullptr) << name;
  }
  EXPECT_EQ(FindInstanceSpec("bogus"), nullptr);
}

TEST(InstanceCatalogTest, P4dMatchesTable1) {
  const InstanceSpec& spec = P4d24xlarge();
  EXPECT_EQ(spec.num_gpus, 8);
  EXPECT_EQ(spec.gpu_memory_per_gpu, GiB(40));
  EXPECT_EQ(spec.cpu_memory, GiB(1152));
  EXPECT_EQ(spec.gpu_model, "A100");
  EXPECT_DOUBLE_EQ(BytesPerSecondToGbps(spec.network_bandwidth), 400.0);
}

TEST(InstanceCatalogTest, P3dnMatchesTable1) {
  const InstanceSpec& spec = P3dn24xlarge();
  EXPECT_EQ(spec.num_gpus, 8);
  EXPECT_EQ(spec.gpu_memory_per_gpu, GiB(32));
  EXPECT_EQ(spec.cpu_memory, GiB(768));
  EXPECT_DOUBLE_EQ(BytesPerSecondToGbps(spec.network_bandwidth), 100.0);
}

TEST(InstanceCatalogTest, CpuMemoryExceedsGpuMemoryEverywhere) {
  // Table 1's whole point: host DRAM dwarfs GPU memory, so checkpoints fit.
  for (const InstanceSpec& spec : InstanceCatalog()) {
    EXPECT_GT(spec.cpu_memory, spec.total_gpu_memory()) << spec.name;
  }
}

// ---------------------------------------------------------------------------
// Gpu / Machine
// ---------------------------------------------------------------------------

TEST(GpuTest, AllocateAndFree) {
  Gpu gpu(GiB(40));
  EXPECT_EQ(gpu.free(), GiB(40));
  EXPECT_TRUE(gpu.Allocate(GiB(30)).ok());
  EXPECT_EQ(gpu.used(), GiB(30));
  EXPECT_EQ(gpu.free(), GiB(10));
  gpu.Free(GiB(10));
  EXPECT_EQ(gpu.used(), GiB(20));
}

TEST(GpuTest, AllocateBeyondCapacityFails) {
  Gpu gpu(GiB(40));
  EXPECT_TRUE(gpu.Allocate(GiB(40)).ok());
  const Status status = gpu.Allocate(1);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gpu.used(), GiB(40));  // Failed allocation leaves nothing behind.
}

TEST(MachineTest, BuildsGpusFromSpec) {
  Machine machine(3, 0, P4d24xlarge());
  EXPECT_EQ(machine.rank(), 3);
  EXPECT_EQ(machine.incarnation(), 0);
  EXPECT_EQ(machine.num_gpus(), 8);
  EXPECT_EQ(machine.DebugName(), "rank3");
  EXPECT_TRUE(machine.alive());
  EXPECT_TRUE(machine.process_running());
}

TEST(MachineTest, HealthTransitions) {
  Machine machine(0, 0, P4d24xlarge());
  machine.set_health(MachineHealth::kProcessDown);
  EXPECT_TRUE(machine.alive());
  EXPECT_FALSE(machine.process_running());
  machine.set_health(MachineHealth::kDead);
  EXPECT_FALSE(machine.alive());
  EXPECT_EQ(MachineHealthName(machine.health()), "dead");
}

TEST(MachineTest, AllocateOnAllGpusIsAtomic) {
  Machine machine(0, 0, P4d24xlarge());
  // Pre-fill one GPU so a machine-wide allocation must fail and roll back.
  EXPECT_TRUE(machine.gpu(5).Allocate(GiB(39)).ok());
  const Status status = machine.AllocateOnAllGpus(GiB(2));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  for (int i = 0; i < machine.num_gpus(); ++i) {
    if (i != 5) {
      EXPECT_EQ(machine.gpu(i).used(), 0) << "GPU " << i << " leaked a partial allocation";
    }
  }
  EXPECT_TRUE(machine.AllocateOnAllGpus(GiB(1)).ok());
  EXPECT_EQ(machine.min_free_gpu_memory(), 0);
  machine.FreeOnAllGpus(GiB(1));
}

TEST(MachineTest, CpuMemoryAccounting) {
  Machine machine(0, 0, P4d24xlarge());
  EXPECT_TRUE(machine.AllocateCpuMemory(GiB(1000)).ok());
  EXPECT_EQ(machine.cpu_memory_free(), GiB(152));
  EXPECT_EQ(machine.AllocateCpuMemory(GiB(200)).code(), StatusCode::kResourceExhausted);
  machine.FreeCpuMemory(GiB(1000));
  EXPECT_EQ(machine.cpu_memory_used(), 0);
}

TEST(MachineTest, IncarnationShowsInDebugName) {
  Machine machine(2, 2, P4d24xlarge());
  EXPECT_EQ(machine.DebugName(), "rank2''");
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() {
    FabricConfig config;
    config.link_bandwidth = 1e9;  // 1 GB/s for easy arithmetic.
    config.alpha = Micros(10);
    fabric_ = std::make_unique<Fabric>(sim_, 4, config);
  }

  Simulator sim_;
  std::unique_ptr<Fabric> fabric_;
};

TEST_F(FabricTest, TransferTakesAlphaPlusSizeOverBandwidth) {
  TimeNs done_at = -1;
  fabric_->Transfer(0, 1, 1'000'000'000, {}, [&](Status status) {
    EXPECT_TRUE(status.ok());
    done_at = sim_.now();
  });
  sim_.Run();
  EXPECT_EQ(done_at, Seconds(1) + Micros(10));
}

TEST_F(FabricTest, TransfersOnSameNicSerialize) {
  std::vector<TimeNs> completions;
  for (int i = 0; i < 3; ++i) {
    fabric_->Transfer(0, 1, 1'000'000'000, {}, [&](Status) {
      completions.push_back(sim_.now());
    });
  }
  sim_.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Seconds(1) + Micros(10));
  EXPECT_EQ(completions[1], Seconds(2) + Micros(20));
  EXPECT_EQ(completions[2], Seconds(3) + Micros(30));
}

TEST_F(FabricTest, DisjointPairsRunInParallel) {
  std::vector<TimeNs> completions;
  fabric_->Transfer(0, 1, 1'000'000'000, {}, [&](Status) { completions.push_back(sim_.now()); });
  fabric_->Transfer(2, 3, 1'000'000'000, {}, [&](Status) { completions.push_back(sim_.now()); });
  sim_.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], completions[1]);
}

TEST_F(FabricTest, ReceiverRxBlocksSecondSender) {
  // Rank 1's RX is a resource too: two senders to rank 1 serialize.
  std::vector<TimeNs> completions;
  fabric_->Transfer(0, 1, 1'000'000'000, {}, [&](Status) { completions.push_back(sim_.now()); });
  fabric_->Transfer(2, 1, 1'000'000'000, {}, [&](Status) { completions.push_back(sim_.now()); });
  sim_.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_GT(completions[1], completions[0]);
}

TEST_F(FabricTest, EfficiencyScalesDuration) {
  Fabric::TransferOptions options;
  options.bandwidth_efficiency = 0.5;
  TimeNs done_at = -1;
  fabric_->Transfer(0, 1, 1'000'000'000, options, [&](Status) { done_at = sim_.now(); });
  sim_.Run();
  EXPECT_EQ(done_at, Seconds(2) + Micros(10));
}

TEST_F(FabricTest, DeadEndpointFailsTransfer) {
  bool dead = false;
  fabric_->set_liveness_check([&](int rank) { return rank != 1 || !dead; });
  Status result;
  fabric_->Transfer(0, 1, 1'000'000'000, {}, [&](Status status) { result = status; });
  // Kill the receiver mid-transfer.
  sim_.ScheduleAt(Millis(500), [&] { dead = true; });
  sim_.Run();
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
}

TEST_F(FabricTest, BusyAccountingAccumulates) {
  fabric_->Transfer(0, 1, 2'000'000'000, {}, [](Status) {});
  sim_.Run();
  EXPECT_EQ(fabric_->TxBusyTotal(0), Seconds(2) + Micros(10));
  EXPECT_EQ(fabric_->RxBusyTotal(1), Seconds(2) + Micros(10));
  EXPECT_EQ(fabric_->TxBusyTotal(1), 0);
}

TEST_F(FabricTest, ControlMessageDeliveredWithDelay) {
  TimeNs delivered_at = -1;
  fabric_->SendControl(0, 1, [&] { delivered_at = sim_.now(); });
  sim_.Run();
  EXPECT_EQ(delivered_at, Micros(50));
}

TEST_F(FabricTest, ControlMessageDroppedWhenDestinationDead) {
  bool dead = false;
  fabric_->set_liveness_check([&](int rank) { return rank != 1 || !dead; });
  dead = true;
  bool delivered = false;
  fabric_->SendControl(0, 1, [&] { delivered = true; });
  sim_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(FabricTest, EarliestStartReflectsQueue) {
  EXPECT_EQ(fabric_->EarliestStart(0, 1), 0);
  fabric_->Transfer(0, 1, 1'000'000'000, {}, [](Status) {});
  EXPECT_EQ(fabric_->EarliestStart(0, 1), Seconds(1) + Micros(10));
  EXPECT_EQ(fabric_->EarliestStart(2, 3), 0);
}

TEST_F(FabricTest, PartitionFailsBulkTransfers) {
  fabric_->set_partition_check([](int src, int dst) {
    // {0,1} | {2,3} split.
    return (src < 2) == (dst < 2);
  });
  Status across;
  Status within;
  fabric_->Transfer(0, 2, 1000, {}, [&](Status status) { across = status; });
  fabric_->Transfer(0, 1, 1000, {}, [&](Status status) { within = status; });
  sim_.Run();
  EXPECT_EQ(across.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(within.ok());
}

TEST_F(FabricTest, PartitionDropsControlMessages) {
  fabric_->set_partition_check([](int src, int dst) { return (src < 2) == (dst < 2); });
  bool across = false;
  bool within = false;
  fabric_->SendControl(0, 3, [&] { across = true; });
  fabric_->SendControl(2, 3, [&] { within = true; });
  sim_.Run();
  EXPECT_FALSE(across);
  EXPECT_TRUE(within);
}

TEST_F(FabricTest, HealingPartitionRestoresDelivery) {
  fabric_->set_partition_check([](int, int) { return false; });
  bool delivered = false;
  fabric_->SendControl(0, 1, [&] { delivered = true; });
  sim_.Run();
  EXPECT_FALSE(delivered);
  fabric_->set_partition_check(nullptr);
  fabric_->SendControl(0, 1, [&] { delivered = true; });
  sim_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(FabricTest, LocalCompletesAfterDuration) {
  TimeNs done_at = -1;
  fabric_->Local(Millis(7), [&](Status status) {
    EXPECT_TRUE(status.ok());
    done_at = sim_.now();
  });
  sim_.Run();
  EXPECT_EQ(done_at, Millis(7));
}

// ---------------------------------------------------------------------------
// PcieEngine / Cluster
// ---------------------------------------------------------------------------

TEST(PcieEngineTest, CopiesSerializePerRank) {
  Simulator sim;
  PcieEngine pcie(sim, 2, {1e9, 2e9});
  std::vector<TimeNs> completions;
  pcie.Copy(0, 1'000'000'000, [&](Status) { completions.push_back(sim.now()); });
  pcie.Copy(0, 1'000'000'000, [&](Status) { completions.push_back(sim.now()); });
  pcie.Copy(1, 1'000'000'000, [&](Status) { completions.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Millis(500));   // Rank 1 at 2 GB/s finishes first.
  EXPECT_EQ(completions[1], Seconds(1));    // Rank 0 first copy.
  EXPECT_EQ(completions[2], Seconds(2));    // Rank 0 second copy queued behind.
  EXPECT_EQ(pcie.BusyTotal(0), Seconds(2));
}

TEST(ClusterTest, BuildsMachinesAndWiresLiveness) {
  Simulator sim;
  Cluster cluster(sim, 4, P4d24xlarge(), FabricConfig{});
  EXPECT_EQ(cluster.size(), 4);
  EXPECT_EQ(cluster.num_alive(), 4);
  cluster.machine(2).set_health(MachineHealth::kDead);
  EXPECT_EQ(cluster.num_alive(), 3);
  EXPECT_EQ(cluster.DeadRanks(), (std::vector<int>{2}));

  // Fabric refuses transfers touching the dead machine.
  Status result;
  cluster.fabric().Transfer(0, 2, 1000, {}, [&](Status status) { result = status; });
  sim.Run();
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
}

TEST(ClusterTest, ReplaceMachineBumpsIncarnation) {
  Simulator sim;
  Cluster cluster(sim, 4, P4d24xlarge(), FabricConfig{});
  cluster.machine(1).set_health(MachineHealth::kDead);
  Machine& fresh = cluster.ReplaceMachine(1);
  EXPECT_EQ(fresh.rank(), 1);
  EXPECT_EQ(fresh.incarnation(), 1);
  EXPECT_TRUE(fresh.alive());
  EXPECT_EQ(cluster.num_alive(), 4);
  EXPECT_EQ(fresh.cpu_memory_used(), 0);  // New DRAM.
}

}  // namespace
}  // namespace gemini
