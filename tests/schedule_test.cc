// Tests for Algorithm 2 checkpoint partitioning and the interleaving
// executor (the Figure 5/16 scheme comparison).
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include <tuple>

#include "src/schedule/executor.h"
#include "src/schedule/partition.h"
#include "src/schedule/trace_export.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace gemini {
namespace {

PartitionParams BasicParams() {
  PartitionParams params;
  params.idle_spans = {{Seconds(1), Seconds(1)},
                       {Seconds(4), Seconds(2)},
                       {Seconds(10), Millis(500)}};
  params.checkpoint_bytes = GiB(10);
  params.num_remote_replicas = 1;
  params.reserved_buffer = GiB(1);
  params.num_buffers = 4;
  params.bandwidth = 50e9;  // 400 Gb/s.
  params.alpha = Micros(100);
  params.gamma = 0.7;
  return params;
}

Bytes TotalBytes(const PartitionResult& result) {
  Bytes total = 0;
  for (const ChunkAssignment& chunk : result.chunks) {
    total += chunk.bytes;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Algorithm 2
// ---------------------------------------------------------------------------

TEST(PartitionTest, CoversExactlyTheReplicaTraffic) {
  const auto result = PartitionCheckpoint(BasicParams());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(TotalBytes(*result), GiB(10));
}

TEST(PartitionTest, MultipleReplicasMultiplyTraffic) {
  PartitionParams params = BasicParams();
  params.num_remote_replicas = 3;
  const auto result = PartitionCheckpoint(params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(TotalBytes(*result), 3 * GiB(10));
  // Replica indices cover 0..2 and offsets rebuild each copy exactly.
  std::map<int, Bytes> per_replica;
  for (const ChunkAssignment& chunk : result->chunks) {
    EXPECT_GE(chunk.replica_index, 0);
    EXPECT_LT(chunk.replica_index, 3);
    EXPECT_EQ(chunk.offset, per_replica[chunk.replica_index]);
    per_replica[chunk.replica_index] += chunk.bytes;
  }
  for (const auto& [replica, bytes] : per_replica) {
    EXPECT_EQ(bytes, GiB(10)) << "replica " << replica;
  }
}

TEST(PartitionTest, ChunksRespectSubBufferSize) {
  const auto result = PartitionCheckpoint(BasicParams());
  ASSERT_TRUE(result.ok());
  const Bytes max_chunk = GiB(1) / 4;
  EXPECT_LE(result->max_chunk_bytes, max_chunk);
  for (const ChunkAssignment& chunk : result->chunks) {
    EXPECT_GT(chunk.bytes, 0);
    EXPECT_LE(chunk.bytes, max_chunk);
  }
}

TEST(PartitionTest, SpanBudgetsRespectGamma) {
  // Per-span planned transmission must fit within gamma * span length for
  // every non-final span.
  PartitionParams params = BasicParams();
  const auto result = PartitionCheckpoint(params);
  ASSERT_TRUE(result.ok());
  std::map<int, TimeNs> per_span;
  for (const ChunkAssignment& chunk : result->chunks) {
    per_span[chunk.span_index] +=
        params.alpha + TransferTime(chunk.bytes, params.bandwidth);
  }
  for (const auto& [span, used] : per_span) {
    if (span == static_cast<int>(params.idle_spans.size()) - 1) {
      continue;  // Final span is allowed to overflow.
    }
    const TimeNs budget = static_cast<TimeNs>(
        params.gamma *
        static_cast<double>(params.idle_spans[static_cast<size_t>(span)].length));
    EXPECT_LE(used, budget + Millis(1)) << "span " << span;
  }
}

TEST(PartitionTest, SpanIndicesAreOrdered) {
  const auto result = PartitionCheckpoint(BasicParams());
  ASSERT_TRUE(result.ok());
  int previous = 0;
  for (const ChunkAssignment& chunk : result->chunks) {
    EXPECT_GE(chunk.span_index, previous);
    previous = chunk.span_index;
  }
}

TEST(PartitionTest, FitsFlagTrueWhenSpansSuffice) {
  // 10 GiB at 50 GB/s needs ~0.21 s; the spans offer ~2.4 s usable.
  const auto result = PartitionCheckpoint(BasicParams());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fits_within_idle_time);
}

TEST(PartitionTest, FitsFlagFalseWhenTrafficSpills) {
  PartitionParams params = BasicParams();
  params.checkpoint_bytes = GiB(500);  // Way beyond the spans' capacity.
  const auto result = PartitionCheckpoint(params);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->fits_within_idle_time);
  EXPECT_EQ(TotalBytes(*result), GiB(500));  // Still fully scheduled (spills).
}

TEST(PartitionTest, ZeroRemoteReplicasNeedNoTraffic) {
  PartitionParams params = BasicParams();
  params.num_remote_replicas = 0;
  const auto result = PartitionCheckpoint(params);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->chunks.empty());
  EXPECT_TRUE(result->fits_within_idle_time);
}

TEST(PartitionTest, TinySpansAreSkipped) {
  PartitionParams params = BasicParams();
  // First span shorter than alpha: unusable.
  params.idle_spans = {{0, Micros(50)}, {Seconds(1), Seconds(5)}};
  params.alpha = Micros(100);
  const auto result = PartitionCheckpoint(params);
  ASSERT_TRUE(result.ok());
  for (const ChunkAssignment& chunk : result->chunks) {
    EXPECT_EQ(chunk.span_index, 1);
  }
}

TEST(PartitionTest, ValidationRejectsBadInputs) {
  PartitionParams params = BasicParams();
  params.idle_spans.clear();
  EXPECT_FALSE(PartitionCheckpoint(params).ok());

  params = BasicParams();
  params.checkpoint_bytes = 0;
  EXPECT_FALSE(PartitionCheckpoint(params).ok());

  params = BasicParams();
  params.gamma = 1.5;
  EXPECT_FALSE(PartitionCheckpoint(params).ok());

  params = BasicParams();
  params.num_buffers = 0;
  EXPECT_FALSE(PartitionCheckpoint(params).ok());

  params = BasicParams();
  params.bandwidth = 0;
  EXPECT_FALSE(PartitionCheckpoint(params).ok());
}

TEST(PartitionTest, OneChunkPerSpanProducesLargeChunks) {
  PartitionParams params = BasicParams();
  const auto naive = PartitionOneChunkPerSpan(params);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(TotalBytes(*naive), GiB(10));
  // One chunk per non-final span: chunk sizes track span capacity, far above
  // the sub-buffer limit that Algorithm 2 respects.
  const auto algo2 = PartitionCheckpoint(params);
  ASSERT_TRUE(algo2.ok());
  EXPECT_GT(naive->max_chunk_bytes, algo2->max_chunk_bytes);
  std::map<int, int> chunks_per_span;
  for (const ChunkAssignment& chunk : naive->chunks) {
    ++chunks_per_span[chunk.span_index];
  }
  for (const auto& [span, count] : chunks_per_span) {
    if (span != static_cast<int>(params.idle_spans.size()) - 1) {
      EXPECT_EQ(count, 1) << "span " << span;
    }
  }
}

// Property sweep: Algorithm 2 invariants across buffer shapes and gammas.
class PartitionSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(PartitionSweepTest, InvariantsHold) {
  const auto [num_buffers, gamma, replicas] = GetParam();
  PartitionParams params = BasicParams();
  params.num_buffers = num_buffers;
  params.gamma = gamma;
  params.num_remote_replicas = replicas;
  const auto result = PartitionCheckpoint(params);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(TotalBytes(*result), replicas * params.checkpoint_bytes);
  EXPECT_LE(result->max_chunk_bytes, params.reserved_buffer / num_buffers);
  for (const ChunkAssignment& chunk : result->chunks) {
    EXPECT_GE(chunk.span_index, 0);
    EXPECT_LT(chunk.span_index, static_cast<int>(params.idle_spans.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionSweepTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0.3, 0.7, 1.0),
                                            ::testing::Values(0, 1, 2, 3)));


// Randomized property fuzz: arbitrary span structures, buffer shapes, and
// checkpoint sizes must always yield a complete, buffer-respecting,
// budget-respecting plan.
class PartitionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionFuzzTest, RandomInputsKeepInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 40; ++trial) {
    PartitionParams params;
    const int num_spans = static_cast<int>(rng.UniformInt(1, 40));
    TimeNs cursor = 0;
    for (int s = 0; s < num_spans; ++s) {
      cursor += rng.UniformInt(0, Millis(500));
      const TimeNs length = rng.UniformInt(Micros(10), Seconds(2));
      params.idle_spans.push_back(IdleSpan{cursor, length});
      cursor += length;
    }
    params.checkpoint_bytes = rng.UniformInt(1, GiB(100));
    params.num_remote_replicas = static_cast<int>(rng.UniformInt(0, 3));
    params.reserved_buffer = rng.UniformInt(kMiB, GiB(2));
    params.num_buffers = static_cast<int>(rng.UniformInt(1, 16));
    params.bandwidth = rng.UniformDouble(1e9, 100e9);
    params.alpha = rng.UniformInt(0, Millis(1));
    params.gamma = rng.UniformDouble(0.05, 1.0);

    const auto result = PartitionCheckpoint(params);
    ASSERT_TRUE(result.ok()) << result.status() << " trial " << trial;
    // Full coverage of every replica, in offset order, within buffer size.
    std::map<int, Bytes> per_replica;
    const Bytes max_chunk = params.reserved_buffer / params.num_buffers;
    int last_span = 0;
    for (const ChunkAssignment& chunk : result->chunks) {
      ASSERT_GT(chunk.bytes, 0);
      ASSERT_LE(chunk.bytes, max_chunk);
      ASSERT_GE(chunk.span_index, last_span);
      last_span = chunk.span_index;
      ASSERT_EQ(chunk.offset, per_replica[chunk.replica_index]);
      per_replica[chunk.replica_index] += chunk.bytes;
    }
    ASSERT_EQ(static_cast<int>(per_replica.size()), params.num_remote_replicas);
    for (const auto& [replica, bytes] : per_replica) {
      ASSERT_EQ(bytes, params.checkpoint_bytes) << "replica " << replica;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFuzzTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Executor (Figure 16 schemes)
// ---------------------------------------------------------------------------

ExecutorParams PaperP3dnParams() {
  ExecutorParams params;
  params.timeline.model = Gpt2_40B();
  params.timeline.instance = P3dn24xlarge();
  params.timeline.num_machines = 16;
  return params;
}

ExecutorParams PaperP4dParams() {
  ExecutorParams params;
  params.timeline.model = Gpt2_100B();
  params.timeline.instance = P4d24xlarge();
  params.timeline.num_machines = 16;
  return params;
}

TEST(ExecutorTest, BaselineMatchesTimeline) {
  ExecutorParams params = PaperP4dParams();
  params.scheme = InterleaveScheme::kNone;
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  ASSERT_TRUE(result.status.ok());
  const IterationTimeline timeline = BuildZero3Timeline(params.timeline);
  EXPECT_EQ(result.iteration_time, timeline.iteration_time);
  EXPECT_EQ(result.overhead_fraction, 0.0);
}

TEST(ExecutorTest, GeminiPipelinedHasNoOverheadOnPaperWorkloads) {
  for (ExecutorParams params : {PaperP4dParams(), PaperP3dnParams()}) {
    params.scheme = InterleaveScheme::kPipelined;
    const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
    ASSERT_TRUE(result.status.ok()) << result.status;
    EXPECT_LT(result.overhead_fraction, 0.005)
        << params.timeline.model.name << ": GEMINI must not slow training";
    EXPECT_TRUE(result.checkpoint_within_iteration)
        << "per-iteration checkpointing must complete within the iteration";
    EXPECT_TRUE(result.partition.fits_within_idle_time);
  }
}

TEST(ExecutorTest, BlockingCostsAboutTenPercentOnP3dn) {
  // Figure 16: Blocking is ~10.1% over Baseline for GPT-2 40B on p3dn.
  ExecutorParams params = PaperP3dnParams();
  params.scheme = InterleaveScheme::kBlocking;
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.overhead_fraction, 0.06);
  EXPECT_LT(result.overhead_fraction, 0.16);
}

TEST(ExecutorTest, NaiveInterleaveOOMsLikeThePaper) {
  // Figure 16: naive interleave needs >2 GB per GPU while only a few hundred
  // MB are free.
  ExecutorParams params = PaperP3dnParams();
  params.scheme = InterleaveScheme::kNaiveInterleave;
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(result.required_buffer_per_gpu, GiB(1));
}

TEST(ExecutorTest, NaiveInterleaveSucceedsWithEnoughGpuMemory) {
  ExecutorParams params = PaperP3dnParams();
  params.scheme = InterleaveScheme::kNaiveInterleave;
  params.gpu_free_memory_per_gpu = GiB(8);
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  EXPECT_TRUE(result.status.ok()) << result.status;
}

TEST(ExecutorTest, NoPipelineIsWorseThanPipelined) {
  ExecutorParams pipelined = PaperP3dnParams();
  pipelined.scheme = InterleaveScheme::kPipelined;
  ExecutorParams no_pipeline = PaperP3dnParams();
  no_pipeline.scheme = InterleaveScheme::kInterleaveNoPipeline;
  const ExecutionResult a = ExecuteIterationWithCheckpoint(pipelined);
  const ExecutionResult b = ExecuteIterationWithCheckpoint(no_pipeline);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  // Without sub-buffer pipelining, GPU->CPU copies stall receives: the
  // checkpoint takes longer and training may be delayed.
  EXPECT_GE(b.iteration_time, a.iteration_time);
  EXPECT_GT(b.checkpoint_done, a.checkpoint_done);
}

TEST(ExecutorTest, SchemeOrderingMatchesFigure16) {
  // Baseline == GEMINI < NoPipeline < Blocking (and Naive OOMs).
  ExecutorParams params = PaperP3dnParams();
  std::map<InterleaveScheme, TimeNs> times;
  for (const InterleaveScheme scheme :
       {InterleaveScheme::kNone, InterleaveScheme::kPipelined,
        InterleaveScheme::kInterleaveNoPipeline, InterleaveScheme::kBlocking}) {
    params.scheme = scheme;
    const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
    ASSERT_TRUE(result.status.ok()) << InterleaveSchemeName(scheme);
    times[scheme] = result.iteration_time;
  }
  EXPECT_EQ(times[InterleaveScheme::kPipelined], times[InterleaveScheme::kNone]);
  EXPECT_GE(times[InterleaveScheme::kInterleaveNoPipeline],
            times[InterleaveScheme::kPipelined]);
  EXPECT_GT(times[InterleaveScheme::kBlocking],
            times[InterleaveScheme::kInterleaveNoPipeline]);
}

TEST(ExecutorTest, MoreReplicasMoreTraffic) {
  ExecutorParams params = PaperP4dParams();
  params.scheme = InterleaveScheme::kPipelined;
  params.num_replicas = 3;
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  ASSERT_TRUE(result.status.ok());
  Bytes total = 0;
  for (const ChunkAssignment& chunk : result.partition.chunks) {
    total += chunk.bytes;
  }
  EXPECT_EQ(total, 2 * params.timeline.model.CheckpointBytesPerMachine(16));
}

TEST(ExecutorTest, SingleReplicaNeedsNoNetworkTraffic) {
  ExecutorParams params = PaperP4dParams();
  params.scheme = InterleaveScheme::kPipelined;
  params.num_replicas = 1;
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.partition.chunks.empty());
  EXPECT_EQ(result.iteration_time, result.baseline_iteration_time);
  // Only the local GPU->CPU copy remains.
  EXPECT_GT(result.checkpoint_done, 0);
}


// ---------------------------------------------------------------------------
// Frequency adaptation (Section 5.3 amortization)
// ---------------------------------------------------------------------------

TEST(FrequencyAdaptationTest, PaperWorkloadsCheckpointEveryIteration) {
  for (ExecutorParams params : {PaperP4dParams(), PaperP3dnParams()}) {
    const FrequencyDecision decision = ChooseCheckpointFrequency(params);
    ASSERT_TRUE(decision.execution.status.ok());
    EXPECT_EQ(decision.interval_iterations, 1) << params.timeline.model.name;
  }
}

TEST(FrequencyAdaptationTest, OversizedTrafficLowersFrequency) {
  // Four replicas of GPT-2 40B on p3dn: 3 x 30 GB of traffic per iteration
  // against ~4 s of idle time cannot fit; the frequency must drop.
  ExecutorParams params = PaperP3dnParams();
  params.num_replicas = 4;
  const FrequencyDecision decision = ChooseCheckpointFrequency(params);
  ASSERT_TRUE(decision.execution.status.ok());
  EXPECT_GT(decision.interval_iterations, 1);
  EXPECT_LE(decision.interval_iterations, 8);
  // At the chosen frequency, training is again undisturbed.
  EXPECT_LT(decision.execution.overhead_fraction, 0.005);
  EXPECT_TRUE(decision.execution.partition.fits_within_idle_time);
}

TEST(FrequencyAdaptationTest, IntervalIsMinimal) {
  // One notch faster than the chosen interval must NOT fit (minimality).
  ExecutorParams params = PaperP3dnParams();
  params.num_replicas = 4;
  const FrequencyDecision decision = ChooseCheckpointFrequency(params);
  ASSERT_GT(decision.interval_iterations, 1);
  ExecutorParams faster = params;
  const Bytes full = params.timeline.model.CheckpointBytesPerMachine(16);
  faster.checkpoint_bytes_override =
      (full + decision.interval_iterations - 2) / (decision.interval_iterations - 1);
  const ExecutionResult result = ExecuteIterationWithCheckpoint(faster);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.overhead_fraction > 0.005 || !result.partition.fits_within_idle_time);
}

// Ablation: sub-buffer count p. p=1 equals the no-pipeline scheme; more
// sub-buffers must never hurt.
class SubBufferSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SubBufferSweepTest, MoreBuffersNeverSlower) {
  ExecutorParams params = PaperP3dnParams();
  params.scheme = InterleaveScheme::kPipelined;
  params.num_buffers = GetParam();
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  ASSERT_TRUE(result.status.ok());
  ExecutorParams one = params;
  one.num_buffers = 1;
  const ExecutionResult base = ExecuteIterationWithCheckpoint(one);
  EXPECT_LE(result.iteration_time, base.iteration_time);
  EXPECT_LE(result.checkpoint_done, base.checkpoint_done);
}

INSTANTIATE_TEST_SUITE_P(BufferCounts, SubBufferSweepTest, ::testing::Values(2, 4, 8, 16));

// Executor must be consistent across every Table 2 workload.
class ExecutorSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExecutorSweepTest, GeminiChekpointsEveryIterationWithoutOverhead) {
  const ModelConfig* model = FindModel(GetParam());
  ASSERT_NE(model, nullptr);
  ExecutorParams params;
  params.timeline.model = *model;
  params.timeline.instance =
      model->nominal_params > 50'000'000'000LL ? P4d24xlarge() : P3dn24xlarge();
  params.timeline.num_machines = 16;
  params.scheme = InterleaveScheme::kPipelined;
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  ASSERT_TRUE(result.status.ok()) << result.status;
  EXPECT_LT(result.overhead_fraction, 0.01) << model->name;
  EXPECT_TRUE(result.checkpoint_within_iteration) << model->name;
}

INSTANTIATE_TEST_SUITE_P(Table2, ExecutorSweepTest,
                         ::testing::Values("GPT-2 10B", "GPT-2 20B", "GPT-2 40B", "RoBERTa 40B",
                                           "BERT 40B", "GPT-2 100B", "RoBERTa 100B",
                                           "BERT 100B"));


// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(TraceExportTest, ProducesWellFormedTraceEvents) {
  ExecutorParams params = PaperP4dParams();
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  ASSERT_TRUE(result.status.ok());
  const IterationTimeline timeline = BuildZero3Timeline(params.timeline);
  const std::string json = TimelineToChromeTrace(
      timeline, result.partition, params.timeline.instance.network_bandwidth,
      params.timeline.comm_alpha);
  // Structural sanity (no JSON library in this repo; check the envelope and
  // event counts instead).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("optimizer update"), std::string::npos);
  size_t events = 0;
  for (size_t pos = json.find("\"name\""); pos != std::string::npos;
       pos = json.find("\"name\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, timeline.comm.size() + timeline.idle_spans.size() +
                        result.partition.chunks.size() + 1);
  // Braces balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceExportTest, WritesFile) {
  ExecutorParams params = PaperP3dnParams();
  const ExecutionResult result = ExecuteIterationWithCheckpoint(params);
  ASSERT_TRUE(result.status.ok());
  const IterationTimeline timeline = BuildZero3Timeline(params.timeline);
  const std::string path = ::testing::TempDir() + "/gemini_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path, timeline, result.partition,
                               params.timeline.instance.network_bandwidth,
                               params.timeline.comm_alpha)
                  .ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_GT(contents.size(), 1000u);
  std::filesystem::remove(path);
}

TEST(TraceExportTest, FailsOnUnwritablePath) {
  const IterationTimeline timeline = BuildZero3Timeline(PaperP4dParams().timeline);
  EXPECT_EQ(WriteChromeTrace("/nonexistent-dir/trace.json", timeline, PartitionResult{},
                             1e9, Micros(100))
                .code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace gemini
