// Tests for the continuous interference auditor: the AttributeSpan edge
// cases, the per-span EWMA drift math and its trigger debounce, and the
// end-to-end feedback loop through GeminiSystem — injected timeline shift
// -> drift detection -> exactly one online re-profile/re-partition ->
// interference-free iterations again. Also pins the determinism contract:
// two same-seed runs produce byte-identical tracer and flight-recorder
// exports, with or without the stored-record cap.
#include <gtest/gtest.h>

#include <cmath>

#include "src/gemini/gemini_system.h"
#include "src/obs/auditor.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"

namespace gemini {
namespace {

// ---------------------------------------------------------------------------
// AttributeSpan
// ---------------------------------------------------------------------------

TEST(AttributeSpanTest, ChunksWithinSpanAreNotEvents) {
  const SpanAttribution result = AttributeSpan(100, {30, 40});
  EXPECT_EQ(result.interference_events, 0);
  EXPECT_EQ(result.inflation, 0);
}

TEST(AttributeSpanTest, ChunkExactlyFillingSpanIsNotAnEvent) {
  // cumulative == observed is the boundary: the chunk still fits.
  const SpanAttribution result = AttributeSpan(100, {30, 70});
  EXPECT_EQ(result.interference_events, 0);
  EXPECT_EQ(result.inflation, 0);
}

TEST(AttributeSpanTest, OverflowingChunksAreEventsAndExcessIsInflation) {
  // 60 fits; cumulative 120 and 150 exceed the 100ns span.
  const SpanAttribution result = AttributeSpan(100, {60, 60, 30});
  EXPECT_EQ(result.interference_events, 2);
  EXPECT_EQ(result.inflation, 50);
}

TEST(AttributeSpanTest, ZeroLengthSpanMakesEveryChunkAnEvent) {
  const SpanAttribution result = AttributeSpan(0, {10, 20, 30});
  EXPECT_EQ(result.interference_events, 3);
  EXPECT_EQ(result.inflation, 60);
}

TEST(AttributeSpanTest, NoChunksMeansNoInterference) {
  const SpanAttribution result = AttributeSpan(0, {});
  EXPECT_EQ(result.interference_events, 0);
  EXPECT_EQ(result.inflation, 0);
}

// ---------------------------------------------------------------------------
// InterferenceAuditor unit behaviour (EWMA math, trigger debounce)
// ---------------------------------------------------------------------------

class AuditorUnitTest : public ::testing::Test {
 protected:
  // One 1ms idle span starting at 100us, no chunks planned into it.
  void Rebaseline(InterferenceAuditor& auditor) {
    std::vector<IdleSpan> spans;
    spans.push_back({Micros(100), Millis(1)});
    PartitionResult plan;  // Empty schedule: pure drift tracking.
    PartitionParams params;
    params.idle_spans = spans;
    auditor.Rebaseline(spans, plan, params);
  }
};

TEST_F(AuditorUnitTest, EwmaFollowsClosedForm) {
  AuditorConfig config;
  config.ewma_alpha = 0.4;
  InterferenceAuditor auditor(config, nullptr, nullptr);
  Rebaseline(auditor);

  // Constant -20% drift: ewma_n = 0.4*d + 0.6*ewma_{n-1}, ewma_0 = 0.
  const TimeNs observed = static_cast<TimeNs>(0.8 * Millis(1));
  double expected = 0.0;
  for (int i = 0; i < 5; ++i) {
    const AuditReport report = auditor.AuditIteration(i, {observed}, 0);
    const double drift =
        (static_cast<double>(observed) - static_cast<double>(Millis(1))) /
        static_cast<double>(Millis(1));
    expected = 0.4 * drift + 0.6 * expected;
    ASSERT_EQ(auditor.drift_ewma().size(), 1u);
    EXPECT_NEAR(auditor.drift_ewma()[0], expected, 1e-12);
    EXPECT_NEAR(report.max_abs_drift, std::fabs(expected), 1e-12);
  }
}

TEST_F(AuditorUnitTest, MissingObservationsMatchTheProfile) {
  InterferenceAuditor auditor(AuditorConfig{}, nullptr, nullptr);
  Rebaseline(auditor);
  const AuditReport report = auditor.AuditIteration(0, {}, 0);
  EXPECT_EQ(report.max_abs_drift, 0.0);
  EXPECT_EQ(auditor.drift_ewma()[0], 0.0);
}

TEST_F(AuditorUnitTest, TriggerNeedsConsecutiveDriftedIterations) {
  AuditorConfig config;
  config.ewma_alpha = 0.4;
  config.drift_threshold = 0.10;
  config.consecutive_iterations = 3;
  InterferenceAuditor auditor(config, nullptr, nullptr);
  Rebaseline(auditor);
  int fired = 0;
  auditor.set_on_drift([&](int64_t) { ++fired; });

  // Constant -20% shift: |EWMA| = .08, .128, .1568, .174 — the threshold is
  // first exceeded on audit 2, so the 3rd consecutive drifted audit is #4.
  const TimeNs observed = static_cast<TimeNs>(0.8 * Millis(1));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(auditor.AuditIteration(i, {observed}, 0).reprofile_triggered);
  }
  const AuditReport fourth = auditor.AuditIteration(3, {observed}, 0);
  EXPECT_TRUE(fourth.reprofile_triggered);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(auditor.reprofiles(), 1);
  // The trigger resets the streak; without a Rebaseline the still-shifted
  // timeline has to re-earn K consecutive drifted audits.
  EXPECT_EQ(auditor.consecutive_drifted(), 0);
}

TEST_F(AuditorUnitTest, OneOffStragglerDoesNotTrigger) {
  AuditorConfig config;
  config.consecutive_iterations = 3;
  InterferenceAuditor auditor(config, nullptr, nullptr);
  Rebaseline(auditor);
  int fired = 0;
  auditor.set_on_drift([&](int64_t) { ++fired; });

  const TimeNs nominal = Millis(1);
  const TimeNs straggler = static_cast<TimeNs>(0.5 * Millis(1));
  for (int i = 0; i < 20; ++i) {
    // One bad iteration in every four; recovery iterations pull the EWMA
    // back under the threshold before the streak reaches 3.
    const TimeNs observed = (i % 4 == 0) ? straggler : nominal;
    auditor.AuditIteration(i, {observed}, 0);
  }
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(auditor.reprofiles(), 0);
}

TEST_F(AuditorUnitTest, RebaselineResetsDriftState) {
  AuditorConfig config;
  config.consecutive_iterations = 3;
  InterferenceAuditor auditor(config, nullptr, nullptr);
  Rebaseline(auditor);
  const TimeNs observed = static_cast<TimeNs>(0.8 * Millis(1));
  auditor.AuditIteration(0, {observed}, 0);
  auditor.AuditIteration(1, {observed}, 0);
  EXPECT_GT(auditor.consecutive_drifted(), 0);
  EXPECT_NE(auditor.drift_ewma()[0], 0.0);

  Rebaseline(auditor);
  EXPECT_EQ(auditor.consecutive_drifted(), 0);
  EXPECT_EQ(auditor.drift_ewma()[0], 0.0);
}

TEST_F(AuditorUnitTest, HookFiresAtMostMaxReprofilesTimes) {
  AuditorConfig config;
  config.consecutive_iterations = 1;
  config.max_reprofiles = 2;
  InterferenceAuditor auditor(config, nullptr, nullptr);
  Rebaseline(auditor);
  int fired = 0;
  // Deliberately no Rebaseline in the hook: the shift keeps re-triggering,
  // and the cap must bound the firings.
  auditor.set_on_drift([&](int64_t) { ++fired; });
  const TimeNs observed = static_cast<TimeNs>(0.5 * Millis(1));
  for (int i = 0; i < 10; ++i) {
    auditor.AuditIteration(i, {observed}, 0);
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(auditor.reprofiles(), 2);
}

TEST_F(AuditorUnitTest, DisabledAuditorDoesNothing) {
  AuditorConfig config;
  config.enabled = false;
  InterferenceAuditor auditor(config, nullptr, nullptr);
  Rebaseline(auditor);
  const AuditReport report =
      auditor.AuditIteration(0, {static_cast<TimeNs>(0.2 * Millis(1))}, 0);
  EXPECT_EQ(report.max_abs_drift, 0.0);
  EXPECT_EQ(auditor.audits(), 0);
}

// ---------------------------------------------------------------------------
// Planned span costs recorded by the partitioner
// ---------------------------------------------------------------------------

TEST(PlannedSpanCostTest, PartitionReportsPerSpanCost) {
  PartitionParams params;
  params.idle_spans.push_back({0, Millis(2)});
  params.idle_spans.push_back({Millis(5), Millis(2)});
  params.checkpoint_bytes = MiB(1);
  params.num_remote_replicas = 1;
  params.reserved_buffer = MiB(1);
  params.num_buffers = 4;
  params.bandwidth = 1e9;  // 1 GB/s.
  params.alpha = Micros(10);
  params.gamma = 0.7;
  const StatusOr<PartitionResult> plan = PartitionCheckpoint(params);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->planned_span_cost.size(), params.idle_spans.size());
  // The recorded per-span cost is exactly the sum of f(size) over the chunks
  // placed into that span.
  std::vector<TimeNs> recomputed(params.idle_spans.size(), 0);
  for (const ChunkAssignment& chunk : plan->chunks) {
    recomputed[static_cast<size_t>(chunk.span_index)] +=
        params.alpha + TransferTime(chunk.bytes, params.bandwidth);
  }
  EXPECT_EQ(plan->planned_span_cost, recomputed);
}

// ---------------------------------------------------------------------------
// End-to-end feedback loop through GeminiSystem
// ---------------------------------------------------------------------------

GeminiConfig AuditSystemConfig() {
  GeminiConfig config;
  config.model = Gpt2_100B();
  config.instance = P4d24xlarge();
  config.num_machines = 8;
  config.num_replicas = 2;
  config.payload_elements = 32;
  config.seed = 2024;
  config.cloud.num_standby = 2;
  return config;
}

TEST(AuditorSystemTest, NoDriftMeansNoInterferenceAndUnchangedIterations) {
  GeminiConfig audited = AuditSystemConfig();
  GeminiConfig unaudited = AuditSystemConfig();
  unaudited.audit.enabled = false;

  GeminiSystem with_audit(audited);
  GeminiSystem without_audit(unaudited);
  ASSERT_TRUE(with_audit.Initialize().ok());
  ASSERT_TRUE(without_audit.Initialize().ok());
  const auto audited_report = with_audit.TrainUntil(10);
  const auto unaudited_report = without_audit.TrainUntil(10);
  ASSERT_TRUE(audited_report.ok());
  ASSERT_TRUE(unaudited_report.ok());

  // The auditor observed every iteration but, absent drift, charged nothing:
  // wall time matches the un-audited run exactly (Fig. 7 claims intact).
  EXPECT_EQ(audited_report->wall_time, unaudited_report->wall_time);
  EXPECT_EQ(audited_report->iteration_time, unaudited_report->iteration_time);

  const SystemSnapshot snapshot = with_audit.Snapshot();
  EXPECT_EQ(snapshot.audits, 10);
  EXPECT_EQ(snapshot.interference_events, 0);
  EXPECT_EQ(snapshot.interference_inflation, 0);
  EXPECT_EQ(snapshot.reprofiles, 0);
  EXPECT_LT(snapshot.max_abs_drift_ewma, 0.10);
  EXPECT_EQ(with_audit.metrics().counter_value("obs.audits"), 10);
  EXPECT_EQ(with_audit.metrics().counter_value("obs.interference.events"), 0);

  const SystemSnapshot disabled = without_audit.Snapshot();
  EXPECT_EQ(disabled.audits, 0);
}

TEST(AuditorSystemTest, SustainedShiftTriggersExactlyOneReprofile) {
  GeminiConfig config = AuditSystemConfig();
  config.observed_span_jitter_stddev = 0.0;  // Crisp drift math.
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  ASSERT_TRUE(system.TrainUntil(2).ok());

  // A persistent -20% shift: over threshold but not deep enough to breach
  // the gamma=0.7 margin, so drift is detected without interference.
  system.InjectTimelineShift(0.8);
  const auto report = system.TrainUntil(12);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->iterations_completed, 12);

  const SystemSnapshot snapshot = system.Snapshot();
  EXPECT_EQ(snapshot.reprofiles, 1);
  EXPECT_EQ(snapshot.interference_events, 0);
  EXPECT_EQ(system.metrics().counter_value("obs.reprofiles"), 1);
  EXPECT_EQ(system.metrics().counter_value("system.reprofiles"), 1);
  EXPECT_EQ(system.tracer().CountNamed("reprofile"), 1);
  // The fresh baseline tracks the shifted timeline, so post-reprofile drift
  // is only the profiling error.
  EXPECT_LT(snapshot.max_abs_drift_ewma, 0.10);
  // Re-partitioning against the shifted profile still finds a schedule.
  EXPECT_TRUE(system.iteration_execution().partition.fits_within_idle_time);
}

TEST(AuditorSystemTest, DeepShiftAttributesInterferenceUntilReprofileCures) {
  GeminiConfig config = AuditSystemConfig();
  config.observed_span_jitter_stddev = 0.0;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  ASSERT_TRUE(system.TrainUntil(2).ok());

  // Halving the idle spans breaches the gamma=0.7 packing margin: scheduled
  // chunks collide with training traffic until the re-profile replans them.
  system.InjectTimelineShift(0.5);
  const auto report = system.TrainUntil(12);
  ASSERT_TRUE(report.ok()) << report.status();

  const SystemSnapshot snapshot = system.Snapshot();
  EXPECT_GT(snapshot.interference_events, 0);
  EXPECT_GT(snapshot.interference_inflation, 0);
  EXPECT_EQ(snapshot.reprofiles, 1);
  EXPECT_EQ(system.tracer().CountNamed("reprofile"), 1);
  EXPECT_GT(system.tracer().CountNamed("interference"), 0);
  // The re-partition found a schedule that fits even the halved spans (idle
  // time is abundant in this configuration), so iterations return to the
  // overhead-free baseline instead of keeping the collision inflation.
  EXPECT_TRUE(system.iteration_execution().partition.fits_within_idle_time);
  EXPECT_EQ(snapshot.iteration_time, snapshot.baseline_iteration_time);

  // After the re-partition the new schedule fits the shrunken spans: further
  // training accrues no new interference.
  const TimeNs inflation_after_cure = system.auditor().total_inflation();
  const int64_t events_after_cure = system.auditor().total_interference_events();
  ASSERT_TRUE(system.TrainUntil(20).ok());
  EXPECT_EQ(system.auditor().total_inflation(), inflation_after_cure);
  EXPECT_EQ(system.auditor().total_interference_events(), events_after_cure);
}

TEST(AuditorSystemTest, SameSeedRunsProduceByteIdenticalObservability) {
  auto run = [](GeminiSystem& system) {
    ASSERT_TRUE(system.Initialize().ok());
    system.failure_injector().InjectAt(Minutes(3), FailureType::kSoftware, {5});
    ASSERT_TRUE(system.TrainUntil(8).ok());
  };
  GeminiSystem first(AuditSystemConfig());
  GeminiSystem second(AuditSystemConfig());
  run(first);
  run(second);

  // One failure -> one failure_detected dump and one recovery_complete dump.
  EXPECT_EQ(first.flight_recorder().dump_count(), 2);
  EXPECT_EQ(first.Snapshot().flight_dumps, 2);
  EXPECT_FALSE(first.flight_recorder().dump_log().empty());

  // The determinism contract: byte-identical trace and flight-recorder
  // exports across same-seed runs.
  EXPECT_EQ(first.tracer().ToJsonl(), second.tracer().ToJsonl());
  EXPECT_EQ(first.flight_recorder().dump_log(), second.flight_recorder().dump_log());
  EXPECT_EQ(first.metrics().ToJson(), second.metrics().ToJson());
}

TEST(AuditorSystemTest, FlightRecorderRingStaysBounded) {
  GeminiConfig config = AuditSystemConfig();
  config.flight_recorder_capacity = 16;
  GeminiSystem system(config);
  ASSERT_TRUE(system.Initialize().ok());
  system.failure_injector().InjectAt(Minutes(3), FailureType::kSoftware, {5});
  ASSERT_TRUE(system.TrainUntil(8).ok());

  const FlightRecorder& recorder = system.flight_recorder();
  EXPECT_LE(recorder.ring_size(), 64u);
  EXPECT_GT(recorder.records_evicted(), 0);
  EXPECT_EQ(recorder.records_seen(),
            recorder.records_evicted() + static_cast<int64_t>(recorder.ring_size()));
  EXPECT_NE(recorder.dump_log().find("\"reason\":\"failure_detected\""), std::string::npos);
  EXPECT_NE(recorder.dump_log().find("\"reason\":\"recovery_complete\""), std::string::npos);
}

TEST(AuditorSystemTest, TracerCapDropsNewRecordsKeepingPrefix) {
  GeminiConfig uncapped_config = AuditSystemConfig();
  GeminiConfig capped_config = AuditSystemConfig();
  capped_config.tracer_max_records = 20;

  GeminiSystem uncapped(uncapped_config);
  GeminiSystem capped(capped_config);
  ASSERT_TRUE(uncapped.Initialize().ok());
  ASSERT_TRUE(capped.Initialize().ok());
  ASSERT_TRUE(uncapped.TrainUntil(10).ok());
  ASSERT_TRUE(capped.TrainUntil(10).ok());

  EXPECT_EQ(capped.tracer().records().size(), 20u);
  EXPECT_GT(capped.tracer().dropped_records(), 0);
  EXPECT_EQ(capped.metrics().counter_value("tracer.dropped_records"),
            capped.tracer().dropped_records());
  EXPECT_EQ(capped.Snapshot().tracer_dropped_records, capped.tracer().dropped_records());
  EXPECT_EQ(uncapped.Snapshot().tracer_dropped_records, 0);

  // Capping drops only *new* records: the capped export is a byte-exact
  // prefix of the uncapped run's export.
  const std::string full = uncapped.tracer().ToJsonl();
  const std::string prefix = capped.tracer().ToJsonl();
  ASSERT_LT(prefix.size(), full.size());
  EXPECT_EQ(full.compare(0, prefix.size(), prefix), 0);

  // The flight recorder rides the record sink, which fires past the cap: it
  // saw every record the uncapped tracer stored.
  EXPECT_EQ(capped.flight_recorder().records_seen(),
            static_cast<int64_t>(uncapped.tracer().records().size()));
}

}  // namespace
}  // namespace gemini
