#!/usr/bin/env bash
# CI entry point: tier-1 verification plus a sanitizer pass.
#
#   scripts/ci.sh            # plain build + full ctest, then ASan+UBSan ctest
#   scripts/ci.sh --fast     # plain build + full ctest only
#
# The sanitizer pass builds into a separate tree (build-asan/) with
# -DGEMINI_SANITIZE=address,undefined so the instrumented binaries never mix
# with the plain ones. TSan is available via -DGEMINI_SANITIZE=thread but is
# not part of the default CI matrix (the simulator is single-threaded).
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j"$(nproc)")

if [[ "$fast" == "1" ]]; then
  echo "==> done (fast mode: sanitizer pass skipped)"
  exit 0
fi

echo "==> sanitizer pass: configure + build (address,undefined)"
cmake -B build-asan -S . -DGEMINI_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j

echo "==> sanitizer pass: ctest"
(cd build-asan && ctest --output-on-failure -j"$(nproc)")

echo "==> done"
