#!/usr/bin/env bash
# CI entry point: tier-1 verification plus Release and sanitizer passes.
#
#   scripts/ci.sh            # plain build + full ctest, then Release (-O2)
#                            # build + ctest, then ASan+UBSan ctest
#   scripts/ci.sh --fast     # plain build + full ctest only
#
# The Release pass builds into a separate tree (build-release/) with
# -DCMAKE_BUILD_TYPE=Release: the perf-labelled benches gate their speedup
# shape checks there, at the optimization level the claims are made for, and
# an -O2-only miscompile or assert-hidden bug surfaces before merge. The
# sanitizer pass builds into build-asan/ with
# -DGEMINI_SANITIZE=address,undefined so the instrumented binaries never mix
# with the plain ones. TSan is available via -DGEMINI_SANITIZE=thread but is
# not part of the default CI matrix (the simulator is single-threaded).
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j"$(nproc)")

echo "==> tier-1: ctest -L policy (protection-policy engine)"
(cd build && ctest --output-on-failure -L policy)

if [[ "$fast" == "1" ]]; then
  echo "==> done (fast mode: Release and sanitizer passes skipped)"
  exit 0
fi

echo "==> release pass: configure + build (-DCMAKE_BUILD_TYPE=Release)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j

echo "==> release pass: ctest"
(cd build-release && ctest --output-on-failure -j"$(nproc)")

echo "==> sanitizer pass: configure + build (address,undefined)"
cmake -B build-asan -S . -DGEMINI_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j

echo "==> sanitizer pass: ctest -L obs (auditor, flight recorder, tracer determinism)"
(cd build-asan && ctest --output-on-failure -L obs)

echo "==> sanitizer pass: ctest -L policy (policy engine under ASan+UBSan)"
(cd build-asan && ctest --output-on-failure -L policy)

echo "==> sanitizer pass: ctest -L delta (incremental checkpoints under ASan+UBSan)"
(cd build-asan && ctest --output-on-failure -L delta)

echo "==> sanitizer pass: ctest (remaining suites)"
(cd build-asan && ctest --output-on-failure -LE 'obs|policy|delta' -j"$(nproc)")

# Smoke-run the auditor bench: its shape check gates the zero-overhead and
# determinism claims, and an uncapped tracer dropping records is a regression
# even if the shape check were ever loosened.
echo "==> bench smoke: bench_ext_auditor"
GEMINI_BENCH_OUT_DIR="$(mktemp -d)" && trap 'rm -rf "$GEMINI_BENCH_OUT_DIR"' EXIT
export GEMINI_BENCH_OUT_DIR
./build/bench/bench_ext_auditor
if ! grep -q '"stable.tracer_dropped_records": 0' \
    "$GEMINI_BENCH_OUT_DIR/BENCH_ext_auditor.json"; then
  echo "FAIL: uncapped tracer dropped records during the auditor smoke run" >&2
  exit 1
fi

# Smoke-run the policy-comparison bench: its shape check gates the four
# policies' overhead/recovery ordering, and the Chameleon selector must
# switch at least once under the injected failure-rate shift.
echo "==> bench smoke: bench_ext_policies"
./build/bench/bench_ext_policies
switches="$(sed -n 's/.*"chameleon.switches": \([0-9]*\).*/\1/p' \
    "$GEMINI_BENCH_OUT_DIR/BENCH_ext_policies.json")"
if [[ -z "$switches" || "$switches" -lt 1 ]]; then
  echo "FAIL: Chameleon selector never switched during the policy smoke run" >&2
  exit 1
fi

# Smoke-run the delta bench: its shape check gates the incremental data
# path's headline claims — full-vs-delta runs end bit-identical, replicated
# checkpoint bytes drop >= 2x at <= 25% dirty fraction, and dense updates
# cost nothing extra.
echo "==> bench smoke: bench_ext_deltas"
./build/bench/bench_ext_deltas

# Smoke-run the data-path bench from the Release tree: its shape check gates
# the slice-by-8 CRC speedup (>= 3x over the byte-wise reference), the
# hardware CRC speedup (>= 2x over slicing-by-8 where dispatched), and a
# nonzero capture->replicate->commit wall-clock at every payload size.
echo "==> bench smoke: bench_perf_datapath (Release)"
./build-release/bench/bench_perf_datapath

# Forced-fallback leg: build with the hardware CRC kernels compiled out
# (-DGEMINI_DISABLE_HWCRC=ON) and re-run the CRC/serialization-sensitive
# suites, so the portable slicing-by-8 path stays bit-identical and green on
# machines without PCLMUL/ARMv8-CRC. The bench must report the fallback as
# the active implementation under this build.
echo "==> forced-fallback pass: configure + build (-DGEMINI_DISABLE_HWCRC=ON)"
cmake -B build-nohwcrc -S . -DCMAKE_BUILD_TYPE=Release -DGEMINI_DISABLE_HWCRC=ON >/dev/null
cmake --build build-nohwcrc -j --target common_test storage_test replicator_test \
  bench_perf_datapath

echo "==> forced-fallback pass: CRC/serializer/replicator suites"
./build-nohwcrc/tests/common_test --gtest_filter='Crc32*:ThreadPool*'
./build-nohwcrc/tests/storage_test
./build-nohwcrc/tests/replicator_test
nohw_out="$(./build-nohwcrc/bench/bench_perf_datapath)"
echo "$nohw_out"
if ! grep -q 'active CRC implementation: slicing-by-8' <<<"$nohw_out"; then
  echo "FAIL: GEMINI_DISABLE_HWCRC build still dispatched a hardware CRC kernel" >&2
  exit 1
fi

# The same switch must also work at runtime, on the hardware-enabled build.
echo "==> forced-fallback pass: GEMINI_DISABLE_HWCRC=1 env override"
env_out="$(GEMINI_DISABLE_HWCRC=1 ./build-release/bench/bench_perf_datapath)"
if ! grep -q 'active CRC implementation: slicing-by-8' <<<"$env_out"; then
  echo "FAIL: GEMINI_DISABLE_HWCRC=1 did not force the portable CRC path" >&2
  exit 1
fi

echo "==> done"
