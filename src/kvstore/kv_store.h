// Replicated key-value store with Raft-style leader election and log
// replication, plus etcd-style leases and watches.
//
// This is the substrate standing in for etcd (Section 3.2 of the paper): the
// GEMINI worker agents publish heartbeat-leased health keys here, the root
// agent scans them, and root-machine failover uses the store's election
// primitive.
//
// Consensus scope: full Raft leader election (terms, randomized timeouts,
// vote safety via last-log checks) and log replication with commit on
// majority. Log divergence repair uses the match-index walk-back; snapshots
// are unnecessary because logs stay small at simulation scale. Reads are
// served by the leader from applied state.
#ifndef SRC_KVSTORE_KV_STORE_H_
#define SRC_KVSTORE_KV_STORE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/fabric.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/kvstore/kv_types.h"
#include "src/sim/simulator.h"

namespace gemini {

class Counter;
class MetricsRegistry;
class RunTracer;

struct KvStoreConfig {
  TimeNs heartbeat_interval = Millis(100);
  // Election timeouts are drawn uniformly from [min, max] per node.
  TimeNs election_timeout_min = Millis(500);
  TimeNs election_timeout_max = Millis(1000);
};

class KvNode;

// The cluster of KV nodes. Owns all nodes, the watch registry, and routing.
class KvStoreCluster {
 public:
  // One node per entry of `server_ranks`, communicating over `fabric`
  // control messages. `alive` gates message processing so that machine
  // failures silently stop a node (matching a crashed etcd member).
  KvStoreCluster(Simulator& sim, Fabric& fabric, std::vector<int> server_ranks,
                 std::function<bool(int rank)> alive, KvStoreConfig config, uint64_t seed);
  ~KvStoreCluster();

  KvStoreCluster(const KvStoreCluster&) = delete;
  KvStoreCluster& operator=(const KvStoreCluster&) = delete;

  // Starts all nodes' timers (election timers armed immediately).
  void Start();

  // Optional observability sinks ("kv.*" metrics; election trace events).
  // Set before Start() so the first election is captured. Counter handles
  // are resolved here, once, per the hot-path metric convention
  // (src/obs/metrics.h) — every committed op passes the proposal counter.
  void set_observability(MetricsRegistry* metrics, RunTracer* tracer);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<int>& server_ranks() const { return server_ranks_; }

  // Rank of the current leader, or nullopt if no node currently leads.
  std::optional<int> LeaderRank() const;

  // ---- Client API -------------------------------------------------------
  // Calls are routed to the current leader; they fail with kUnavailable when
  // no leader exists (callers retry, as etcd clients do). Completion
  // callbacks fire after replication commits the op (majority ack).

  using ProposeCallback = std::function<void(Status)>;
  void Put(const std::string& key, const std::string& value, LeaseId lease,
           ProposeCallback done);
  // Batched put: all entries ride one log entry / one consensus round and
  // apply atomically in order (each still emits its own watch event). The
  // checkpoint hot path uses this to publish per-checkpoint bookkeeping as
  // one flush instead of one proposal per key.
  void PutBatch(std::vector<KvPutEntry> entries, LeaseId lease, ProposeCallback done);
  // Election primitive: the put applies only when the key is absent; callers
  // Get() afterwards to learn the winner.
  void PutIfAbsent(const std::string& key, const std::string& value, LeaseId lease,
                   ProposeCallback done);
  void Delete(const std::string& key, ProposeCallback done);

  using LeaseCallback = std::function<void(StatusOr<LeaseId>)>;
  void LeaseGrant(TimeNs ttl, LeaseCallback done);
  void LeaseKeepAlive(LeaseId lease, ProposeCallback done);
  void LeaseRevoke(LeaseId lease, ProposeCallback done);

  // Linearizable-enough read from the leader's applied state.
  StatusOr<KvEntry> Get(const std::string& key) const;
  // All applied entries whose key starts with `prefix`.
  std::map<std::string, KvEntry> List(const std::string& prefix) const;

  // Registers a watch on a key prefix. Events are emitted when ops commit.
  // Delivery is at-least-once across leader changes. Returns a watch id.
  uint64_t Watch(const std::string& prefix, WatchCallback callback);
  void CancelWatch(uint64_t watch_id);

  // ---- Introspection (tests) --------------------------------------------
  const KvNode& node(int index) const { return *nodes_.at(static_cast<size_t>(index)); }
  KvNode& node(int index) { return *nodes_.at(static_cast<size_t>(index)); }

 private:
  friend class KvNode;

  KvNode* Leader() const;
  void EmitWatchEvents(const std::vector<WatchEvent>& events);

  Simulator& sim_;
  Fabric& fabric_;
  std::vector<int> server_ranks_;
  std::function<bool(int)> alive_;
  KvStoreConfig config_;
  MetricsRegistry* metrics_ = nullptr;
  RunTracer* tracer_ = nullptr;
  // Hot-path metric handles (resolved once in set_observability), shared by
  // every node of the cluster.
  Counter* elections_started_counter_ = nullptr;
  Counter* elections_won_counter_ = nullptr;
  Counter* proposals_counter_ = nullptr;
  std::vector<std::unique_ptr<KvNode>> nodes_;
  uint64_t next_watch_id_ = 1;
  struct WatchReg {
    std::string prefix;
    WatchCallback callback;
  };
  std::map<uint64_t, WatchReg> watches_;
};

// One Raft participant. Public for tests; application code uses the cluster.
class KvNode {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  KvNode(KvStoreCluster& cluster, int index, int rank, uint64_t seed);

  void Start();

  // Rejoins the cluster with empty state after its machine was replaced; the
  // node catches up from the leader via the AppendEntries walk-back. (Real
  // etcd would use a membership change; wiping state is the simulation-scale
  // equivalent.)
  void ResetAndRestart();

  Role role() const { return role_; }
  uint64_t term() const { return term_; }
  int rank() const { return rank_; }
  bool alive() const;
  uint64_t commit_index() const { return commit_index_; }
  uint64_t last_applied() const { return last_applied_; }
  const std::map<std::string, KvEntry>& applied_state() const { return state_; }

  // Leader-side entry point used by the cluster client API.
  void Propose(KvOp op, std::function<void(Status)> done);

  // Applied-state lookups (valid on any node; the cluster queries the
  // leader's).
  std::optional<KvEntry> GetApplied(const std::string& key) const;
  std::map<std::string, KvEntry> ListApplied(const std::string& prefix) const;

 private:
  friend class KvStoreCluster;

  struct LogEntry {
    uint64_t term = 0;
    KvOp op;
  };

  struct LeaseState {
    TimeNs deadline = 0;
    TimeNs ttl = 0;
    std::vector<std::string> keys;
  };

  // -- Message handlers (invoked via fabric control messages). --
  void OnRequestVote(uint64_t term, int candidate, uint64_t last_log_index,
                     uint64_t last_log_term);
  void OnRequestVoteReply(uint64_t term, bool granted);
  void OnAppendEntries(uint64_t term, int leader, uint64_t prev_index, uint64_t prev_term,
                       std::vector<LogEntry> entries, uint64_t leader_commit);
  void OnAppendEntriesReply(int from, uint64_t term, bool success, uint64_t match_index);

  // -- Timers --
  void ResetElectionTimer();
  void OnElectionTimeout();
  void OnHeartbeatTick();

  void BecomeFollower(uint64_t term);
  void BecomeLeader();
  void StartElection();
  void ReplicateTo(int peer_index);
  void AdvanceCommit();
  void ApplyCommitted();
  // Applies one op to the state machine; returns watch events it produced.
  std::vector<WatchEvent> ApplyOp(const KvOp& op, uint64_t index);
  // Applies one put (shared by kPut and each kPutBatch entry), appending the
  // watch event it produced.
  void ApplyPut(const std::string& key, const std::string& value, LeaseId lease,
                bool if_absent, uint64_t index, std::vector<WatchEvent>& events);
  // Leader-only: proposes revocations for expired leases.
  void ExpireLeases();

  void Send(int peer_index, std::function<void()> handler);

  uint64_t LastLogIndex() const { return static_cast<uint64_t>(log_.size()); }
  uint64_t LastLogTerm() const { return log_.empty() ? 0 : log_.back().term; }

  KvStoreCluster& cluster_;
  int index_;
  int rank_;
  Rng rng_;

  Role role_ = Role::kFollower;
  uint64_t term_ = 0;
  std::optional<int> voted_for_;
  int votes_received_ = 0;
  std::optional<int> leader_index_;

  // Log is 1-indexed externally: log_[i-1] holds index i.
  std::vector<LogEntry> log_;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;

  // Leader state.
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;
  // Completion callbacks for proposals awaiting commit, by log index.
  std::map<uint64_t, std::function<void(Status)>> pending_proposals_;

  // Applied state machine.
  std::map<std::string, KvEntry> state_;
  std::map<LeaseId, LeaseState> leases_;
  LeaseId next_lease_id_ = 1;

  EventId election_timer_{};
  EventId heartbeat_timer_{};
};

}  // namespace gemini

#endif  // SRC_KVSTORE_KV_STORE_H_
