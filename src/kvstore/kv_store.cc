#include "src/kvstore/kv_store.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"

namespace gemini {

// ---------------------------------------------------------------------------
// KvStoreCluster
// ---------------------------------------------------------------------------

KvStoreCluster::KvStoreCluster(Simulator& sim, Fabric& fabric, std::vector<int> server_ranks,
                               std::function<bool(int rank)> alive, KvStoreConfig config,
                               uint64_t seed)
    : sim_(sim),
      fabric_(fabric),
      server_ranks_(std::move(server_ranks)),
      alive_(std::move(alive)),
      config_(config) {
  assert(!server_ranks_.empty());
  assert(alive_);
  Rng seeder(seed);
  nodes_.reserve(server_ranks_.size());
  for (size_t i = 0; i < server_ranks_.size(); ++i) {
    nodes_.push_back(std::make_unique<KvNode>(*this, static_cast<int>(i),
                                              server_ranks_[i], seeder.NextU64()));
  }
}

KvStoreCluster::~KvStoreCluster() = default;

void KvStoreCluster::Start() {
  for (auto& node : nodes_) {
    node->Start();
  }
}

void KvStoreCluster::set_observability(MetricsRegistry* metrics, RunTracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  if (metrics != nullptr) {
    elections_started_counter_ = &metrics->counter("kv.elections_started");
    elections_won_counter_ = &metrics->counter("kv.elections_won");
    proposals_counter_ = &metrics->counter("kv.proposals");
  } else {
    elections_started_counter_ = nullptr;
    elections_won_counter_ = nullptr;
    proposals_counter_ = nullptr;
  }
}

KvNode* KvStoreCluster::Leader() const {
  // During a partition a deposed leader may still believe it leads; the
  // highest term identifies the real (quorum-backed) one.
  KvNode* best = nullptr;
  for (const auto& node : nodes_) {
    if (node->role() == KvNode::Role::kLeader && node->alive() &&
        (best == nullptr || node->term() > best->term())) {
      best = node.get();
    }
  }
  return best;
}

std::optional<int> KvStoreCluster::LeaderRank() const {
  const KvNode* leader = Leader();
  if (leader == nullptr) {
    return std::nullopt;
  }
  return leader->rank();
}

void KvStoreCluster::Put(const std::string& key, const std::string& value, LeaseId lease,
                         ProposeCallback done) {
  KvNode* leader = Leader();
  if (leader == nullptr) {
    done(UnavailableError("kvstore: no leader"));
    return;
  }
  KvOp op;
  op.type = KvOpType::kPut;
  op.key = key;
  op.value = value;
  op.lease = lease;
  op.issue_time = sim_.now();
  leader->Propose(std::move(op), std::move(done));
}

void KvStoreCluster::PutBatch(std::vector<KvPutEntry> entries, LeaseId lease,
                              ProposeCallback done) {
  if (entries.empty()) {
    done(Status::Ok());  // Nothing to replicate; commit is vacuous.
    return;
  }
  KvNode* leader = Leader();
  if (leader == nullptr) {
    done(UnavailableError("kvstore: no leader"));
    return;
  }
  KvOp op;
  op.type = KvOpType::kPutBatch;
  op.entries = std::move(entries);
  op.lease = lease;
  op.issue_time = sim_.now();
  leader->Propose(std::move(op), std::move(done));
}

void KvStoreCluster::PutIfAbsent(const std::string& key, const std::string& value, LeaseId lease,
                                 ProposeCallback done) {
  KvNode* leader = Leader();
  if (leader == nullptr) {
    done(UnavailableError("kvstore: no leader"));
    return;
  }
  KvOp op;
  op.type = KvOpType::kPut;
  op.key = key;
  op.value = value;
  op.lease = lease;
  op.if_absent = true;
  op.issue_time = sim_.now();
  leader->Propose(std::move(op), std::move(done));
}

void KvStoreCluster::Delete(const std::string& key, ProposeCallback done) {
  KvNode* leader = Leader();
  if (leader == nullptr) {
    done(UnavailableError("kvstore: no leader"));
    return;
  }
  KvOp op;
  op.type = KvOpType::kDelete;
  op.key = key;
  op.issue_time = sim_.now();
  leader->Propose(std::move(op), std::move(done));
}

void KvStoreCluster::LeaseGrant(TimeNs ttl, LeaseCallback done) {
  KvNode* leader = Leader();
  if (leader == nullptr) {
    done(UnavailableError("kvstore: no leader"));
    return;
  }
  KvOp op;
  op.type = KvOpType::kLeaseGrant;
  op.ttl = ttl;
  op.issue_time = sim_.now();
  // The lease id is assigned deterministically at apply time; the leader
  // records it per log index so the grant callback can report it.
  KvNode* node = leader;
  const uint64_t index_hint = node->LastLogIndex() + 1;
  leader->Propose(std::move(op), [node, index_hint, done = std::move(done)](Status status) {
    if (!status.ok()) {
      done(std::move(status));
      return;
    }
    const std::optional<KvEntry> entry = node->GetApplied("__lease_index/" +
                                                          std::to_string(index_hint));
    if (!entry.has_value()) {
      done(InternalError("lease grant applied but id not recorded"));
      return;
    }
    done(static_cast<LeaseId>(std::stoull(entry->value)));
  });
}

void KvStoreCluster::LeaseKeepAlive(LeaseId lease, ProposeCallback done) {
  KvNode* leader = Leader();
  if (leader == nullptr) {
    done(UnavailableError("kvstore: no leader"));
    return;
  }
  KvOp op;
  op.type = KvOpType::kLeaseKeepAlive;
  op.lease = lease;
  op.issue_time = sim_.now();
  leader->Propose(std::move(op), std::move(done));
}

void KvStoreCluster::LeaseRevoke(LeaseId lease, ProposeCallback done) {
  KvNode* leader = Leader();
  if (leader == nullptr) {
    done(UnavailableError("kvstore: no leader"));
    return;
  }
  KvOp op;
  op.type = KvOpType::kLeaseRevoke;
  op.lease = lease;
  op.issue_time = sim_.now();
  leader->Propose(std::move(op), std::move(done));
}

StatusOr<KvEntry> KvStoreCluster::Get(const std::string& key) const {
  const KvNode* leader = Leader();
  if (leader == nullptr) {
    return UnavailableError("kvstore: no leader");
  }
  const std::optional<KvEntry> entry = leader->GetApplied(key);
  if (!entry.has_value()) {
    return NotFoundError("key not found: " + key);
  }
  return *entry;
}

std::map<std::string, KvEntry> KvStoreCluster::List(const std::string& prefix) const {
  const KvNode* leader = Leader();
  if (leader == nullptr) {
    return {};
  }
  return leader->ListApplied(prefix);
}

uint64_t KvStoreCluster::Watch(const std::string& prefix, WatchCallback callback) {
  const uint64_t id = next_watch_id_++;
  watches_[id] = WatchReg{prefix, std::move(callback)};
  return id;
}

void KvStoreCluster::CancelWatch(uint64_t watch_id) { watches_.erase(watch_id); }

void KvStoreCluster::EmitWatchEvents(const std::vector<WatchEvent>& events) {
  if (events.empty() || watches_.empty()) {
    return;
  }
  for (const WatchEvent& event : events) {
    for (const auto& [id, reg] : watches_) {
      if (event.key.rfind(reg.prefix, 0) == 0) {
        // Deliver asynchronously with control-plane latency so watchers never
        // observe state "before" it was committed.
        WatchCallback cb = reg.callback;
        WatchEvent copy = event;
        sim_.ScheduleAfter(fabric_.config().control_delay,
                           [cb = std::move(cb), copy = std::move(copy)] { cb(copy); });
      }
    }
  }
}

// ---------------------------------------------------------------------------
// KvNode
// ---------------------------------------------------------------------------

KvNode::KvNode(KvStoreCluster& cluster, int index, int rank, uint64_t seed)
    : cluster_(cluster), index_(index), rank_(rank), rng_(seed) {
  const size_t n = cluster_.server_ranks_.size();
  next_index_.assign(n, 1);
  match_index_.assign(n, 0);
}

bool KvNode::alive() const { return cluster_.alive_(rank_); }

void KvNode::Start() { ResetElectionTimer(); }

void KvNode::ResetAndRestart() {
  role_ = Role::kFollower;
  term_ = 0;
  voted_for_.reset();
  votes_received_ = 0;
  leader_index_.reset();
  log_.clear();
  commit_index_ = 0;
  last_applied_ = 0;
  pending_proposals_.clear();
  state_.clear();
  leases_.clear();
  next_lease_id_ = 1;
  if (heartbeat_timer_.valid()) {
    cluster_.sim_.Cancel(heartbeat_timer_);
    heartbeat_timer_ = EventId{};
  }
  ResetElectionTimer();
}

void KvNode::Send(int peer_index, std::function<void()> handler) {
  const int peer_rank = cluster_.server_ranks_[static_cast<size_t>(peer_index)];
  cluster_.fabric_.SendControl(rank_, peer_rank, std::move(handler));
}

void KvNode::ResetElectionTimer() {
  if (election_timer_.valid()) {
    cluster_.sim_.Cancel(election_timer_);
  }
  const TimeNs timeout = rng_.UniformInt(cluster_.config_.election_timeout_min,
                                         cluster_.config_.election_timeout_max);
  election_timer_ = cluster_.sim_.ScheduleAfter(timeout, [this] { OnElectionTimeout(); });
}

void KvNode::OnElectionTimeout() {
  election_timer_ = EventId{};
  if (!alive()) {
    // A dead machine keeps its timer silent; if the machine is later replaced
    // the node restarts via Start().
    return;
  }
  if (role_ != Role::kLeader) {
    StartElection();
  }
  ResetElectionTimer();
}

void KvNode::StartElection() {
  role_ = Role::kCandidate;
  ++term_;
  if (cluster_.elections_started_counter_ != nullptr) {
    cluster_.elections_started_counter_->Increment();
  }
  voted_for_ = index_;
  votes_received_ = 1;
  leader_index_.reset();
  // A single-node cluster wins with its own vote.
  if (votes_received_ >= static_cast<int>(cluster_.server_ranks_.size()) / 2 + 1) {
    BecomeLeader();
    return;
  }
  GEMINI_LOG(kDebug) << "kv node " << index_ << " starts election for term " << term_;
  const uint64_t term = term_;
  const uint64_t last_index = LastLogIndex();
  const uint64_t last_term = LastLogTerm();
  for (size_t peer = 0; peer < cluster_.server_ranks_.size(); ++peer) {
    if (static_cast<int>(peer) == index_) {
      continue;
    }
    KvNode* target = cluster_.nodes_[peer].get();
    Send(static_cast<int>(peer), [target, term, self = index_, last_index, last_term] {
      target->OnRequestVote(term, self, last_index, last_term);
    });
  }
}

void KvNode::OnRequestVote(uint64_t term, int candidate, uint64_t last_log_index,
                           uint64_t last_log_term) {
  if (!alive()) {
    return;
  }
  if (term > term_) {
    BecomeFollower(term);
  }
  bool granted = false;
  if (term == term_ && (!voted_for_.has_value() || *voted_for_ == candidate)) {
    // Vote safety: candidate's log must be at least as up-to-date.
    const bool up_to_date = last_log_term > LastLogTerm() ||
                            (last_log_term == LastLogTerm() && last_log_index >= LastLogIndex());
    if (up_to_date) {
      granted = true;
      voted_for_ = candidate;
      ResetElectionTimer();
    }
  }
  KvNode* target = cluster_.nodes_[static_cast<size_t>(candidate)].get();
  const uint64_t reply_term = term_;
  Send(candidate, [target, reply_term, granted] {
    target->OnRequestVoteReply(reply_term, granted);
  });
}

void KvNode::OnRequestVoteReply(uint64_t term, bool granted) {
  if (!alive()) {
    return;
  }
  if (term > term_) {
    BecomeFollower(term);
    return;
  }
  if (role_ != Role::kCandidate || term != term_) {
    return;
  }
  if (granted) {
    ++votes_received_;
    const int majority = static_cast<int>(cluster_.server_ranks_.size()) / 2 + 1;
    if (votes_received_ >= majority) {
      BecomeLeader();
    }
  }
}

void KvNode::BecomeFollower(uint64_t term) {
  role_ = Role::kFollower;
  term_ = term;
  voted_for_.reset();
  votes_received_ = 0;
  if (heartbeat_timer_.valid()) {
    cluster_.sim_.Cancel(heartbeat_timer_);
    heartbeat_timer_ = EventId{};
  }
  // Any in-flight proposals this node accepted as a deposed leader may still
  // commit later; their callbacks are answered pessimistically so callers
  // retry (idempotent ops make this safe, matching etcd client behaviour).
  for (auto& [index, done] : pending_proposals_) {
    done(UnavailableError("kvstore: leadership lost before commit"));
  }
  pending_proposals_.clear();
}

void KvNode::BecomeLeader() {
  GEMINI_LOG(kDebug) << "kv node " << index_ << " becomes leader for term " << term_;
  if (cluster_.elections_won_counter_ != nullptr) {
    cluster_.elections_won_counter_->Increment();
  }
  if (cluster_.tracer_ != nullptr) {
    cluster_.tracer_->Event("kv_leader_elected", "kvstore",
                            {TraceAttr::Int("rank", rank_),
                             TraceAttr::Int("term", static_cast<int64_t>(term_))});
  }
  role_ = Role::kLeader;
  leader_index_ = index_;
  const size_t n = cluster_.server_ranks_.size();
  next_index_.assign(n, LastLogIndex() + 1);
  match_index_.assign(n, 0);
  match_index_[static_cast<size_t>(index_)] = LastLogIndex();
  OnHeartbeatTick();
}

void KvNode::OnHeartbeatTick() {
  heartbeat_timer_ = EventId{};
  if (!alive() || role_ != Role::kLeader) {
    return;
  }
  ExpireLeases();
  for (size_t peer = 0; peer < cluster_.server_ranks_.size(); ++peer) {
    if (static_cast<int>(peer) != index_) {
      ReplicateTo(static_cast<int>(peer));
    }
  }
  heartbeat_timer_ = cluster_.sim_.ScheduleAfter(cluster_.config_.heartbeat_interval,
                                                 [this] { OnHeartbeatTick(); });
}

void KvNode::ReplicateTo(int peer_index) {
  const uint64_t next = next_index_[static_cast<size_t>(peer_index)];
  const uint64_t prev_index = next - 1;
  const uint64_t prev_term = prev_index == 0 ? 0 : log_[prev_index - 1].term;
  std::vector<LogEntry> entries(log_.begin() + static_cast<std::ptrdiff_t>(prev_index),
                                log_.end());
  KvNode* target = cluster_.nodes_[static_cast<size_t>(peer_index)].get();
  const uint64_t term = term_;
  const int self = index_;
  const uint64_t commit = commit_index_;
  Send(peer_index,
       [target, term, self, prev_index, prev_term, entries = std::move(entries), commit] {
         target->OnAppendEntries(term, self, prev_index, prev_term, entries, commit);
       });
}

void KvNode::OnAppendEntries(uint64_t term, int leader, uint64_t prev_index, uint64_t prev_term,
                             std::vector<LogEntry> entries, uint64_t leader_commit) {
  if (!alive()) {
    return;
  }
  if (term > term_) {
    BecomeFollower(term);
  }
  bool success = false;
  uint64_t match = 0;
  if (term == term_) {
    if (role_ == Role::kCandidate) {
      BecomeFollower(term);
    }
    leader_index_ = leader;
    ResetElectionTimer();
    const bool prev_ok =
        prev_index == 0 || (prev_index <= LastLogIndex() && log_[prev_index - 1].term == prev_term);
    if (prev_ok) {
      // Truncate any conflicting suffix and append.
      uint64_t insert = prev_index;
      for (auto& entry : entries) {
        if (insert < LastLogIndex()) {
          if (log_[insert].term != entry.term) {
            log_.resize(insert);
            log_.push_back(std::move(entry));
          }
          // else: already present, keep it.
        } else {
          log_.push_back(std::move(entry));
        }
        ++insert;
      }
      success = true;
      match = insert;
      if (leader_commit > commit_index_) {
        commit_index_ = std::min(leader_commit, LastLogIndex());
        ApplyCommitted();
      }
    } else {
      // Hint the leader where our log ends so walk-back is O(1).
      match = LastLogIndex();
    }
  } else {
    match = LastLogIndex();
  }
  KvNode* target = cluster_.nodes_[static_cast<size_t>(leader)].get();
  const uint64_t reply_term = term_;
  const int self = index_;
  Send(leader, [target, self, reply_term, success, match] {
    target->OnAppendEntriesReply(self, reply_term, success, match);
  });
}

void KvNode::OnAppendEntriesReply(int from, uint64_t term, bool success, uint64_t match_index) {
  if (!alive()) {
    return;
  }
  if (term > term_) {
    BecomeFollower(term);
    return;
  }
  if (role_ != Role::kLeader || term != term_) {
    return;
  }
  if (success) {
    match_index_[static_cast<size_t>(from)] =
        std::max(match_index_[static_cast<size_t>(from)], match_index);
    next_index_[static_cast<size_t>(from)] = match_index_[static_cast<size_t>(from)] + 1;
    AdvanceCommit();
  } else {
    // Walk next_index back using the follower's hint.
    const uint64_t hint_next = match_index + 1;
    uint64_t& next = next_index_[static_cast<size_t>(from)];
    next = std::max<uint64_t>(1, std::min(next - 1, hint_next));
    ReplicateTo(from);
  }
}

void KvNode::AdvanceCommit() {
  const size_t n = cluster_.server_ranks_.size();
  const int majority = static_cast<int>(n) / 2 + 1;
  for (uint64_t candidate = LastLogIndex(); candidate > commit_index_; --candidate) {
    // Raft commit rule: only entries of the current term commit by counting.
    if (log_[candidate - 1].term != term_) {
      break;
    }
    int replicas = 0;
    for (size_t peer = 0; peer < n; ++peer) {
      if (match_index_[peer] >= candidate) {
        ++replicas;
      }
    }
    if (replicas >= majority) {
      commit_index_ = candidate;
      ApplyCommitted();
      break;
    }
  }
}

void KvNode::ApplyCommitted() {
  std::vector<WatchEvent> all_events;
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const KvOp& op = log_[last_applied_ - 1].op;
    std::vector<WatchEvent> events = ApplyOp(op, last_applied_);
    all_events.insert(all_events.end(), events.begin(), events.end());
    auto pending = pending_proposals_.find(last_applied_);
    if (pending != pending_proposals_.end()) {
      pending->second(Status::Ok());
      pending_proposals_.erase(pending);
    }
  }
  // Watch events are emitted by the leader only, so the cluster sees each
  // commit once per stable leadership.
  if (role_ == Role::kLeader && !all_events.empty()) {
    cluster_.EmitWatchEvents(all_events);
  }
}

void KvNode::ApplyPut(const std::string& key, const std::string& value, LeaseId lease_id,
                      bool if_absent, uint64_t index, std::vector<WatchEvent>& events) {
  if (if_absent && state_.contains(key)) {
    return;  // Key exists: the conditional put is a committed no-op.
  }
  KvEntry& entry = state_[key];
  // Re-attaching to a different lease moves the key between leases.
  if (entry.lease != kNoLease && entry.lease != lease_id) {
    auto lease = leases_.find(entry.lease);
    if (lease != leases_.end()) {
      auto& keys = lease->second.keys;
      keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
    }
  }
  entry.value = value;
  entry.mod_index = index;
  entry.lease = lease_id;
  if (lease_id != kNoLease) {
    auto lease = leases_.find(lease_id);
    if (lease != leases_.end()) {
      auto& keys = lease->second.keys;
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    }
  }
  events.push_back(WatchEvent{WatchEventType::kPut, key, value});
}

std::vector<WatchEvent> KvNode::ApplyOp(const KvOp& op, uint64_t index) {
  std::vector<WatchEvent> events;
  switch (op.type) {
    case KvOpType::kPut: {
      ApplyPut(op.key, op.value, op.lease, op.if_absent, index, events);
      break;
    }
    case KvOpType::kPutBatch: {
      // One log entry, N puts: applied in order so later entries win key
      // collisions deterministically on every replica.
      for (const KvPutEntry& put : op.entries) {
        ApplyPut(put.key, put.value, op.lease, /*if_absent=*/false, index, events);
      }
      break;
    }
    case KvOpType::kDelete: {
      auto it = state_.find(op.key);
      if (it != state_.end()) {
        events.push_back(WatchEvent{WatchEventType::kDelete, op.key, it->second.value});
        state_.erase(it);
      }
      break;
    }
    case KvOpType::kLeaseGrant: {
      const LeaseId id = next_lease_id_++;
      LeaseState lease;
      lease.ttl = op.ttl;
      lease.deadline = op.issue_time + op.ttl;
      leases_[id] = std::move(lease);
      // Deterministically expose the id so the granting leader can report it.
      KvEntry& marker = state_["__lease_index/" + std::to_string(index)];
      marker.value = std::to_string(id);
      marker.mod_index = index;
      break;
    }
    case KvOpType::kLeaseKeepAlive: {
      auto lease = leases_.find(op.lease);
      if (lease != leases_.end()) {
        lease->second.deadline = op.issue_time + lease->second.ttl;
      }
      break;
    }
    case KvOpType::kLeaseRevoke: {
      auto lease = leases_.find(op.lease);
      if (lease != leases_.end()) {
        for (const std::string& key : lease->second.keys) {
          auto it = state_.find(key);
          if (it != state_.end() && it->second.lease == op.lease) {
            events.push_back(WatchEvent{WatchEventType::kExpired, key, it->second.value});
            state_.erase(it);
          }
        }
        leases_.erase(lease);
      }
      break;
    }
  }
  return events;
}

void KvNode::ExpireLeases() {
  const TimeNs now = cluster_.sim_.now();
  for (const auto& [id, lease] : leases_) {
    if (lease.deadline < now) {
      KvOp op;
      op.type = KvOpType::kLeaseRevoke;
      op.lease = id;
      op.issue_time = now;
      // Duplicate revocations are harmless: the second apply finds no lease.
      Propose(std::move(op), [](Status) {});
      // Propose mutates the log; restart scanning next tick.
      break;
    }
  }
}

void KvNode::Propose(KvOp op, std::function<void(Status)> done) {
  if (!alive()) {
    done(UnavailableError("kvstore: node is down"));
    return;
  }
  if (role_ != Role::kLeader) {
    done(UnavailableError("kvstore: not leader"));
    return;
  }
  if (cluster_.proposals_counter_ != nullptr) {
    cluster_.proposals_counter_->Increment();
  }
  log_.push_back(LogEntry{term_, std::move(op)});
  const uint64_t index = LastLogIndex();
  match_index_[static_cast<size_t>(index_)] = index;
  pending_proposals_[index] = std::move(done);
  for (size_t peer = 0; peer < cluster_.server_ranks_.size(); ++peer) {
    if (static_cast<int>(peer) != index_) {
      ReplicateTo(static_cast<int>(peer));
    }
  }
  // Single-node cluster commits immediately.
  AdvanceCommit();
}

std::optional<KvEntry> KvNode::GetApplied(const std::string& key) const {
  auto it = state_.find(key);
  if (it == state_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::map<std::string, KvEntry> KvNode::ListApplied(const std::string& prefix) const {
  std::map<std::string, KvEntry> out;
  for (auto it = state_.lower_bound(prefix); it != state_.end(); ++it) {
    if (it->first.rfind(prefix, 0) != 0) {
      break;
    }
    out.emplace(it->first, it->second);
  }
  return out;
}

}  // namespace gemini
