// Shared types for the replicated key-value store (the etcd stand-in used by
// GEMINI's failure-recovery module for health status, failure detection, and
// root-agent election).
#ifndef SRC_KVSTORE_KV_TYPES_H_
#define SRC_KVSTORE_KV_TYPES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace gemini {

using LeaseId = uint64_t;
inline constexpr LeaseId kNoLease = 0;

enum class KvOpType {
  kPut,
  // N independent puts carried in one log entry (`entries`), applied
  // atomically in order under a single Raft proposal/commit — the batched
  // form the checkpoint hot path uses so per-chunk bookkeeping costs one
  // consensus round per checkpoint instead of one per key.
  kPutBatch,
  kDelete,
  // Creates a lease with a TTL; keys attached to it are deleted on expiry.
  kLeaseGrant,
  // Refreshes a lease's deadline.
  kLeaseKeepAlive,
  // Revokes a lease (explicitly or on expiry), deleting attached keys.
  kLeaseRevoke,
};

// One key/value pair of a kPutBatch op.
struct KvPutEntry {
  std::string key;
  std::string value;
};

// One replicated state-machine command. The leader stamps `issue_time` so all
// replicas compute identical lease deadlines when applying the op.
struct KvOp {
  KvOpType type = KvOpType::kPut;
  std::string key;
  std::string value;
  LeaseId lease = kNoLease;
  TimeNs ttl = 0;
  TimeNs issue_time = 0;
  // For kPut: only apply when the key does not exist (etcd-style election
  // primitive; losers observe the winner's value afterwards).
  bool if_absent = false;
  // For kPutBatch: the puts this single log entry carries (key/value unused;
  // `lease` applies to every entry).
  std::vector<KvPutEntry> entries;
};

struct KvEntry {
  std::string value;
  LeaseId lease = kNoLease;
  // Raft log index of the last write; exposes etcd-style mod revisions.
  uint64_t mod_index = 0;
};

enum class WatchEventType { kPut, kDelete, kExpired };

struct WatchEvent {
  WatchEventType type = WatchEventType::kPut;
  std::string key;
  std::string value;  // New value for kPut; previous value for deletes.
};

using WatchCallback = std::function<void(const WatchEvent&)>;

}  // namespace gemini

#endif  // SRC_KVSTORE_KV_TYPES_H_
