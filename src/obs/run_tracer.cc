#include "src/obs/run_tracer.h"

#include <utility>

#include "src/common/json_writer.h"
#include "src/obs/metrics.h"

namespace gemini {

void RunTracer::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  dropped_records_counter_ =
      metrics != nullptr ? &metrics->counter("tracer.dropped_records") : nullptr;
}

TraceAttr TraceAttr::Text(std::string key, std::string value) {
  TraceAttr attr;
  attr.key = std::move(key);
  attr.kind = Kind::kText;
  attr.text = std::move(value);
  return attr;
}

TraceAttr TraceAttr::Int(std::string key, int64_t value) {
  TraceAttr attr;
  attr.key = std::move(key);
  attr.kind = Kind::kInt;
  attr.number = value;
  return attr;
}

TraceAttr TraceAttr::Real(std::string key, double value) {
  TraceAttr attr;
  attr.key = std::move(key);
  attr.kind = Kind::kReal;
  attr.real = value;
  return attr;
}

std::string_view TraceRecordKindName(TraceRecordKind kind) {
  switch (kind) {
    case TraceRecordKind::kSpan:
      return "span";
    case TraceRecordKind::kInstant:
      return "instant";
  }
  return "unknown";
}

const TraceAttr* TraceRecord::FindAttr(std::string_view key) const {
  for (const TraceAttr& attr : attrs) {
    if (attr.key == key) {
      return &attr;
    }
  }
  return nullptr;
}

void RunTracer::Event(std::string name, std::string track, std::vector<TraceAttr> attrs) {
  TraceRecord record;
  record.kind = TraceRecordKind::kInstant;
  record.name = std::move(name);
  record.track = std::move(track);
  record.start = sim_.now();
  record.attrs = std::move(attrs);
  Emit(std::move(record));
}

void RunTracer::Span(std::string name, std::string track, TimeNs start, TimeNs end,
                     std::vector<TraceAttr> attrs) {
  TraceRecord record;
  record.kind = TraceRecordKind::kSpan;
  record.name = std::move(name);
  record.track = std::move(track);
  record.start = start;
  record.duration = end - start;
  record.attrs = std::move(attrs);
  Emit(std::move(record));
}

void RunTracer::Emit(TraceRecord record) {
  // The sink sees every record, even ones the tracer itself will not keep:
  // the flight recorder's bounded ring must stay current when the unbounded
  // trace is off (soak runs) or full.
  if (record_sink_) {
    record_sink_(record);
  }
  if (!enabled_) {
    return;
  }
  if (max_records_ > 0 && records_.size() >= max_records_) {
    ++dropped_records_;
    if (dropped_records_counter_ != nullptr) {
      dropped_records_counter_->Increment();
    }
    return;
  }
  records_.push_back(std::move(record));
}

const TraceRecord* RunTracer::Find(std::string_view name, size_t from) const {
  for (size_t i = from; i < records_.size(); ++i) {
    if (records_[i].name == name) {
      return &records_[i];
    }
  }
  return nullptr;
}

int64_t RunTracer::CountNamed(std::string_view name) const {
  int64_t count = 0;
  for (const TraceRecord& record : records_) {
    count += record.name == name ? 1 : 0;
  }
  return count;
}

namespace {

void AppendAttrs(JsonWriter& json, const std::vector<TraceAttr>& attrs) {
  json.BeginObject();
  for (const TraceAttr& attr : attrs) {
    json.Key(attr.key);
    switch (attr.kind) {
      case TraceAttr::Kind::kText:
        json.Value(attr.text);
        break;
      case TraceAttr::Kind::kInt:
        json.Value(attr.number);
        break;
      case TraceAttr::Kind::kReal:
        json.Value(attr.real);
        break;
    }
  }
  json.EndObject();
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceRecord>& records) {
  // Envelope matches the previous hand-rolled exporter: one event per line,
  // timestamps/durations in microseconds, all rows under pid 1.
  std::string out = "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const TraceRecord& record : records) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    JsonWriter json;
    json.BeginObject();
    json.Key("name").Value(record.name);
    json.Key("cat").Value("gemini");
    json.Key("ph").Value(record.kind == TraceRecordKind::kSpan ? "X" : "i");
    json.Key("ts").Value(static_cast<double>(record.start) / 1000.0);
    if (record.kind == TraceRecordKind::kSpan) {
      json.Key("dur").Value(static_cast<double>(record.duration) / 1000.0);
    } else {
      json.Key("s").Value("g");  // Instant scope: global.
    }
    json.Key("pid").Value(1);
    json.Key("tid").Value(record.track);
    if (!record.attrs.empty()) {
      json.Key("args");
      AppendAttrs(json, record.attrs);
    }
    json.EndObject();
    out += "  ";
    out += json.str();
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

std::string RunTracer::ToChromeTraceJson() const { return ChromeTraceJson(records_); }

std::string TraceRecordJsonl(const TraceRecord& record) {
  JsonWriter json;
  json.BeginObject();
  json.Key("ts_ns").Value(record.start);
  json.Key("dur_ns").Value(record.duration);
  json.Key("kind").Value(TraceRecordKindName(record.kind));
  json.Key("name").Value(record.name);
  json.Key("track").Value(record.track);
  json.Key("attrs");
  AppendAttrs(json, record.attrs);
  json.EndObject();
  return json.str();
}

std::string RunTracer::ToJsonl() const {
  std::string out;
  for (const TraceRecord& record : records_) {
    out += TraceRecordJsonl(record);
    out += '\n';
  }
  return out;
}

Status RunTracer::WriteChromeTrace(const std::string& path) const {
  return WriteTextFile(path, ToChromeTraceJson());
}

Status RunTracer::WriteJsonl(const std::string& path) const {
  return WriteTextFile(path, ToJsonl());
}

}  // namespace gemini
