// Structured run tracing on simulated time.
//
// RunTracer records typed spans and instant events (iterations, checkpoint
// blocks, failure-detected → training-resumed recovery windows, KV
// elections) and exports them two ways:
//   * Chrome trace-event JSON (chrome://tracing / Perfetto), generalizing
//     the Algorithm-2 interleaving view in src/schedule/trace_export.*;
//   * a flat JSONL event log, one record per line, for scripted analysis.
//
// Every timestamp comes from Simulator::now(), so two runs with the same
// seed produce byte-identical exports — the property the determinism tests
// assert. Records are kept in emission order (spans are recorded when they
// close), which is itself deterministic.
#ifndef SRC_OBS_RUN_TRACER_H_
#define SRC_OBS_RUN_TRACER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace gemini {

class Counter;
class MetricsRegistry;

// One attribute on a trace record. Numeric attributes keep their type so
// exporters emit JSON numbers, not quoted strings.
struct TraceAttr {
  enum class Kind { kText, kInt, kReal };

  std::string key;
  Kind kind = Kind::kText;
  std::string text;
  int64_t number = 0;
  double real = 0.0;

  static TraceAttr Text(std::string key, std::string value);
  static TraceAttr Int(std::string key, int64_t value);
  static TraceAttr Real(std::string key, double value);
};

enum class TraceRecordKind { kSpan, kInstant };

std::string_view TraceRecordKindName(TraceRecordKind kind);

struct TraceRecord {
  TraceRecordKind kind = TraceRecordKind::kInstant;
  std::string name;
  // Chrome-trace row ("tid"): "training", "checkpoint", "recovery", ...
  std::string track;
  TimeNs start = 0;
  TimeNs duration = 0;  // 0 for instants.
  std::vector<TraceAttr> attrs;

  const TraceAttr* FindAttr(std::string_view key) const;
};

class RunTracer {
 public:
  explicit RunTracer(Simulator& sim) : sim_(sim) {}

  RunTracer(const RunTracer&) = delete;
  RunTracer& operator=(const RunTracer&) = delete;

  // Disabled tracers drop records (long soak runs that only want metrics).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  // Hard cap on stored records so soak runs cannot grow without bound.
  // 0 = unlimited. Once full, *new* records are dropped (the stored prefix —
  // and therefore every export — stays deterministic) and counted in both
  // dropped_records() and the "tracer.dropped_records" counter when a metrics
  // sink is attached. The record sink still fires for dropped records.
  void set_max_records(size_t max_records) { max_records_ = max_records; }
  size_t max_records() const { return max_records_; }
  int64_t dropped_records() const { return dropped_records_; }

  // Optional sink for "tracer.*" counters; may stay null. The counter handle
  // is resolved here, once, per the hot-path metric convention
  // (src/obs/metrics.h) — Emit runs on every traced event.
  void set_metrics(MetricsRegistry* metrics);

  // Observer invoked for every record as it is emitted — even when the tracer
  // is disabled or at its record cap. GeminiSystem wires the FlightRecorder's
  // bounded ring here so post-mortem context survives capped/disabled runs.
  void set_record_sink(std::function<void(const TraceRecord&)> sink) {
    record_sink_ = std::move(sink);
  }

  // Instant event stamped at the simulator's current time.
  void Event(std::string name, std::string track, std::vector<TraceAttr> attrs = {});

  // Completed span covering [start, end]; recorded once the end is known.
  void Span(std::string name, std::string track, TimeNs start, TimeNs end,
            std::vector<TraceAttr> attrs = {});

  const std::vector<TraceRecord>& records() const { return records_; }
  // First record with `name` (after `from` records), or nullptr.
  const TraceRecord* Find(std::string_view name, size_t from = 0) const;
  // Number of records with `name`.
  int64_t CountNamed(std::string_view name) const;
  void Clear() { records_.clear(); }

  // Chrome trace-event JSON: spans as "ph":"X", instants as "ph":"i".
  std::string ToChromeTraceJson() const;
  // One compact JSON object per line:
  //   {"ts_ns":..,"dur_ns":..,"kind":"span","name":..,"track":..,"attrs":{..}}
  std::string ToJsonl() const;

  Status WriteChromeTrace(const std::string& path) const;
  Status WriteJsonl(const std::string& path) const;

 private:
  // Runs the sink and stores the record unless disabled/capped.
  void Emit(TraceRecord record);

  Simulator& sim_;
  bool enabled_ = true;
  size_t max_records_ = 0;
  int64_t dropped_records_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  // Metric handle (resolved once in set_metrics).
  Counter* dropped_records_counter_ = nullptr;
  std::function<void(const TraceRecord&)> record_sink_;
  std::vector<TraceRecord> records_;
};

// Shared Chrome-trace serialization, used by RunTracer and by the iteration
// timeline export in src/schedule/trace_export (the Algorithm-2 view).
std::string ChromeTraceJson(const std::vector<TraceRecord>& records);

// One compact JSON object for a single record (no trailing newline); the unit
// of both RunTracer::ToJsonl and the FlightRecorder dump format.
std::string TraceRecordJsonl(const TraceRecord& record);

}  // namespace gemini

#endif  // SRC_OBS_RUN_TRACER_H_
