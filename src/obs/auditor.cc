#include "src/obs/auditor.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"

namespace gemini {

SpanAttribution AttributeSpan(TimeNs observed_length, const std::vector<TimeNs>& chunk_costs) {
  SpanAttribution result;
  TimeNs cumulative = 0;
  for (const TimeNs cost : chunk_costs) {
    cumulative += cost;
    if (cumulative > observed_length) {
      ++result.interference_events;
    }
  }
  result.inflation = std::max<TimeNs>(0, cumulative - observed_length);
  return result;
}

InterferenceAuditor::InterferenceAuditor(AuditorConfig config, MetricsRegistry* metrics,
                                         RunTracer* tracer)
    : config_(config), metrics_(metrics), tracer_(tracer) {
  if (metrics_ != nullptr) {
    audits_counter_ = &metrics_->counter("obs.audits");
    interference_events_counter_ = &metrics_->counter("obs.interference.events");
    interference_inflation_counter_ = &metrics_->counter("obs.interference.inflation_ns");
    reprofiles_counter_ = &metrics_->counter("obs.reprofiles");
    background_chunks_counter_ = &metrics_->counter("obs.background.chunks");
    background_bytes_counter_ = &metrics_->counter("obs.background.bytes");
    max_abs_drift_gauge_ = &metrics_->gauge("obs.drift.max_abs_ewma");
  }
}

void InterferenceAuditor::Rebaseline(const std::vector<IdleSpan>& profiled_spans,
                                     const PartitionResult& plan,
                                     const PartitionParams& params) {
  profiled_spans_ = profiled_spans;
  // Resolve the per-span drift gauge handles here, once per baseline — the
  // audit loop sets one gauge per span per iteration, and building the
  // "obs.drift.span_<i>" key there would put a string concatenation plus a
  // map lookup on the per-iteration path.
  span_drift_gauges_.clear();
  if (metrics_ != nullptr) {
    span_drift_gauges_.reserve(profiled_spans.size());
    for (size_t i = 0; i < profiled_spans.size(); ++i) {
      span_drift_gauges_.push_back(&metrics_->gauge("obs.drift.span_" + std::to_string(i)));
    }
  }
  span_chunk_costs_.assign(profiled_spans.size(), {});
  for (const ChunkAssignment& chunk : plan.chunks) {
    if (chunk.span_index < 0 ||
        chunk.span_index >= static_cast<int>(span_chunk_costs_.size())) {
      continue;
    }
    const TimeNs cost = params.alpha + TransferTime(chunk.bytes, params.bandwidth);
    span_chunk_costs_[static_cast<size_t>(chunk.span_index)].push_back(cost);
  }
  drift_ewma_.assign(profiled_spans.size(), 0.0);
  consecutive_drifted_ = 0;
}

AuditReport InterferenceAuditor::AuditIteration(int64_t iteration,
                                                const std::vector<TimeNs>& observed_span_lengths,
                                                TimeNs iteration_start) {
  AuditReport report;
  if (!config_.enabled || profiled_spans_.empty()) {
    return report;
  }
  ++audits_;
  if (audits_counter_ != nullptr) {
    audits_counter_->Increment();
  }

  for (size_t i = 0; i < profiled_spans_.size(); ++i) {
    const TimeNs profiled = profiled_spans_[i].length;
    const TimeNs observed =
        i < observed_span_lengths.size() ? observed_span_lengths[i] : profiled;

    // Per-span normalized drift, smoothed with an EWMA so a single jittery
    // iteration does not register as a timeline shift.
    if (profiled > 0) {
      const double drift =
          static_cast<double>(observed - profiled) / static_cast<double>(profiled);
      drift_ewma_[i] = config_.ewma_alpha * drift + (1.0 - config_.ewma_alpha) * drift_ewma_[i];
    }
    report.max_abs_drift = std::max(report.max_abs_drift, std::fabs(drift_ewma_[i]));

    // Attribution: chunks planned into a span that shrank below their total
    // cost collide with training traffic and prolong the iteration.
    const SpanAttribution attribution = AttributeSpan(observed, span_chunk_costs_[i]);
    if (attribution.interference_events > 0) {
      report.interference_events += attribution.interference_events;
      report.inflation += attribution.inflation;
      if (tracer_ != nullptr) {
        const TimeNs span_start = iteration_start + profiled_spans_[i].start;
        tracer_->Span("interference", "audit", span_start + observed,
                      span_start + observed + attribution.inflation,
                      {TraceAttr::Int("iteration", iteration),
                       TraceAttr::Int("span", static_cast<int64_t>(i)),
                       TraceAttr::Int("chunks", attribution.interference_events),
                       TraceAttr::Int("inflation_ns", attribution.inflation)});
      }
    }
  }
  total_interference_events_ += report.interference_events;
  total_inflation_ += report.inflation;

  if (metrics_ != nullptr) {
    for (size_t i = 0; i < drift_ewma_.size() && i < span_drift_gauges_.size(); ++i) {
      span_drift_gauges_[i]->Set(drift_ewma_[i]);
    }
    max_abs_drift_gauge_->Set(report.max_abs_drift);
    if (report.interference_events > 0) {
      interference_events_counter_->Increment(report.interference_events);
      interference_inflation_counter_->Increment(report.inflation);
    }
  }

  // Trigger: the worst span's |EWMA| above threshold for K consecutive
  // audits. The hook re-profiles and re-partitions, then calls Rebaseline
  // (resetting the EWMAs), so one sustained shift fires exactly once.
  if (report.max_abs_drift > config_.drift_threshold) {
    ++consecutive_drifted_;
  } else {
    consecutive_drifted_ = 0;
  }
  if (consecutive_drifted_ >= config_.consecutive_iterations &&
      reprofiles_ < config_.max_reprofiles && on_drift_) {
    ++reprofiles_;
    report.reprofile_triggered = true;
    if (reprofiles_counter_ != nullptr) {
      reprofiles_counter_->Increment();
    }
    on_drift_(iteration);
    consecutive_drifted_ = 0;
  }
  return report;
}

void InterferenceAuditor::NoteBackgroundTransfer(int span_index, Bytes bytes, TimeNs start,
                                                 TimeNs end) {
  (void)span_index;
  (void)start;
  (void)end;
  if (background_chunks_counter_ != nullptr) {
    background_chunks_counter_->Increment();
    background_bytes_counter_->Increment(bytes);
  }
}

void InterferenceAuditor::NoteFailure(TimeNs now) { failure_times_.push_back(now); }

double InterferenceAuditor::ObservedFailureRatePerHour(TimeNs now) const {
  if (config_.failure_rate_window <= 0) {
    return 0.0;
  }
  const TimeNs window_start = now - config_.failure_rate_window;
  int64_t in_window = 0;
  for (auto it = failure_times_.rbegin(); it != failure_times_.rend(); ++it) {
    if (*it < window_start) {
      break;  // Timestamps arrive in simulated-time order.
    }
    ++in_window;
  }
  const double window_hours =
      static_cast<double>(config_.failure_rate_window) / static_cast<double>(kHour);
  return static_cast<double>(in_window) / window_hours;
}

}  // namespace gemini
