// Deterministic flight recorder: a bounded ring of the most recent trace
// records plus counter deltas, dumped as JSONL at every incident.
//
// The unbounded RunTracer answers "what happened over the whole run"; the
// flight recorder answers "what happened *just before* this failure" the way
// an aircraft recorder does — it keeps only the last `capacity` records, in
// arrival order, and snapshots them (plus every counter's delta since the
// previous dump) whenever GeminiSystem detects a failure or completes a
// recovery. Because every record timestamp comes from simulated time and the
// counter walk is lexicographic, two same-seed runs produce byte-identical
// dump logs — the property the determinism tests assert.
//
// The recorder is fed through RunTracer's record sink, which fires even when
// the tracer itself is disabled or capped: long soak runs can turn the
// unbounded trace off and still keep post-mortem context.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/run_tracer.h"

namespace gemini {

class MetricsRegistry;

struct FlightRecorderConfig {
  // Ring capacity in trace records; the oldest record is evicted when full.
  size_t capacity = 256;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {}) : config_(config) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one record to the ring (evicting the oldest when at capacity).
  // Wired as RunTracer's record sink by GeminiSystem.
  void Record(const TraceRecord& record);

  // Snapshots the ring into the dump log: a header line carrying `reason` and
  // the simulated timestamp, one JSONL line per ring record (oldest first),
  // and one line of counter deltas since the previous dump (counters touched
  // in between, walked in name order). The ring is NOT cleared — consecutive
  // dumps may overlap, like consecutive reads of a real flight recorder.
  void Dump(std::string_view reason, TimeNs now, const MetricsRegistry* metrics);

  // Every dump so far, concatenated (each dump is a self-delimiting JSONL
  // block). Byte-identical across same-seed runs.
  const std::string& dump_log() const { return dump_log_; }
  Status WriteDumps(const std::string& path) const;

  int64_t dump_count() const { return dump_count_; }
  int64_t records_seen() const { return records_seen_; }
  int64_t records_evicted() const { return records_evicted_; }
  size_t ring_size() const { return ring_.size(); }
  const std::deque<TraceRecord>& ring() const { return ring_; }

 private:
  FlightRecorderConfig config_;
  std::deque<TraceRecord> ring_;
  // Counter values at the previous dump, for delta reporting.
  std::map<std::string, int64_t> counters_at_last_dump_;
  std::string dump_log_;
  int64_t dump_count_ = 0;
  int64_t records_seen_ = 0;
  int64_t records_evicted_ = 0;
};

}  // namespace gemini

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
