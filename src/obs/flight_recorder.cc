#include "src/obs/flight_recorder.h"

#include "src/common/json_writer.h"
#include "src/obs/metrics.h"

namespace gemini {

void FlightRecorder::Record(const TraceRecord& record) {
  ++records_seen_;
  if (config_.capacity == 0) {
    return;
  }
  if (ring_.size() >= config_.capacity) {
    ring_.pop_front();
    ++records_evicted_;
  }
  ring_.push_back(record);
}

void FlightRecorder::Dump(std::string_view reason, TimeNs now, const MetricsRegistry* metrics) {
  ++dump_count_;
  {
    JsonWriter json;
    json.BeginObject();
    json.Key("flight_dump").Value(dump_count_);
    json.Key("reason").Value(std::string(reason));
    json.Key("ts_ns").Value(now);
    json.Key("records").Value(static_cast<int64_t>(ring_.size()));
    json.Key("records_seen").Value(records_seen_);
    json.Key("records_evicted").Value(records_evicted_);
    json.EndObject();
    dump_log_ += json.str();
    dump_log_ += '\n';
  }
  for (const TraceRecord& record : ring_) {
    dump_log_ += TraceRecordJsonl(record);
    dump_log_ += '\n';
  }
  {
    // Counter deltas since the previous dump, names in lexicographic order so
    // the dump bytes are deterministic.
    JsonWriter json;
    json.BeginObject();
    json.Key("metric_deltas").BeginObject();
    if (metrics != nullptr) {
      metrics->VisitCounters([&](const std::string& name, int64_t value) {
        const auto it = counters_at_last_dump_.find(name);
        const int64_t previous = it == counters_at_last_dump_.end() ? 0 : it->second;
        if (value != previous) {
          json.Key(name).Value(value - previous);
        }
        counters_at_last_dump_[name] = value;
      });
    }
    json.EndObject();
    json.EndObject();
    dump_log_ += json.str();
    dump_log_ += '\n';
  }
}

Status FlightRecorder::WriteDumps(const std::string& path) const {
  return WriteTextFile(path, dump_log_);
}

}  // namespace gemini
