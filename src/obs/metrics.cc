#include "src/obs/metrics.h"

#include <cassert>

#include "src/common/json_writer.h"

namespace gemini {

namespace {

template <typename Map>
auto& FetchOrCreate(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  assert(!gauges_.contains(name) && !histograms_.contains(name));
  return FetchOrCreate(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  assert(!counters_.contains(name) && !histograms_.contains(name));
  return FetchOrCreate(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  assert(!counters_.contains(name) && !gauges_.contains(name));
  return FetchOrCreate(histograms_, name);
}

int64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::VisitCounters(
    const std::function<void(const std::string&, int64_t)>& fn) const {
  for (const auto& [name, counter] : counters_) {
    fn(name, counter->value());
  }
}

std::string MetricsRegistry::ToJson(int indent) const {
  JsonWriter json(indent);
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).Value(counter->value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name).Value(gauge->value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("count").Value(histogram->count());
    json.Key("mean").Value(histogram->stat().mean());
    json.Key("min").Value(histogram->stat().min());
    json.Key("max").Value(histogram->stat().max());
    json.Key("p50").Value(histogram->Quantile(0.5));
    json.Key("p95").Value(histogram->Quantile(0.95));
    json.Key("p99").Value(histogram->Quantile(0.99));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

}  // namespace gemini
