// Continuous interference auditor: online timeline-drift detection and
// checkpoint-traffic attribution (closing the loop on paper Section 5.4).
//
// GEMINI profiles the iteration timeline once, up front, and schedules
// checkpoint chunks into the profiled idle spans forever after (Algorithm 2).
// That is sound while the paper's stability claim holds (normalized stddev
// below 10%), but a workload change, a congested link or a slow machine
// shifts the real timeline away from the profile — and the scheduled chunks
// silently start colliding with training traffic. The auditor watches for
// exactly that:
//
//  * every iteration it compares the observed idle-span lengths against the
//    profiled baseline, maintaining a per-span EWMA of the normalized drift
//    ("obs.drift.*" gauges);
//  * when a span is shorter than the chunk traffic planned into it, the
//    excess is attributed to the specific chunks that no longer fit
//    ("obs.interference.{events,inflation_ns}" counters plus an
//    "interference" trace span per affected idle span), and the inflation is
//    the amount by which the iteration is prolonged;
//  * when the worst-span |EWMA| stays above a threshold for K consecutive
//    iterations, the auditor fires its drift hook ("obs.reprofiles" counter);
//    GeminiSystem wires the hook to an online re-profile + Algorithm-2
//    re-partition, then calls Rebaseline so one sustained shift triggers
//    exactly one re-profile.
//
// All inputs come from simulated time and a deterministic RNG, so the
// auditor adds no nondeterminism: same-seed runs produce byte-identical
// metric and trace exports.
#ifndef SRC_OBS_AUDITOR_H_
#define SRC_OBS_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/units.h"
#include "src/schedule/partition.h"
#include "src/training/timeline.h"

namespace gemini {

class Counter;
class Gauge;
class MetricsRegistry;
class RunTracer;

struct AuditorConfig {
  bool enabled = true;
  // EWMA smoothing factor for per-span drift (higher = reacts faster).
  double ewma_alpha = 0.4;
  // Normalized drift magnitude above which a span counts as drifted.
  double drift_threshold = 0.10;
  // Consecutive drifted iterations required before the drift hook fires
  // (debounces one-off stragglers; the paper's profiler already tolerates
  // ~5% jitter).
  int consecutive_iterations = 3;
  // Upper bound on hook firings per run; guards against oscillation.
  int max_reprofiles = 4;
  // Sliding window over which NoteFailure events are converted into the
  // observed failure rate (the Chameleon selector's primary signal).
  TimeNs failure_rate_window = Hours(1);
};

// Interference attribution for one idle span: walk the chunks planned into
// the span in placement order, accumulating their transfer cost f(size); a
// chunk whose cumulative cost exceeds the observed span length is an
// interference event, and the total excess is the iteration-time inflation.
// Edge cases the tests pin down: a chunk exactly filling the span is NOT an
// event (cumulative == observed), and a zero-length observed span makes
// every chunk an event.
struct SpanAttribution {
  int interference_events = 0;
  TimeNs inflation = 0;
};
SpanAttribution AttributeSpan(TimeNs observed_length, const std::vector<TimeNs>& chunk_costs);

// Result of auditing one iteration.
struct AuditReport {
  // Total iteration-time inflation attributed to checkpoint traffic that no
  // longer fits its spans (summed excess across spans).
  TimeNs inflation = 0;
  // Chunks that collided with training traffic this iteration.
  int interference_events = 0;
  // Worst-span |EWMA drift| after this iteration's update.
  double max_abs_drift = 0.0;
  // True when this audit fired the drift hook.
  bool reprofile_triggered = false;
};

class InterferenceAuditor {
 public:
  // Counter handles are resolved once at construction per the hot-path
  // metric convention (src/obs/metrics.h); the per-span drift gauges are
  // resolved at Rebaseline, when the span count is known.
  InterferenceAuditor(AuditorConfig config, MetricsRegistry* metrics, RunTracer* tracer);

  InterferenceAuditor(const InterferenceAuditor&) = delete;
  InterferenceAuditor& operator=(const InterferenceAuditor&) = delete;

  // Installs the profiled baseline and the active chunk schedule. Per-chunk
  // costs need the transfer model, so the caller passes the partition params
  // used to produce `plan`. Resets drift state (EWMAs, consecutive counter):
  // after a re-profile the new baseline is authoritative and the previous
  // shift must not re-trigger.
  void Rebaseline(const std::vector<IdleSpan>& profiled_spans, const PartitionResult& plan,
                  const PartitionParams& params);

  // Audits one iteration: `observed_span_lengths` are the measured idle-span
  // lengths (same order/count as the profiled baseline; missing entries are
  // treated as matching the profile), `iteration_start` anchors the
  // "interference" trace spans in absolute simulated time. Updates gauges and
  // counters, and fires the drift hook when the trigger condition holds.
  AuditReport AuditIteration(int64_t iteration, const std::vector<TimeNs>& observed_span_lengths,
                             TimeNs iteration_start);

  // Called by the replicator as each checkpoint chunk transfer completes, so
  // the audit trail records the background traffic actually in flight
  // ("obs.background.{chunks,bytes}" counters).
  void NoteBackgroundTransfer(int span_index, Bytes bytes, TimeNs start, TimeNs end);

  // Failure-rate observation: the system reports each detected failure, and
  // the rate is the count inside the trailing `failure_rate_window` scaled to
  // per-hour. Purely simulated-time arithmetic — deterministic.
  void NoteFailure(TimeNs now);
  double ObservedFailureRatePerHour(TimeNs now) const;
  int64_t failures_noted() const { return static_cast<int64_t>(failure_times_.size()); }

  // Hook fired when drift persists; GeminiSystem points this at its online
  // re-profile + re-partition path. Fired at most `max_reprofiles` times.
  void set_on_drift(std::function<void(int64_t iteration)> hook) { on_drift_ = std::move(hook); }

  const AuditorConfig& config() const { return config_; }
  const std::vector<double>& drift_ewma() const { return drift_ewma_; }
  int consecutive_drifted() const { return consecutive_drifted_; }
  int64_t audits() const { return audits_; }
  int64_t reprofiles() const { return reprofiles_; }
  int64_t total_interference_events() const { return total_interference_events_; }
  TimeNs total_inflation() const { return total_inflation_; }

 private:
  AuditorConfig config_;
  MetricsRegistry* metrics_ = nullptr;
  RunTracer* tracer_ = nullptr;
  // Hot-path metric handles (resolved once at construction). The drift
  // gauges are per span, so their handles live in `span_drift_gauges_`,
  // refreshed on every Rebaseline.
  Counter* audits_counter_ = nullptr;
  Counter* interference_events_counter_ = nullptr;
  Counter* interference_inflation_counter_ = nullptr;
  Counter* reprofiles_counter_ = nullptr;
  Counter* background_chunks_counter_ = nullptr;
  Counter* background_bytes_counter_ = nullptr;
  Gauge* max_abs_drift_gauge_ = nullptr;
  std::vector<Gauge*> span_drift_gauges_;
  std::function<void(int64_t iteration)> on_drift_;

  // Baseline: profiled span geometry plus the per-span planned chunk costs of
  // the active schedule.
  std::vector<IdleSpan> profiled_spans_;
  std::vector<std::vector<TimeNs>> span_chunk_costs_;

  std::vector<double> drift_ewma_;
  // Detection times of every failure reported via NoteFailure (append-only;
  // the window scan walks back from the end).
  std::vector<TimeNs> failure_times_;
  int consecutive_drifted_ = 0;
  int64_t audits_ = 0;
  int64_t reprofiles_ = 0;
  int64_t total_interference_events_ = 0;
  TimeNs total_inflation_ = 0;
};

}  // namespace gemini

#endif  // SRC_OBS_AUDITOR_H_
