// MetricsRegistry: named counters, gauges, and histograms for the whole
// system (the observability substrate behind the paper's measured claims).
//
// GeminiSystem owns one registry and threads it into the trainer, the
// replicator, the CPU/persistent checkpoint stores, the KV store, the agents
// and the recovery paths; every heartbeat miss, checkpoint commit, replica
// fetch, rollback and election increments a metric. Components hold a
// nullable `MetricsRegistry*` so all of them also run metric-free (unit
// tests, analytic benches).
//
// Naming convention: lowercase dotted hierarchy, "<component>.<event>"
// (e.g. "cpu_store.commits", "kv.elections_won"). The JSON export walks
// names in lexicographic order so dumps are deterministic.
//
// Hot-path metric-handle convention: `counter(name)` / `gauge(name)` return
// references that stay valid for the registry's lifetime (metrics live
// behind unique_ptr, so map growth never moves them). Components therefore
// resolve a `Counter*` / `Gauge*` member ONCE — in set_metrics / the
// constructor / Rebaseline — and increment through the cached handle on the
// per-chunk / per-attempt / per-iteration path, instead of paying a
// string-keyed map lookup (and possibly a std::string construction) per
// event. Null handle means "no registry attached"; guard each use with a
// null check, exactly as the old `metrics_ != nullptr` guards did.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/stats.h"

namespace gemini {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Point-in-time level (queue depth, bytes resident, ...).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Sample distribution: streaming moments plus exact quantiles (suitable for
// the event counts simulation runs produce).
class Histogram {
 public:
  void Observe(double sample) {
    stat_.Add(sample);
    sketch_.Add(sample);
  }
  int64_t count() const { return stat_.count(); }
  const RunningStat& stat() const { return stat_; }
  double Quantile(double q) const { return sketch_.Quantile(q); }

 private:
  RunningStat stat_;
  QuantileSketch sketch_;
};

class MetricsRegistry {
 public:
  // Fetches (creating on first use) the metric with `name`. Returned
  // references are owned by the registry and stay valid for its lifetime.
  // Each name binds to exactly one metric kind; reusing a counter name as a
  // gauge (or vice versa) is a programming error and asserts in debug builds.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Read-side lookups: value of a counter/gauge (0 when never touched), or
  // nullptr for an absent histogram.
  int64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Walks every counter in lexicographic name order (deterministic); the
  // flight recorder uses this for its per-dump metric deltas.
  void VisitCounters(const std::function<void(const std::string&, int64_t)>& fn) const;

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

  // Deterministic dump:
  //   {"counters":{...},"gauges":{...},
  //    "histograms":{name:{count,mean,min,max,p50,p95,p99}}}
  std::string ToJson(int indent = 0) const;

 private:
  // unique_ptr for reference stability across rehash-free map growth.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace gemini

#endif  // SRC_OBS_METRICS_H_
