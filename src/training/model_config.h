// Large-language-model workload configurations (paper Table 2) and the
// sizing math derived from them.
//
// Checkpoint sizing follows the paper: model states are parameters plus Adam
// optimizer state; under ZeRO-3 with mixed precision the persisted states
// are 12 bytes/parameter of fp32 master weights, momentum, and variance —
// which reproduces the paper's 9.4 GB/GPU figure for GPT-2 100B on 128 GPUs.
#ifndef SRC_TRAINING_MODEL_CONFIG_H_
#define SRC_TRAINING_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace gemini {

struct ModelConfig {
  std::string name;          // e.g. "GPT-2 100B"
  std::string architecture;  // "GPT-2" | "RoBERTa" | "BERT"
  // Headline parameter count used for all sizing (the Table 2 label).
  int64_t nominal_params = 0;
  int hidden_size = 0;
  int intermediate_size = 0;
  int num_layers = 0;
  int attention_heads = 0;
  int64_t vocab_size = 50265;
  int sequence_length = 512;
  int micro_batch_size = 8;

  // Persisted model states (params + Adam moments as fp32): 12 B/param.
  static constexpr Bytes kCheckpointBytesPerParam = 12;
  // fp16 working parameters moved by ZeRO-3 all-gathers: 2 B/param.
  static constexpr Bytes kParamBytesFp16 = 2;

  // Transformer formula count (4h^2 attention + 2*h*i MLP per layer, plus
  // vocab embedding); used as a cross-check against nominal_params.
  int64_t FormulaParams() const;

  int64_t ParamsPerLayer() const { return nominal_params / num_layers; }
  int64_t TokensPerGpuPerIteration() const {
    return static_cast<int64_t>(micro_batch_size) * sequence_length;
  }

  Bytes CheckpointBytesTotal() const { return nominal_params * kCheckpointBytesPerParam; }
  Bytes CheckpointBytesPerMachine(int num_machines) const {
    return CheckpointBytesTotal() / num_machines;
  }
  Bytes CheckpointBytesPerGpu(int total_gpus) const {
    return CheckpointBytesTotal() / total_gpus;
  }
};

// Table 2 presets.
ModelConfig Gpt2_10B();
ModelConfig Gpt2_20B();
ModelConfig Gpt2_40B();
ModelConfig Roberta_40B();
ModelConfig Bert_40B();
ModelConfig Gpt2_100B();
ModelConfig Roberta_100B();
ModelConfig Bert_100B();

// All Table 2 rows in paper order.
const std::vector<ModelConfig>& Table2Models();

// Looks up by name ("GPT-2 100B"); returns nullptr when absent.
const ModelConfig* FindModel(const std::string& name);

}  // namespace gemini

#endif  // SRC_TRAINING_MODEL_CONFIG_H_
