// Online profiling of network idle timespans (paper Section 5.4).
//
// GEMINI trains its first ~20 iterations without checkpointing, timestamps
// every communication operation, and averages the observed idle spans. The
// paper reports the timeline is stable across iterations (normalized stddev
// below 10%), which justifies scheduling checkpoint chunks into the profiled
// spans with a safety coefficient gamma.
#ifndef SRC_TRAINING_PROFILER_H_
#define SRC_TRAINING_PROFILER_H_

#include <vector>

#include "src/common/rng.h"
#include "src/training/timeline.h"

namespace gemini {

struct ProfileResult {
  // Mean idle spans across profiled iterations (start = nominal position).
  std::vector<IdleSpan> spans;
  // Largest normalized standard deviation observed across spans.
  double max_normalized_stddev = 0.0;
  TimeNs mean_iteration_time = 0;
  int iterations_profiled = 0;
};

struct ProfilerConfig {
  int iterations = 20;
  // Multiplicative per-span jitter the "real" runs exhibit; the paper
  // measured under 10% normalized stddev.
  double span_jitter_stddev = 0.05;
};

// Observes `config.iterations` perturbed instances of the nominal timeline
// and returns averaged spans. Deterministic given `rng`.
ProfileResult ProfileIdleSpans(const IterationTimeline& nominal, const ProfilerConfig& config,
                               Rng& rng);

}  // namespace gemini

#endif  // SRC_TRAINING_PROFILER_H_
