#include "src/training/model_state.h"

namespace gemini {

std::vector<TensorSpec> BuildModelStateSpecs(const ModelConfig& model) {
  std::vector<TensorSpec> specs;
  const int64_t h = model.hidden_size;
  const int64_t i = model.intermediate_size;
  auto add_param = [&](const std::string& name, std::vector<int64_t> shape) {
    // Each parameter tensor persists three fp32 copies: the master weights
    // and both Adam moments.
    for (const char* state : {"master", "exp_avg", "exp_avg_sq"}) {
      specs.push_back(TensorSpec{name + "." + state, shape, DType::kFloat32});
    }
  };
  add_param("embedding.word", {model.vocab_size, h});
  for (int layer = 0; layer < model.num_layers; ++layer) {
    const std::string prefix = "layers." + std::to_string(layer) + ".";
    add_param(prefix + "attn.qkv", {3 * h, h});
    add_param(prefix + "attn.out", {h, h});
    add_param(prefix + "mlp.up", {i, h});
    add_param(prefix + "mlp.down", {h, i});
    add_param(prefix + "ln1", {h});
    add_param(prefix + "ln2", {h});
  }
  add_param("final_ln", {h});
  return specs;
}

}  // namespace gemini
