#include "src/training/model_config.h"

namespace gemini {
namespace {

ModelConfig Make(std::string name, std::string architecture, double billions, int hidden,
                 int intermediate, int layers, int heads) {
  ModelConfig config;
  config.name = std::move(name);
  config.architecture = std::move(architecture);
  config.nominal_params = static_cast<int64_t>(billions * 1e9);
  config.hidden_size = hidden;
  config.intermediate_size = intermediate;
  config.num_layers = layers;
  config.attention_heads = heads;
  return config;
}

}  // namespace

int64_t ModelConfig::FormulaParams() const {
  const int64_t h = hidden_size;
  const int64_t i = intermediate_size;
  // Attention (QKV + output projections) + MLP (up + down), plus embeddings.
  const int64_t per_layer = 4 * h * h + 2 * h * i;
  return per_layer * num_layers + vocab_size * h;
}

ModelConfig Gpt2_10B() { return Make("GPT-2 10B", "GPT-2", 10, 2560, 10240, 46, 40); }
ModelConfig Gpt2_20B() { return Make("GPT-2 20B", "GPT-2", 20, 5120, 20480, 64, 40); }
ModelConfig Gpt2_40B() { return Make("GPT-2 40B", "GPT-2", 40, 5120, 20480, 128, 40); }
ModelConfig Roberta_40B() { return Make("RoBERTa 40B", "RoBERTa", 40, 5120, 20480, 128, 40); }
ModelConfig Bert_40B() { return Make("BERT 40B", "BERT", 40, 5120, 20480, 128, 40); }
ModelConfig Gpt2_100B() { return Make("GPT-2 100B", "GPT-2", 100, 8192, 32768, 124, 64); }
ModelConfig Roberta_100B() { return Make("RoBERTa 100B", "RoBERTa", 100, 8192, 32768, 124, 64); }
ModelConfig Bert_100B() { return Make("BERT 100B", "BERT", 100, 8192, 32768, 124, 64); }

const std::vector<ModelConfig>& Table2Models() {
  static const std::vector<ModelConfig> models = {
      Gpt2_10B(), Gpt2_20B(),    Gpt2_40B(),     Roberta_40B(),
      Bert_40B(), Gpt2_100B(),   Roberta_100B(), Bert_100B(),
  };
  return models;
}

const ModelConfig* FindModel(const std::string& name) {
  for (const auto& model : Table2Models()) {
    if (model.name == name) {
      return &model;
    }
  }
  return nullptr;
}

}  // namespace gemini
