// Calibration notes for the simulated substrate.
//
// The substrate does not try to predict performance from first principles;
// it is *calibrated* so the paper's measured anchor points come out of the
// model, then every experiment is derived from the calibrated model. The
// anchors and the fitted constants:
//
//  1. GPT-2 100B, 16x p4d.24xlarge: iteration time 62 s (paper Section 7.2)
//     and per-iteration network idle time ~12.5 s (Figure 8).
//     -> effective_flops_per_gpu(A100) = 52e12 (about 17% MFU, consistent
//        with ZeRO-3 at this scale), collective_efficiency(p4d) = 0.22 of
//        the 400 Gb/s line rate for training collectives.
//  2. GPT-2 40B, 16x p3dn.24xlarge: iteration time ~38 s (Figure 16
//     Baseline) and idle time ~4-6 s (Figure 13b).
//     -> effective_flops_per_gpu(V100) = 35e12,
//        collective_efficiency(p3dn) = 0.5 of the 100 Gb/s line rate.
//  3. Checkpoint point-to-point streams achieve full line rate; the paper
//     measured both EFA and the GPU->CPU copy path at ~400 Gb/s on p4d
//     (Section 5.2), reproduced by gpu_cpu_copy_bandwidth == NIC bandwidth.
//  4. torch.save serialization: 81 s per 75 GiB machine replica (HighFreq,
//     Section 7.3) -> ~1 GiB/s, in SerializationModel.
//  5. FSx remote persistent storage: 20 Gb/s aggregate (Section 7.1); the
//     MT-NLG sanity check (Section 2.2) — 530B params, 12 B/param, 20 Gb/s
//     => 42 minutes — falls out of the same constants.
//
// FLOP accounting per GPU per iteration: forward 2*P*T, backward 4*P*T,
// full activation recomputation adds 2*P*T, where P is the parameter count
// and T the per-GPU tokens per iteration — 8*P*T total.
#ifndef SRC_TRAINING_CALIBRATION_H_
#define SRC_TRAINING_CALIBRATION_H_

#include "src/common/units.h"

namespace gemini {

// FLOPs per parameter-token: forward.
inline constexpr double kForwardFlopsPerParamToken = 2.0;
// Backward is twice the forward cost.
inline constexpr double kBackwardFlopsPerParamToken = 4.0;
// Activation recomputation replays the forward pass during backward.
inline constexpr double kRecomputeFlopsPerParamToken = 2.0;

// Optimizer update is memory-bound: bytes touched per parameter (fp32 param,
// momentum, variance read+write plus fp16 write) over effective HBM rate.
inline constexpr double kUpdateBytesPerParam = 32.0;
inline constexpr BytesPerSecond kUpdateMemoryBandwidth = 400e9;

}  // namespace gemini

#endif  // SRC_TRAINING_CALIBRATION_H_
