// Transformer model-state inventories built from Table 2 configurations.
//
// For every parameter tensor of the model, the persisted states are three
// fp32 tensors (master weights, Adam exp_avg, Adam exp_avg_sq) — the
// 12 bytes/parameter rule the paper's checkpoint sizing rests on, here
// cross-checkable against an explicit tensor enumeration.
#ifndef SRC_TRAINING_MODEL_STATE_H_
#define SRC_TRAINING_MODEL_STATE_H_

#include <vector>

#include "src/storage/state_dict.h"
#include "src/training/model_config.h"

namespace gemini {

// All persisted model-state tensors of the full (unsharded) model.
std::vector<TensorSpec> BuildModelStateSpecs(const ModelConfig& model);

}  // namespace gemini

#endif  // SRC_TRAINING_MODEL_STATE_H_
