// Iteration timelines for parallelism strategies beyond ZeRO-3.
//
// The paper's conclusion (Section 9) argues GEMINI's design applies to other
// parallelisms — pipeline, tensor, and data parallelism — and leaves them as
// future work. This module implements that future work at the timeline
// level: each strategy produces the busy/idle network structure of one
// iteration, and Algorithm 2 schedules checkpoint traffic into it unchanged
// (see ExecuteOnTimeline in src/schedule/generic_executor.h).
//
//  * Data parallelism: every machine holds a full replica; the network is
//    silent through the forward pass and carries bucketed gradient
//    all-reduces that overlap the backward pass — one long idle span up
//    front, alternating busy/idle through backward.
//  * Pipeline parallelism (GPipe-style): each machine is one stage;
//    microbatch activations/gradients hop between neighbours. Per-transfer
//    volume is tiny, so the network is idle most of the iteration and the
//    pipeline bubble adds further slack.
#ifndef SRC_TRAINING_PARALLELISM_H_
#define SRC_TRAINING_PARALLELISM_H_

#include "src/training/timeline.h"

namespace gemini {

enum class ParallelismStrategy {
  kZero3,             // Fully sharded (the paper's evaluation setting).
  kDataParallel,      // Replicated model, bucketed gradient all-reduce.
  kPipelineParallel,  // Layer stages, microbatch activation transfers.
};

std::string_view ParallelismStrategyName(ParallelismStrategy strategy);

struct DataParallelOptions {
  // Gradient buckets overlapped with backward (DDP-style).
  int gradient_buckets = 8;
};

struct PipelineParallelOptions {
  // Microbatches in flight (GPipe schedule); the bubble fraction is
  // (stages - 1) / (microbatches + stages - 1).
  int num_microbatches = 32;
};

// Timeline of one iteration under pure data parallelism across
// `params.num_machines` machines (each holding a full model replica).
IterationTimeline BuildDataParallelTimeline(const TimelineParams& params,
                                            const DataParallelOptions& options = {});

// Timeline of one iteration under pipeline parallelism, from the viewpoint
// of a middle stage (the busiest NIC).
IterationTimeline BuildPipelineParallelTimeline(const TimelineParams& params,
                                                const PipelineParallelOptions& options = {});

// Dispatch helper.
IterationTimeline BuildTimelineFor(ParallelismStrategy strategy, const TimelineParams& params);

}  // namespace gemini

#endif  // SRC_TRAINING_PARALLELISM_H_
