#include "src/training/timeline.h"

#include <algorithm>
#include <cassert>

#include "src/collectives/collectives.h"
#include "src/training/calibration.h"

namespace gemini {

TimeNs IterationTimeline::TotalCommBusy() const {
  TimeNs total = 0;
  for (const auto& segment : comm) {
    total += segment.duration;
  }
  return total;
}

TimeNs IterationTimeline::TotalIdle() const {
  TimeNs total = 0;
  for (const auto& span : idle_spans) {
    total += span.length;
  }
  return total;
}

LayerCosts ComputeLayerCosts(const TimelineParams& params) {
  assert(params.num_machines >= 1);
  const ModelConfig& model = params.model;
  const InstanceSpec& instance = params.instance;

  const double layer_params = static_cast<double>(model.ParamsPerLayer());
  const double tokens = static_cast<double>(model.TokensPerGpuPerIteration());
  const double flops = instance.effective_flops_per_gpu;

  LayerCosts costs;
  costs.forward_compute =
      Seconds(layer_params * tokens * kForwardFlopsPerParamToken / flops);
  costs.backward_compute = Seconds(
      layer_params * tokens * (kBackwardFlopsPerParamToken + kRecomputeFlopsPerParamToken) /
      flops);

  RingCostModel ring;
  ring.link_bandwidth = instance.network_bandwidth;
  ring.alpha = params.comm_alpha;
  ring.efficiency = instance.collective_efficiency;
  const Bytes layer_fp16_bytes = model.ParamsPerLayer() * ModelConfig::kParamBytesFp16;
  costs.all_gather = ring.AllGatherTime(layer_fp16_bytes, params.num_machines);
  costs.reduce_scatter = ring.ReduceScatterTime(layer_fp16_bytes, params.num_machines);
  return costs;
}

TimeNs ComputeUpdateDuration(const TimelineParams& params) {
  const int total_gpus = params.num_machines * params.instance.num_gpus;
  const double params_per_gpu =
      static_cast<double>(params.model.nominal_params) / static_cast<double>(total_gpus);
  return Seconds(params_per_gpu * kUpdateBytesPerParam / kUpdateMemoryBandwidth);
}

std::vector<IdleSpan> ExtractIdleSpans(const std::vector<CommSegment>& comm,
                                       TimeNs iteration_time) {
  std::vector<IdleSpan> spans;
  TimeNs cursor = 0;
  for (const auto& segment : comm) {
    assert(segment.start >= cursor && "comm segments must be ordered and non-overlapping");
    if (segment.start > cursor) {
      spans.push_back(IdleSpan{cursor, segment.start - cursor});
    }
    cursor = segment.end();
  }
  if (cursor < iteration_time) {
    spans.push_back(IdleSpan{cursor, iteration_time - cursor});
  }
  return spans;
}

IterationTimeline BuildZero3Timeline(const TimelineParams& params) {
  const int num_layers = params.model.num_layers;
  assert(num_layers >= 1);
  assert(params.comm_group_layers >= 1);
  const LayerCosts costs = ComputeLayerCosts(params);

  // Layers are processed in communication groups (prefetch buckets): the
  // collectives of a whole group launch as one burst that gates the group's
  // computation, and the next group's burst prefetches while this group
  // computes. `group_of[g]` is the layer count of group g.
  std::vector<int> group_sizes;
  for (int remaining = num_layers; remaining > 0;) {
    const int size = std::min(remaining, params.comm_group_layers);
    group_sizes.push_back(size);
    remaining -= size;
  }
  const int num_groups = static_cast<int>(group_sizes.size());

  IterationTimeline timeline;
  TimeNs net_free = 0;
  TimeNs compute_free = 0;

  auto push_comm = [&](TimeNs issue, TimeNs duration, CommKind kind, int group) -> TimeNs {
    const TimeNs start = std::max(net_free, issue);
    const TimeNs end = start + duration;
    net_free = end;
    timeline.comm.push_back(CommSegment{start, duration, kind, group});
    return end;
  };

  // ---- Forward pass: the group's all-gather burst gates its computation;
  // the next group's burst prefetches when this group starts computing.
  TimeNs next_issue = 0;
  for (int group = 0; group < num_groups; ++group) {
    const int layers = group_sizes[static_cast<size_t>(group)];
    const TimeNs ag_done =
        push_comm(next_issue, costs.all_gather * layers, CommKind::kForwardAllGather, group);
    const TimeNs compute_start = std::max(compute_free, ag_done);
    compute_free = compute_start + costs.forward_compute * layers;
    next_issue = compute_start;
  }

  // ---- Backward pass (groups last .. first): parameters are re-gathered
  // (activation recomputation); each group's gradients reduce-scatter after
  // its backward compute. The reduce-scatter burst of group g+1 enters the
  // NIC queue between AG(g) and AG(g-1), matching issue order.
  TimeNs bwd_ag_issue = compute_free;  // First backward burst waits for forward completion.
  TimeNs pending_rs_issue = -1;
  int pending_rs_group = -1;
  TimeNs last_rs_end = 0;
  for (int group = num_groups - 1; group >= 0; --group) {
    const int layers = group_sizes[static_cast<size_t>(group)];
    const TimeNs ag_done =
        push_comm(bwd_ag_issue, costs.all_gather * layers, CommKind::kBackwardAllGather, group);
    if (pending_rs_group >= 0) {
      const int rs_layers = group_sizes[static_cast<size_t>(pending_rs_group)];
      last_rs_end = push_comm(pending_rs_issue, costs.reduce_scatter * rs_layers,
                              CommKind::kGradReduceScatter, pending_rs_group);
    }
    const TimeNs compute_start = std::max(compute_free, ag_done);
    compute_free = compute_start + costs.backward_compute * layers;
    bwd_ag_issue = compute_start;
    pending_rs_issue = compute_free;
    pending_rs_group = group;
  }
  last_rs_end = push_comm(pending_rs_issue,
                          costs.reduce_scatter * group_sizes[static_cast<size_t>(pending_rs_group)],
                          CommKind::kGradReduceScatter, pending_rs_group);

  // ---- Optimizer update: needs every gradient shard and all compute done.
  timeline.update_start = std::max(compute_free, last_rs_end);
  timeline.update_duration = ComputeUpdateDuration(params);
  timeline.iteration_time = timeline.update_start + timeline.update_duration;
  timeline.idle_spans = ExtractIdleSpans(timeline.comm, timeline.iteration_time);
  return timeline;
}

}  // namespace gemini
