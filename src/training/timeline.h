// ZeRO-3 iteration timeline generation.
//
// Reproduces the *shape* of a DeepSpeed ZeRO-3 training iteration on the
// simulated cluster: per layer, a parameter all-gather gates the layer's
// computation (forward, and again during backward because of activation
// recomputation), gradients leave through reduce-scatters, and the optimizer
// update closes the iteration. Communication requests are served FIFO by
// the machine NIC with one-layer prefetch, so the generated timeline has
// exactly the alternating busy/idle network structure of paper Figure 4a —
// the idle spans being the budget GEMINI's checkpoint scheduler packs
// chunks into.
#ifndef SRC_TRAINING_TIMELINE_H_
#define SRC_TRAINING_TIMELINE_H_

#include <vector>

#include "src/cluster/instance_spec.h"
#include "src/common/units.h"
#include "src/training/model_config.h"

namespace gemini {

enum class CommKind { kForwardAllGather, kBackwardAllGather, kGradReduceScatter };

struct CommSegment {
  TimeNs start = 0;
  TimeNs duration = 0;
  CommKind kind = CommKind::kForwardAllGather;
  // Communication-group (prefetch bucket) index this burst belongs to.
  int group = -1;
  TimeNs end() const { return start + duration; }
};

struct IdleSpan {
  TimeNs start = 0;
  TimeNs length = 0;
  TimeNs end() const { return start + length; }
};

struct IterationTimeline {
  TimeNs iteration_time = 0;
  TimeNs update_start = 0;
  TimeNs update_duration = 0;
  // Network busy windows, non-overlapping, ordered by start.
  std::vector<CommSegment> comm;
  // Gaps in network usage within [0, iteration_time], ordered by start. The
  // final span is the update-phase tail.
  std::vector<IdleSpan> idle_spans;

  TimeNs TotalCommBusy() const;
  TimeNs TotalIdle() const;
};

struct TimelineParams {
  ModelConfig model;
  InstanceSpec instance;
  int num_machines = 0;
  TimeNs comm_alpha = Micros(100);
  // Layers whose collectives are coalesced into one communication burst
  // (DeepSpeed's prefetch bucketing). Bursty communication is what produces
  // the few large idle spans the paper profiles (largest ~1.6 s for GPT-2
  // 40B on p3dn) rather than many tiny per-layer gaps.
  int comm_group_layers = 16;
};

// Per-layer building blocks (exposed for tests and the executor).
struct LayerCosts {
  TimeNs forward_compute = 0;
  TimeNs backward_compute = 0;  // Includes activation recomputation.
  TimeNs all_gather = 0;
  TimeNs reduce_scatter = 0;
};
LayerCosts ComputeLayerCosts(const TimelineParams& params);

TimeNs ComputeUpdateDuration(const TimelineParams& params);

IterationTimeline BuildZero3Timeline(const TimelineParams& params);

// Derives the idle spans of a comm schedule within [0, iteration_time]
// (also used on perturbed timelines by the profiler).
std::vector<IdleSpan> ExtractIdleSpans(const std::vector<CommSegment>& comm,
                                       TimeNs iteration_time);

}  // namespace gemini

#endif  // SRC_TRAINING_TIMELINE_H_
