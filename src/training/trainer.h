// Sharded-state trainer: the real data plane behind the simulated cluster.
//
// Each machine rank owns a shard of the model states (its ZeRO-3 partition).
// The update rule is deterministic in (iteration, rank, element), so
// recovery correctness is checkable bit-exactly: restore a checkpoint from
// iteration k, replay to iteration j, and the states must equal an
// uninterrupted run's — the property the integration tests assert.
//
// Shards carry a small real float payload plus the model-config-derived
// logical size used by every timing and memory-accounting path.
#ifndef SRC_TRAINING_TRAINER_H_
#define SRC_TRAINING_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/storage/checkpoint.h"
#include "src/training/model_config.h"

namespace gemini {

class Counter;
class MetricsRegistry;
class RunTracer;

class ShardedTrainer {
 public:
  // `payload_elements` controls the real floats per shard (small; tests use
  // a few hundred). Logical checkpoint size comes from `model`.
  ShardedTrainer(const ModelConfig& model, int num_machines, int payload_elements,
                 uint64_t seed);

  // Optional observability sinks: "trainer.*" counters, and restore/rollback
  // instants on the trace timeline. Counter handles are resolved here, once,
  // per the hot-path metric convention (src/obs/metrics.h).
  void set_metrics(MetricsRegistry* metrics);
  void set_tracer(RunTracer* tracer) { tracer_ = tracer; }

  int num_machines() const { return num_machines_; }
  int64_t iteration() const { return iteration_; }
  const ModelConfig& model() const { return model_; }
  Bytes checkpoint_bytes_per_machine() const {
    return model_.CheckpointBytesPerMachine(num_machines_);
  }

  // Applies one deterministic optimizer step to every shard and advances the
  // iteration counter.
  void Step();

  const std::vector<float>& shard(int rank) const;

  // Snapshot of `rank`'s model states at the current iteration.
  Checkpoint MakeCheckpoint(int rank) const;

  // Restores one rank's shard; fails when the checkpoint belongs to a
  // different rank or has a mismatched payload size.
  Status RestoreShard(const Checkpoint& checkpoint);

  // Restores all ranks from a consistent checkpoint set (one per rank, all at
  // the same iteration) and rolls the iteration counter back.
  Status RestoreAll(const std::vector<Checkpoint>& checkpoints);

  // Replays the deterministic update forward to `target_iteration` (the
  // gradient-log replay of Checkmate-style recovery: the same (iteration,
  // rank, element) deltas produce bit-exactly the pre-failure states). No-op
  // when already at or past the target. Replayed steps count under
  // "trainer.replayed_iterations", not "trainer.steps".
  Status ReplayTo(int64_t target_iteration);

 private:
  ModelConfig model_;
  int num_machines_;
  uint64_t seed_;
  int64_t iteration_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  RunTracer* tracer_ = nullptr;
  // Hot-path metric handles (resolved once in set_metrics).
  Counter* steps_counter_ = nullptr;
  Counter* restores_counter_ = nullptr;
  Counter* rollback_iterations_counter_ = nullptr;
  std::vector<std::vector<float>> shards_;
  // Recycles capture buffers across MakeCheckpoint calls (mutable: capture is
  // logically const — it does not advance training state).
  mutable PayloadPool capture_pool_;
};

}  // namespace gemini

#endif  // SRC_TRAINING_TRAINER_H_
