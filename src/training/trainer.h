// Sharded-state trainer: the real data plane behind the simulated cluster.
//
// Each machine rank owns a shard of the model states (its ZeRO-3 partition).
// The update rule is deterministic in (iteration, rank, element), so
// recovery correctness is checkable bit-exactly: restore a checkpoint from
// iteration k, replay to iteration j, and the states must equal an
// uninterrupted run's — the property the integration tests assert.
//
// Shards carry a small real float payload plus the model-config-derived
// logical size used by every timing and memory-accounting path.
#ifndef SRC_TRAINING_TRAINER_H_
#define SRC_TRAINING_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/storage/checkpoint.h"
#include "src/training/model_config.h"

namespace gemini {

class Counter;
class MetricsRegistry;
class RunTracer;

class ShardedTrainer {
 public:
  // `payload_elements` controls the real floats per shard (small; tests use
  // a few hundred). Logical checkpoint size comes from `model`.
  ShardedTrainer(const ModelConfig& model, int num_machines, int payload_elements,
                 uint64_t seed);

  // Optional observability sinks: "trainer.*" counters, and restore/rollback
  // instants on the trace timeline. Counter handles are resolved here, once,
  // per the hot-path metric convention (src/obs/metrics.h).
  void set_metrics(MetricsRegistry* metrics);
  void set_tracer(RunTracer* tracer) { tracer_ = tracer; }

  int num_machines() const { return num_machines_; }
  int64_t iteration() const { return iteration_; }
  const ModelConfig& model() const { return model_; }
  Bytes checkpoint_bytes_per_machine() const {
    return model_.CheckpointBytesPerMachine(num_machines_);
  }

  // Applies one deterministic optimizer step to every shard and advances the
  // iteration counter.
  void Step();

  // Sparse-update workload mode (MoE-style: only "touched" chunks change per
  // iteration). Each (iteration, rank, chunk) is touched with probability
  // `fraction` under a deterministic hash; untouched chunks are frozen for
  // that iteration. `fraction >= 1.0` (the default) is the dense path,
  // bit-identical to a trainer that never heard of sparsity. Step() and
  // ReplayTo() share the same predicate, so replay stays bit-exact.
  void SetSparseUpdates(double fraction, size_t chunk_elements);
  double sparse_update_fraction() const { return sparse_fraction_; }

  // Chunk-granular dirty tracking for incremental checkpoints: once enabled,
  // every chunk possibly modified since the owner's last TakeDirtyChunks()
  // call has its change bit set (Step/ReplayTo mark touched chunks, restores
  // mark everything — the bits are a conservative superset of real changes;
  // content-level dedupe happens in BuildDeltaCheckpoint).
  void EnableDirtyTracking(size_t chunk_elements);
  bool dirty_tracking_enabled() const { return dirty_chunk_elements_ > 0; }
  size_t dirty_chunk_count() const;
  // Returns the accumulated change bits for `rank` and clears them.
  std::vector<uint8_t> TakeDirtyChunks(int rank);

  const std::vector<float>& shard(int rank) const;

  // Snapshot of `rank`'s model states at the current iteration.
  Checkpoint MakeCheckpoint(int rank) const;

  // Restores one rank's shard; fails when the checkpoint belongs to a
  // different rank or has a mismatched payload size.
  Status RestoreShard(const Checkpoint& checkpoint);

  // Restores all ranks from a consistent checkpoint set (one per rank, all at
  // the same iteration) and rolls the iteration counter back.
  Status RestoreAll(const std::vector<Checkpoint>& checkpoints);

  // Replays the deterministic update forward to `target_iteration` (the
  // gradient-log replay of Checkmate-style recovery: the same (iteration,
  // rank, element) deltas produce bit-exactly the pre-failure states). No-op
  // when already at or past the target. Replayed steps count under
  // "trainer.replayed_iterations", not "trainer.steps".
  Status ReplayTo(int64_t target_iteration);

 private:
  // One optimizer step over every shard at `iteration_` (dense or sparse);
  // shared by Step() and the ReplayTo() loop so both trajectories are
  // bit-identical.
  void UpdateShardsAtCurrentIteration();
  void MarkAllDirty(int rank);
  void MarkChunkDirty(int rank, size_t chunk);

  ModelConfig model_;
  int num_machines_;
  uint64_t seed_;
  int64_t iteration_ = 0;
  double sparse_fraction_ = 1.0;
  size_t sparse_chunk_elements_ = 1;
  // 0 = dirty tracking off.
  size_t dirty_chunk_elements_ = 0;
  // Per-rank change bits (one byte per chunk), accumulated since the rank's
  // last TakeDirtyChunks().
  std::vector<std::vector<uint8_t>> dirty_;
  MetricsRegistry* metrics_ = nullptr;
  RunTracer* tracer_ = nullptr;
  // Hot-path metric handles (resolved once in set_metrics).
  Counter* steps_counter_ = nullptr;
  Counter* restores_counter_ = nullptr;
  Counter* rollback_iterations_counter_ = nullptr;
  std::vector<std::vector<float>> shards_;
  // Recycles capture buffers across MakeCheckpoint calls (mutable: capture is
  // logically const — it does not advance training state).
  mutable PayloadPool capture_pool_;
};

}  // namespace gemini

#endif  // SRC_TRAINING_TRAINER_H_
