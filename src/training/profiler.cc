#include "src/training/profiler.h"

#include <algorithm>
#include <cassert>

#include "src/common/stats.h"

namespace gemini {

ProfileResult ProfileIdleSpans(const IterationTimeline& nominal, const ProfilerConfig& config,
                               Rng& rng) {
  assert(config.iterations >= 1);
  const size_t num_spans = nominal.idle_spans.size();
  std::vector<RunningStat> span_stats(num_spans);
  RunningStat iteration_stat;

  for (int iter = 0; iter < config.iterations; ++iter) {
    TimeNs iteration_time = 0;
    for (size_t s = 0; s < num_spans; ++s) {
      const double factor = std::max(0.0, rng.Normal(1.0, config.span_jitter_stddev));
      const double observed =
          static_cast<double>(nominal.idle_spans[s].length) * factor;
      span_stats[s].Add(observed);
      iteration_time += static_cast<TimeNs>(observed);
    }
    iteration_stat.Add(static_cast<double>(nominal.iteration_time - nominal.TotalIdle()) +
                       static_cast<double>(iteration_time));
  }

  ProfileResult result;
  result.iterations_profiled = config.iterations;
  result.spans.reserve(num_spans);
  for (size_t s = 0; s < num_spans; ++s) {
    IdleSpan span = nominal.idle_spans[s];
    span.length = static_cast<TimeNs>(span_stats[s].mean());
    result.spans.push_back(span);
    result.max_normalized_stddev =
        std::max(result.max_normalized_stddev, span_stats[s].normalized_stddev());
  }
  result.mean_iteration_time = static_cast<TimeNs>(iteration_stat.mean());
  return result;
}

}  // namespace gemini
