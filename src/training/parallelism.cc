#include "src/training/parallelism.h"

#include <algorithm>
#include <cassert>

#include "src/collectives/collectives.h"
#include "src/training/calibration.h"

namespace gemini {

std::string_view ParallelismStrategyName(ParallelismStrategy strategy) {
  switch (strategy) {
    case ParallelismStrategy::kZero3:
      return "zero3";
    case ParallelismStrategy::kDataParallel:
      return "data_parallel";
    case ParallelismStrategy::kPipelineParallel:
      return "pipeline_parallel";
  }
  return "unknown";
}

IterationTimeline BuildDataParallelTimeline(const TimelineParams& params,
                                            const DataParallelOptions& options) {
  assert(params.num_machines >= 1);
  assert(options.gradient_buckets >= 1);
  const ModelConfig& model = params.model;
  const InstanceSpec& instance = params.instance;
  // Note: pure data parallelism requires the full replica to fit in one
  // machine's accelerators; callers use it for the <=20B workloads.

  const double total_params = static_cast<double>(model.nominal_params);
  const double tokens = static_cast<double>(model.TokensPerGpuPerIteration());
  const double flops = instance.effective_flops_per_gpu;
  const TimeNs forward = Seconds(total_params * tokens * kForwardFlopsPerParamToken / flops);
  const TimeNs backward = Seconds(total_params * tokens * kBackwardFlopsPerParamToken / flops);

  RingCostModel ring;
  ring.link_bandwidth = instance.network_bandwidth;
  ring.alpha = params.comm_alpha;
  ring.efficiency = instance.collective_efficiency;
  const int buckets = options.gradient_buckets;
  const Bytes bucket_bytes =
      model.nominal_params * ModelConfig::kParamBytesFp16 / buckets;
  const TimeNs bucket_allreduce = ring.AllReduceTime(bucket_bytes, params.num_machines);

  IterationTimeline timeline;
  // Forward: the network is silent. Backward: bucket k's gradients are ready
  // after (k+1)/buckets of the backward pass; all-reduces queue FIFO on the
  // NIC (DDP's overlap structure).
  TimeNs net_free = 0;
  TimeNs last_allreduce_end = 0;
  for (int bucket = 0; bucket < buckets; ++bucket) {
    const TimeNs ready = forward + backward * (bucket + 1) / buckets;
    const TimeNs start = std::max(net_free, ready);
    timeline.comm.push_back(
        CommSegment{start, bucket_allreduce, CommKind::kGradReduceScatter, bucket});
    net_free = start + bucket_allreduce;
    last_allreduce_end = net_free;
  }
  timeline.update_start = std::max(forward + backward, last_allreduce_end);
  timeline.update_duration = ComputeUpdateDuration(params);
  timeline.iteration_time = timeline.update_start + timeline.update_duration;
  timeline.idle_spans = ExtractIdleSpans(timeline.comm, timeline.iteration_time);
  return timeline;
}

IterationTimeline BuildPipelineParallelTimeline(const TimelineParams& params,
                                                const PipelineParallelOptions& options) {
  assert(params.num_machines >= 1);
  assert(options.num_microbatches >= 1);
  const ModelConfig& model = params.model;
  const InstanceSpec& instance = params.instance;
  const int stages = params.num_machines;
  const int microbatches = options.num_microbatches;

  // Per-stage, per-microbatch compute. Every stage processes the *global*
  // batch through its layer slice, using all of the machine's accelerators;
  // total FLOPs per machine match the other strategies.
  const double stage_params =
      static_cast<double>(model.nominal_params) / static_cast<double>(stages);
  const double global_tokens = static_cast<double>(model.TokensPerGpuPerIteration()) *
                               static_cast<double>(stages) *
                               static_cast<double>(instance.num_gpus);
  const double micro_tokens = global_tokens / static_cast<double>(microbatches);
  const double machine_flops =
      instance.effective_flops_per_gpu * static_cast<double>(instance.num_gpus);
  const TimeNs micro_forward =
      Seconds(stage_params * micro_tokens * kForwardFlopsPerParamToken / machine_flops);
  const TimeNs micro_backward =
      Seconds(stage_params * micro_tokens * kBackwardFlopsPerParamToken / machine_flops);

  // Activation (and activation-gradient) payload per microbatch boundary:
  // tokens x hidden at fp16.
  const Bytes activation_bytes = static_cast<Bytes>(
      micro_tokens * static_cast<double>(model.hidden_size) * ModelConfig::kParamBytesFp16);
  const TimeNs hop = params.comm_alpha + TransferTime(activation_bytes,
                                                      instance.network_bandwidth *
                                                          instance.collective_efficiency);

  IterationTimeline timeline;
  // Middle-stage view, serialized GPipe schedule: fill bubble, then per
  // microbatch recv -> compute -> send, for forward then backward.
  TimeNs cursor = (stages - 1) * (micro_forward + hop) / 2;  // Fill bubble (middle stage).
  auto hop_segment = [&](CommKind kind, int index) {
    timeline.comm.push_back(CommSegment{cursor, hop, kind, index});
    cursor += hop;
  };
  for (int m = 0; m < microbatches; ++m) {
    hop_segment(CommKind::kForwardAllGather, m);  // Activation in.
    cursor += micro_forward;
    hop_segment(CommKind::kForwardAllGather, m);  // Activation out.
  }
  for (int m = 0; m < microbatches; ++m) {
    hop_segment(CommKind::kGradReduceScatter, m);  // Gradient in.
    cursor += micro_backward;
    hop_segment(CommKind::kGradReduceScatter, m);  // Gradient out.
  }
  cursor += (stages - 1) * (micro_backward + hop) / 2;  // Drain bubble.
  timeline.update_start = cursor;
  timeline.update_duration = ComputeUpdateDuration(params);
  timeline.iteration_time = timeline.update_start + timeline.update_duration;
  timeline.idle_spans = ExtractIdleSpans(timeline.comm, timeline.iteration_time);
  return timeline;
}

IterationTimeline BuildTimelineFor(ParallelismStrategy strategy, const TimelineParams& params) {
  switch (strategy) {
    case ParallelismStrategy::kZero3:
      return BuildZero3Timeline(params);
    case ParallelismStrategy::kDataParallel:
      return BuildDataParallelTimeline(params);
    case ParallelismStrategy::kPipelineParallel:
      return BuildPipelineParallelTimeline(params);
  }
  return BuildZero3Timeline(params);
}

}  // namespace gemini
