#include "src/training/trainer.h"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"

namespace gemini {
namespace {

// Deterministic per-element update delta derived from (seed, iteration,
// rank, element) — a stand-in for a gradient step that makes divergence
// detectable at single-bit resolution.
float UpdateDelta(uint64_t seed, int64_t iteration, int rank, size_t element) {
  uint64_t x = seed;
  x ^= static_cast<uint64_t>(iteration) * 0x9E3779B97F4A7C15ULL;
  x ^= (static_cast<uint64_t>(rank) + 1) * 0xBF58476D1CE4E5B9ULL;
  x ^= (static_cast<uint64_t>(element) + 1) * 0x94D049BB133111EBULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  // Map to [-0.5, 0.5).
  return static_cast<float>(static_cast<double>(x >> 11) * 0x1.0p-53 - 0.5);
}

// Deterministic sparse-update predicate: whether (iteration, rank, chunk)
// is touched this step. A distinct mix constant keeps it decorrelated from
// UpdateDelta without a second seed.
bool ChunkTouched(uint64_t seed, int64_t iteration, int rank, size_t chunk, double fraction) {
  uint64_t x = seed ^ 0xD1B54A32D192ED03ULL;
  x ^= static_cast<uint64_t>(iteration) * 0x9E3779B97F4A7C15ULL;
  x ^= (static_cast<uint64_t>(rank) + 1) * 0xBF58476D1CE4E5B9ULL;
  x ^= (static_cast<uint64_t>(chunk) + 1) * 0x94D049BB133111EBULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < fraction;
}

}  // namespace

ShardedTrainer::ShardedTrainer(const ModelConfig& model, int num_machines, int payload_elements,
                               uint64_t seed)
    : model_(model), num_machines_(num_machines), seed_(seed) {
  assert(num_machines >= 1);
  assert(payload_elements >= 1);
  shards_.resize(static_cast<size_t>(num_machines));
  for (int rank = 0; rank < num_machines; ++rank) {
    auto& shard = shards_[static_cast<size_t>(rank)];
    shard.resize(static_cast<size_t>(payload_elements));
    for (size_t i = 0; i < shard.size(); ++i) {
      shard[i] = UpdateDelta(seed_, /*iteration=*/-1, rank, i);
    }
  }
}

void ShardedTrainer::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  steps_counter_ = metrics != nullptr ? &metrics->counter("trainer.steps") : nullptr;
  restores_counter_ = metrics != nullptr ? &metrics->counter("trainer.restores") : nullptr;
  rollback_iterations_counter_ =
      metrics != nullptr ? &metrics->counter("trainer.rollback_iterations") : nullptr;
}

void ShardedTrainer::SetSparseUpdates(double fraction, size_t chunk_elements) {
  assert(fraction > 0.0);
  assert(chunk_elements >= 1);
  sparse_fraction_ = fraction;
  sparse_chunk_elements_ = chunk_elements;
}

void ShardedTrainer::EnableDirtyTracking(size_t chunk_elements) {
  assert(chunk_elements >= 1);
  dirty_chunk_elements_ = chunk_elements;
  dirty_.assign(static_cast<size_t>(num_machines_), {});
  for (int rank = 0; rank < num_machines_; ++rank) {
    // Everything starts dirty: no base has seen the initial states yet.
    dirty_[static_cast<size_t>(rank)].assign(dirty_chunk_count(), 1);
  }
}

size_t ShardedTrainer::dirty_chunk_count() const {
  if (dirty_chunk_elements_ == 0 || shards_.empty()) {
    return 0;
  }
  const size_t elements = shards_.front().size();
  return (elements + dirty_chunk_elements_ - 1) / dirty_chunk_elements_;
}

std::vector<uint8_t> ShardedTrainer::TakeDirtyChunks(int rank) {
  if (!dirty_tracking_enabled()) {
    return {};
  }
  auto& bits = dirty_.at(static_cast<size_t>(rank));
  std::vector<uint8_t> taken = bits;
  std::fill(bits.begin(), bits.end(), 0);
  return taken;
}

void ShardedTrainer::MarkAllDirty(int rank) {
  if (dirty_tracking_enabled()) {
    auto& bits = dirty_.at(static_cast<size_t>(rank));
    std::fill(bits.begin(), bits.end(), 1);
  }
}

void ShardedTrainer::MarkChunkDirty(int rank, size_t chunk) {
  if (dirty_tracking_enabled()) {
    dirty_.at(static_cast<size_t>(rank)).at(chunk) = 1;
  }
}

void ShardedTrainer::UpdateShardsAtCurrentIteration() {
  for (int rank = 0; rank < num_machines_; ++rank) {
    auto& shard = shards_[static_cast<size_t>(rank)];
    if (sparse_fraction_ >= 1.0) {
      // Dense fast path: exactly the historical update loop, bit for bit.
      for (size_t i = 0; i < shard.size(); ++i) {
        shard[i] = shard[i] * 0.999f + UpdateDelta(seed_, iteration_, rank, i);
      }
      MarkAllDirty(rank);
      continue;
    }
    // Sparse mode: only touched chunks see the update (and its decay) this
    // iteration — the MoE-style workload where most expert shards are
    // frozen per step.
    const size_t num_chunks =
        (shard.size() + sparse_chunk_elements_ - 1) / sparse_chunk_elements_;
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      if (!ChunkTouched(seed_, iteration_, rank, chunk, sparse_fraction_)) {
        continue;
      }
      const size_t begin = chunk * sparse_chunk_elements_;
      const size_t end = std::min(shard.size(), begin + sparse_chunk_elements_);
      for (size_t i = begin; i < end; ++i) {
        shard[i] = shard[i] * 0.999f + UpdateDelta(seed_, iteration_, rank, i);
      }
      if (dirty_tracking_enabled()) {
        if (dirty_chunk_elements_ == sparse_chunk_elements_) {
          MarkChunkDirty(rank, chunk);
        } else {
          // Different granularities: mark every tracking chunk the touched
          // element range overlaps (conservative superset).
          for (size_t e = begin; e < end; e += dirty_chunk_elements_) {
            MarkChunkDirty(rank, e / dirty_chunk_elements_);
          }
          MarkChunkDirty(rank, (end - 1) / dirty_chunk_elements_);
        }
      }
    }
  }
}

void ShardedTrainer::Step() {
  UpdateShardsAtCurrentIteration();
  ++iteration_;
  if (steps_counter_ != nullptr) {
    steps_counter_->Increment();
  }
}

const std::vector<float>& ShardedTrainer::shard(int rank) const {
  return shards_.at(static_cast<size_t>(rank));
}

Checkpoint ShardedTrainer::MakeCheckpoint(int rank) const {
  Checkpoint checkpoint;
  checkpoint.owner_rank = rank;
  checkpoint.iteration = iteration_;
  checkpoint.logical_bytes = checkpoint_bytes_per_machine();
  // Snapshot semantics require one copy (the shard keeps mutating under
  // Step()), but the buffer comes from the capture pool — recycled as soon as
  // the stores' double buffers drop the previous block's snapshot — and is
  // then shared untouched by every downstream holder.
  const auto& shard = shards_.at(static_cast<size_t>(rank));
  std::shared_ptr<std::vector<float>> buffer = capture_pool_.Acquire(shard.size());
  std::copy(shard.begin(), shard.end(), buffer->begin());
  checkpoint.payload = PayloadRef(std::shared_ptr<const std::vector<float>>(std::move(buffer)));
  checkpoint.StampPayloadCrc();
  return checkpoint;
}

Status ShardedTrainer::RestoreShard(const Checkpoint& checkpoint) {
  if (checkpoint.owner_rank < 0 || checkpoint.owner_rank >= num_machines_) {
    return InvalidArgumentError("checkpoint owner rank out of range");
  }
  auto& shard = shards_[static_cast<size_t>(checkpoint.owner_rank)];
  if (checkpoint.payload.size() != shard.size()) {
    return InvalidArgumentError("checkpoint payload size mismatch");
  }
  shard.assign(checkpoint.payload.begin(), checkpoint.payload.end());
  // A restore can land arbitrarily far from any delta base; every chunk is
  // potentially changed until the next full snapshot seals a new base.
  MarkAllDirty(checkpoint.owner_rank);
  return Status::Ok();
}

Status ShardedTrainer::RestoreAll(const std::vector<Checkpoint>& checkpoints) {
  if (static_cast<int>(checkpoints.size()) != num_machines_) {
    return InvalidArgumentError("need exactly one checkpoint per rank");
  }
  std::vector<bool> seen(static_cast<size_t>(num_machines_), false);
  const int64_t iteration = checkpoints.front().iteration;
  for (const Checkpoint& checkpoint : checkpoints) {
    if (checkpoint.iteration != iteration) {
      return FailedPreconditionError("inconsistent checkpoint set: mixed iterations");
    }
    if (checkpoint.owner_rank < 0 || checkpoint.owner_rank >= num_machines_ ||
        seen[static_cast<size_t>(checkpoint.owner_rank)]) {
      return InvalidArgumentError("checkpoint set does not cover each rank exactly once");
    }
    seen[static_cast<size_t>(checkpoint.owner_rank)] = true;
  }
  for (const Checkpoint& checkpoint : checkpoints) {
    GEMINI_RETURN_IF_ERROR(RestoreShard(checkpoint));
  }
  if (restores_counter_ != nullptr) {
    restores_counter_->Increment();
    if (iteration < iteration_) {
      rollback_iterations_counter_->Increment(iteration_ - iteration);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Event("trainer_restore", "training",
                   {TraceAttr::Int("from_iteration", iteration_),
                    TraceAttr::Int("to_iteration", iteration)});
  }
  iteration_ = iteration;
  return Status::Ok();
}

Status ShardedTrainer::ReplayTo(int64_t target_iteration) {
  if (target_iteration < iteration_) {
    return InvalidArgumentError("replay target is behind the current iteration");
  }
  const int64_t replayed = target_iteration - iteration_;
  while (iteration_ < target_iteration) {
    UpdateShardsAtCurrentIteration();
    ++iteration_;
  }
  if (replayed > 0) {
    if (metrics_ != nullptr) {
      metrics_->counter("trainer.replayed_iterations").Increment(replayed);
    }
    if (tracer_ != nullptr) {
      tracer_->Event("trainer_replay", "training",
                     {TraceAttr::Int("to_iteration", iteration_),
                      TraceAttr::Int("replayed", replayed)});
    }
  }
  return Status::Ok();
}

}  // namespace gemini
