#include "src/training/trainer.h"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"

namespace gemini {
namespace {

// Deterministic per-element update delta derived from (seed, iteration,
// rank, element) — a stand-in for a gradient step that makes divergence
// detectable at single-bit resolution.
float UpdateDelta(uint64_t seed, int64_t iteration, int rank, size_t element) {
  uint64_t x = seed;
  x ^= static_cast<uint64_t>(iteration) * 0x9E3779B97F4A7C15ULL;
  x ^= (static_cast<uint64_t>(rank) + 1) * 0xBF58476D1CE4E5B9ULL;
  x ^= (static_cast<uint64_t>(element) + 1) * 0x94D049BB133111EBULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  // Map to [-0.5, 0.5).
  return static_cast<float>(static_cast<double>(x >> 11) * 0x1.0p-53 - 0.5);
}

}  // namespace

ShardedTrainer::ShardedTrainer(const ModelConfig& model, int num_machines, int payload_elements,
                               uint64_t seed)
    : model_(model), num_machines_(num_machines), seed_(seed) {
  assert(num_machines >= 1);
  assert(payload_elements >= 1);
  shards_.resize(static_cast<size_t>(num_machines));
  for (int rank = 0; rank < num_machines; ++rank) {
    auto& shard = shards_[static_cast<size_t>(rank)];
    shard.resize(static_cast<size_t>(payload_elements));
    for (size_t i = 0; i < shard.size(); ++i) {
      shard[i] = UpdateDelta(seed_, /*iteration=*/-1, rank, i);
    }
  }
}

void ShardedTrainer::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  steps_counter_ = metrics != nullptr ? &metrics->counter("trainer.steps") : nullptr;
  restores_counter_ = metrics != nullptr ? &metrics->counter("trainer.restores") : nullptr;
  rollback_iterations_counter_ =
      metrics != nullptr ? &metrics->counter("trainer.rollback_iterations") : nullptr;
}

void ShardedTrainer::Step() {
  for (int rank = 0; rank < num_machines_; ++rank) {
    auto& shard = shards_[static_cast<size_t>(rank)];
    for (size_t i = 0; i < shard.size(); ++i) {
      shard[i] = shard[i] * 0.999f + UpdateDelta(seed_, iteration_, rank, i);
    }
  }
  ++iteration_;
  if (steps_counter_ != nullptr) {
    steps_counter_->Increment();
  }
}

const std::vector<float>& ShardedTrainer::shard(int rank) const {
  return shards_.at(static_cast<size_t>(rank));
}

Checkpoint ShardedTrainer::MakeCheckpoint(int rank) const {
  Checkpoint checkpoint;
  checkpoint.owner_rank = rank;
  checkpoint.iteration = iteration_;
  checkpoint.logical_bytes = checkpoint_bytes_per_machine();
  // Snapshot semantics require one copy (the shard keeps mutating under
  // Step()), but the buffer comes from the capture pool — recycled as soon as
  // the stores' double buffers drop the previous block's snapshot — and is
  // then shared untouched by every downstream holder.
  const auto& shard = shards_.at(static_cast<size_t>(rank));
  std::shared_ptr<std::vector<float>> buffer = capture_pool_.Acquire(shard.size());
  std::copy(shard.begin(), shard.end(), buffer->begin());
  checkpoint.payload = PayloadRef(std::shared_ptr<const std::vector<float>>(std::move(buffer)));
  checkpoint.StampPayloadCrc();
  return checkpoint;
}

Status ShardedTrainer::RestoreShard(const Checkpoint& checkpoint) {
  if (checkpoint.owner_rank < 0 || checkpoint.owner_rank >= num_machines_) {
    return InvalidArgumentError("checkpoint owner rank out of range");
  }
  auto& shard = shards_[static_cast<size_t>(checkpoint.owner_rank)];
  if (checkpoint.payload.size() != shard.size()) {
    return InvalidArgumentError("checkpoint payload size mismatch");
  }
  shard.assign(checkpoint.payload.begin(), checkpoint.payload.end());
  return Status::Ok();
}

Status ShardedTrainer::RestoreAll(const std::vector<Checkpoint>& checkpoints) {
  if (static_cast<int>(checkpoints.size()) != num_machines_) {
    return InvalidArgumentError("need exactly one checkpoint per rank");
  }
  std::vector<bool> seen(static_cast<size_t>(num_machines_), false);
  const int64_t iteration = checkpoints.front().iteration;
  for (const Checkpoint& checkpoint : checkpoints) {
    if (checkpoint.iteration != iteration) {
      return FailedPreconditionError("inconsistent checkpoint set: mixed iterations");
    }
    if (checkpoint.owner_rank < 0 || checkpoint.owner_rank >= num_machines_ ||
        seen[static_cast<size_t>(checkpoint.owner_rank)]) {
      return InvalidArgumentError("checkpoint set does not cover each rank exactly once");
    }
    seen[static_cast<size_t>(checkpoint.owner_rank)] = true;
  }
  for (const Checkpoint& checkpoint : checkpoints) {
    GEMINI_RETURN_IF_ERROR(RestoreShard(checkpoint));
  }
  if (restores_counter_ != nullptr) {
    restores_counter_->Increment();
    if (iteration < iteration_) {
      rollback_iterations_counter_->Increment(iteration_ - iteration);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Event("trainer_restore", "training",
                   {TraceAttr::Int("from_iteration", iteration_),
                    TraceAttr::Int("to_iteration", iteration)});
  }
  iteration_ = iteration;
  return Status::Ok();
}

Status ShardedTrainer::ReplayTo(int64_t target_iteration) {
  if (target_iteration < iteration_) {
    return InvalidArgumentError("replay target is behind the current iteration");
  }
  const int64_t replayed = target_iteration - iteration_;
  while (iteration_ < target_iteration) {
    for (int rank = 0; rank < num_machines_; ++rank) {
      auto& shard = shards_[static_cast<size_t>(rank)];
      for (size_t i = 0; i < shard.size(); ++i) {
        shard[i] = shard[i] * 0.999f + UpdateDelta(seed_, iteration_, rank, i);
      }
    }
    ++iteration_;
  }
  if (replayed > 0) {
    if (metrics_ != nullptr) {
      metrics_->counter("trainer.replayed_iterations").Increment(replayed);
    }
    if (tracer_ != nullptr) {
      tracer_->Event("trainer_replay", "training",
                     {TraceAttr::Int("to_iteration", iteration_),
                      TraceAttr::Int("replayed", replayed)});
    }
  }
  return Status::Ok();
}

}  // namespace gemini
