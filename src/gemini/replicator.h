// Chunked checkpoint replication over the real fabric.
//
// The scheduling executor (src/schedule/executor.h) computes *when* chunks
// move; this component actually moves them: every machine streams its
// checkpoint to its placement-assigned holders chunk by chunk through
// Fabric transfers, each received chunk is staged through the machine's
// PCIe engine into the CpuCheckpointStore's in-progress buffer
// (BeginWrite / AppendChunk / CommitWrite), and the local replica is staged
// through the local PCIe path. Payload bytes are sliced proportionally to
// chunk sizes so the committed checkpoints are bit-identical to the source.
//
// GeminiSystem uses the executor's timing for long simulations; tests and
// the cross-validation example run the replicator to confirm that the real
// event-driven data plane (a) commits exactly the snapshot bytes and (b)
// finishes in the time the analytic model predicts.
#ifndef SRC_GEMINI_REPLICATOR_H_
#define SRC_GEMINI_REPLICATOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/placement/placement.h"
#include "src/schedule/partition.h"
#include "src/storage/checkpoint.h"
#include "src/storage/cpu_store.h"
#include "src/storage/delta.h"

namespace gemini {

class InterferenceAuditor;
class MetricsRegistry;
class ThreadPool;

struct ReplicatorConfig {
  // Number of in-flight sub-buffers on the receive path (pipeline depth p).
  int num_buffers = 4;
  TimeNs comm_alpha = Micros(100);
  // Optional sink for "replicator.*" counters; may stay null. Per-chunk
  // increments are batched in the pass and flushed once per stream commit —
  // final totals are unchanged, but mid-pass reads see coarser granularity.
  MetricsRegistry* metrics = nullptr;
  // Optional interference auditor notified of every completed chunk transfer
  // (the background traffic it attributes inflation to); may stay null.
  InterferenceAuditor* auditor = nullptr;
  // Pool the receive-side assembly buffers are leased from, so steady-state
  // replication allocates nothing once warm. Null = a process-wide default.
  PayloadPool* pool = nullptr;
  // Host-side wall-clock parallelism for the commit path's integrity CRC
  // over each assembled replica (per-segment CRCs combined in rank order —
  // bit-identical to one thread). 1 (the default) runs everything inline on
  // the simulator thread, keeping the discrete-event engine deterministic
  // and single-threaded; values > 1 only change wall-clock, never simulated
  // timing, event order, or bytes.
  int pipeline_threads = 1;
  // Worker pool to use when pipeline_threads > 1. Null = the pass creates a
  // private pool of pipeline_threads for its own lifetime.
  ThreadPool* workers = nullptr;
};

struct ReplicationOutcome {
  Status status;
  // When the last network transfer completed / the last holder committed.
  TimeNs network_done = 0;
  TimeNs committed_at = 0;
  int chunks_transferred = 0;
};

// Replicates one global snapshot (one checkpoint per alive machine) to all
// placement-assigned holders, following `chunks` (from PartitionCheckpoint,
// replica_index selecting the destination among each owner's remote
// holders). `done` fires when every holder committed every checkpoint, or
// with the first error.
void ReplicateSnapshot(Cluster& cluster, const PlacementPlan& placement,
                       std::vector<CpuCheckpointStore*> stores,
                       const std::vector<Checkpoint>& snapshots,
                       const std::vector<ChunkAssignment>& chunks,
                       const ReplicatorConfig& config,
                       std::function<void(ReplicationOutcome)> done);

// Incremental mode: replicates one global snapshot shipping only delta bytes
// wherever possible. For each owner, `deltas[owner]` (when set) is streamed —
// in `chunk_bytes`-bounded fabric pieces through the same fabric+PCIe data
// plane — to every holder whose redo-chain head matches the delta's base
// iteration; the receive side reassembles the delta payload into a fresh
// buffer, re-verifies every chunk against its capture-time CRC fingerprint,
// and appends it to the holder's chain (WriteDelta). Holders without a
// matching sealed base (and owners with no delta) fall back to the full
// chunked snapshot stream, so the committed state is identical either way —
// only the bytes moved differ. `snapshots` must hold the full checkpoint for
// every alive owner regardless.
void ReplicateDeltaSnapshot(Cluster& cluster, const PlacementPlan& placement,
                            std::vector<CpuCheckpointStore*> stores,
                            const std::vector<Checkpoint>& snapshots,
                            const std::vector<std::optional<DeltaCheckpoint>>& deltas,
                            Bytes chunk_bytes, const ReplicatorConfig& config,
                            std::function<void(ReplicationOutcome)> done);

// Re-protection (recovery hardening): streams the latest CRC-verified
// checkpoints back onto `target_ranks` (machines whose DRAM is fresh after a
// hardware replacement) so every owner's full replica set exists again. Each
// missing replica is fetched from the best alive holder through the same
// chunked Stream data plane as ReplicateSnapshot; `chunk_bytes` bounds the
// per-transfer burst (callers pass the Algorithm-2 max chunk size so the
// traffic keeps fitting the idle spans it was planned for). Replicas the
// target already holds at (or past) the source's iteration are skipped, and
// a stream that loses a race with a newer foreground checkpoint commit
// counts as satisfied — the redundancy goal was met by the newer write.
// `done` fires once per call, with the first hard error or Ok.
void ReprotectReplicas(Cluster& cluster, const PlacementPlan& placement,
                       std::vector<CpuCheckpointStore*> stores,
                       const std::vector<int>& target_ranks, Bytes chunk_bytes,
                       const ReplicatorConfig& config,
                       std::function<void(ReplicationOutcome)> done);

}  // namespace gemini

#endif  // SRC_GEMINI_REPLICATOR_H_
