#include "src/gemini/gemini_system.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/gemini/replicator.h"

namespace gemini {

std::string_view RecoverySourceName(RecoverySource source) {
  switch (source) {
    case RecoverySource::kLocalCpuMemory:
      return "local_cpu_memory";
    case RecoverySource::kRemoteCpuMemory:
      return "remote_cpu_memory";
    case RecoverySource::kPersistentStorage:
      return "persistent_storage";
    case RecoverySource::kGradientReplay:
      return "gradient_replay";
    case RecoverySource::kPeerRecompute:
      return "peer_recompute";
  }
  return "unknown";
}

Status GeminiConfig::Validate() const {
  if (num_machines < 1) {
    return InvalidArgumentError("need at least one machine");
  }
  if (num_replicas < 1 || num_replicas > num_machines) {
    return InvalidArgumentError("replica count must be in [1, num_machines]");
  }
  if (payload_elements < 1) {
    return InvalidArgumentError("payload_elements must be positive");
  }
  if (profile_iterations < 1) {
    return InvalidArgumentError("profile_iterations must be positive");
  }
  if (num_buffers < 1) {
    return InvalidArgumentError("num_buffers must be positive");
  }
  if (gamma <= 0.0 || gamma > 1.0) {
    return InvalidArgumentError("gamma must be in (0, 1]");
  }
  if (serialization_bandwidth <= 0) {
    return InvalidArgumentError("serialization_bandwidth must be positive");
  }
  if (retrieval_max_attempts < 1) {
    return InvalidArgumentError("retrieval_max_attempts must be positive");
  }
  if (reprotection_max_attempts < 1) {
    return InvalidArgumentError("reprotection_max_attempts must be positive");
  }
  if (pipeline_threads < 1) {
    return InvalidArgumentError("pipeline_threads must be positive");
  }
  if (incremental.sparse_update_fraction <= 0.0 || incremental.sparse_update_fraction > 1.0) {
    return InvalidArgumentError("incremental.sparse_update_fraction must be in (0, 1]");
  }
  if (incremental.enabled) {
    if (incremental.chunk_elements < 1) {
      return InvalidArgumentError("incremental.chunk_elements must be positive");
    }
    if (incremental.max_chain_length < 1) {
      return InvalidArgumentError(
          "incremental.max_chain_length must be >= 1: a compaction cap of 0 would let delta "
          "chains grow without bound and recovery replay them forever");
    }
    if (incremental.max_chain_bytes < 0) {
      return InvalidArgumentError("incremental.max_chain_bytes must be non-negative");
    }
  }
  return policy.Validate();
}

GeminiSystem::GeminiSystem(GeminiConfig config)
    : config_(std::move(config)),
      auditor_(config_.audit, &metrics_, &tracer_),
      flight_recorder_(FlightRecorderConfig{config_.flight_recorder_capacity}),
      audit_rng_(config_.seed ^ 0x617564ULL) {
  if (config_.instance.name.empty()) {
    config_.instance = P4d24xlarge();
  }
}

GeminiSystem::~GeminiSystem() = default;

StatusOr<std::unique_ptr<GeminiSystem>> GeminiSystem::Create(GeminiConfig config) {
  GEMINI_RETURN_IF_ERROR(config.Validate());
  auto system = std::make_unique<GeminiSystem>(std::move(config));
  GEMINI_RETURN_IF_ERROR(system->Initialize());
  return system;
}

Status GeminiSystem::Initialize() {
  if (initialized_) {
    return FailedPreconditionError("GeminiSystem already initialized");
  }
  GEMINI_RETURN_IF_ERROR(config_.Validate());
  policy_ = MakeProtectionPolicy(config_.policy);

  // ---- Cluster and fabric.
  FabricConfig fabric_config;
  fabric_config.link_bandwidth = config_.instance.network_bandwidth;
  cluster_ = std::make_unique<Cluster>(sim_, config_.num_machines, config_.instance,
                                       fabric_config);

  // ---- Placement (Algorithm 1) and CPU checkpoint stores.
  GEMINI_ASSIGN_OR_RETURN(placement_,
                          BuildMixedPlacement(config_.num_machines, config_.num_replicas));
  const Bytes replica_bytes = config_.model.CheckpointBytesPerMachine(config_.num_machines);
  RedoLogConfig redo_config;
  redo_config.max_chain_length = config_.incremental.max_chain_length;
  redo_config.max_chain_bytes = config_.incremental.max_chain_bytes;
  cpu_stores_.clear();
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    cpu_stores_.push_back(std::make_unique<CpuCheckpointStore>(cluster_->machine(rank)));
    cpu_stores_.back()->set_metrics(&metrics_);
    if (config_.incremental.enabled) {
      cpu_stores_.back()->ConfigureRedoLog(redo_config);
    }
  }
  for (int owner = 0; owner < config_.num_machines; ++owner) {
    for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
      GEMINI_RETURN_IF_ERROR(
          cpu_stores_[static_cast<size_t>(holder)]->HostOwner(owner, replica_bytes));
    }
  }

  // ---- Trainer and persistent tier (seeded with the initial checkpoint).
  trainer_ = std::make_unique<ShardedTrainer>(config_.model, config_.num_machines,
                                              config_.payload_elements, config_.seed);
  trainer_->set_metrics(&metrics_);
  trainer_->set_tracer(&tracer_);
  if (config_.incremental.sparse_update_fraction < 1.0) {
    trainer_->SetSparseUpdates(config_.incremental.sparse_update_fraction,
                               static_cast<size_t>(config_.incremental.chunk_elements));
  }
  if (config_.incremental.enabled) {
    trainer_->EnableDirtyTracking(static_cast<size_t>(config_.incremental.chunk_elements));
  }
  delta_bases_.assign(static_cast<size_t>(config_.num_machines), std::nullopt);
  dirty_accum_.assign(static_cast<size_t>(config_.num_machines),
                      std::vector<uint8_t>(trainer_->dirty_chunk_count(), 0));
  persistent_bases_.assign(static_cast<size_t>(config_.num_machines), std::nullopt);
  if (config_.pipeline_threads > 1 && datapath_pool_ == nullptr) {
    datapath_pool_ = std::make_unique<ThreadPool>(config_.pipeline_threads);
  }
  persistent_ = std::make_unique<PersistentStore>(sim_, config_.persistent);
  persistent_->set_metrics(&metrics_);
  persistent_->set_workers(datapath_pool_.get());
  if (config_.incremental.enabled) {
    persistent_->ConfigureRedoLog(redo_config);
  }
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    Checkpoint seeded = trainer_->MakeCheckpoint(rank);
    if (config_.incremental.enabled) {
      // The seed seals the persistent tier's first chain base; the first
      // interval save can already ship a delta against iteration 0.
      persistent_bases_[static_cast<size_t>(rank)] = seeded;
    }
    persistent_->SeedImmediate(std::move(seeded), config_.num_machines);
  }

  // ---- Distributed KV store on the first few machines.
  std::vector<int> kv_ranks;
  for (int rank = 0; rank < std::min(config_.kv_server_count, config_.num_machines); ++rank) {
    kv_ranks.push_back(rank);
  }
  kvstore_ = std::make_unique<KvStoreCluster>(
      sim_, cluster_->fabric(), kv_ranks,
      [this](int rank) { return cluster_->machine(rank).alive(); }, config_.kvstore,
      config_.seed ^ 0x6b76ULL);
  kvstore_->set_observability(&metrics_, &tracer_);
  kvstore_->Start();

  // ---- Agents: every machine runs a worker agent; the first one to win the
  // root election becomes the root agent (the same path used at failover).
  workers_.clear();
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    auto worker =
        std::make_unique<WorkerAgent>(sim_, *cluster_, *kvstore_, rank, config_.agent);
    worker->set_on_promoted_to_root([this, rank] { OnWorkerPromotedToRoot(rank); });
    worker->set_metrics(&metrics_);
    worker->set_tracer(&tracer_);
    worker->Start();
    workers_.push_back(std::move(worker));
  }

  // ---- Cloud operator and failure injection.
  cloud_ = std::make_unique<CloudOperator>(sim_, *cluster_, config_.cloud,
                                           config_.seed ^ 0x636cULL);
  cloud_->set_metrics(&metrics_);
  injector_ = std::make_unique<FailureInjector>(sim_, *cluster_, config_.seed ^ 0x666cULL);
  injector_->set_metrics(&metrics_);
  injector_->set_observer([this](const FailureEvent& event) {
    // Synchronous training hangs the moment any participant fails: the
    // in-flight iteration (and its in-flight checkpoint) never completes.
    if (running_ && !recovering_) {
      if (iteration_end_event_.valid()) {
        sim_.Cancel(iteration_end_event_);
        iteration_end_event_ = EventId{};
      }
      if (checkpoint_commit_event_.valid()) {
        sim_.Cancel(checkpoint_commit_event_);
        checkpoint_commit_event_ = EventId{};
      }
    }
    if (event.type == FailureType::kSoftware) {
      for (const int rank : event.ranks) {
        workers_[static_cast<size_t>(rank)]->ReportProcessDown();
      }
    }
  });
  // Chaos hook: bit-flip corruption lands directly in a holder's CPU store,
  // where the CRC verification on the recovery read path must catch it.
  injector_->set_corruption_hook([this](int holder_rank, int owner_rank, size_t bit_index) {
    return cpu_stores_[static_cast<size_t>(holder_rank)]->CorruptLatest(owner_rank, bit_index);
  });
  // Incremental-mode chaos hook: bit-rot inside one link of a holder's delta
  // chain, which the CRC-gated materialization must reject.
  injector_->set_delta_corruption_hook(
      [this](int holder_rank, int owner_rank, size_t chain_index, size_t bit_index) {
        return cpu_stores_[static_cast<size_t>(holder_rank)]->CorruptChainDelta(
            owner_rank, chain_index, bit_index);
      });

  // ---- Profile the timeline and plan checkpoint traffic (Sections 5.3/5.4).
  TimelineParams timeline_params;
  timeline_params.model = config_.model;
  timeline_params.instance = config_.instance;
  timeline_params.num_machines = config_.num_machines;
  timeline_ = BuildZero3Timeline(timeline_params);
  ProfilerConfig profiler_config;
  profiler_config.iterations = config_.profile_iterations;
  Rng profile_rng(config_.seed ^ 0x70726fULL);
  profile_ = ProfileIdleSpans(timeline_, profiler_config, profile_rng);

  executor_params_ = ExecutorParams{};
  executor_params_.timeline = timeline_params;
  executor_params_.scheme = InterleaveScheme::kPipelined;
  executor_params_.num_replicas = config_.num_replicas;
  executor_params_.reserved_buffer_per_gpu = config_.reserved_buffer_per_gpu;
  executor_params_.num_buffers = config_.num_buffers;
  executor_params_.gamma = config_.gamma;
  executor_params_.profiled_spans = profile_.spans;
  const FrequencyDecision frequency = ChooseCheckpointFrequency(executor_params_);
  execution_ = frequency.execution;
  checkpoint_interval_iterations_ = frequency.interval_iterations;
  GEMINI_RETURN_IF_ERROR(execution_.status);
  if (checkpoint_interval_iterations_ > 1) {
    GEMINI_LOG(kInfo) << "checkpoint traffic exceeds one iteration's idle time; "
                      << "checkpointing every " << checkpoint_interval_iterations_
                      << " iterations (Section 5.3 amortization)";
  }

  // ---- Continuous interference auditor + flight recorder (observability
  // feedback loop): the tracer feeds the bounded ring through its record
  // sink, and the auditor watches every iteration's spans for drift away
  // from the profile just installed.
  tracer_.set_metrics(&metrics_);
  tracer_.set_max_records(config_.tracer_max_records);
  tracer_.set_record_sink(
      [this](const TraceRecord& record) { flight_recorder_.Record(record); });
  auditor_.Rebaseline(profile_.spans, execution_.partition, AuditPartitionParams());
  auditor_.set_on_drift([this](int64_t iteration) { ReprofileAndRepartition(iteration); });

  // The protection policy goes live against the freshly computed schedule
  // (its Activate publishes the per-policy overhead gauges).
  current_iteration_duration_ = execution_.iteration_time;
  policy_->Activate(*this);

  // Reserve the checkpoint communication buffer on every GPU.
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    GEMINI_RETURN_IF_ERROR(
        cluster_->machine(rank).AllocateOnAllGpus(config_.reserved_buffer_per_gpu));
  }

  report_ = TrainingReport{};
  report_.iteration_time = execution_.iteration_time;
  initialized_ = true;
  return Status::Ok();
}

StatusOr<TrainingReport> GeminiSystem::TrainUntil(int64_t target_iterations,
                                                  TimeNs sim_deadline) {
  if (!initialized_) {
    return FailedPreconditionError("Initialize() first");
  }
  if (running_) {
    return FailedPreconditionError("training already running");
  }
  target_iterations_ = target_iterations;
  running_ = true;
  run_started_at_ = sim_.now();
  last_persistent_checkpoint_at_ = sim_.now();
  StartNextIteration();
  while (running_) {
    if (sim_deadline > 0 && sim_.now() >= sim_deadline) {
      GEMINI_LOG(kWarning) << "training stopped at the simulated-time deadline";
      FinishRun();
      break;
    }
    if (!sim_.Step()) {
      return InternalError("simulation deadlocked: event queue drained while training");
    }
  }
  report_.wall_time = sim_.now() - run_started_at_;
  report_.iterations_completed = trainer_->iteration();
  return report_;
}

void GeminiSystem::FinishRun() {
  running_ = false;
  if (iteration_end_event_.valid()) {
    sim_.Cancel(iteration_end_event_);
    iteration_end_event_ = EventId{};
  }
  if (checkpoint_commit_event_.valid()) {
    sim_.Cancel(checkpoint_commit_event_);
    checkpoint_commit_event_ = EventId{};
  }
}

void GeminiSystem::StartNextIteration() {
  if (!running_ || recovering_) {
    return;
  }
  if (trainer_->iteration() >= target_iterations_) {
    FinishRun();
    return;
  }
  // Checkpoint block structure: the snapshot is captured (staged) at the
  // start of a k-iteration block and its traffic spreads across the block's
  // idle spans, committing during the block's last iteration. k == 1 is the
  // paper's common case: stage and commit within the same iteration.
  const int64_t iteration = trainer_->iteration();
  iteration_started_at_ = sim_.now();
  // Audit this iteration's realized timeline before scheduling anything: a
  // persistent drift may re-profile and re-partition right here, changing the
  // interval and chunk schedule the rest of this function uses. Interference
  // (chunks that no longer fit their shrunken spans) prolongs the iteration
  // by the attributed inflation.
  AuditReport audit;
  if (config_.audit.enabled) {
    audit = auditor_.AuditIteration(iteration, ObservedSpanLengths(), iteration_started_at_);
    if (audit.reprofile_triggered) {
      // The attributed inflation belonged to the schedule the re-profile just
      // replaced; this iteration already runs the fresh one.
      audit.inflation = 0;
    }
  }
  // The policy decides this iteration's capture/commit/stall (after the
  // audit, so it plans against the schedule as it now is). The selector's
  // switch rules also run here, at iteration-start granularity.
  const IterationPlan plan = policy_->PlanIteration(*this, iteration, staged_iteration_ >= 0);
  current_iteration_duration_ = plan.iteration_duration;
  if (plan.stage_snapshot) {
    staged_snapshots_.clear();
    for (int owner = 0; owner < config_.num_machines; ++owner) {
      if (cluster_->machine(owner).alive()) {
        staged_snapshots_.push_back(trainer_->MakeCheckpoint(owner));
        if (config_.incremental.enabled) {
          // Fold the bits marked since the previous capture into the window
          // accumulated since the owner's last sealed base (a discarded block
          // just leaves the accumulator a conservative superset).
          AccumulateDirtyBits(owner);
        }
      }
    }
    staged_iteration_ = iteration;
    staged_at_ = sim_.now();
  }
  if (plan.commit_staged && staged_iteration_ >= 0) {
    const int64_t snapshot_iteration = staged_iteration_;
    checkpoint_commit_event_ =
        sim_.ScheduleAfter(plan.commit_delay, [this, snapshot_iteration] {
          checkpoint_commit_event_ = EventId{};
          OnCheckpointCommit(snapshot_iteration);
        });
  }
  iteration_end_event_ = sim_.ScheduleAfter(
      plan.iteration_duration + plan.added_stall + audit.inflation, [this] {
        iteration_end_event_ = EventId{};
        OnIterationComplete();
      });
}

void GeminiSystem::DiscardStagedBlock() {
  if (checkpoint_commit_event_.valid()) {
    sim_.Cancel(checkpoint_commit_event_);
    checkpoint_commit_event_ = EventId{};
  }
  staged_iteration_ = -1;
  staged_snapshots_.clear();
}

std::vector<TimeNs> GeminiSystem::ObservedSpanLengths() {
  std::vector<TimeNs> observed;
  observed.reserve(timeline_.idle_spans.size());
  for (const IdleSpan& span : timeline_.idle_spans) {
    const double jitter =
        1.0 + audit_rng_.Normal(0.0, config_.observed_span_jitter_stddev);
    const double length =
        static_cast<double>(span.length) * timeline_shift_ * std::max(0.0, jitter);
    observed.push_back(static_cast<TimeNs>(length));
  }
  return observed;
}

PartitionParams GeminiSystem::AuditPartitionParams() const {
  PartitionParams params;
  params.idle_spans = profile_.spans;
  params.bandwidth = config_.instance.network_bandwidth;
  params.alpha = executor_params_.timeline.comm_alpha;
  return params;
}

void GeminiSystem::ReprofileAndRepartition(int64_t iteration) {
  // Online Section 5.4 re-profile against the timeline as it now is: the
  // nominal spans scaled by the persistent shift, observed with the usual
  // profiling jitter.
  IterationTimeline shifted = timeline_;
  for (IdleSpan& span : shifted.idle_spans) {
    span.length = static_cast<TimeNs>(static_cast<double>(span.length) * timeline_shift_);
  }
  ProfilerConfig profiler_config;
  profiler_config.iterations = config_.profile_iterations;
  profile_ = ProfileIdleSpans(shifted, profiler_config, audit_rng_);

  // Algorithm-2 re-partition on the fresh profile; Section 5.3 frequency
  // adaptation may raise the interval when the shrunken spans no longer
  // carry a full checkpoint per iteration.
  executor_params_.profiled_spans = profile_.spans;
  const FrequencyDecision frequency = ChooseCheckpointFrequency(executor_params_);
  if (frequency.execution.status.ok()) {
    execution_ = frequency.execution;
    checkpoint_interval_iterations_ = frequency.interval_iterations;
    report_.iteration_time = execution_.iteration_time;
    // Any in-flight checkpoint block was planned under the old schedule;
    // restart block accounting under the new one.
    staged_iteration_ = -1;
    staged_snapshots_.clear();
  } else {
    GEMINI_LOG(kWarning) << "online re-partition failed (" << frequency.execution.status
                         << "); keeping the previous schedule";
  }
  auditor_.Rebaseline(profile_.spans, execution_.partition, AuditPartitionParams());
  metrics_.counter("system.reprofiles").Increment();
  tracer_.Span("reprofile", "audit", iteration_started_at_, sim_.now(),
               {TraceAttr::Int("iteration", iteration),
                TraceAttr::Int("interval", checkpoint_interval_iterations_),
                TraceAttr::Real("shift", timeline_shift_)});
  GEMINI_LOG(kInfo) << "auditor: timeline drift persisted at iteration " << iteration
                    << "; re-profiled and re-partitioned (interval now "
                    << checkpoint_interval_iterations_ << ")";
}

void GeminiSystem::OnCheckpointCommit(int64_t snapshot_iteration) {
  // Real data plane: the block's staged snapshots land in all holders'
  // double-buffered CPU stores (the transfer timing was already paid by the
  // interleaved schedule that led to this commit instant).
  if (staged_iteration_ != snapshot_iteration) {
    GEMINI_LOG(kWarning) << "stale checkpoint commit dropped (staged " << staged_iteration_
                         << ", committing " << snapshot_iteration << ")";
    return;
  }
  for (const Checkpoint& snapshot : staged_snapshots_) {
    const int owner = snapshot.owner_rank;
    if (!cluster_->machine(owner).alive()) {
      continue;
    }
    std::optional<DeltaCheckpoint> delta;
    if (config_.incremental.enabled) {
      delta = MaybeBuildCommitDelta(snapshot);
    }
    for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
      if (!cluster_->machine(holder).alive()) {
        continue;
      }
      CpuCheckpointStore& store = *cpu_stores_[static_cast<size_t>(holder)];
      if (delta.has_value() && store.ChainHeadIteration(owner) == delta->base_iteration) {
        const Status status = store.WriteDelta(*delta);
        if (status.ok()) {
          continue;
        }
        // A holder whose chain fell out of sync (e.g. a fresh replacement)
        // gets the full snapshot instead.
        GEMINI_LOG(kWarning) << "delta commit failed on rank " << holder << " (" << status
                             << "); falling back to a full write";
      }
      const Status status = store.WriteComplete(snapshot);
      if (!status.ok()) {
        GEMINI_LOG(kWarning) << "checkpoint commit failed on rank " << holder << ": " << status;
        return;
      }
    }
    if (config_.incremental.enabled) {
      incremental_committed_bytes_ +=
          delta.has_value() ? delta->delta_bytes : snapshot.logical_bytes;
      incremental_full_equivalent_bytes_ += snapshot.logical_bytes;
      delta_bases_[static_cast<size_t>(owner)] = snapshot;
      auto& accum = dirty_accum_[static_cast<size_t>(owner)];
      std::fill(accum.begin(), accum.end(), 0);
    }
  }
  ++report_.cpu_checkpoints_committed;
  if (config_.publish_checkpoint_watermark) {
    // All per-rank watermark keys plus the block-level key ride ONE batched
    // proposal — a single consensus round per checkpoint block rather than
    // one Raft commit per shard.
    std::vector<KvPutEntry> watermarks;
    watermarks.reserve(staged_snapshots_.size() + 1);
    for (const Checkpoint& snapshot : staged_snapshots_) {
      watermarks.push_back(KvPutEntry{
          "ckpt/watermark/rank/" + std::to_string(snapshot.owner_rank),
          std::to_string(snapshot.iteration)});
    }
    watermarks.push_back(
        KvPutEntry{"ckpt/watermark/block", std::to_string(snapshot_iteration)});
    if (config_.incremental.enabled) {
      // Durable-epoch watermark: the newest iteration fully restorable from
      // the persistent tier — the floor a delta-chain recovery can always
      // fall back to. Rides the same single consensus round.
      watermarks.push_back(KvPutEntry{"ckpt/watermark/durable_epoch",
                                      std::to_string(persistent_->durable_epoch())});
    }
    kvstore_->PutBatch(std::move(watermarks), kNoLease, [](Status status) {
      if (!status.ok()) {
        // Leaderless windows (mid-election) drop the watermark; the next
        // block re-publishes strictly newer values, so nothing is retried.
        GEMINI_LOG(kWarning) << "checkpoint watermark publish failed: " << status;
      }
    });
  }
  metrics_.counter("system.cpu_checkpoint_commits").Increment();
  tracer_.Span("checkpoint_block", "checkpoint", staged_at_, sim_.now(),
               {TraceAttr::Int("iteration", snapshot_iteration)});
  tracer_.Event("checkpoint_commit", "checkpoint",
                {TraceAttr::Int("iteration", snapshot_iteration)});
  policy_->OnCheckpointCommitted(*this, snapshot_iteration);
}

void GeminiSystem::OnIterationComplete() {
  tracer_.Span("iteration", "training", iteration_started_at_, sim_.now(),
               {TraceAttr::Int("iteration", trainer_->iteration())});
  trainer_->Step();
  MaybePersistentCheckpoint();
}

void GeminiSystem::MaybePersistentCheckpoint() {
  const TimeNs interval = policy_->PersistentInterval(*this);
  if (interval <= 0 || sim_.now() - last_persistent_checkpoint_at_ < interval) {
    StartNextIteration();
    return;
  }
  last_persistent_checkpoint_at_ = sim_.now();
  // Serialization blocks training (torch.save); the upload itself is
  // asynchronous through the store's shared bandwidth. Ranks serialize
  // concurrently, so the stall is the largest per-rank serialized size — the
  // full replica, or just the delta bytes in incremental mode.
  const Bytes replica_bytes = config_.model.CheckpointBytesPerMachine(config_.num_machines);
  Bytes max_rank_bytes = 0;
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    if (!cluster_->machine(rank).alive()) {
      continue;
    }
    Checkpoint full = trainer_->MakeCheckpoint(rank);
    std::optional<DeltaCheckpoint> delta;
    if (config_.incremental.enabled) {
      const std::optional<Checkpoint>& base = persistent_bases_[static_cast<size_t>(rank)];
      // Deltas are built against the last *scheduled* state; the store's FIFO
      // preserves arrival order, so each delta lands on the chain head it was
      // sealed against.
      if (base.has_value() && full.iteration > base->iteration &&
          base->payload.size() == full.payload.size() &&
          persistent_->DeltaBaseIteration(rank) >= 0) {
        StatusOr<DeltaCheckpoint> built = BuildDeltaCheckpoint(
            *base, full, static_cast<size_t>(config_.incremental.chunk_elements));
        if (built.ok()) {
          delta = std::move(built).value();
        }
      }
    }
    if (delta.has_value()) {
      max_rank_bytes = std::max(max_rank_bytes, delta->delta_bytes);
      persistent_->SaveDelta(std::move(*delta), config_.num_machines, [this, rank](Status status) {
        if (!status.ok()) {
          GEMINI_LOG(kWarning) << "persistent delta save for rank " << rank
                               << " failed: " << status;
          // Broken seal: force the next interval back to a full upload.
          persistent_bases_[static_cast<size_t>(rank)] = std::nullopt;
        }
      });
    } else {
      max_rank_bytes = std::max(max_rank_bytes, replica_bytes);
      persistent_->Save(full, config_.num_machines, [this, rank](Status status) {
        if (!status.ok() && config_.incremental.enabled) {
          persistent_bases_[static_cast<size_t>(rank)] = std::nullopt;
        }
      });
    }
    if (config_.incremental.enabled) {
      persistent_bases_[static_cast<size_t>(rank)] = std::move(full);
    }
  }
  const TimeNs serialize = TransferTime(max_rank_bytes, config_.serialization_bandwidth);
  ++report_.persistent_checkpoints_committed;
  metrics_.counter("system.persistent_checkpoints").Increment();
  tracer_.Span("persistent_serialize", "checkpoint", sim_.now(), sim_.now() + serialize,
               {TraceAttr::Int("iteration", trainer_->iteration())});
  sim_.ScheduleAfter(serialize, [this] { StartNextIteration(); });
}

// ---------------------------------------------------------------------------
// Incremental checkpoints
// ---------------------------------------------------------------------------

void GeminiSystem::AccumulateDirtyBits(int owner_rank) {
  std::vector<uint8_t> taken = trainer_->TakeDirtyChunks(owner_rank);
  auto& accum = dirty_accum_[static_cast<size_t>(owner_rank)];
  if (accum.size() != taken.size()) {
    accum.assign(taken.size(), 1);
    return;
  }
  for (size_t i = 0; i < taken.size(); ++i) {
    accum[i] = static_cast<uint8_t>(accum[i] | taken[i]);
  }
}

std::optional<DeltaCheckpoint> GeminiSystem::MaybeBuildCommitDelta(const Checkpoint& snapshot) {
  const int owner = snapshot.owner_rank;
  const std::optional<Checkpoint>& base = delta_bases_[static_cast<size_t>(owner)];
  if (!base.has_value() || snapshot.iteration <= base->iteration ||
      base->payload.size() != snapshot.payload.size()) {
    return std::nullopt;
  }
  const std::vector<uint8_t>& hint = dirty_accum_[static_cast<size_t>(owner)];
  StatusOr<DeltaCheckpoint> delta = BuildDeltaCheckpoint(
      *base, snapshot, static_cast<size_t>(config_.incremental.chunk_elements),
      hint.empty() ? nullptr : &hint);
  if (!delta.ok()) {
    GEMINI_LOG(kWarning) << "delta build for owner " << owner << " failed (" << delta.status()
                         << "); committing a full snapshot";
    return std::nullopt;
  }
  return std::move(delta).value();
}

void GeminiSystem::ResetIncrementalBases() {
  std::fill(delta_bases_.begin(), delta_bases_.end(), std::nullopt);
  std::fill(persistent_bases_.begin(), persistent_bases_.end(), std::nullopt);
  for (auto& accum : dirty_accum_) {
    std::fill(accum.begin(), accum.end(), 1);
  }
}

double GeminiSystem::incremental_delta_fraction() const {
  if (!config_.incremental.enabled || incremental_full_equivalent_bytes_ <= 0) {
    return 1.0;
  }
  return static_cast<double>(incremental_committed_bytes_) /
         static_cast<double>(incremental_full_equivalent_bytes_);
}

// ---------------------------------------------------------------------------
// Recovery (Section 6.2)
// ---------------------------------------------------------------------------

void GeminiSystem::OnFailureDetected(const FailureReport& report) {
  if (!running_) {
    return;
  }
  if (recovering_) {
    // Cascading failure: merge it into the active case instead of dropping
    // it (the pre-hardening behavior silently ignored these).
    AbsorbFailureDuringRecovery(report);
    return;
  }
  // Feed the failure-rate signal the Chameleon selector keys on (pure
  // bookkeeping: no metric or trace output).
  auditor_.NoteFailure(sim_.now());
  recovering_ = true;
  active_case_.emplace();
  ActiveRecoveryCase& recovery_case = *active_case_;
  recovery_case.type = report.type;
  recovery_case.reports.push_back(report);
  recovery_case.ranks.insert(report.ranks.begin(), report.ranks.end());
  recovery_case.first_detected_at = report.detected_at;
  recovery_case.serialize_done_at = sim_.now() + policy_->RecoverySerializationTime(*this);
  recovery_case.iteration_at_failure = trainer_->iteration();
  metrics_.counter("system.failures_detected").Increment();
  tracer_.Event("failure_detected", "recovery",
                {TraceAttr::Text("type", std::string(FailureTypeName(report.type))),
                 TraceAttr::Int("num_ranks", static_cast<int64_t>(report.ranks.size())),
                 TraceAttr::Int("iteration", trainer_->iteration())});
  if (config_.flight_recorder_capacity > 0) {
    flight_recorder_.Dump("failure_detected", sim_.now(), &metrics_);
  }
  GEMINI_LOG(kInfo) << "recovery: handling " << FailureTypeName(report.type) << " failure of "
                    << report.ranks.size() << " machine(s)";
  // The root agent keeps scanning during recovery (its handled-set suppresses
  // re-reports of the ranks already in the case) so overlapping failures are
  // detected and absorbed rather than invisible.
  injector_->Fire(kTriggerRecoveryStart);
  StartRecoveryAttempt();
}

void GeminiSystem::AbsorbFailureDuringRecovery(const FailureReport& report) {
  ActiveRecoveryCase& recovery_case = *active_case_;
  bool new_ranks = false;
  for (const int rank : report.ranks) {
    if (!recovery_case.ranks.contains(rank)) {
      new_ranks = true;
      break;
    }
  }
  const bool escalates = report.type == FailureType::kHardware &&
                         recovery_case.type == FailureType::kSoftware;
  if (!new_ranks && !escalates) {
    // Same ranks, no escalation: a freshly promoted root re-reporting a
    // failure the case already covers.
    metrics_.counter("system.failure_reports.deduplicated").Increment();
    return;
  }
  auditor_.NoteFailure(sim_.now());
  recovery_case.reports.push_back(report);
  recovery_case.ranks.insert(report.ranks.begin(), report.ranks.end());
  if (report.type == FailureType::kHardware) {
    recovery_case.type = FailureType::kHardware;
    // Survivors re-serialize their replicas against the updated alive set.
    recovery_case.serialize_done_at = std::max(
        recovery_case.serialize_done_at, sim_.now() + policy_->RecoverySerializationTime(*this));
  }
  metrics_.counter("system.recoveries.preempted").Increment();
  tracer_.Event("recovery_preempted", "recovery",
                {TraceAttr::Text("type", std::string(FailureTypeName(report.type))),
                 TraceAttr::Int("num_ranks", static_cast<int64_t>(report.ranks.size()))});
  GEMINI_LOG(kInfo) << "recovery: absorbed overlapping " << FailureTypeName(report.type)
                    << " failure of " << report.ranks.size()
                    << " machine(s); restarting the case analysis";
  StartRecoveryAttempt();
}

void GeminiSystem::StartRecoveryAttempt() {
  ++recovery_epoch_;  // Invalidate every callback of the previous attempt.
  ActiveRecoveryCase& recovery_case = *active_case_;
  if (recovery_case.type == FailureType::kSoftware) {
    // Restart the crashed processes: serialize the in-memory checkpoints so
    // torch.load can read them, then warm up. The policy decides the chain —
    // GEMINI restores everyone from the local replica (Figure 6b) with zero
    // retrieval traffic.
    const uint64_t epoch = recovery_epoch_;
    const TimeNs serialize_wait =
        std::max<TimeNs>(0, recovery_case.serialize_done_at - sim_.now());
    sim_.ScheduleAfter(serialize_wait + config_.restart_warmup, [this, epoch] {
      if (epoch != recovery_epoch_ || !recovering_) {
        return;
      }
      RecoverySituation situation;
      situation.type = FailureType::kSoftware;
      situation.peer_recoverable = true;
      situation.iteration_at_failure = active_case_->iteration_at_failure;
      ExecuteRecoverySteps(MakeCaseRecord(), policy_->BuildRecoveryPlan(*this, situation),
                           /*step_index=*/0, {});
    });
    return;
  }
  // Hardware: replace every rank that is currently dead and not already being
  // replaced; alive machines serialize their replicas meanwhile (the two
  // overlap, Figure 14). Ranks already replaced in an earlier attempt of this
  // case carry over.
  for (const int rank : recovery_case.ranks) {
    if (cluster_->machine(rank).alive() || recovery_case.replacing.contains(rank)) {
      continue;
    }
    recovery_case.replacing.insert(rank);
    ++recovery_case.pending_replacements;
    cloud_->ReplaceMachine(
        rank, [this, rank](Machine& machine) { OnMachineReplaced(rank, machine); });
  }
  MaybeAnalyzeHardwareCase();
}

void GeminiSystem::ExecuteRecoverySteps(RecoveryRecord record, RecoveryPlan plan,
                                        size_t step_index, std::vector<int> replaced_ranks) {
  if (step_index >= plan.steps.size()) {
    GEMINI_LOG(kError) << "recovery: the policy's fallback chain is exhausted; "
                          "training cannot resume";
    FinishRun();
    return;
  }
  const RecoveryStep step = plan.steps[step_index];
  switch (step.kind) {
    case RecoveryStepKind::kRestoreFromLocalCpu:
      RestoreFromLocalCpu(std::move(record), std::move(plan), step_index);
      break;
    case RecoveryStepKind::kFetchFromPeers:
      RetrieveFromPeersAndResume(std::move(record), std::move(plan), step_index,
                                 std::move(replaced_ranks));
      break;
    case RecoveryStepKind::kFetchFromPersistent:
      RetrieveFromPersistentAndResume(std::move(record), std::move(replaced_ranks));
      break;
    case RecoveryStepKind::kReplayLoggedGradients:
      ReplayLoggedGradientsAndResume(std::move(record), step);
      break;
    case RecoveryStepKind::kRecomputeFromPeers:
      RecomputeFromPeersAndResume(std::move(record), step);
      break;
  }
}

void GeminiSystem::RestoreFromLocalCpu(RecoveryRecord record, RecoveryPlan plan,
                                       size_t step_index) {
  record.source = RecoverySource::kLocalCpuMemory;
  std::vector<Checkpoint> checkpoints;
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    const std::optional<Checkpoint> local =
        cpu_stores_[static_cast<size_t>(rank)]->LatestVerified(rank);
    if (!local.has_value()) {
      // Failure before the first commit (or a corrupted local replica): fall
      // through to the chain's next stage (the persistent tier for GEMINI).
      ExecuteRecoverySteps(std::move(record), std::move(plan), step_index + 1, {});
      return;
    }
    // The restarting process loads through the serialized form (the
    // torch.save/torch.load path), so the CRC integrity check guards the
    // bytes actually restored.
    const StatusOr<Checkpoint> loaded = DeserializeCheckpoint(SerializeCheckpoint(*local));
    if (!loaded.ok()) {
      GEMINI_LOG(kError) << "local checkpoint failed integrity check: " << loaded.status();
      ExecuteRecoverySteps(std::move(record), std::move(plan), step_index + 1, {});
      return;
    }
    checkpoints.push_back(*loaded);
  }
  const Status status = trainer_->RestoreAll(checkpoints);
  if (!status.ok()) {
    GEMINI_LOG(kError) << "software recovery failed to restore: " << status;
    ExecuteRecoverySteps(std::move(record), std::move(plan), step_index + 1, {});
    return;
  }
  record.rollback_iteration = trainer_->iteration();
  ResumeTraining(record);
}

void GeminiSystem::OnMachineReplaced(int rank, Machine& machine) {
  // Fresh DRAM: rebuild the store's hosting reservations for this rank.
  CpuCheckpointStore& store = *cpu_stores_[static_cast<size_t>(rank)];
  store.ResetForMachine(machine);
  const Bytes replica_bytes = config_.model.CheckpointBytesPerMachine(config_.num_machines);
  for (int owner = 0; owner < config_.num_machines; ++owner) {
    const auto& holders = placement_.replica_sets[static_cast<size_t>(owner)];
    if (std::find(holders.begin(), holders.end(), rank) != holders.end()) {
      (void)store.HostOwner(owner, replica_bytes);
    }
  }
  (void)machine.AllocateOnAllGpus(config_.reserved_buffer_per_gpu);
  // Restart the co-located KV member and agents.
  for (int i = 0; i < kvstore_->num_nodes(); ++i) {
    if (kvstore_->server_ranks()[static_cast<size_t>(i)] == rank) {
      kvstore_->node(i).ResetAndRestart();
    }
  }
  RestartAgentsForRank(rank);
  if (!active_case_.has_value()) {
    return;  // The case resolved without this machine (bookkeeping only).
  }
  active_case_->replaced.push_back(rank);
  --active_case_->pending_replacements;
  MaybeAnalyzeHardwareCase();
}

void GeminiSystem::MaybeAnalyzeHardwareCase() {
  if (!active_case_.has_value() || active_case_->type != FailureType::kHardware ||
      active_case_->pending_replacements > 0) {
    return;
  }
  // All machines replaced. Serialization may still be running.
  const uint64_t epoch = recovery_epoch_;
  const TimeNs wait = std::max<TimeNs>(0, active_case_->serialize_done_at - sim_.now());
  sim_.ScheduleAfter(wait, [this, epoch] {
    if (epoch != recovery_epoch_ || !recovering_ || !active_case_.has_value()) {
      return;
    }
    // Case analysis: can every rank's checkpoint be served from CPU memory
    // of machines that survived? The policy turns the answer into its
    // fallback chain (Section 6.2's case 1 / case 2 for GEMINI).
    RecoveryRecord record = MakeCaseRecord();
    const std::vector<int> replaced = active_case_->replaced;
    std::vector<bool> failed(static_cast<size_t>(config_.num_machines), false);
    for (const int rank : replaced) {
      failed[static_cast<size_t>(rank)] = true;
    }
    RecoverySituation situation;
    situation.type = FailureType::kHardware;
    situation.replaced_ranks = replaced;
    situation.peer_recoverable = placement_.Recoverable(failed);
    situation.iteration_at_failure = active_case_->iteration_at_failure;
    if (!situation.peer_recoverable && policy_->uses_cpu_checkpoints()) {
      GEMINI_LOG(kWarning) << "recovery: an entire placement group was lost; falling back to "
                              "persistent storage";
    }
    ExecuteRecoverySteps(std::move(record), policy_->BuildRecoveryPlan(*this, situation),
                         /*step_index=*/0, replaced);
  });
}

RecoveryRecord GeminiSystem::MakeCaseRecord() const {
  const ActiveRecoveryCase& recovery_case = *active_case_;
  RecoveryRecord record;
  record.type = recovery_case.type;
  record.failed_ranks.assign(recovery_case.ranks.begin(), recovery_case.ranks.end());
  record.failure_detected_at = recovery_case.first_detected_at;
  record.iteration_at_failure = recovery_case.iteration_at_failure;
  return record;
}

RetryPolicy GeminiSystem::RetrievalRetryPolicy() const {
  return RetryPolicy{config_.retrieval_max_attempts, config_.retrieval_backoff_base,
                     config_.retrieval_backoff_cap};
}

// Shared state of one peer-retrieval pass (one fetch task per replaced rank).
struct GeminiSystem::PeerRetrievalContext {
  RecoveryRecord record;
  // The policy's chain and our position in it, so retry exhaustion falls
  // through to the correct next stage.
  RecoveryPlan plan;
  size_t step_index = 0;
  std::vector<int> replaced_ranks;
  TimeNs started = 0;
  std::vector<Checkpoint> fetched;
  int pending = 0;
  // Set when the pass fell through to the next stage; late transfer
  // completions become no-ops.
  bool aborted = false;
};

void GeminiSystem::RetrieveFromPeersAndResume(RecoveryRecord record, RecoveryPlan plan,
                                              size_t step_index,
                                              std::vector<int> replaced_ranks) {
  const uint64_t epoch = recovery_epoch_;
  record.source = RecoverySource::kRemoteCpuMemory;
  auto ctx = std::make_shared<PeerRetrievalContext>();
  ctx->record = std::move(record);
  ctx->plan = std::move(plan);
  ctx->step_index = step_index;
  ctx->replaced_ranks = std::move(replaced_ranks);
  ctx->started = sim_.now();
  ctx->pending = static_cast<int>(ctx->replaced_ranks.size());
  injector_->Fire(kTriggerRetrievalStart);
  if (ctx->replaced_ranks.empty()) {
    FinishPeerRetrieval(ctx, epoch);
    return;
  }
  for (const int rank : ctx->replaced_ranks) {
    // Go through the scheduler so trigger-armed events with zero delay (from
    // the Fire above) land before the first read.
    sim_.ScheduleAfter(0, [this, ctx, rank, epoch] { TryFetchReplica(ctx, rank, 0, epoch); });
  }
}

void GeminiSystem::TryFetchReplica(std::shared_ptr<PeerRetrievalContext> ctx, int rank,
                                   int attempt, uint64_t epoch) {
  if (epoch != recovery_epoch_ || ctx->aborted) {
    return;
  }
  if (RetrievalRetryPolicy().Exhausted(attempt)) {
    GEMINI_LOG(kWarning) << "recovery: rank " << rank << " exhausted " << attempt
                         << " retrieval attempts; falling back to persistent storage";
    ctx->aborted = true;
    ExecuteRecoverySteps(ctx->record, ctx->plan, ctx->step_index + 1, ctx->replaced_ranks);
    return;
  }
  // Re-derive the holder set every attempt: the alive set may have changed
  // since the case analysis. Replaced ranks count as holding nothing (their
  // fresh DRAM is only filled when this pass finishes).
  std::vector<bool> holder_alive(static_cast<size_t>(config_.num_machines), false);
  for (int r = 0; r < config_.num_machines; ++r) {
    holder_alive[static_cast<size_t>(r)] = cluster_->machine(r).alive();
  }
  for (const int r : ctx->replaced_ranks) {
    holder_alive[static_cast<size_t>(r)] = false;
  }
  const std::vector<int> holders = placement_.AliveRemoteHolders(rank, holder_alive);
  if (holders.empty()) {
    ctx->aborted = true;
    ExecuteRecoverySteps(ctx->record, ctx->plan, ctx->step_index + 1, ctx->replaced_ranks);
    return;
  }
  // Cycle through the holders: m-1 distinct sources first, then another
  // round for transient (flaky-link) errors.
  const int holder = holders[static_cast<size_t>(attempt) % holders.size()];
  std::optional<Checkpoint> replica =
      cpu_stores_[static_cast<size_t>(holder)]->LatestVerified(rank);
  if (!replica.has_value()) {
    RetryFetchReplica(ctx, rank, attempt, epoch,
                      DataLossError("holder " + std::to_string(holder) +
                                    " has no CRC-verified replica"));
    return;
  }
  Fabric::TransferOptions options;  // Full line rate for retrieval.
  cluster_->fabric().Transfer(
      holder, rank, replica->logical_bytes, options,
      [this, ctx, rank, attempt, epoch, replica = std::move(*replica)](Status status) mutable {
        if (epoch != recovery_epoch_ || ctx->aborted) {
          return;
        }
        if (!status.ok()) {
          RetryFetchReplica(ctx, rank, attempt, epoch, status);
          return;
        }
        if (!replica.IntegrityOk()) {
          RetryFetchReplica(ctx, rank, attempt, epoch,
                            DataLossError("fetched replica failed its CRC check"));
          return;
        }
        ctx->fetched.push_back(std::move(replica));
        if (--ctx->pending == 0) {
          FinishPeerRetrieval(ctx, epoch);
        }
      });
}

void GeminiSystem::RetryFetchReplica(std::shared_ptr<PeerRetrievalContext> ctx, int rank,
                                     int attempt, uint64_t epoch, const Status& why) {
  metrics_.counter("replicator.retries").Increment();
  tracer_.Event("retrieval_retry", "recovery",
                {TraceAttr::Int("rank", rank), TraceAttr::Int("attempt", attempt + 1)});
  GEMINI_LOG(kWarning) << "recovery: retrieval attempt " << attempt + 1 << " for rank " << rank
                       << " failed (" << why << "); retrying";
  sim_.ScheduleAfter(RetrievalRetryPolicy().BackoffBefore(attempt + 1),
                     [this, ctx, rank, attempt, epoch] {
                       TryFetchReplica(ctx, rank, attempt + 1, epoch);
                     });
}

void GeminiSystem::FinishPeerRetrieval(std::shared_ptr<PeerRetrievalContext> ctx,
                                       uint64_t epoch) {
  if (epoch != recovery_epoch_ || ctx->aborted) {
    return;
  }
  RecoveryRecord record = ctx->record;
  // Install fetched replicas, then restore everyone: survivors from local
  // CPU memory, replacements from the fetched copies (Figure 6c).
  std::vector<Checkpoint> checkpoints;
  std::vector<bool> have(static_cast<size_t>(config_.num_machines), false);
  for (Checkpoint& checkpoint : ctx->fetched) {
    (void)cpu_stores_[static_cast<size_t>(checkpoint.owner_rank)]->WriteComplete(checkpoint);
    have[static_cast<size_t>(checkpoint.owner_rank)] = true;
    checkpoints.push_back(std::move(checkpoint));
  }
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    if (have[static_cast<size_t>(rank)]) {
      continue;
    }
    const std::optional<Checkpoint> local =
        cpu_stores_[static_cast<size_t>(rank)]->LatestVerified(rank);
    if (!local.has_value()) {
      ctx->aborted = true;
      ExecuteRecoverySteps(record, ctx->plan, ctx->step_index + 1, ctx->replaced_ranks);
      return;
    }
    checkpoints.push_back(*local);
  }
  const Status status = trainer_->RestoreAll(checkpoints);
  if (!status.ok()) {
    GEMINI_LOG(kError) << "peer recovery failed to restore: " << status;
    ctx->aborted = true;
    ExecuteRecoverySteps(record, ctx->plan, ctx->step_index + 1, ctx->replaced_ranks);
    return;
  }
  record.rollback_iteration = trainer_->iteration();
  record.wasted_time =
      (record.iteration_at_failure - record.rollback_iteration) * execution_.iteration_time +
      (sim_.now() - ctx->started);
  tracer_.Span("retrieval", "recovery", ctx->started, sim_.now(),
               {TraceAttr::Text("source", std::string(RecoverySourceName(record.source)))});
  sim_.ScheduleAfter(config_.restart_warmup, [this, record, epoch]() mutable {
    if (epoch != recovery_epoch_ || !recovering_) {
      return;
    }
    ResumeTraining(record);
  });
}

void GeminiSystem::RetrieveFromPersistentAndResume(RecoveryRecord record,
                                                   std::vector<int> replaced_ranks) {
  (void)replaced_ranks;
  const uint64_t epoch = recovery_epoch_;
  record.source = RecoverySource::kPersistentStorage;
  const TimeNs retrieval_started = sim_.now();
  const int64_t iteration = persistent_->LatestCompleteIteration();
  if (iteration < 0) {
    GEMINI_LOG(kError) << "recovery: no persistent checkpoint exists; training cannot resume";
    FinishRun();
    return;
  }
  auto checkpoints = std::make_shared<std::vector<Checkpoint>>();
  auto pending = std::make_shared<int>(config_.num_machines);
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    persistent_->Retrieve(
        rank, iteration,
        [this, record, retrieval_started, checkpoints, pending,
         epoch](StatusOr<Checkpoint> result) mutable {
          if (epoch != recovery_epoch_ || !recovering_) {
            return;  // A mid-retrieval failure restarted the case analysis.
          }
          if (!result.ok()) {
            GEMINI_LOG(kError) << "persistent retrieval failed: " << result.status();
            FinishRun();
            return;
          }
          checkpoints->push_back(std::move(result).value());
          if (--*pending > 0) {
            return;
          }
          const Status status = trainer_->RestoreAll(*checkpoints);
          if (!status.ok()) {
            GEMINI_LOG(kError) << "persistent recovery failed to restore: " << status;
            FinishRun();
            return;
          }
          // Refill the CPU tier so subsequent failures recover fast again.
          for (const Checkpoint& checkpoint : *checkpoints) {
            for (const int holder :
                 placement_.replica_sets[static_cast<size_t>(checkpoint.owner_rank)]) {
              if (cluster_->machine(holder).alive()) {
                (void)cpu_stores_[static_cast<size_t>(holder)]->WriteComplete(checkpoint);
              }
            }
          }
          record.rollback_iteration = trainer_->iteration();
          record.wasted_time = (record.iteration_at_failure - record.rollback_iteration) *
                                   execution_.iteration_time +
                               (sim_.now() - retrieval_started);
          tracer_.Span("retrieval", "recovery", retrieval_started, sim_.now(),
                       {TraceAttr::Text("source", std::string(RecoverySourceName(record.source)))});
          sim_.ScheduleAfter(config_.restart_warmup, [this, record, epoch]() mutable {
            if (epoch != recovery_epoch_ || !recovering_) {
              return;
            }
            ResumeTraining(record);
          });
        });
  }
}

void GeminiSystem::ReplayLoggedGradientsAndResume(RecoveryRecord record, RecoveryStep step) {
  const uint64_t epoch = recovery_epoch_;
  record.source = RecoverySource::kGradientReplay;
  const TimeNs retrieval_started = sim_.now();
  const int64_t base = persistent_->LatestCompleteIteration();
  if (base < 0) {
    GEMINI_LOG(kError) << "recovery: no persistent base for gradient replay; "
                          "training cannot resume";
    FinishRun();
    return;
  }
  // Fetch the persistent base, then replay the logged gradient stream forward
  // to the failure iteration: the deterministic update reproduces the
  // pre-failure states bit-exactly, so no progress is lost — only the replay
  // stall (a fraction of an iteration per replayed iteration) is paid.
  auto checkpoints = std::make_shared<std::vector<Checkpoint>>();
  auto pending = std::make_shared<int>(config_.num_machines);
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    persistent_->Retrieve(
        rank, base,
        [this, record, step, retrieval_started, checkpoints, pending,
         epoch](StatusOr<Checkpoint> result) mutable {
          if (epoch != recovery_epoch_ || !recovering_) {
            return;
          }
          if (!result.ok()) {
            GEMINI_LOG(kError) << "persistent retrieval failed: " << result.status();
            FinishRun();
            return;
          }
          checkpoints->push_back(std::move(result).value());
          if (--*pending > 0) {
            return;
          }
          const Status status = trainer_->RestoreAll(*checkpoints);
          if (!status.ok()) {
            GEMINI_LOG(kError) << "gradient-replay recovery failed to restore: " << status;
            FinishRun();
            return;
          }
          const int64_t base_iteration = trainer_->iteration();
          const int64_t target = record.iteration_at_failure;
          const Status replayed = trainer_->ReplayTo(target);
          if (!replayed.ok()) {
            GEMINI_LOG(kError) << "gradient replay failed: " << replayed;
            FinishRun();
            return;
          }
          const TimeNs replay_stall = static_cast<TimeNs>(
              static_cast<double>(target - base_iteration) * step.replay_cost_fraction *
              static_cast<double>(current_iteration_duration_));
          record.rollback_iteration = trainer_->iteration();  // == target: zero rollback.
          record.wasted_time = (sim_.now() - retrieval_started) + replay_stall;
          tracer_.Span("gradient_replay", "recovery", retrieval_started,
                       sim_.now() + replay_stall,
                       {TraceAttr::Int("base_iteration", base_iteration),
                        TraceAttr::Int("replayed_iterations", target - base_iteration)});
          sim_.ScheduleAfter(replay_stall + config_.restart_warmup,
                             [this, record, epoch]() mutable {
                               if (epoch != recovery_epoch_ || !recovering_) {
                                 return;
                               }
                               ResumeTraining(record);
                             });
        });
  }
}

void GeminiSystem::RecomputeFromPeersAndResume(RecoveryRecord record, RecoveryStep step) {
  const uint64_t epoch = recovery_epoch_;
  record.source = RecoverySource::kPeerRecompute;
  const TimeNs started = sim_.now();
  // No checkpoint fetch at all: surviving peers hold enough redundancy to
  // rebuild the lost shard in place at a fixed iterations-worth of recompute.
  const TimeNs recompute_stall = static_cast<TimeNs>(
      step.recompute_iterations * static_cast<double>(current_iteration_duration_));
  record.rollback_iteration = trainer_->iteration();  // State never left GPUs.
  record.wasted_time = recompute_stall;
  tracer_.Span("peer_recompute", "recovery", started, started + recompute_stall,
               {TraceAttr::Real("recompute_iterations", step.recompute_iterations)});
  sim_.ScheduleAfter(recompute_stall + config_.restart_warmup, [this, record, epoch]() mutable {
    if (epoch != recovery_epoch_ || !recovering_) {
      return;
    }
    ResumeTraining(record);
  });
}

void GeminiSystem::ResumeTraining(RecoveryRecord record) {
  record.training_resumed_at = sim_.now();
  record.downtime = record.training_resumed_at - record.failure_detected_at;
  if (record.wasted_time == 0) {
    record.wasted_time = (record.iteration_at_failure - record.rollback_iteration) *
                         execution_.iteration_time;
  }
  // Expand the merged case into one RecoveryRecord per absorbed FailureReport:
  // a cascade of k overlapping failures yields k records (none dropped), each
  // with its own type/ranks/detection time but the shared resolution.
  std::vector<RecoveryRecord> records;
  if (active_case_.has_value() && !active_case_->reports.empty()) {
    for (const FailureReport& report : active_case_->reports) {
      RecoveryRecord per = record;
      per.type = report.type;
      per.failed_ranks = report.ranks;
      per.failure_detected_at = report.detected_at;
      per.downtime = per.training_resumed_at - report.detected_at;
      records.push_back(std::move(per));
    }
  } else {
    records.push_back(record);
  }
  // Clear the process-down marks: every surviving machine in the case is
  // running its restarted process again (moved here from the software path so
  // software->persistent fallbacks also reset health).
  std::vector<int> case_ranks = record.failed_ranks;
  if (active_case_.has_value()) {
    case_ranks.assign(active_case_->ranks.begin(), active_case_->ranks.end());
  }
  for (const int rank : case_ranks) {
    Machine& machine = cluster_->machine(rank);
    if (machine.alive() && !machine.process_running()) {
      machine.set_health(MachineHealth::kHealthy);
      workers_[static_cast<size_t>(rank)]->ReportHealthy();
    }
  }
  const std::vector<int> replaced =
      active_case_.has_value() ? active_case_->replaced : std::vector<int>{};
  const TimeNs degraded_since =
      active_case_.has_value() ? active_case_->first_detected_at : record.failure_detected_at;
  for (const RecoveryRecord& emitted : records) {
    GEMINI_LOG(kInfo) << "recovery: resumed training at iteration "
                      << emitted.rollback_iteration << " from "
                      << RecoverySourceName(emitted.source) << " (downtime "
                      << FormatDuration(emitted.downtime) << ", wasted "
                      << FormatDuration(emitted.wasted_time) << ")";
    metrics_.counter("system.recoveries").Increment();
    switch (emitted.source) {
      case RecoverySource::kLocalCpuMemory:
        metrics_.counter("system.recoveries.local_cpu").Increment();
        break;
      case RecoverySource::kRemoteCpuMemory:
        metrics_.counter("system.recoveries.remote_cpu").Increment();
        break;
      case RecoverySource::kPersistentStorage:
        metrics_.counter("system.recoveries.persistent").Increment();
        break;
      case RecoverySource::kGradientReplay:
        metrics_.counter("system.recoveries.replay").Increment();
        break;
      case RecoverySource::kPeerRecompute:
        metrics_.counter("system.recoveries.recompute").Increment();
        break;
    }
    metrics_.histogram("system.recovery.downtime_seconds")
        .Observe(static_cast<double>(emitted.downtime) / 1e9);
    metrics_.histogram("system.recovery.wasted_seconds")
        .Observe(static_cast<double>(emitted.wasted_time) / 1e9);
    // The recovery span covers detection -> resume by construction, so its
    // duration equals the record's downtime; the attrs carry the rest.
    tracer_.Span("recovery", "recovery", emitted.failure_detected_at,
                 emitted.training_resumed_at,
                 {TraceAttr::Text("type", std::string(FailureTypeName(emitted.type))),
                  TraceAttr::Text("source", std::string(RecoverySourceName(emitted.source))),
                  TraceAttr::Int("rollback_iteration", emitted.rollback_iteration),
                  TraceAttr::Int("wasted_time_ns", emitted.wasted_time),
                  TraceAttr::Int("downtime_ns", emitted.downtime)});
    report_.recoveries.push_back(emitted);
  }
  tracer_.Event("training_resumed", "recovery",
                {TraceAttr::Int("iteration", record.rollback_iteration)});
  if (config_.flight_recorder_capacity > 0) {
    flight_recorder_.Dump("recovery_complete", sim_.now(), &metrics_);
  }
  recovering_ = false;
  active_case_.reset();
  if (config_.incremental.enabled) {
    // Recovery rewired store contents (restores, refills, rollbacks); no
    // sealed base can be trusted, so the next block writes full snapshots.
    ResetIncrementalBases();
  }
  if (root_agent_ != nullptr) {
    root_agent_->ClearHandled(case_ranks);
    root_agent_->SetPaused(false);
  }
  if (!replaced.empty() && policy_->uses_cpu_checkpoints()) {
    QueueReprotection(replaced, degraded_since);
  }
  MaybeStartReprotection();
  StartNextIteration();
}

void GeminiSystem::QueueReprotection(const std::vector<int>& targets, TimeNs degraded_since) {
  degraded_since_ =
      reprotect_targets_.empty() ? degraded_since : std::min(degraded_since_, degraded_since);
  reprotect_targets_.insert(targets.begin(), targets.end());
}

void GeminiSystem::MaybeStartReprotection() {
  if (reprotection_inflight_ || reprotect_targets_.empty() || !running_ || recovering_) {
    return;
  }
  reprotection_inflight_ = true;
  const std::vector<int> targets(reprotect_targets_.begin(), reprotect_targets_.end());
  const TimeNs started = sim_.now();
  const TimeNs since = degraded_since_;
  injector_->Fire(kTriggerReprotectionStart);
  ReplicatorConfig replicator_config;
  replicator_config.num_buffers = config_.num_buffers;
  replicator_config.metrics = &metrics_;
  replicator_config.auditor = &auditor_;
  replicator_config.pipeline_threads = config_.pipeline_threads;
  replicator_config.workers = datapath_pool_.get();
  std::vector<CpuCheckpointStore*> stores;
  stores.reserve(cpu_stores_.size());
  for (const auto& store : cpu_stores_) {
    stores.push_back(store.get());
  }
  // Chunks sized by the Algorithm-2 partition: the background traffic uses
  // the same bursts the idle-span schedule was planned around, so it cannot
  // stretch the steady-state iteration time.
  ReprotectReplicas(
      *cluster_, placement_, std::move(stores), targets, execution_.partition.max_chunk_bytes,
      replicator_config, [this, targets, started, since](ReplicationOutcome outcome) {
        reprotection_inflight_ = false;
        if (!outcome.status.ok()) {
          GEMINI_LOG(kWarning) << "re-protection pass failed: " << outcome.status;
          if (running_ && ++reprotection_attempts_ < config_.reprotection_max_attempts) {
            sim_.ScheduleAfter(config_.reprotection_retry_delay,
                               [this] { MaybeStartReprotection(); });
          }
          return;
        }
        reprotection_attempts_ = 0;
        for (const int rank : targets) {
          reprotect_targets_.erase(rank);
        }
        metrics_.counter("system.reprotections").Increment();
        metrics_.gauge("system.redundancy.degraded_seconds")
            .Add(static_cast<double>(sim_.now() - since) / 1e9);
        tracer_.Span("reprotection", "recovery", started, sim_.now(),
                     {TraceAttr::Int("targets", static_cast<int64_t>(targets.size()))});
        GEMINI_LOG(kInfo) << "re-protection: full replica sets restored for "
                          << targets.size() << " replaced machine(s) after "
                          << FormatDuration(sim_.now() - since) << " degraded";
        MaybeStartReprotection();
      });
}

void GeminiSystem::RestartAgentsForRank(int rank) {
  workers_[static_cast<size_t>(rank)]->Stop();
  auto worker = std::make_unique<WorkerAgent>(sim_, *cluster_, *kvstore_, rank, config_.agent);
  worker->set_on_promoted_to_root([this, rank] { OnWorkerPromotedToRoot(rank); });
  worker->set_metrics(&metrics_);
  worker->set_tracer(&tracer_);
  worker->Start();
  workers_[static_cast<size_t>(rank)] = std::move(worker);
}

void GeminiSystem::OnWorkerPromotedToRoot(int rank) {
  if (root_agent_ != nullptr && root_rank_ == rank) {
    return;  // Already the root.
  }
  GEMINI_LOG(kInfo) << "root agent now running on rank " << rank;
  metrics_.counter("system.root_promotions").Increment();
  tracer_.Event("root_promoted", "recovery", {TraceAttr::Int("rank", rank)});
  root_rank_ = rank;
  if (root_agent_ != nullptr) {
    root_agent_->Stop();
  }
  root_agent_ = std::make_unique<RootAgent>(
      sim_, *cluster_, *kvstore_, rank, config_.agent,
      [this](const FailureReport& report) { OnFailureDetected(report); });
  root_agent_->set_metrics(&metrics_);
  root_agent_->Start();
}

SystemSnapshot GeminiSystem::Snapshot() const {
  SystemSnapshot snapshot;
  snapshot.placement_strategy = std::string(PlacementStrategyName(placement_.strategy));
  snapshot.num_machines = config_.num_machines;
  snapshot.num_replicas = config_.num_replicas;
  snapshot.num_placement_groups = static_cast<int>(placement_.groups.size());
  snapshot.iteration_time = execution_.iteration_time;
  snapshot.baseline_iteration_time = execution_.baseline_iteration_time;
  snapshot.checkpoint_overhead_fraction = execution_.overhead_fraction;
  snapshot.checkpoint_fits_iteration = execution_.checkpoint_within_iteration;
  snapshot.checkpoint_interval_iterations = checkpoint_interval_iterations_;
  snapshot.profiled_iterations = profile_.iterations_profiled;
  snapshot.profile_max_normalized_stddev = profile_.max_normalized_stddev;
  snapshot.profile_mean_iteration_time = profile_.mean_iteration_time;
  snapshot.iterations_completed = trainer_ != nullptr ? trainer_->iteration() : 0;
  snapshot.cpu_checkpoints_committed = report_.cpu_checkpoints_committed;
  snapshot.persistent_checkpoints_committed = report_.persistent_checkpoints_committed;
  snapshot.recoveries = static_cast<int64_t>(report_.recoveries.size());
  for (const RecoveryRecord& record : report_.recoveries) {
    switch (record.source) {
      case RecoverySource::kLocalCpuMemory:
        ++snapshot.recoveries_from_local_cpu;
        break;
      case RecoverySource::kRemoteCpuMemory:
        ++snapshot.recoveries_from_remote_cpu;
        break;
      case RecoverySource::kPersistentStorage:
        ++snapshot.recoveries_from_persistent;
        break;
      case RecoverySource::kGradientReplay:
        ++snapshot.recoveries_from_replay;
        break;
      case RecoverySource::kPeerRecompute:
        ++snapshot.recoveries_from_recompute;
        break;
    }
  }
  snapshot.root_rank = root_rank_;
  snapshot.audits = auditor_.audits();
  snapshot.interference_events = auditor_.total_interference_events();
  snapshot.interference_inflation = auditor_.total_inflation();
  for (const double ewma : auditor_.drift_ewma()) {
    snapshot.max_abs_drift_ewma = std::max(snapshot.max_abs_drift_ewma, std::fabs(ewma));
  }
  snapshot.reprofiles = auditor_.reprofiles();
  snapshot.flight_dumps = flight_recorder_.dump_count();
  snapshot.tracer_dropped_records = tracer_.dropped_records();
  snapshot.delta_commits = metrics_.counter_value("cpu_store.delta_commits");
  snapshot.delta_bytes_saved = metrics_.counter_value("delta.bytes_saved");
  snapshot.compaction_folds = metrics_.counter_value("compaction.folds");
  return snapshot;
}

}  // namespace gemini
