#include "src/gemini/gemini_system.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace gemini {

std::string_view RecoverySourceName(RecoverySource source) {
  switch (source) {
    case RecoverySource::kLocalCpuMemory:
      return "local_cpu_memory";
    case RecoverySource::kRemoteCpuMemory:
      return "remote_cpu_memory";
    case RecoverySource::kPersistentStorage:
      return "persistent_storage";
  }
  return "unknown";
}

GeminiSystem::GeminiSystem(GeminiConfig config) : config_(std::move(config)) {
  if (config_.instance.name.empty()) {
    config_.instance = P4d24xlarge();
  }
}

GeminiSystem::~GeminiSystem() = default;

Status GeminiSystem::Initialize() {
  if (initialized_) {
    return FailedPreconditionError("GeminiSystem already initialized");
  }
  if (config_.num_machines < 1) {
    return InvalidArgumentError("need at least one machine");
  }
  if (config_.num_replicas < 1 || config_.num_replicas > config_.num_machines) {
    return InvalidArgumentError("replica count must be in [1, num_machines]");
  }

  // ---- Cluster and fabric.
  FabricConfig fabric_config;
  fabric_config.link_bandwidth = config_.instance.network_bandwidth;
  cluster_ = std::make_unique<Cluster>(sim_, config_.num_machines, config_.instance,
                                       fabric_config);

  // ---- Placement (Algorithm 1) and CPU checkpoint stores.
  GEMINI_ASSIGN_OR_RETURN(placement_,
                          BuildMixedPlacement(config_.num_machines, config_.num_replicas));
  const Bytes replica_bytes = config_.model.CheckpointBytesPerMachine(config_.num_machines);
  cpu_stores_.clear();
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    cpu_stores_.push_back(std::make_unique<CpuCheckpointStore>(cluster_->machine(rank)));
    cpu_stores_.back()->set_metrics(&metrics_);
  }
  for (int owner = 0; owner < config_.num_machines; ++owner) {
    for (const int holder : placement_.replica_sets[static_cast<size_t>(owner)]) {
      GEMINI_RETURN_IF_ERROR(
          cpu_stores_[static_cast<size_t>(holder)]->HostOwner(owner, replica_bytes));
    }
  }

  // ---- Trainer and persistent tier (seeded with the initial checkpoint).
  trainer_ = std::make_unique<ShardedTrainer>(config_.model, config_.num_machines,
                                              config_.payload_elements, config_.seed);
  trainer_->set_metrics(&metrics_);
  persistent_ = std::make_unique<PersistentStore>(sim_, config_.persistent);
  persistent_->set_metrics(&metrics_);
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    persistent_->SeedImmediate(trainer_->MakeCheckpoint(rank), config_.num_machines);
  }

  // ---- Distributed KV store on the first few machines.
  std::vector<int> kv_ranks;
  for (int rank = 0; rank < std::min(config_.kv_server_count, config_.num_machines); ++rank) {
    kv_ranks.push_back(rank);
  }
  kvstore_ = std::make_unique<KvStoreCluster>(
      sim_, cluster_->fabric(), kv_ranks,
      [this](int rank) { return cluster_->machine(rank).alive(); }, config_.kvstore,
      config_.seed ^ 0x6b76ULL);
  kvstore_->set_observability(&metrics_, &tracer_);
  kvstore_->Start();

  // ---- Agents: every machine runs a worker agent; the first one to win the
  // root election becomes the root agent (the same path used at failover).
  workers_.clear();
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    auto worker =
        std::make_unique<WorkerAgent>(sim_, *cluster_, *kvstore_, rank, config_.agent);
    worker->set_on_promoted_to_root([this, rank] { OnWorkerPromotedToRoot(rank); });
    worker->set_metrics(&metrics_);
    worker->Start();
    workers_.push_back(std::move(worker));
  }

  // ---- Cloud operator and failure injection.
  cloud_ = std::make_unique<CloudOperator>(sim_, *cluster_, config_.cloud,
                                           config_.seed ^ 0x636cULL);
  cloud_->set_metrics(&metrics_);
  injector_ = std::make_unique<FailureInjector>(sim_, *cluster_, config_.seed ^ 0x666cULL);
  injector_->set_metrics(&metrics_);
  injector_->set_observer([this](const FailureEvent& event) {
    // Synchronous training hangs the moment any participant fails: the
    // in-flight iteration (and its in-flight checkpoint) never completes.
    if (running_ && !recovering_) {
      if (iteration_end_event_.valid()) {
        sim_.Cancel(iteration_end_event_);
        iteration_end_event_ = EventId{};
      }
      if (checkpoint_commit_event_.valid()) {
        sim_.Cancel(checkpoint_commit_event_);
        checkpoint_commit_event_ = EventId{};
      }
    }
    if (event.type == FailureType::kSoftware) {
      for (const int rank : event.ranks) {
        workers_[static_cast<size_t>(rank)]->ReportProcessDown();
      }
    }
  });

  // ---- Profile the timeline and plan checkpoint traffic (Sections 5.3/5.4).
  TimelineParams timeline_params;
  timeline_params.model = config_.model;
  timeline_params.instance = config_.instance;
  timeline_params.num_machines = config_.num_machines;
  timeline_ = BuildZero3Timeline(timeline_params);
  ProfilerConfig profiler_config;
  profiler_config.iterations = config_.profile_iterations;
  Rng profile_rng(config_.seed ^ 0x70726fULL);
  profile_ = ProfileIdleSpans(timeline_, profiler_config, profile_rng);

  ExecutorParams executor_params;
  executor_params.timeline = timeline_params;
  executor_params.scheme = InterleaveScheme::kPipelined;
  executor_params.num_replicas = config_.num_replicas;
  executor_params.reserved_buffer_per_gpu = config_.reserved_buffer_per_gpu;
  executor_params.num_buffers = config_.num_buffers;
  executor_params.gamma = config_.gamma;
  executor_params.profiled_spans = profile_.spans;
  const FrequencyDecision frequency = ChooseCheckpointFrequency(executor_params);
  execution_ = frequency.execution;
  checkpoint_interval_iterations_ = frequency.interval_iterations;
  GEMINI_RETURN_IF_ERROR(execution_.status);
  if (checkpoint_interval_iterations_ > 1) {
    GEMINI_LOG(kInfo) << "checkpoint traffic exceeds one iteration's idle time; "
                      << "checkpointing every " << checkpoint_interval_iterations_
                      << " iterations (Section 5.3 amortization)";
  }

  // Reserve the checkpoint communication buffer on every GPU.
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    GEMINI_RETURN_IF_ERROR(
        cluster_->machine(rank).AllocateOnAllGpus(config_.reserved_buffer_per_gpu));
  }

  report_ = TrainingReport{};
  report_.iteration_time = execution_.iteration_time;
  initialized_ = true;
  return Status::Ok();
}

StatusOr<TrainingReport> GeminiSystem::TrainUntil(int64_t target_iterations,
                                                  TimeNs sim_deadline) {
  if (!initialized_) {
    return FailedPreconditionError("Initialize() first");
  }
  if (running_) {
    return FailedPreconditionError("training already running");
  }
  target_iterations_ = target_iterations;
  running_ = true;
  run_started_at_ = sim_.now();
  last_persistent_checkpoint_at_ = sim_.now();
  StartNextIteration();
  while (running_) {
    if (sim_deadline > 0 && sim_.now() >= sim_deadline) {
      GEMINI_LOG(kWarning) << "training stopped at the simulated-time deadline";
      FinishRun();
      break;
    }
    if (!sim_.Step()) {
      return InternalError("simulation deadlocked: event queue drained while training");
    }
  }
  report_.wall_time = sim_.now() - run_started_at_;
  report_.iterations_completed = trainer_->iteration();
  return report_;
}

void GeminiSystem::FinishRun() {
  running_ = false;
  if (iteration_end_event_.valid()) {
    sim_.Cancel(iteration_end_event_);
    iteration_end_event_ = EventId{};
  }
  if (checkpoint_commit_event_.valid()) {
    sim_.Cancel(checkpoint_commit_event_);
    checkpoint_commit_event_ = EventId{};
  }
}

void GeminiSystem::StartNextIteration() {
  if (!running_ || recovering_) {
    return;
  }
  if (trainer_->iteration() >= target_iterations_) {
    FinishRun();
    return;
  }
  // Checkpoint block structure: the snapshot is captured (staged) at the
  // start of a k-iteration block and its traffic spreads across the block's
  // idle spans, committing during the block's last iteration. k == 1 is the
  // paper's common case: stage and commit within the same iteration.
  const int64_t iteration = trainer_->iteration();
  const int interval = checkpoint_interval_iterations_;
  iteration_started_at_ = sim_.now();
  if (iteration % interval == 0) {
    staged_snapshots_.clear();
    for (int owner = 0; owner < config_.num_machines; ++owner) {
      if (cluster_->machine(owner).alive()) {
        staged_snapshots_.push_back(trainer_->MakeCheckpoint(owner));
      }
    }
    staged_iteration_ = iteration;
    staged_at_ = sim_.now();
  }
  if (config_.num_replicas >= 1 && iteration % interval == interval - 1 &&
      staged_iteration_ >= 0) {
    const int64_t snapshot_iteration = staged_iteration_;
    checkpoint_commit_event_ =
        sim_.ScheduleAfter(std::min(execution_.checkpoint_done, execution_.iteration_time),
                           [this, snapshot_iteration] {
                             checkpoint_commit_event_ = EventId{};
                             OnCheckpointCommit(snapshot_iteration);
                           });
  }
  iteration_end_event_ = sim_.ScheduleAfter(execution_.iteration_time, [this] {
    iteration_end_event_ = EventId{};
    OnIterationComplete();
  });
}

void GeminiSystem::OnCheckpointCommit(int64_t snapshot_iteration) {
  // Real data plane: the block's staged snapshots land in all holders'
  // double-buffered CPU stores (the transfer timing was already paid by the
  // interleaved schedule that led to this commit instant).
  if (staged_iteration_ != snapshot_iteration) {
    GEMINI_LOG(kWarning) << "stale checkpoint commit dropped (staged " << staged_iteration_
                         << ", committing " << snapshot_iteration << ")";
    return;
  }
  for (const Checkpoint& snapshot : staged_snapshots_) {
    if (!cluster_->machine(snapshot.owner_rank).alive()) {
      continue;
    }
    for (const int holder :
         placement_.replica_sets[static_cast<size_t>(snapshot.owner_rank)]) {
      if (!cluster_->machine(holder).alive()) {
        continue;
      }
      const Status status = cpu_stores_[static_cast<size_t>(holder)]->WriteComplete(snapshot);
      if (!status.ok()) {
        GEMINI_LOG(kWarning) << "checkpoint commit failed on rank " << holder << ": " << status;
        return;
      }
    }
  }
  ++report_.cpu_checkpoints_committed;
  metrics_.counter("system.cpu_checkpoint_commits").Increment();
  tracer_.Span("checkpoint_block", "checkpoint", staged_at_, sim_.now(),
               {TraceAttr::Int("iteration", snapshot_iteration)});
  tracer_.Event("checkpoint_commit", "checkpoint",
                {TraceAttr::Int("iteration", snapshot_iteration)});
}

void GeminiSystem::OnIterationComplete() {
  tracer_.Span("iteration", "training", iteration_started_at_, sim_.now(),
               {TraceAttr::Int("iteration", trainer_->iteration())});
  trainer_->Step();
  MaybePersistentCheckpoint();
}

void GeminiSystem::MaybePersistentCheckpoint() {
  if (sim_.now() - last_persistent_checkpoint_at_ < config_.persistent_checkpoint_interval) {
    StartNextIteration();
    return;
  }
  last_persistent_checkpoint_at_ = sim_.now();
  // Serialization blocks training (torch.save); the upload itself is
  // asynchronous through the store's shared bandwidth.
  const Bytes replica_bytes = config_.model.CheckpointBytesPerMachine(config_.num_machines);
  const TimeNs serialize = TransferTime(replica_bytes, config_.serialization_bandwidth);
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    if (!cluster_->machine(rank).alive()) {
      continue;
    }
    persistent_->Save(trainer_->MakeCheckpoint(rank), config_.num_machines, [](Status) {});
  }
  ++report_.persistent_checkpoints_committed;
  metrics_.counter("system.persistent_checkpoints").Increment();
  tracer_.Span("persistent_serialize", "checkpoint", sim_.now(), sim_.now() + serialize,
               {TraceAttr::Int("iteration", trainer_->iteration())});
  sim_.ScheduleAfter(serialize, [this] { StartNextIteration(); });
}

// ---------------------------------------------------------------------------
// Recovery (Section 6.2)
// ---------------------------------------------------------------------------

TimeNs GeminiSystem::RecoverySerializationTime() const {
  // Each machine serializes the replicas it holds (its own plus its group
  // peers': m copies) with torch.save before recovery proceeds.
  const Bytes replica_bytes = config_.model.CheckpointBytesPerMachine(config_.num_machines);
  return config_.num_replicas * TransferTime(replica_bytes, config_.serialization_bandwidth);
}

void GeminiSystem::OnFailureDetected(const FailureReport& report) {
  if (!running_ || recovering_) {
    return;
  }
  recovering_ = true;
  if (root_agent_ != nullptr) {
    root_agent_->SetPaused(true);
  }
  metrics_.counter("system.failures_detected").Increment();
  tracer_.Event("failure_detected", "recovery",
                {TraceAttr::Text("type", std::string(FailureTypeName(report.type))),
                 TraceAttr::Int("num_ranks", static_cast<int64_t>(report.ranks.size())),
                 TraceAttr::Int("iteration", trainer_->iteration())});
  GEMINI_LOG(kInfo) << "recovery: handling " << FailureTypeName(report.type) << " failure of "
                    << report.ranks.size() << " machine(s)";
  if (report.type == FailureType::kSoftware) {
    RecoverFromSoftwareFailure(report);
  } else {
    RecoverFromHardwareFailure(report);
  }
}

void GeminiSystem::RecoverFromSoftwareFailure(const FailureReport& report) {
  RecoveryRecord record;
  record.type = FailureType::kSoftware;
  record.failed_ranks = report.ranks;
  record.failure_detected_at = report.detected_at;
  record.iteration_at_failure = trainer_->iteration();
  record.source = RecoverySource::kLocalCpuMemory;

  // Restart the crashed processes: serialize the in-memory checkpoints so
  // torch.load can read them, then warm up. Everyone restores from the local
  // replica (Figure 6b) — zero retrieval traffic.
  const TimeNs delay = RecoverySerializationTime() + config_.restart_warmup;
  sim_.ScheduleAfter(delay, [this, record]() mutable {
    std::vector<Checkpoint> checkpoints;
    for (int rank = 0; rank < config_.num_machines; ++rank) {
      const std::optional<Checkpoint> local =
          cpu_stores_[static_cast<size_t>(rank)]->Latest(rank);
      if (!local.has_value()) {
        // Failure before the first commit: fall back to the persistent tier.
        RetrieveFromPersistentAndResume(record, {});
        return;
      }
      // The restarting process loads through the serialized form (the
      // torch.save/torch.load path), so the CRC integrity check guards the
      // bytes actually restored.
      const StatusOr<Checkpoint> loaded =
          DeserializeCheckpoint(SerializeCheckpoint(*local));
      if (!loaded.ok()) {
        GEMINI_LOG(kError) << "local checkpoint failed integrity check: " << loaded.status();
        RetrieveFromPersistentAndResume(record, {});
        return;
      }
      checkpoints.push_back(*loaded);
    }
    const Status status = trainer_->RestoreAll(checkpoints);
    if (!status.ok()) {
      GEMINI_LOG(kError) << "software recovery failed to restore: " << status;
      RetrieveFromPersistentAndResume(record, {});
      return;
    }
    record.rollback_iteration = trainer_->iteration();
    for (const int rank : record.failed_ranks) {
      cluster_->machine(rank).set_health(MachineHealth::kHealthy);
      workers_[static_cast<size_t>(rank)]->ReportHealthy();
    }
    ResumeTraining(record);
  });
}

void GeminiSystem::RecoverFromHardwareFailure(const FailureReport& report) {
  RecoveryRecord record;
  record.type = FailureType::kHardware;
  record.failed_ranks = report.ranks;
  record.failure_detected_at = report.detected_at;
  record.iteration_at_failure = trainer_->iteration();

  // Replace every dead machine; meanwhile alive machines serialize their
  // replicas (the two overlap, Figure 14).
  auto pending = std::make_shared<int>(static_cast<int>(report.ranks.size()));
  auto replaced = std::make_shared<std::vector<int>>();
  const TimeNs serialize_done_at = sim_.now() + RecoverySerializationTime();
  for (const int rank : report.ranks) {
    cloud_->ReplaceMachine(rank, [this, rank, pending, replaced, record,
                                  serialize_done_at](Machine& machine) mutable {
      // Fresh DRAM: rebuild the store's hosting reservations for this rank.
      CpuCheckpointStore& store = *cpu_stores_[static_cast<size_t>(rank)];
      store.ResetForMachine(machine);
      const Bytes replica_bytes =
          config_.model.CheckpointBytesPerMachine(config_.num_machines);
      for (int owner = 0; owner < config_.num_machines; ++owner) {
        const auto& holders = placement_.replica_sets[static_cast<size_t>(owner)];
        if (std::find(holders.begin(), holders.end(), rank) != holders.end()) {
          (void)store.HostOwner(owner, replica_bytes);
        }
      }
      (void)machine.AllocateOnAllGpus(config_.reserved_buffer_per_gpu);
      // Restart the co-located KV member and agents.
      for (int i = 0; i < kvstore_->num_nodes(); ++i) {
        if (kvstore_->server_ranks()[static_cast<size_t>(i)] == rank) {
          kvstore_->node(i).ResetAndRestart();
        }
      }
      RestartAgentsForRank(rank);
      replaced->push_back(rank);
      if (--*pending > 0) {
        return;
      }
      // All machines replaced. Serialization may still be running.
      const TimeNs wait = std::max<TimeNs>(0, serialize_done_at - sim_.now());
      sim_.ScheduleAfter(wait, [this, record, replaced]() mutable {
        // Case analysis: can every rank's checkpoint be served from CPU
        // memory of machines that survived?
        std::vector<bool> failed(static_cast<size_t>(config_.num_machines), false);
        for (const int rank : *replaced) {
          failed[static_cast<size_t>(rank)] = true;
        }
        if (placement_.Recoverable(failed)) {
          RetrieveFromPeersAndResume(record, *replaced);
        } else {
          GEMINI_LOG(kWarning)
              << "recovery: an entire placement group was lost; falling back to "
                 "persistent storage";
          RetrieveFromPersistentAndResume(record, *replaced);
        }
      });
    });
  }
}

void GeminiSystem::RetrieveFromPeersAndResume(RecoveryRecord record,
                                              std::vector<int> replaced_ranks) {
  record.source = RecoverySource::kRemoteCpuMemory;
  const TimeNs retrieval_started = sim_.now();

  std::vector<bool> alive(static_cast<size_t>(config_.num_machines), true);
  for (const int rank : replaced_ranks) {
    alive[static_cast<size_t>(rank)] = false;  // New DRAM holds no checkpoints yet.
  }

  auto fetched = std::make_shared<std::vector<Checkpoint>>();
  auto pending = std::make_shared<int>(static_cast<int>(replaced_ranks.size()));
  auto failed = std::make_shared<bool>(false);

  auto finish = [this, record, retrieval_started, fetched]() mutable {
    // Install fetched replicas, then restore everyone: survivors from local
    // CPU memory, replacements from the fetched copies (Figure 6c).
    std::vector<Checkpoint> checkpoints;
    std::vector<bool> have(static_cast<size_t>(config_.num_machines), false);
    for (Checkpoint& checkpoint : *fetched) {
      (void)cpu_stores_[static_cast<size_t>(checkpoint.owner_rank)]->WriteComplete(checkpoint);
      have[static_cast<size_t>(checkpoint.owner_rank)] = true;
      checkpoints.push_back(std::move(checkpoint));
    }
    for (int rank = 0; rank < config_.num_machines; ++rank) {
      if (have[static_cast<size_t>(rank)]) {
        continue;
      }
      const std::optional<Checkpoint> local =
          cpu_stores_[static_cast<size_t>(rank)]->Latest(rank);
      if (!local.has_value()) {
        RetrieveFromPersistentAndResume(record, {});
        return;
      }
      checkpoints.push_back(*local);
    }
    const Status status = trainer_->RestoreAll(checkpoints);
    if (!status.ok()) {
      GEMINI_LOG(kError) << "peer recovery failed to restore: " << status;
      RetrieveFromPersistentAndResume(record, {});
      return;
    }
    record.rollback_iteration = trainer_->iteration();
    record.wasted_time = (record.iteration_at_failure - record.rollback_iteration) *
                             execution_.iteration_time +
                         (sim_.now() - retrieval_started);
    tracer_.Span("retrieval", "recovery", retrieval_started, sim_.now(),
                 {TraceAttr::Text("source", std::string(RecoverySourceName(record.source)))});
    sim_.ScheduleAfter(config_.restart_warmup,
                       [this, record]() mutable { ResumeTraining(record); });
  };

  if (replaced_ranks.empty()) {
    finish();
    return;
  }
  for (const int rank : replaced_ranks) {
    const std::vector<int> holders = placement_.AliveRemoteHolders(rank, alive);
    if (holders.empty()) {
      RetrieveFromPersistentAndResume(record, replaced_ranks);
      return;
    }
    const int holder = holders.front();
    const std::optional<Checkpoint> replica =
        cpu_stores_[static_cast<size_t>(holder)]->Latest(rank);
    if (!replica.has_value()) {
      RetrieveFromPersistentAndResume(record, replaced_ranks);
      return;
    }
    Fabric::TransferOptions options;  // Full line rate for retrieval.
    cluster_->fabric().Transfer(
        holder, rank, replica->logical_bytes, options,
        [this, record, replica = *replica, fetched, pending, failed, replaced_ranks,
         finish](Status status) mutable {
          if (*failed) {
            return;
          }
          if (!status.ok()) {
            *failed = true;
            GEMINI_LOG(kWarning) << "recovery: peer retrieval failed (" << status
                                 << "); falling back to persistent storage";
            RetrieveFromPersistentAndResume(record, replaced_ranks);
            return;
          }
          fetched->push_back(std::move(replica));
          if (--*pending == 0) {
            finish();
          }
        });
  }
}

void GeminiSystem::RetrieveFromPersistentAndResume(RecoveryRecord record,
                                                   std::vector<int> replaced_ranks) {
  (void)replaced_ranks;
  record.source = RecoverySource::kPersistentStorage;
  const TimeNs retrieval_started = sim_.now();
  const int64_t iteration = persistent_->LatestCompleteIteration();
  if (iteration < 0) {
    GEMINI_LOG(kError) << "recovery: no persistent checkpoint exists; training cannot resume";
    FinishRun();
    return;
  }
  auto checkpoints = std::make_shared<std::vector<Checkpoint>>();
  auto pending = std::make_shared<int>(config_.num_machines);
  for (int rank = 0; rank < config_.num_machines; ++rank) {
    persistent_->Retrieve(
        rank, iteration,
        [this, record, retrieval_started, checkpoints,
         pending](StatusOr<Checkpoint> result) mutable {
          if (!result.ok()) {
            GEMINI_LOG(kError) << "persistent retrieval failed: " << result.status();
            FinishRun();
            return;
          }
          checkpoints->push_back(std::move(result).value());
          if (--*pending > 0) {
            return;
          }
          const Status status = trainer_->RestoreAll(*checkpoints);
          if (!status.ok()) {
            GEMINI_LOG(kError) << "persistent recovery failed to restore: " << status;
            FinishRun();
            return;
          }
          // Refill the CPU tier so subsequent failures recover fast again.
          for (const Checkpoint& checkpoint : *checkpoints) {
            for (const int holder :
                 placement_.replica_sets[static_cast<size_t>(checkpoint.owner_rank)]) {
              if (cluster_->machine(holder).alive()) {
                (void)cpu_stores_[static_cast<size_t>(holder)]->WriteComplete(checkpoint);
              }
            }
          }
          record.rollback_iteration = trainer_->iteration();
          record.wasted_time = (record.iteration_at_failure - record.rollback_iteration) *
                                   execution_.iteration_time +
                               (sim_.now() - retrieval_started);
          tracer_.Span("retrieval", "recovery", retrieval_started, sim_.now(),
                       {TraceAttr::Text("source", std::string(RecoverySourceName(record.source)))});
          sim_.ScheduleAfter(config_.restart_warmup,
                             [this, record]() mutable { ResumeTraining(record); });
        });
  }
}

void GeminiSystem::ResumeTraining(RecoveryRecord record) {
  record.training_resumed_at = sim_.now();
  record.downtime = record.training_resumed_at - record.failure_detected_at;
  if (record.wasted_time == 0) {
    record.wasted_time = (record.iteration_at_failure - record.rollback_iteration) *
                         execution_.iteration_time;
  }
  GEMINI_LOG(kInfo) << "recovery: resumed training at iteration " << record.rollback_iteration
                    << " from " << RecoverySourceName(record.source) << " (downtime "
                    << FormatDuration(record.downtime) << ", wasted "
                    << FormatDuration(record.wasted_time) << ")";
  metrics_.counter("system.recoveries").Increment();
  switch (record.source) {
    case RecoverySource::kLocalCpuMemory:
      metrics_.counter("system.recoveries.local_cpu").Increment();
      break;
    case RecoverySource::kRemoteCpuMemory:
      metrics_.counter("system.recoveries.remote_cpu").Increment();
      break;
    case RecoverySource::kPersistentStorage:
      metrics_.counter("system.recoveries.persistent").Increment();
      break;
  }
  metrics_.histogram("system.recovery.downtime_seconds")
      .Observe(static_cast<double>(record.downtime) / 1e9);
  metrics_.histogram("system.recovery.wasted_seconds")
      .Observe(static_cast<double>(record.wasted_time) / 1e9);
  // The recovery span covers detection -> resume by construction, so its
  // duration equals record.downtime; the attrs carry the rest of the record.
  tracer_.Span("recovery", "recovery", record.failure_detected_at, record.training_resumed_at,
               {TraceAttr::Text("type", std::string(FailureTypeName(record.type))),
                TraceAttr::Text("source", std::string(RecoverySourceName(record.source))),
                TraceAttr::Int("rollback_iteration", record.rollback_iteration),
                TraceAttr::Int("wasted_time_ns", record.wasted_time),
                TraceAttr::Int("downtime_ns", record.downtime)});
  tracer_.Event("training_resumed", "recovery",
                {TraceAttr::Int("iteration", record.rollback_iteration)});
  report_.recoveries.push_back(record);
  recovering_ = false;
  if (root_agent_ != nullptr) {
    root_agent_->ClearHandled(record.failed_ranks);
    root_agent_->SetPaused(false);
  }
  StartNextIteration();
}

void GeminiSystem::RestartAgentsForRank(int rank) {
  workers_[static_cast<size_t>(rank)]->Stop();
  auto worker = std::make_unique<WorkerAgent>(sim_, *cluster_, *kvstore_, rank, config_.agent);
  worker->set_on_promoted_to_root([this, rank] { OnWorkerPromotedToRoot(rank); });
  worker->set_metrics(&metrics_);
  worker->Start();
  workers_[static_cast<size_t>(rank)] = std::move(worker);
}

void GeminiSystem::OnWorkerPromotedToRoot(int rank) {
  if (root_agent_ != nullptr && root_rank_ == rank) {
    return;  // Already the root.
  }
  GEMINI_LOG(kInfo) << "root agent now running on rank " << rank;
  metrics_.counter("system.root_promotions").Increment();
  tracer_.Event("root_promoted", "recovery", {TraceAttr::Int("rank", rank)});
  root_rank_ = rank;
  if (root_agent_ != nullptr) {
    root_agent_->Stop();
  }
  root_agent_ = std::make_unique<RootAgent>(
      sim_, *cluster_, *kvstore_, rank, config_.agent,
      [this](const FailureReport& report) { OnFailureDetected(report); });
  root_agent_->set_metrics(&metrics_);
  root_agent_->Start();
}

SystemSnapshot GeminiSystem::Snapshot() const {
  SystemSnapshot snapshot;
  snapshot.placement_strategy = std::string(PlacementStrategyName(placement_.strategy));
  snapshot.num_machines = config_.num_machines;
  snapshot.num_replicas = config_.num_replicas;
  snapshot.num_placement_groups = static_cast<int>(placement_.groups.size());
  snapshot.iteration_time = execution_.iteration_time;
  snapshot.baseline_iteration_time = execution_.baseline_iteration_time;
  snapshot.checkpoint_overhead_fraction = execution_.overhead_fraction;
  snapshot.checkpoint_fits_iteration = execution_.checkpoint_within_iteration;
  snapshot.checkpoint_interval_iterations = checkpoint_interval_iterations_;
  snapshot.profiled_iterations = profile_.iterations_profiled;
  snapshot.profile_max_normalized_stddev = profile_.max_normalized_stddev;
  snapshot.profile_mean_iteration_time = profile_.mean_iteration_time;
  snapshot.iterations_completed = trainer_ != nullptr ? trainer_->iteration() : 0;
  snapshot.cpu_checkpoints_committed = report_.cpu_checkpoints_committed;
  snapshot.persistent_checkpoints_committed = report_.persistent_checkpoints_committed;
  snapshot.recoveries = static_cast<int64_t>(report_.recoveries.size());
  for (const RecoveryRecord& record : report_.recoveries) {
    switch (record.source) {
      case RecoverySource::kLocalCpuMemory:
        ++snapshot.recoveries_from_local_cpu;
        break;
      case RecoverySource::kRemoteCpuMemory:
        ++snapshot.recoveries_from_remote_cpu;
        break;
      case RecoverySource::kPersistentStorage:
        ++snapshot.recoveries_from_persistent;
        break;
    }
  }
  snapshot.root_rank = root_rank_;
  return snapshot;
}

}  // namespace gemini
