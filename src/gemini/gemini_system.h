// GeminiSystem: the end-to-end distributed training system with in-memory
// checkpointing (the paper's full design, Sections 3-6, on the simulated
// substrate).
//
// Wiring: a Cluster of GPU machines shares a Fabric; a KvStoreCluster (etcd
// stand-in) runs on the first few machines; every machine runs a WorkerAgent
// heartbeating into the store; one RootAgent scans health keys and drives
// recovery through the CloudOperator. Training is a ShardedTrainer whose
// per-iteration timing comes from the ZeRO-3 executor, with checkpoint
// traffic scheduled by Algorithm 2 into profiled idle spans. Checkpoints are
// real byte payloads replicated per the Algorithm 1 placement into
// CpuCheckpointStores (double-buffered), with a PersistentStore tier for the
// 3-hourly user checkpoints and the group-loss fallback path.
//
// Recovery faithfully follows Section 6.2:
//  * software failure  -> all ranks reload their local CPU replica;
//  * hardware, case 1  -> replaced machines fetch replicas from group peers;
//  * hardware, case 2  -> a whole group died: everyone rolls back to the
//                         latest complete persistent checkpoint;
//  * root death        -> workers detect the expired root key and promote
//                         one of themselves via the KV election primitive.
#ifndef SRC_GEMINI_GEMINI_SYSTEM_H_
#define SRC_GEMINI_GEMINI_SYSTEM_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/agent/cloud_operator.h"
#include "src/agent/failure_injector.h"
#include "src/agent/root_agent.h"
#include "src/agent/worker_agent.h"
#include "src/baselines/system_model.h"
#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/kvstore/kv_store.h"
#include "src/obs/auditor.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/run_tracer.h"
#include "src/placement/placement.h"
#include "src/policy/protection_policy.h"
#include "src/schedule/executor.h"
#include "src/storage/cpu_store.h"
#include "src/storage/persistent_store.h"
#include "src/storage/serializer.h"
#include "src/training/model_config.h"
#include "src/training/profiler.h"
#include "src/training/trainer.h"

namespace gemini {

class ThreadPool;

struct GeminiConfig {
  ModelConfig model = Gpt2_100B();
  InstanceSpec instance;  // Defaults to p4d.24xlarge when left empty.
  int num_machines = 16;
  int num_replicas = 2;  // m
  Bytes reserved_buffer_per_gpu = MiB(128);
  int num_buffers = 4;  // p
  double gamma = 0.7;
  int profile_iterations = 20;
  TimeNs persistent_checkpoint_interval = Hours(3);
  // Real floats per machine shard (the data plane payload).
  int payload_elements = 64;
  int kv_server_count = 3;
  TimeNs restart_warmup = Seconds(260);
  BytesPerSecond serialization_bandwidth = 0.93e9;
  // Peer-retrieval retry cascade (recovery hardening): per-rank attempt cap
  // across all alive replica holders, with capped exponential backoff between
  // attempts. Only after the cap is exhausted does recovery fall back to the
  // persistent tier.
  int retrieval_max_attempts = 6;
  TimeNs retrieval_backoff_base = Millis(200);
  TimeNs retrieval_backoff_cap = Seconds(5);
  // Background re-protection pass retry cadence after a failed attempt.
  TimeNs reprotection_retry_delay = Seconds(5);
  int reprotection_max_attempts = 3;
  // Continuous interference auditing (drift detection + adaptive re-profile).
  AuditorConfig audit;
  // Per-iteration multiplicative jitter on the observed idle spans the
  // auditor compares against the profile (mirrors the profiler's measured
  // <10% normalized stddev). Zero-mean, so it never triggers drift by itself.
  double observed_span_jitter_stddev = 0.05;
  // Flight recorder ring capacity in trace records (0 disables dumps).
  size_t flight_recorder_capacity = 256;
  // RunTracer stored-record cap (0 = unlimited; dropped records are counted
  // in "tracer.dropped_records").
  size_t tracer_max_records = 0;
  // Host-side worker threads for the checkpoint data path: disk-shard
  // serialization + CRC in the persistent store and the re-protection
  // streams' pre-commit integrity CRC fan out across a shared pool. 1 (the
  // default) keeps everything inline on the simulator thread; larger values
  // change wall-clock only — simulated timing, event order, and all produced
  // bytes are identical (per-segment CRCs combine in rank order).
  int pipeline_threads = 1;
  // Publish a per-checkpoint watermark to the KV store at each commit (one
  // key per staged shard plus a block-level key, all riding a single batched
  // proposal — one consensus round per checkpoint block). Off by default so
  // default-config runs generate no extra KV traffic.
  bool publish_checkpoint_watermark = false;
  // Incremental delta checkpoints (default off: every checkpoint is a full
  // snapshot and the system's outputs are byte-identical to the pre-delta
  // code). When enabled, CPU-tier commits and persistent saves ship only the
  // chunks that changed since the owner's last sealed base — dirty bits from
  // the trainer pruned further by chunk CRC + content compare — through
  // per-holder epoch-sealed redo logs that compact back into full bases at
  // the configured caps.
  struct IncrementalCheckpointConfig {
    bool enabled = false;
    // Chunk granularity (payload elements) for dirty tracking and delta
    // encoding.
    int chunk_elements = 16;
    // Compaction caps: fold the chain into a new base once it holds this
    // many deltas (must be >= 1 — Validate rejects an unbounded chain) or,
    // when > 0, this many accumulated delta bytes.
    int max_chain_length = 8;
    Bytes max_chain_bytes = 0;
    // Sparse-update workload knob (MoE-style): fraction of chunks each
    // (iteration, rank) touches per step; 1.0 is the dense path. Applied to
    // the trainer whether or not `enabled` is set, so full-vs-incremental
    // comparisons run the identical trajectory.
    double sparse_update_fraction = 1.0;
  };
  IncrementalCheckpointConfig incremental;
  // Protection-policy engine: which strategy guards training (GEMINI
  // in-memory checkpoints by default) plus the per-policy knobs and the
  // online Chameleon selector's switch rules.
  PolicyConfig policy;
  AgentConfig agent;
  CloudOperatorConfig cloud;
  KvStoreConfig kvstore;
  PersistentStoreConfig persistent;
  uint64_t seed = 42;

  // Knob sanity for the whole config (machine/replica counts, positive
  // bandwidths and intervals, policy knobs). Initialize() and Create() both
  // reject invalid configs through this one gate.
  Status Validate() const;
};

enum class RecoverySource {
  kLocalCpuMemory,
  kRemoteCpuMemory,
  kPersistentStorage,
  // Persistent base + deterministic gradient replay (Checkmate-style).
  kGradientReplay,
  // Lost state rebuilt in place from peer redundancy (recompute policies).
  kPeerRecompute,
};

std::string_view RecoverySourceName(RecoverySource source);

struct RecoveryRecord {
  FailureType type = FailureType::kSoftware;
  std::vector<int> failed_ranks;
  RecoverySource source = RecoverySource::kLocalCpuMemory;
  TimeNs failure_detected_at = 0;
  TimeNs training_resumed_at = 0;
  int64_t iteration_at_failure = 0;
  int64_t rollback_iteration = 0;
  // Lost progress plus retrieval (the paper's wasted-time metric).
  TimeNs wasted_time = 0;
  // Wall-clock from detection to resume (includes fixed overheads).
  TimeNs downtime = 0;
};

// One-call introspection surface: the configuration-derived facts (placement,
// schedule, profile) plus run-to-date progress counters. Everything here is
// also reachable through the individual getters; Snapshot() exists so tests,
// examples, and benches read one coherent struct instead of poking at five
// subsystems.
struct SystemSnapshot {
  // Placement (Algorithm 1).
  std::string placement_strategy;
  int num_machines = 0;
  int num_replicas = 0;
  int num_placement_groups = 0;

  // Scheduled iteration (Algorithm 2 outcome).
  TimeNs iteration_time = 0;
  TimeNs baseline_iteration_time = 0;
  double checkpoint_overhead_fraction = 0.0;
  bool checkpoint_fits_iteration = false;
  int checkpoint_interval_iterations = 1;

  // Profile digest (Section 5.2).
  int profiled_iterations = 0;
  double profile_max_normalized_stddev = 0.0;
  TimeNs profile_mean_iteration_time = 0;

  // Run progress.
  int64_t iterations_completed = 0;
  int64_t cpu_checkpoints_committed = 0;
  int64_t persistent_checkpoints_committed = 0;
  int64_t recoveries = 0;
  int64_t recoveries_from_local_cpu = 0;
  int64_t recoveries_from_remote_cpu = 0;
  int64_t recoveries_from_persistent = 0;
  int64_t recoveries_from_replay = 0;
  int64_t recoveries_from_recompute = 0;
  int root_rank = 0;

  // Interference audit headline numbers (tentpole observability).
  int64_t audits = 0;
  int64_t interference_events = 0;
  TimeNs interference_inflation = 0;
  double max_abs_drift_ewma = 0.0;
  int64_t reprofiles = 0;
  int64_t flight_dumps = 0;
  int64_t tracer_dropped_records = 0;

  // Incremental checkpoint data path (zero when the mode is off).
  int64_t delta_commits = 0;
  int64_t delta_bytes_saved = 0;
  int64_t compaction_folds = 0;
};

struct TrainingReport {
  int64_t iterations_completed = 0;
  TimeNs wall_time = 0;
  TimeNs iteration_time = 0;
  int64_t cpu_checkpoints_committed = 0;
  int64_t persistent_checkpoints_committed = 0;
  std::vector<RecoveryRecord> recoveries;

  // Productive fraction: forward progress over wall-clock.
  double effective_training_ratio() const {
    if (wall_time <= 0) {
      return 1.0;
    }
    return static_cast<double>(iterations_completed) * static_cast<double>(iteration_time) /
           static_cast<double>(wall_time);
  }
};

class GeminiSystem : public PolicyHost {
 public:
  explicit GeminiSystem(GeminiConfig config);
  ~GeminiSystem() override;

  GeminiSystem(const GeminiSystem&) = delete;
  GeminiSystem& operator=(const GeminiSystem&) = delete;

  // Validating factory: rejects a bad config (GeminiConfig::Validate) before
  // any substrate is built, then runs Initialize(). The one-step entry point
  // examples and benches should prefer.
  static StatusOr<std::unique_ptr<GeminiSystem>> Create(GeminiConfig config);

  // Builds the substrate, computes the placement, profiles the timeline,
  // plans checkpoint traffic, starts agents, and seeds the persistent store
  // with the initial (iteration 0) global checkpoint.
  Status Initialize();

  // Runs training until `target_iterations` iterations have completed
  // (across failures and rollbacks). A non-zero `sim_deadline` bounds the
  // simulated time: exceeding it returns the report so far (e.g. a failure
  // storm that takes out the KV quorum would otherwise never finish).
  StatusOr<TrainingReport> TrainUntil(int64_t target_iterations, TimeNs sim_deadline = 0);

  // ---- Observability ------------------------------------------------------
  // Every component of the system reports into this registry ("cpu_store.*",
  // "kv.*", "agent.*", "system.*", ...) and the tracer records the run's
  // span/event timeline (iterations, checkpoint blocks, failure->resume
  // windows). Both are deterministic: same seed, same export bytes.
  MetricsRegistry& metrics() override { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  RunTracer& tracer() override { return tracer_; }
  const RunTracer& tracer() const { return tracer_; }
  InterferenceAuditor& auditor() { return auditor_; }
  const InterferenceAuditor& auditor() const { return auditor_; }
  FlightRecorder& flight_recorder() { return flight_recorder_; }
  const FlightRecorder& flight_recorder() const { return flight_recorder_; }

  // Fault/experiment hook: from now on, every observed idle span is `scale`
  // times its nominal length (a persistent timeline shift — e.g. network
  // contention shrinking the spans the chunk schedule was planned around).
  // The auditor sees the shift, attributes the resulting interference, and —
  // once drift persists — re-profiles and re-partitions online.
  void InjectTimelineShift(double scale) { timeline_shift_ = scale; }
  double timeline_shift() const { return timeline_shift_; }

  // Coherent one-struct view of placement/schedule/profile/progress.
  SystemSnapshot Snapshot() const;

  // ---- Introspection ------------------------------------------------------
  Simulator& sim() override { return sim_; }
  Cluster& cluster() { return *cluster_; }
  KvStoreCluster& kvstore() { return *kvstore_; }
  FailureInjector& failure_injector() { return *injector_; }
  CloudOperator& cloud_operator() { return *cloud_; }
  ShardedTrainer& trainer() { return *trainer_; }
  PersistentStore& persistent_store() { return *persistent_; }
  CpuCheckpointStore& cpu_store(int rank) { return *cpu_stores_.at(static_cast<size_t>(rank)); }
  const PlacementPlan& placement() const { return placement_; }
  const ExecutionResult& iteration_execution() const { return execution_; }
  // Checkpoint every k iterations (k > 1 when the traffic does not fit one
  // iteration's idle time; Section 5.3 frequency amortization).
  int checkpoint_interval_iterations() const override {
    return checkpoint_interval_iterations_;
  }
  const ProfileResult& profile() const { return profile_; }
  const TrainingReport& report() const { return report_; }
  const GeminiConfig& config() const { return config_; }
  // The active protection policy (a ChameleonSelector under kChameleon).
  ProtectionPolicy& policy() { return *policy_; }
  const ProtectionPolicy& policy() const { return *policy_; }
  int root_rank() const { return root_rank_; }
  bool recovering() const { return recovering_; }

  // ---- PolicyHost (the slice policies program against) --------------------
  const ExecutionResult& execution() const override { return execution_; }
  int num_machines() const override { return config_.num_machines; }
  int num_replicas() const override { return config_.num_replicas; }
  Bytes replica_bytes() const override {
    return config_.model.CheckpointBytesPerMachine(config_.num_machines);
  }
  int64_t current_iteration() const override {
    return trainer_ != nullptr ? trainer_->iteration() : 0;
  }
  TimeNs default_persistent_interval() const override {
    return config_.persistent_checkpoint_interval;
  }
  BytesPerSecond serialization_bandwidth() const override {
    return config_.serialization_bandwidth;
  }
  TimeNs restart_warmup() const override { return config_.restart_warmup; }
  BytesPerSecond persistent_bandwidth() const override {
    return config_.persistent.aggregate_bandwidth;
  }
  BytesPerSecond network_bandwidth() const override {
    return config_.instance.network_bandwidth;
  }
  double observed_failure_rate_per_hour() const override {
    return auditor_.ObservedFailureRatePerHour(sim_.now());
  }
  TimeNs interference_inflation() const override { return auditor_.total_inflation(); }
  double degraded_seconds() const override {
    return metrics_.gauge_value("system.redundancy.degraded_seconds");
  }
  // Observed delta-to-full byte ratio of the CPU-tier commits (1.0 when the
  // incremental mode is off or no delta has committed yet); policies fold it
  // into their steady-state cost models.
  double incremental_delta_fraction() const override;
  void DiscardStagedBlock() override;

 private:
  // ---- Training loop ----
  void StartNextIteration();
  void OnCheckpointCommit(int64_t snapshot_iteration);
  void OnIterationComplete();
  void MaybePersistentCheckpoint();
  void FinishRun();

  // ---- Incremental checkpoints ----
  // Folds the owner's freshly taken dirty bits into the accumulator covering
  // the window since its last sealed base.
  void AccumulateDirtyBits(int owner_rank);
  // Builds the commit delta for `snapshot` against the owner's last sealed
  // CPU-tier base; nullopt (-> full write) when no compatible base exists.
  std::optional<DeltaCheckpoint> MaybeBuildCommitDelta(const Checkpoint& snapshot);
  // Invalidates every delta base after recovery rewires store contents; the
  // next block re-seals full bases everywhere.
  void ResetIncrementalBases();

  // ---- Interference audit (tentpole) ----
  // The iteration's realized idle-span lengths: nominal spans scaled by the
  // injected timeline shift and per-span jitter (deterministic audit RNG).
  std::vector<TimeNs> ObservedSpanLengths();
  // Transfer-cost model the auditor uses to price chunks (matches the
  // executor's partition parameters).
  PartitionParams AuditPartitionParams() const;
  // Drift hook: re-run the Section 5.4 profiling on the shifted timeline,
  // re-partition with Algorithm 2 (possibly raising the checkpoint interval,
  // Section 5.3), and rebaseline the auditor.
  void ReprofileAndRepartition(int64_t iteration);

  // ---- Recovery (Section 6.2, hardened) ----
  // One recovery *case* merges every FailureReport that arrives while it is
  // in flight: an overlapping failure escalates the case (hardware supersedes
  // software), extends its rank set, bumps `recovery_epoch_`, and restarts
  // the case analysis against the updated alive set. Every in-flight recovery
  // callback carries the epoch it was scheduled under and no-ops when a
  // preemption made it stale. At resume, one RecoveryRecord is emitted per
  // absorbed report — overlapping failures are never dropped.
  struct ActiveRecoveryCase {
    FailureType type = FailureType::kSoftware;  // Escalates, never de-escalates.
    std::vector<FailureReport> reports;         // Every report merged into the case.
    std::set<int> ranks;                        // Union of all reported ranks.
    std::set<int> replacing;                    // Replacement requested (once per rank).
    std::vector<int> replaced;                  // Fresh-DRAM ranks (replacement done).
    int pending_replacements = 0;
    TimeNs first_detected_at = 0;
    TimeNs serialize_done_at = 0;
    int64_t iteration_at_failure = 0;
  };
  struct PeerRetrievalContext;

  void OnFailureDetected(const FailureReport& report);
  void AbsorbFailureDuringRecovery(const FailureReport& report);
  // (Re)starts the case under a fresh epoch: software cases schedule the
  // local restore, hardware cases replace any still-dead ranks first.
  void StartRecoveryAttempt();
  void OnMachineReplaced(int rank, Machine& machine);
  // Once no replacement is pending, schedules the Section 6.2 case analysis
  // after the serialization window.
  void MaybeAnalyzeHardwareCase();
  RecoveryRecord MakeCaseRecord() const;
  // Runs the policy's fallback chain from `step_index`: each step executor
  // either resumes training or falls through to the next step; an exhausted
  // chain ends the run.
  void ExecuteRecoverySteps(RecoveryRecord record, RecoveryPlan plan, size_t step_index,
                            std::vector<int> replaced_ranks);
  // kRestoreFromLocalCpu: every rank reloads its own CPU replica through the
  // serialized (CRC-guarded) form.
  void RestoreFromLocalCpu(RecoveryRecord record, RecoveryPlan plan, size_t step_index);
  // kFetchFromPeers: fetch replacements' checkpoints from alive group peers,
  // retrying across all holders (capped exponential backoff, CRC per
  // attempt); exhaustion falls through to the chain's next step.
  void RetrieveFromPeersAndResume(RecoveryRecord record, RecoveryPlan plan, size_t step_index,
                                  std::vector<int> replaced_ranks);
  void TryFetchReplica(std::shared_ptr<PeerRetrievalContext> ctx, int rank, int attempt,
                       uint64_t epoch);
  void RetryFetchReplica(std::shared_ptr<PeerRetrievalContext> ctx, int rank, int attempt,
                         uint64_t epoch, const Status& why);
  void FinishPeerRetrieval(std::shared_ptr<PeerRetrievalContext> ctx, uint64_t epoch);
  RetryPolicy RetrievalRetryPolicy() const;
  // kFetchFromPersistent: roll everyone back to the persistent tier.
  void RetrieveFromPersistentAndResume(RecoveryRecord record, std::vector<int> replaced_ranks);
  // kReplayLoggedGradients: persistent base + deterministic replay of the
  // logged gradient stream to the failure iteration (zero rollback).
  void ReplayLoggedGradientsAndResume(RecoveryRecord record, RecoveryStep step);
  // kRecomputeFromPeers: rebuild lost state in place from peer redundancy at
  // a fixed iterations-worth of recompute cost.
  void RecomputeFromPeersAndResume(RecoveryRecord record, RecoveryStep step);
  void ResumeTraining(RecoveryRecord record);
  void RestartAgentsForRank(int rank);
  void OnWorkerPromotedToRoot(int rank);

  // ---- Re-protection (recovery hardening) ----
  // After a hardware recovery resumes training, replaced machines hold no
  // replicas for the owners they are assigned — the cluster runs with
  // degraded redundancy. A background pass streams the missing replicas back
  // through the Replicator's chunked data plane (chunks sized by the
  // Algorithm-2 partition so the traffic stays inside idle spans) and exports
  // the vulnerability window as system.redundancy.degraded_seconds.
  void QueueReprotection(const std::vector<int>& targets, TimeNs degraded_since);
  void MaybeStartReprotection();

  GeminiConfig config_;
  Simulator sim_;
  MetricsRegistry metrics_;
  RunTracer tracer_{sim_};
  InterferenceAuditor auditor_;
  FlightRecorder flight_recorder_;
  Rng audit_rng_;
  double timeline_shift_ = 1.0;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<KvStoreCluster> kvstore_;
  std::unique_ptr<PersistentStore> persistent_;
  // Checkpoint data-path worker pool (null when pipeline_threads <= 1).
  std::unique_ptr<ThreadPool> datapath_pool_;
  std::vector<std::unique_ptr<CpuCheckpointStore>> cpu_stores_;
  std::unique_ptr<ShardedTrainer> trainer_;
  std::unique_ptr<CloudOperator> cloud_;
  std::unique_ptr<FailureInjector> injector_;
  std::vector<std::unique_ptr<WorkerAgent>> workers_;
  std::unique_ptr<RootAgent> root_agent_;
  int root_rank_ = 0;

  // The active protection strategy (never null after Initialize). The host
  // executes what the policy decides; policies never reach system internals.
  std::unique_ptr<ProtectionPolicy> policy_;
  // The duration the active policy assigned the current iteration; prices
  // replay/recompute stalls (GeminiPolicy keeps it at the scheduled time).
  TimeNs current_iteration_duration_ = 0;

  PlacementPlan placement_;
  IterationTimeline timeline_;
  ProfileResult profile_;
  ExecutionResult execution_;
  // Executor parameters of the active schedule, kept so the online
  // re-partition replans against the refreshed profile.
  ExecutorParams executor_params_;
  int checkpoint_interval_iterations_ = 1;
  // Snapshot captured at the start of the current checkpoint block, held in
  // the staging buffers until the block's last iteration commits it.
  std::vector<Checkpoint> staged_snapshots_;
  int64_t staged_iteration_ = -1;
  TimeNs staged_at_ = 0;
  TimeNs iteration_started_at_ = 0;

  // ---- Incremental mode state (sized/used only when enabled) ----
  // Per-owner diff base: the last full snapshot whose replication to the CPU
  // tier committed, plus the dirty bits accumulated since it was captured.
  std::vector<std::optional<Checkpoint>> delta_bases_;
  std::vector<std::vector<uint8_t>> dirty_accum_;
  // Last full state *scheduled* to the persistent tier per rank; the store's
  // FIFO preserves arrival order, so schedule-order sealing is safe.
  std::vector<std::optional<Checkpoint>> persistent_bases_;
  // Commit-byte tallies behind incremental_delta_fraction() (per staged
  // snapshot, not per holder).
  Bytes incremental_committed_bytes_ = 0;
  Bytes incremental_full_equivalent_bytes_ = 0;

  bool initialized_ = false;
  bool running_ = false;
  bool recovering_ = false;
  // The active merged failure case (set while recovering_) and the epoch that
  // invalidates stale recovery callbacks after a mid-recovery preemption.
  std::optional<ActiveRecoveryCase> active_case_;
  uint64_t recovery_epoch_ = 0;
  // Replaced machines awaiting the background re-replication pass.
  std::set<int> reprotect_targets_;
  TimeNs degraded_since_ = 0;
  bool reprotection_inflight_ = false;
  int reprotection_attempts_ = 0;
  int64_t target_iterations_ = 0;
  TimeNs run_started_at_ = 0;
  TimeNs last_persistent_checkpoint_at_ = 0;
  EventId iteration_end_event_{};
  EventId checkpoint_commit_event_{};
  TrainingReport report_;
};

}  // namespace gemini

#endif  // SRC_GEMINI_GEMINI_SYSTEM_H_
