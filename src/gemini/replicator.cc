#include "src/gemini/replicator.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>

#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/obs/auditor.h"
#include "src/obs/metrics.h"

namespace gemini {
namespace {

// Assembly buffers recycled across replication passes (double-buffer aware:
// a buffer still pinned by a store's completed slot is never handed out).
// The simulator is single-threaded, so one process-wide pool is safe; callers
// that want isolation (tests asserting recycling) pass their own via
// ReplicatorConfig::pool.
PayloadPool& DefaultAssemblyPool() {
  static PayloadPool pool;
  return pool;
}

// Shared completion state across all streams of one snapshot.
struct Outcome {
  ReplicationOutcome result;
  MetricsRegistry* metrics = nullptr;
  InterferenceAuditor* auditor = nullptr;
  // Hot-path metric handles, resolved once per replication pass — chunk
  // completions must not pay a string-keyed map lookup each.
  Counter* chunks_transferred_counter = nullptr;
  Counter* bytes_replicated_counter = nullptr;
  Counter* commits_counter = nullptr;
  // Per-chunk counter updates are accumulated here and flushed as one
  // Increment(n) per counter when a stream finishes (or the pass fails) —
  // one batched update per checkpoint replica instead of one per chunk.
  // Final totals match the per-chunk form exactly.
  int64_t unflushed_chunks = 0;
  int64_t unflushed_bytes = 0;
  // Worker pool for the commit path's integrity CRC. Borrowed from the
  // caller via ReplicatorConfig::workers, or owned for this pass when only
  // pipeline_threads was set. Null = inline sequential CRC.
  ThreadPool* workers = nullptr;
  std::unique_ptr<ThreadPool> owned_workers;
  int pending_streams = 0;
  bool failed = false;
  std::function<void(ReplicationOutcome)> done;

  void ResolveMetricHandles() {
    if (metrics == nullptr) {
      return;
    }
    chunks_transferred_counter = &metrics->counter("replicator.chunks_transferred");
    bytes_replicated_counter = &metrics->counter("replicator.bytes_replicated");
    commits_counter = &metrics->counter("replicator.commits");
  }

  void AdoptWorkers(const ReplicatorConfig& config) {
    workers = config.workers;
    if (workers == nullptr && config.pipeline_threads > 1) {
      owned_workers = std::make_unique<ThreadPool>(config.pipeline_threads);
      workers = owned_workers.get();
    }
  }

  void FlushMetricBatch() {
    if (chunks_transferred_counter != nullptr && unflushed_chunks > 0) {
      chunks_transferred_counter->Increment(unflushed_chunks);
      bytes_replicated_counter->Increment(unflushed_bytes);
    }
    unflushed_chunks = 0;
    unflushed_bytes = 0;
  }

  void StreamFinished(TimeNs at) {
    FlushMetricBatch();
    result.committed_at = std::max(result.committed_at, at);
    if (--pending_streams == 0 && !failed) {
      result.status = Status::Ok();
      done(result);
    }
  }
  void Fail(Status status) {
    FlushMetricBatch();
    if (failed) {
      return;
    }
    failed = true;
    result.status = std::move(status);
    done(result);
  }
};

// One owner->holder chunk stream with a p-deep send window.
struct Stream : std::enable_shared_from_this<Stream> {
  Cluster* cluster = nullptr;
  std::shared_ptr<Outcome> outcome;
  CpuCheckpointStore* store = nullptr;
  Checkpoint snapshot;  // Owner's full checkpoint (payload shared, not copied).
  int source = -1;      // Fabric endpoint the bytes come from (the owner for
                        // foreground replication, any holder for re-protection).
  int dest = -1;
  // Re-protection streams run concurrently with foreground checkpointing: a
  // newer commit clobbering this stream's in-progress write means the
  // redundancy goal was already met, so losing that race is success.
  bool tolerate_supersede = false;
  std::vector<ChunkAssignment> chunks;
  TimeNs alpha = 0;
  size_t next_send = 0;
  size_t committed_chunks = 0;
  // Received-side assembly target, leased from the pool for this stream's
  // lifetime and frozen into the committed checkpoint.
  std::shared_ptr<std::vector<float>> assembled;
  // Elements written through SliceFor; must tile the payload exactly.
  size_t assembled_elements = 0;

  // True when a write-path error just means a newer checkpoint landed first.
  bool Superseded() const {
    return tolerate_supersede &&
           store->LatestIteration(snapshot.owner_rank) >= snapshot.iteration;
  }

  // Payload slice [begin, end) corresponding to chunk k's byte range. Exact
  // integer arithmetic: element i covers logical bytes [i*total/count,
  // (i+1)*total/count), so floor(offset*count/total) maps a byte offset to
  // its element. Because each stream's chunk offsets are contiguous
  // (offset_{k+1} = offset_k + bytes_k, covering [0, total)), chunk k's end
  // equals chunk k+1's begin and the slices tile the payload with no overlap
  // or gap — the double-rounded version this replaces could do both.
  std::pair<size_t, size_t> SliceFor(const ChunkAssignment& chunk) const {
    const auto total = static_cast<uint64_t>(snapshot.logical_bytes);
    const auto count = static_cast<uint64_t>(snapshot.payload.size());
    if (total == 0 || count == 0) {
      return {0, 0};
    }
    assert(chunk.offset >= 0 && chunk.bytes >= 0 &&
           chunk.offset + chunk.bytes <= snapshot.logical_bytes);
    // 128-bit intermediate: offset*count can exceed 2^63 for TiB-scale
    // logical sizes with large test payloads.
    using U128 = unsigned __int128;
    const auto begin =
        static_cast<size_t>(static_cast<U128>(chunk.offset) * count / total);
    const auto end = static_cast<size_t>(
        static_cast<U128>(chunk.offset + chunk.bytes) * count / total);
    assert(begin <= end && end <= count);
    return {begin, end};
  }

  void SendNext() {
    if (outcome->failed || next_send >= chunks.size()) {
      return;
    }
    const size_t k = next_send++;
    const ChunkAssignment chunk = chunks[k];
    auto self = shared_from_this();
    const TimeNs sent_at = cluster->sim().now();
    Fabric::TransferOptions options;  // Checkpoint streams run at line rate.
    cluster->fabric().Transfer(
        source, dest, chunk.bytes, options, [self, chunk, sent_at](Status status) {
          if (!status.ok()) {
            self->outcome->Fail(std::move(status));
            return;
          }
          ++self->outcome->result.chunks_transferred;
          self->outcome->unflushed_chunks += 1;
          self->outcome->unflushed_bytes += chunk.bytes;
          if (self->outcome->failed) {
            // In-flight transfers that land after the pass already failed
            // still count (they did move bytes); no StreamFinished will run
            // for them, so flush immediately.
            self->outcome->FlushMetricBatch();
          }
          if (self->outcome->auditor != nullptr) {
            self->outcome->auditor->NoteBackgroundTransfer(chunk.span_index, chunk.bytes,
                                                           sent_at,
                                                           self->cluster->sim().now());
          }
          self->outcome->result.network_done =
              std::max(self->outcome->result.network_done, self->cluster->sim().now());
          // Stage the received chunk into CPU memory.
          self->cluster->pcie().Copy(self->dest, chunk.bytes, [self, chunk](Status copy_status) {
            if (!copy_status.ok()) {
              self->outcome->Fail(std::move(copy_status));
              return;
            }
            self->OnChunkCopied(chunk);
          });
        });
  }

  void OnChunkCopied(const ChunkAssignment& chunk) {
    if (outcome->failed) {
      return;
    }
    const Status appended = store->AppendChunk(snapshot.owner_rank, chunk.bytes);
    if (!appended.ok()) {
      if (Superseded()) {
        outcome->StreamFinished(cluster->sim().now());
        return;
      }
      outcome->Fail(appended);
      return;
    }
    const auto [begin, end] = SliceFor(chunk);
    std::copy(snapshot.payload.begin() + static_cast<std::ptrdiff_t>(begin),
              snapshot.payload.begin() + static_cast<std::ptrdiff_t>(end),
              assembled->begin() + static_cast<std::ptrdiff_t>(begin));
    assembled_elements += end - begin;
    if (++committed_chunks == chunks.size()) {
      // The chunk slices must have tiled the payload exactly — a mis-rounded
      // slice map would commit a replica that differs from the source.
      assert(assembled_elements == snapshot.payload.size());
      Checkpoint received = snapshot;  // O(1): metadata + shared payload ref.
      received.payload =
          PayloadRef(std::shared_ptr<const std::vector<float>>(std::move(assembled)));
      // Integrity gate: the digest stamped at capture must match the bytes
      // this stream reassembled. Crc32Parallel fans the pass across the
      // configured worker pool (per-segment CRCs combined in rank order —
      // the same value at any thread count); with the default
      // pipeline_threads = 1 it is one inline sequential pass.
      if (received.payload_crc != 0 &&
          Crc32Parallel(received.payload.data(), received.payload.size_bytes(),
                        outcome->workers) != received.payload_crc) {
        outcome->Fail(DataLossError("replica assembled for rank " +
                                    std::to_string(snapshot.owner_rank) +
                                    " failed its pre-commit CRC check"));
        return;
      }
      const Status committed = store->CommitWrite(std::move(received));
      if (!committed.ok()) {
        if (Superseded()) {
          outcome->StreamFinished(cluster->sim().now());
          return;
        }
        outcome->Fail(committed);
        return;
      }
      if (outcome->commits_counter != nullptr) {
        outcome->commits_counter->Increment();
      }
      outcome->StreamFinished(cluster->sim().now());
      return;
    }
    SendNext();  // Replenish the send window.
  }
};

// One owner->holder *delta* stream: ships only the delta bytes (in bounded
// fabric pieces), reassembles the chunk payloads on the receive side, gates
// every chunk on its capture-time CRC fingerprint, and appends the delta to
// the holder's redo chain.
struct DeltaStream : std::enable_shared_from_this<DeltaStream> {
  Cluster* cluster = nullptr;
  std::shared_ptr<Outcome> outcome;
  CpuCheckpointStore* store = nullptr;
  DeltaCheckpoint delta;  // Chunk payloads shared, not copied.
  int source = -1;
  int dest = -1;
  std::vector<Bytes> pieces;  // Fabric transfer sizes tiling delta_bytes.
  size_t next_send = 0;
  size_t landed = 0;
  PayloadPool* pool = nullptr;

  void SendNext() {
    if (outcome->failed || next_send >= pieces.size()) {
      return;
    }
    const Bytes piece = pieces[next_send++];
    auto self = shared_from_this();
    const TimeNs sent_at = cluster->sim().now();
    Fabric::TransferOptions options;
    cluster->fabric().Transfer(source, dest, piece, options, [self, piece,
                                                             sent_at](Status status) {
      if (!status.ok()) {
        self->outcome->Fail(std::move(status));
        return;
      }
      ++self->outcome->result.chunks_transferred;
      self->outcome->unflushed_chunks += 1;
      self->outcome->unflushed_bytes += piece;
      if (self->outcome->failed) {
        self->outcome->FlushMetricBatch();
      }
      self->outcome->result.network_done =
          std::max(self->outcome->result.network_done, self->cluster->sim().now());
      self->cluster->pcie().Copy(self->dest, piece, [self](Status copy_status) {
        if (!copy_status.ok()) {
          self->outcome->Fail(std::move(copy_status));
          return;
        }
        self->OnPieceLanded();
      });
    });
  }

  void OnPieceLanded() {
    if (outcome->failed) {
      return;
    }
    if (++landed < pieces.size()) {
      SendNext();
      return;
    }
    // All delta bytes are in CPU memory: reassemble the chunk payloads into
    // one fresh buffer (what actually crossed the wire), re-slice it, and
    // CRC-gate every chunk before the chain append.
    std::shared_ptr<std::vector<float>> buffer = pool->Acquire(delta.delta_elements());
    size_t cursor = 0;
    for (const DeltaChunk& chunk : delta.chunks) {
      std::copy(chunk.data.begin(), chunk.data.end(),
                buffer->begin() + static_cast<std::ptrdiff_t>(cursor));
      cursor += chunk.data.size();
    }
    const PayloadRef assembled(std::shared_ptr<const std::vector<float>>(std::move(buffer)));
    DeltaCheckpoint received = delta;
    cursor = 0;
    for (DeltaChunk& chunk : received.chunks) {
      const size_t count = chunk.data.size();
      chunk.data = assembled.Slice(cursor, count);
      cursor += count;
      if (Crc32(chunk.data.data(), chunk.data.size_bytes()) != chunk.crc) {
        outcome->Fail(DataLossError(
            "delta chunk assembled for rank " + std::to_string(delta.owner_rank) +
            " failed its pre-append CRC check"));
        return;
      }
    }
    const Status written = store->WriteDelta(std::move(received));
    if (!written.ok()) {
      outcome->Fail(written);
      return;
    }
    if (outcome->commits_counter != nullptr) {
      outcome->commits_counter->Increment();
    }
    outcome->StreamFinished(cluster->sim().now());
  }
};

}  // namespace

void ReplicateSnapshot(Cluster& cluster, const PlacementPlan& placement,
                       std::vector<CpuCheckpointStore*> stores,
                       const std::vector<Checkpoint>& snapshots,
                       const std::vector<ChunkAssignment>& chunks,
                       const ReplicatorConfig& config,
                       std::function<void(ReplicationOutcome)> done) {
  assert(static_cast<int>(stores.size()) == cluster.size());
  assert(static_cast<int>(snapshots.size()) == cluster.size());

  PayloadPool& pool = config.pool != nullptr ? *config.pool : DefaultAssemblyPool();
  auto outcome = std::make_shared<Outcome>();
  outcome->metrics = config.metrics;
  outcome->auditor = config.auditor;
  outcome->ResolveMetricHandles();
  outcome->AdoptWorkers(config);
  outcome->done = std::move(done);

  std::vector<std::shared_ptr<Stream>> streams;
  for (int owner = 0; owner < cluster.size(); ++owner) {
    if (!cluster.machine(owner).alive()) {
      continue;
    }
    const Checkpoint& snapshot = snapshots[static_cast<size_t>(owner)];
    const std::vector<int> destinations = placement.RemoteDestinations(owner);
    for (size_t replica = 0; replica < destinations.size(); ++replica) {
      const int dest = destinations[replica];
      if (!cluster.machine(dest).alive()) {
        continue;
      }
      auto stream = std::make_shared<Stream>();
      stream->cluster = &cluster;
      stream->outcome = outcome;
      stream->store = stores[static_cast<size_t>(dest)];
      stream->snapshot = snapshot;  // Shares the payload buffer.
      stream->source = owner;
      stream->dest = dest;
      stream->alpha = config.comm_alpha;
      stream->assembled = pool.Acquire(snapshot.payload.size());
      for (const ChunkAssignment& chunk : chunks) {
        if (chunk.replica_index == static_cast<int>(replica)) {
          stream->chunks.push_back(chunk);
        }
      }
      const Status begun = stream->store->BeginWrite(owner, snapshot.iteration);
      if (!begun.ok()) {
        outcome->Fail(begun);
        return;
      }
      streams.push_back(std::move(stream));
    }
    // Local replica: copies over the owner's *own* GPUs' PCIe links, which
    // the received-replica staging (modeled by the shared per-machine
    // engine) does not use — the paper's "no interference between the local
    // GPU-to-CPU copy of its own checkpoint and other checkpoints".
    ++outcome->pending_streams;
    const TimeNs local_copy =
        TransferTime(snapshot.logical_bytes, cluster.spec().gpu_cpu_copy_bandwidth);
    cluster.sim().ScheduleAfter(
        local_copy, [outcome, store = stores[static_cast<size_t>(owner)], snapshot, &cluster] {
          const Status written = store->WriteComplete(snapshot);
          if (!written.ok()) {
            outcome->Fail(written);
            return;
          }
          outcome->StreamFinished(cluster.sim().now());
        });
  }

  outcome->pending_streams += static_cast<int>(streams.size());
  for (const auto& stream : streams) {
    const int window = std::max(1, config.num_buffers);
    for (int i = 0; i < window; ++i) {
      stream->SendNext();
    }
  }
}

void ReplicateDeltaSnapshot(Cluster& cluster, const PlacementPlan& placement,
                            std::vector<CpuCheckpointStore*> stores,
                            const std::vector<Checkpoint>& snapshots,
                            const std::vector<std::optional<DeltaCheckpoint>>& deltas,
                            Bytes chunk_bytes, const ReplicatorConfig& config,
                            std::function<void(ReplicationOutcome)> done) {
  assert(static_cast<int>(stores.size()) == cluster.size());
  assert(static_cast<int>(snapshots.size()) == cluster.size());
  assert(static_cast<int>(deltas.size()) == cluster.size());

  PayloadPool& pool = config.pool != nullptr ? *config.pool : DefaultAssemblyPool();
  auto outcome = std::make_shared<Outcome>();
  outcome->metrics = config.metrics;
  outcome->auditor = config.auditor;
  outcome->ResolveMetricHandles();
  outcome->AdoptWorkers(config);
  outcome->done = std::move(done);

  // Tiles `total` into chunk_bytes-bounded fabric pieces (always at least
  // one, so a zero-byte delta still round-trips the data plane and commits).
  const auto make_pieces = [chunk_bytes](Bytes total) {
    std::vector<Bytes> pieces;
    const Bytes step = chunk_bytes > 0 ? std::min(chunk_bytes, std::max<Bytes>(total, 1)) : std::max<Bytes>(total, 1);
    Bytes offset = 0;
    do {
      pieces.push_back(std::min(step, total - offset));
      offset += step;
    } while (offset < total);
    return pieces;
  };

  std::vector<std::shared_ptr<Stream>> full_streams;
  std::vector<std::shared_ptr<DeltaStream>> delta_streams;
  for (int owner = 0; owner < cluster.size(); ++owner) {
    if (!cluster.machine(owner).alive()) {
      continue;
    }
    const Checkpoint& snapshot = snapshots[static_cast<size_t>(owner)];
    const std::optional<DeltaCheckpoint>& delta = deltas[static_cast<size_t>(owner)];
    for (const int dest : placement.RemoteDestinations(owner)) {
      if (!cluster.machine(dest).alive()) {
        continue;
      }
      CpuCheckpointStore* store = stores[static_cast<size_t>(dest)];
      if (delta.has_value() && store->incremental() &&
          store->ChainHeadIteration(owner) == delta->base_iteration) {
        auto stream = std::make_shared<DeltaStream>();
        stream->cluster = &cluster;
        stream->outcome = outcome;
        stream->store = store;
        stream->delta = *delta;  // Shares the chunk payload buffers.
        stream->source = owner;
        stream->dest = dest;
        stream->pieces = make_pieces(delta->delta_bytes);
        stream->pool = &pool;
        delta_streams.push_back(std::move(stream));
        continue;
      }
      // No compatible sealed base on this holder: full snapshot stream.
      auto stream = std::make_shared<Stream>();
      stream->cluster = &cluster;
      stream->outcome = outcome;
      stream->store = store;
      stream->snapshot = snapshot;  // Shares the payload buffer.
      stream->source = owner;
      stream->dest = dest;
      stream->alpha = config.comm_alpha;
      stream->assembled = pool.Acquire(snapshot.payload.size());
      const Bytes total = snapshot.logical_bytes;
      const Bytes step = chunk_bytes > 0 ? std::min(chunk_bytes, total) : total;
      for (Bytes offset = 0; offset < total; offset += step) {
        ChunkAssignment chunk;
        chunk.bytes = std::min(step, total - offset);
        chunk.offset = offset;
        stream->chunks.push_back(chunk);
      }
      const Status begun = store->BeginWrite(owner, snapshot.iteration);
      if (!begun.ok()) {
        outcome->Fail(begun);
        return;
      }
      full_streams.push_back(std::move(stream));
    }
    // Local replica over the owner's own PCIe links: delta-sized when the
    // local chain head matches, full otherwise.
    ++outcome->pending_streams;
    CpuCheckpointStore* local = stores[static_cast<size_t>(owner)];
    if (delta.has_value() && local->incremental() &&
        local->ChainHeadIteration(owner) == delta->base_iteration) {
      const TimeNs local_copy =
          TransferTime(delta->delta_bytes, cluster.spec().gpu_cpu_copy_bandwidth);
      cluster.sim().ScheduleAfter(local_copy,
                                  [outcome, local, delta = *delta, &cluster]() mutable {
                                    const Status written = local->WriteDelta(std::move(delta));
                                    if (!written.ok()) {
                                      outcome->Fail(written);
                                      return;
                                    }
                                    outcome->StreamFinished(cluster.sim().now());
                                  });
    } else {
      const TimeNs local_copy =
          TransferTime(snapshot.logical_bytes, cluster.spec().gpu_cpu_copy_bandwidth);
      cluster.sim().ScheduleAfter(local_copy, [outcome, local, snapshot, &cluster] {
        const Status written = local->WriteComplete(snapshot);
        if (!written.ok()) {
          outcome->Fail(written);
          return;
        }
        outcome->StreamFinished(cluster.sim().now());
      });
    }
  }

  outcome->pending_streams +=
      static_cast<int>(full_streams.size() + delta_streams.size());
  if (config.metrics != nullptr && !delta_streams.empty()) {
    config.metrics->counter("replicator.delta_streams")
        .Increment(static_cast<int64_t>(delta_streams.size()));
  }
  const int window = std::max(1, config.num_buffers);
  for (const auto& stream : full_streams) {
    for (int i = 0; i < window; ++i) {
      stream->SendNext();
    }
  }
  for (const auto& stream : delta_streams) {
    for (int i = 0; i < window; ++i) {
      stream->SendNext();
    }
  }
}

void ReprotectReplicas(Cluster& cluster, const PlacementPlan& placement,
                       std::vector<CpuCheckpointStore*> stores,
                       const std::vector<int>& target_ranks, Bytes chunk_bytes,
                       const ReplicatorConfig& config,
                       std::function<void(ReplicationOutcome)> done) {
  assert(static_cast<int>(stores.size()) == cluster.size());

  PayloadPool& pool = config.pool != nullptr ? *config.pool : DefaultAssemblyPool();
  auto outcome = std::make_shared<Outcome>();
  outcome->metrics = config.metrics;
  outcome->auditor = config.auditor;
  outcome->ResolveMetricHandles();
  outcome->AdoptWorkers(config);
  outcome->done = std::move(done);

  std::vector<std::shared_ptr<Stream>> streams;
  for (const int target : target_ranks) {
    if (!cluster.machine(target).alive()) {
      continue;  // Died again; a later pass will pick it up post-replacement.
    }
    for (int owner = 0; owner < cluster.size(); ++owner) {
      const auto& holders = placement.replica_sets[static_cast<size_t>(owner)];
      if (std::find(holders.begin(), holders.end(), target) == holders.end()) {
        continue;  // The target is not in this owner's replica set.
      }
      // Best alive source: the holder (or the owner itself) with the newest
      // CRC-verified copy of `owner`'s checkpoint.
      int source = -1;
      std::optional<Checkpoint> snapshot;
      for (const int candidate : holders) {
        if (candidate == target || !cluster.machine(candidate).alive()) {
          continue;
        }
        std::optional<Checkpoint> copy =
            stores[static_cast<size_t>(candidate)]->LatestVerified(owner);
        if (copy.has_value() &&
            (!snapshot.has_value() || copy->iteration > snapshot->iteration)) {
          source = candidate;
          snapshot = std::move(copy);
        }
      }
      if (!snapshot.has_value()) {
        continue;  // No surviving copy anywhere; nothing to re-protect from.
      }
      if (stores[static_cast<size_t>(target)]->LatestIteration(owner) >= snapshot->iteration) {
        continue;  // Already protected (a foreground commit got there first).
      }
      auto stream = std::make_shared<Stream>();
      stream->cluster = &cluster;
      stream->outcome = outcome;
      stream->store = stores[static_cast<size_t>(target)];
      stream->snapshot = *snapshot;  // Shares the payload buffer.
      stream->source = source;
      stream->dest = target;
      stream->tolerate_supersede = true;
      stream->alpha = config.comm_alpha;
      stream->assembled = pool.Acquire(snapshot->payload.size());
      const Bytes total = snapshot->logical_bytes;
      const Bytes step = chunk_bytes > 0 ? std::min(chunk_bytes, total) : total;
      for (Bytes offset = 0; offset < total; offset += step) {
        ChunkAssignment chunk;
        chunk.bytes = std::min(step, total - offset);
        chunk.offset = offset;
        stream->chunks.push_back(chunk);
      }
      const Status begun = stream->store->BeginWrite(owner, snapshot->iteration);
      if (!begun.ok()) {
        outcome->Fail(begun);
        return;
      }
      streams.push_back(std::move(stream));
    }
  }

  if (streams.empty()) {
    // Everything is already fully replicated (or nothing can be): report
    // success with zero traffic.
    outcome->result.status = Status::Ok();
    outcome->result.committed_at = cluster.sim().now();
    outcome->done(outcome->result);
    return;
  }

  outcome->pending_streams = static_cast<int>(streams.size());
  if (config.metrics != nullptr) {
    config.metrics->counter("replicator.reprotected_replicas")
        .Increment(static_cast<int64_t>(streams.size()));
  }
  for (const auto& stream : streams) {
    const int window = std::max(1, config.num_buffers);
    for (int i = 0; i < window; ++i) {
      stream->SendNext();
    }
  }
}

}  // namespace gemini
