#include "src/baselines/system_model.h"

#include <algorithm>
#include <cmath>

namespace gemini {
namespace {

// Serialization happens per machine in parallel; transfer shares the store's
// aggregate bandwidth.
TimeNs PersistentCheckpointTime(const CheckpointWorkload& workload) {
  const TimeNs serialize =
      TransferTime(workload.checkpoint_bytes_per_machine, workload.serialization_bandwidth);
  const TimeNs transfer =
      TransferTime(workload.total_checkpoint_bytes(), workload.persistent_bandwidth);
  return serialize + transfer;
}

TimeNs PersistentRetrievalTime(const CheckpointWorkload& workload) {
  return TransferTime(workload.total_checkpoint_bytes(), workload.persistent_bandwidth);
}

RecoveryOverheads BaselineOverheads() {
  RecoveryOverheads overheads;
  // Baselines load already-serialized checkpoints; no recovery-time
  // serialization. Replacement cost is excluded from wasted time (footnote 1)
  // and identical across systems with standby machines.
  overheads.checkpoint_serialization = 0;
  return overheads;
}

}  // namespace

double SystemModel::EffectiveTrainingRatio(double failures_per_day) const {
  // Steady-state decomposition: every checkpoint interval loses
  // `training_block_per_checkpoint` to serialization, and every failure
  // loses FailureCost().
  const double tax = checkpoint_interval > 0
                         ? static_cast<double>(training_block_per_checkpoint) /
                               static_cast<double>(checkpoint_interval)
                         : 0.0;
  const double day = 24.0 * static_cast<double>(kHour);
  const double failure_loss = failures_per_day * static_cast<double>(FailureCost()) / day;
  return std::max(0.0, (1.0 - tax) * (1.0 - failure_loss));
}

SystemModel BuildStrawman(const CheckpointWorkload& workload) {
  SystemModel model;
  model.name = "Strawman";
  model.checkpoint_time = PersistentCheckpointTime(workload);
  model.checkpoint_interval = Hours(3);  // BLOOM's schedule.
  model.training_block_per_checkpoint =
      TransferTime(workload.checkpoint_bytes_per_machine, workload.serialization_bandwidth);
  model.retrieval_time = PersistentRetrievalTime(workload);
  model.overheads = BaselineOverheads();
  return model;
}

SystemModel BuildHighFreq(const CheckpointWorkload& workload) {
  SystemModel model;
  model.name = "HighFreq";
  model.checkpoint_time = PersistentCheckpointTime(workload);
  // Constraint (2): one checkpoint at a time, aligned to iterations.
  const int64_t interval_iterations = std::max<int64_t>(
      1, (model.checkpoint_time + workload.iteration_time - 1) / workload.iteration_time);
  model.checkpoint_interval = interval_iterations * workload.iteration_time;
  model.training_block_per_checkpoint =
      TransferTime(workload.checkpoint_bytes_per_machine, workload.serialization_bandwidth);
  model.retrieval_time = PersistentRetrievalTime(workload);
  model.overheads = BaselineOverheads();
  return model;
}

SystemModel BuildGemini(const CheckpointWorkload& workload, int replaced_machines,
                        TimeNs gemini_checkpoint_time, bool standby_machines) {
  SystemModel model;
  model.name = "GEMINI";
  if (gemini_checkpoint_time > 0) {
    model.checkpoint_time = gemini_checkpoint_time;
  } else {
    // Back-to-back transmission of m-1 copies at line rate plus the drain of
    // the final chunk's GPU->CPU copy (approximated by one copy at the same
    // rate, which the paper measured comparable to the NIC).
    model.checkpoint_time =
        (workload.num_replicas - 1) *
            TransferTime(workload.checkpoint_bytes_per_machine, workload.nic_bandwidth) +
        TransferTime(workload.checkpoint_bytes_per_machine, workload.nic_bandwidth) /
            std::max(1, workload.num_replicas - 1) / 8;
  }
  // The checkpoint of iteration i completes within iteration i, so the
  // roll-back target is at most one iteration old: t_ckpt == T_iter for the
  // wasted-time accounting (this is how the paper arrives at 1.5 T_iter for
  // software failures).
  model.checkpoint_time = std::max(model.checkpoint_time, workload.iteration_time);
  model.checkpoint_interval = workload.iteration_time;
  model.training_block_per_checkpoint = 0;  // Interleaved into idle spans.
  if (replaced_machines == 0) {
    model.retrieval_time = 0;  // Local CPU memory.
  } else {
    // Replaced machines fetch their replica from a group peer.
    model.retrieval_time =
        workload.comm_alpha +
        TransferTime(workload.checkpoint_bytes_per_machine, workload.nic_bandwidth);
  }
  model.overheads.checkpoint_serialization =
      workload.num_replicas *
      TransferTime(workload.checkpoint_bytes_per_machine, workload.serialization_bandwidth);
  if (replaced_machines > 0) {
    model.overheads.machine_replacement = standby_machines ? Seconds(10) : Minutes(5.5);
  }
  return model;
}

SystemModel BuildGeminiPersistentFallback(const CheckpointWorkload& workload) {
  // An entire placement group was lost: recovery degrades to the Strawman
  // path (persistent checkpoints are taken every 3 hours in GEMINI too).
  SystemModel model = BuildStrawman(workload);
  model.name = "GEMINI (persistent fallback)";
  // GEMINI does not pay the per-checkpoint serialization tax during normal
  // operation (persistent checkpoints are rare), but the rolled-back
  // progress and retrieval match Strawman's.
  model.training_block_per_checkpoint = 0;
  return model;
}

}  // namespace gemini
