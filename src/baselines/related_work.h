// Related-work checkpointing systems (paper Section 8), modeled on the same
// workload/cost vocabulary as the primary baselines so they can share the
// Figure 10/12/15-style comparisons:
//
//  * DeepFreeze (Nicolae et al., CCGRID'20): asynchronous serialization +
//    upload to remote persistent storage. No per-checkpoint training stall,
//    but the frequency is still bottlenecked by the store's bandwidth, and
//    recovery still reads terabytes through it.
//  * CheckFreq (Mohan et al., FAST'21): fine-grained snapshots with a
//    dynamically tuned frequency that caps checkpoint overhead at a small
//    budget (3.5% in their paper). The snapshot itself is cheap (GPU-side
//    copy), but persistence and recovery go through the same remote store.
//  * Check-N-Run (Eisenman et al., NSDI'22): lossy compression shrinks the
//    persisted bytes by ~4x, buying frequency at the cost of compression
//    time and potential accuracy impact (which GEMINI avoids entirely).
//
// All three improve on Strawman/HighFreq along one axis while keeping the
// remote store on the recovery path — which is why none approaches GEMINI's
// wasted time.
#ifndef SRC_BASELINES_RELATED_WORK_H_
#define SRC_BASELINES_RELATED_WORK_H_

#include "src/baselines/system_model.h"

namespace gemini {

struct DeepFreezeOptions {
  // Fraction of the serialization that still stalls training (pipelined
  // copy-out; near zero by design).
  double blocking_fraction = 0.05;
};
SystemModel BuildDeepFreeze(const CheckpointWorkload& workload,
                            const DeepFreezeOptions& options = {});

struct CheckFreqOptions {
  // Maximum fraction of training time spent checkpointing.
  double overhead_budget = 0.035;
  // GPU-side snapshot bandwidth (device memory copy of the model states).
  BytesPerSecond snapshot_bandwidth = 100e9;
};
SystemModel BuildCheckFreq(const CheckpointWorkload& workload,
                           const CheckFreqOptions& options = {});

struct CheckNRunOptions {
  // Lossy compression factor on the persisted bytes.
  double compression_ratio = 4.0;
  // Compression throughput (stalls training like serialization does).
  BytesPerSecond compression_bandwidth = 2e9;
};
SystemModel BuildCheckNRun(const CheckpointWorkload& workload,
                           const CheckNRunOptions& options = {});

}  // namespace gemini

#endif  // SRC_BASELINES_RELATED_WORK_H_
