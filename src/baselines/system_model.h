// Analytic checkpointing-system models: Strawman, HighFreq, and GEMINI.
//
// Encodes the paper's cost accounting:
//  * Equation (1): T_wasted = t_ckpt + 1/(2f) + t_rtvl;
//  * constraint (2): 1/f >= max(t_ckpt, T_iter);
//  * the serialization tax baselines pay on every persistent checkpoint
//    (torch.save blocks training; ~81 s per HighFreq checkpoint);
//  * fixed per-failure overheads (Figure 14): detection, checkpoint
//    serialization at recovery, machine replacement, restart warmup.
//
// Strawman checkpoints every 3 hours (BLOOM's policy); HighFreq saturates
// the persistent store (every ceil(t_ckpt / T_iter) iterations); GEMINI
// checkpoints to CPU memory every iteration.
#ifndef SRC_BASELINES_SYSTEM_MODEL_H_
#define SRC_BASELINES_SYSTEM_MODEL_H_

#include <string>

#include "src/common/units.h"

namespace gemini {

// Everything the models need to know about the training job and storage.
struct CheckpointWorkload {
  TimeNs iteration_time = 0;
  Bytes checkpoint_bytes_per_machine = 0;
  int num_machines = 0;
  int num_replicas = 2;  // GEMINI's m.
  BytesPerSecond persistent_bandwidth = GbpsToBytesPerSecond(20);
  BytesPerSecond serialization_bandwidth = 0.93e9;
  BytesPerSecond nic_bandwidth = GbpsToBytesPerSecond(400);
  TimeNs comm_alpha = Micros(100);

  Bytes total_checkpoint_bytes() const {
    return checkpoint_bytes_per_machine * num_machines;
  }
};

// Per-failure fixed overheads (Figure 14 measurements).
struct RecoveryOverheads {
  TimeNs failure_detection = Seconds(15);
  // Serializing checkpoints with torch.save at recovery (GEMINI: two
  // replicas, 162 s for GPT-2 100B).
  TimeNs checkpoint_serialization = 0;
  // ASG replacement (0 for software failures or with standby machines).
  TimeNs machine_replacement = 0;
  TimeNs restart_warmup = Seconds(260);

  TimeNs total() const {
    return failure_detection + checkpoint_serialization + machine_replacement + restart_warmup;
  }
};

struct SystemModel {
  std::string name;
  // t_ckpt: end-to-end time for one checkpoint to become usable.
  TimeNs checkpoint_time = 0;
  // 1/f.
  TimeNs checkpoint_interval = 0;
  // Training stalled per checkpoint (serialization for the baselines).
  TimeNs training_block_per_checkpoint = 0;
  // t_rtvl for the system's typical recovery path.
  TimeNs retrieval_time = 0;
  RecoveryOverheads overheads;

  // Equation (1).
  TimeNs AverageWastedTime() const {
    return checkpoint_time + checkpoint_interval / 2 + retrieval_time;
  }
  // Wasted time plus fixed overheads: the full cost of one failure.
  TimeNs FailureCost() const { return AverageWastedTime() + overheads.total(); }
  // Steady-state fraction of wall-clock time that is productive training,
  // with `failures_per_day` expected failures.
  double EffectiveTrainingRatio(double failures_per_day) const;

  double checkpoints_per_hour() const {
    return static_cast<double>(kHour) / static_cast<double>(checkpoint_interval);
  }
};

// Strawman: 3-hour persistent checkpoints (BLOOM's schedule).
SystemModel BuildStrawman(const CheckpointWorkload& workload);

// HighFreq: persistent checkpoints as often as the store allows.
SystemModel BuildHighFreq(const CheckpointWorkload& workload);

// GEMINI checkpointing to CPU memory every iteration. `replaced_machines`
// selects the recovery path the retrieval/overhead columns describe:
//   0            -> software failure, local retrieval;
//   1..          -> hardware failure, retrieval from a group peer.
// `gemini_checkpoint_time` comes from the scheduler (planned transmission
// time); pass 0 to use the back-to-back estimate (m-1 copies at line rate).
SystemModel BuildGemini(const CheckpointWorkload& workload, int replaced_machines,
                        TimeNs gemini_checkpoint_time = 0, bool standby_machines = false);

// GEMINI's degraded path when an entire placement group is lost and recovery
// falls back to the remote persistent storage.
SystemModel BuildGeminiPersistentFallback(const CheckpointWorkload& workload);

}  // namespace gemini

#endif  // SRC_BASELINES_SYSTEM_MODEL_H_
