#include "src/baselines/related_work.h"

#include <algorithm>
#include <cmath>

#include "src/policy/cost_model.h"

namespace gemini {

SystemModel BuildDeepFreeze(const CheckpointWorkload& workload,
                            const DeepFreezeOptions& options) {
  SystemModel model;
  model.name = "DeepFreeze";
  const TimeNs serialize = SerializationStall(workload.checkpoint_bytes_per_machine,
                                              workload.serialization_bandwidth);
  const TimeNs upload =
      PersistentUploadTime(workload.total_checkpoint_bytes(), workload.persistent_bandwidth);
  // Serialization overlaps training; the end-to-end checkpoint time is still
  // serialize + upload, and one checkpoint must finish before the next.
  model.checkpoint_time = serialize + upload;
  model.checkpoint_interval =
      AlignUpToIterations(model.checkpoint_time, workload.iteration_time);
  model.training_block_per_checkpoint =
      static_cast<TimeNs>(options.blocking_fraction * static_cast<double>(serialize));
  model.retrieval_time =
      TransferTime(workload.total_checkpoint_bytes(), workload.persistent_bandwidth);
  return model;
}

SystemModel BuildCheckFreq(const CheckpointWorkload& workload,
                           const CheckFreqOptions& options) {
  SystemModel model;
  model.name = "CheckFreq";
  const TimeNs snapshot =
      SerializationStall(workload.checkpoint_bytes_per_machine, options.snapshot_bandwidth);
  const TimeNs upload =
      PersistentUploadTime(workload.total_checkpoint_bytes(), workload.persistent_bandwidth);
  model.checkpoint_time = snapshot + upload;
  // Frequency tuning: fast enough that overhead stays under the budget, but
  // never faster than the store can drain (the paper's own stated limit).
  model.checkpoint_interval = BudgetedInterval(snapshot, options.overhead_budget,
                                               model.checkpoint_time, workload.iteration_time);
  model.training_block_per_checkpoint = snapshot;
  model.retrieval_time =
      TransferTime(workload.total_checkpoint_bytes(), workload.persistent_bandwidth);
  return model;
}

SystemModel BuildCheckNRun(const CheckpointWorkload& workload,
                           const CheckNRunOptions& options) {
  SystemModel model;
  model.name = "Check-N-Run";
  const Bytes compressed_machine = static_cast<Bytes>(
      static_cast<double>(workload.checkpoint_bytes_per_machine) / options.compression_ratio);
  const Bytes compressed_total =
      compressed_machine * workload.num_machines;
  const TimeNs compress =
      TransferTime(workload.checkpoint_bytes_per_machine, options.compression_bandwidth);
  const TimeNs upload = TransferTime(compressed_total, workload.persistent_bandwidth);
  model.checkpoint_time = compress + upload;
  model.checkpoint_interval =
      AlignUpToIterations(model.checkpoint_time, workload.iteration_time);
  model.training_block_per_checkpoint = compress;
  // Recovery reads (and decompresses) the compressed bytes.
  model.retrieval_time = TransferTime(compressed_total, workload.persistent_bandwidth) +
                         TransferTime(workload.checkpoint_bytes_per_machine,
                                      options.compression_bandwidth);
  return model;
}

}  // namespace gemini
