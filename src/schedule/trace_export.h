// Chrome trace-event export of iteration timelines.
//
// Writes a timeline (training communication segments, idle spans, and
// optionally the checkpoint chunks a partition placed into them) as a
// chrome://tracing / Perfetto-compatible JSON file, so the Figure 4/5
// structure can be inspected interactively. Rows:
//   pid 1 "network"    — training bursts ('#' in the ASCII visualizer)
//   pid 1 "checkpoint" — scheduled chunk transmissions
//   pid 1 "idle"       — the gaps Algorithm 2 budgets against
#ifndef SRC_SCHEDULE_TRACE_EXPORT_H_
#define SRC_SCHEDULE_TRACE_EXPORT_H_

#include <string>

#include "src/common/status.h"
#include "src/schedule/partition.h"
#include "src/training/timeline.h"

namespace gemini {

// Serializes the trace to a JSON string (trace-event "traceEvents" array).
std::string TimelineToChromeTrace(const IterationTimeline& timeline,
                                  const PartitionResult& partition,
                                  BytesPerSecond checkpoint_bandwidth, TimeNs comm_alpha);

// Writes the trace to `path`. Fails with kUnavailable on I/O errors.
Status WriteChromeTrace(const std::string& path, const IterationTimeline& timeline,
                        const PartitionResult& partition,
                        BytesPerSecond checkpoint_bandwidth, TimeNs comm_alpha);

}  // namespace gemini

#endif  // SRC_SCHEDULE_TRACE_EXPORT_H_
