#include "src/schedule/partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace gemini {
namespace {

Status ValidateParams(const PartitionParams& params) {
  if (params.idle_spans.empty()) {
    return InvalidArgumentError("partitioning requires at least one idle span");
  }
  if (params.checkpoint_bytes <= 0) {
    return InvalidArgumentError("checkpoint size must be positive");
  }
  if (params.num_remote_replicas < 0) {
    return InvalidArgumentError("remote replica count cannot be negative");
  }
  if (params.reserved_buffer <= 0 || params.num_buffers <= 0) {
    return InvalidArgumentError("reserved buffer and sub-buffer count must be positive");
  }
  if (params.bandwidth <= 0) {
    return InvalidArgumentError("bandwidth must be positive");
  }
  if (params.gamma <= 0.0 || params.gamma > 1.0) {
    return InvalidArgumentError("gamma must be in (0, 1]");
  }
  return Status::Ok();
}

// f(s) = alpha + s/B.
TimeNs ChunkTime(Bytes size, const PartitionParams& params) {
  return params.alpha + TransferTime(size, params.bandwidth);
}

}  // namespace

StatusOr<PartitionResult> PartitionCheckpoint(const PartitionParams& params) {
  GEMINI_RETURN_IF_ERROR(ValidateParams(params));

  PartitionResult result;
  result.planned_span_cost.assign(params.idle_spans.size(), 0);
  if (params.num_remote_replicas == 0) {
    return result;  // Nothing to transmit (m == 1: local replica only).
  }

  const Bytes max_chunk = params.reserved_buffer / params.num_buffers;
  if (max_chunk <= 0) {
    return InvalidArgumentError("reserved buffer too small for the sub-buffer count");
  }
  const TimeNs max_chunk_time = ChunkTime(max_chunk, params);

  int replica = 0;                              // cpkt_id
  Bytes remain_size = params.checkpoint_bytes;  // Remaining bytes of current copy.
  Bytes offset = 0;
  TimeNs final_span_used = 0;  // Transmission time placed in the final span.
  bool done = false;

  const int num_spans = static_cast<int>(params.idle_spans.size());
  for (int span = 0; span < num_spans && !done; ++span) {
    const bool last_span = span == num_spans - 1;
    // Paper line 2: the final span is treated as unbounded so unfinished
    // traffic lands there (and may prolong the iteration).
    double remain_span =
        last_span
            ? std::numeric_limits<double>::infinity()
            : params.gamma *
                  static_cast<double>(params.idle_spans[static_cast<size_t>(span)].length);
    while (remain_span > 0) {
      Bytes size;
      if (remain_span > static_cast<double>(max_chunk_time)) {
        size = max_chunk;
      } else {
        const double usable_ns = remain_span - static_cast<double>(params.alpha);
        size = std::max<Bytes>(
            0, static_cast<Bytes>(usable_ns / static_cast<double>(kSecond) * params.bandwidth));
      }
      size = std::min(size, remain_size);
      if (size <= 0) {
        break;  // Span exhausted (cannot even cover alpha).
      }
      const TimeNs cost = ChunkTime(size, params);
      remain_size -= size;
      remain_span -= static_cast<double>(cost);
      result.chunks.push_back(ChunkAssignment{span, size, replica, offset});
      result.max_chunk_bytes = std::max(result.max_chunk_bytes, size);
      result.planned_transmission_time += cost;
      result.planned_span_cost[static_cast<size_t>(span)] += cost;
      if (last_span) {
        final_span_used += cost;
      }
      offset += size;
      if (remain_size == 0) {
        if (replica < params.num_remote_replicas - 1) {
          ++replica;
          remain_size = params.checkpoint_bytes;
          offset = 0;
        } else {
          done = true;
          break;
        }
      }
    }
  }

  if (!done) {
    // Unreachable in practice: the final span is unbounded, so placement only
    // stalls on pathological inputs already rejected by validation.
    return InternalError("partitioning stalled before covering all replicas");
  }

  // The plan "fits" when whatever landed in the final span still fits that
  // span's real (gamma-discounted) budget.
  const TimeNs final_budget = static_cast<TimeNs>(
      params.gamma * static_cast<double>(params.idle_spans.back().length));
  result.fits_within_idle_time = final_span_used <= final_budget;
  return result;
}

StatusOr<PartitionResult> PartitionOneChunkPerSpan(const PartitionParams& params) {
  GEMINI_RETURN_IF_ERROR(ValidateParams(params));

  PartitionResult result;
  result.planned_span_cost.assign(params.idle_spans.size(), 0);
  if (params.num_remote_replicas == 0) {
    return result;
  }
  const Bytes copy_bytes = params.checkpoint_bytes;
  Bytes remaining = copy_bytes * params.num_remote_replicas;
  Bytes done_bytes = 0;
  TimeNs final_span_used = 0;
  const int num_spans = static_cast<int>(params.idle_spans.size());

  auto place = [&](int span, Bytes size, bool last_span) {
    // Chunks never straddle a replica boundary.
    const int replica = static_cast<int>(done_bytes / copy_bytes);
    const Bytes offset = done_bytes % copy_bytes;
    size = std::min(size, copy_bytes - offset);
    const TimeNs cost = ChunkTime(size, params);
    result.chunks.push_back(ChunkAssignment{span, size, replica, offset});
    result.max_chunk_bytes = std::max(result.max_chunk_bytes, size);
    result.planned_transmission_time += cost;
    result.planned_span_cost[static_cast<size_t>(span)] += cost;
    if (last_span) {
      final_span_used += cost;
    }
    done_bytes += size;
    remaining -= size;
  };

  for (int span = 0; span < num_spans - 1 && remaining > 0; ++span) {
    const double budget_ns =
        params.gamma * static_cast<double>(params.idle_spans[static_cast<size_t>(span)].length) -
        static_cast<double>(params.alpha);
    if (budget_ns <= 0) {
      continue;
    }
    const Bytes size = std::min<Bytes>(
        remaining,
        static_cast<Bytes>(budget_ns / static_cast<double>(kSecond) * params.bandwidth));
    if (size <= 0) {
      continue;
    }
    place(span, size, /*last_span=*/false);
  }
  // Everything left spills into the final span (possibly several chunks when
  // replica boundaries intervene).
  while (remaining > 0) {
    place(num_spans - 1, remaining, /*last_span=*/true);
  }
  const TimeNs final_budget = static_cast<TimeNs>(
      params.gamma * static_cast<double>(params.idle_spans.back().length));
  result.fits_within_idle_time = final_span_used <= final_budget;
  return result;
}

}  // namespace gemini
