#include "src/schedule/generic_executor.h"

#include <algorithm>
#include <limits>

namespace gemini {

GenericExecutionResult ExecuteOnTimeline(const GenericExecutorParams& params) {
  GenericExecutionResult result;
  result.status = Status::Ok();
  result.baseline_iteration_time = params.timeline.iteration_time;

  PartitionParams partition_params;
  partition_params.idle_spans = params.timeline.idle_spans;
  partition_params.checkpoint_bytes = params.checkpoint_bytes;
  partition_params.num_remote_replicas = params.num_replicas - 1;
  partition_params.reserved_buffer =
      params.reserved_buffer_per_gpu * params.instance.num_gpus;
  partition_params.num_buffers = params.num_buffers;
  partition_params.bandwidth = params.instance.network_bandwidth;
  partition_params.alpha = params.comm_alpha;
  partition_params.gamma = params.gamma;

  StatusOr<PartitionResult> partition = PartitionCheckpoint(partition_params);
  if (!partition.ok()) {
    result.status = partition.status();
    return result;
  }
  result.partition = std::move(partition).value();

  const std::vector<ChunkAssignment>& chunks = result.partition.chunks;
  const int pipeline = params.num_buffers;
  std::vector<TimeNs> copy_done(chunks.size(), 0);

  TimeNs net_free = 0;
  TimeNs pcie_free = 0;
  TimeNs shift = 0;  // Rigid downstream shift from accumulated interference.
  size_t next_chunk = 0;
  TimeNs last_recv_end = 0;
  TimeNs last_copy_end = 0;

  auto chunk_ready = [&](size_t k) {
    TimeNs ready =
        params.timeline.idle_spans[static_cast<size_t>(chunks[k].span_index)].start + shift;
    if (k >= static_cast<size_t>(pipeline)) {
      ready = std::max(ready, copy_done[k - static_cast<size_t>(pipeline)]);
    }
    return ready;
  };
  auto receive_chunk = [&](size_t k) {
    const Bytes bytes = chunks[k].bytes;
    const TimeNs start = std::max(net_free, chunk_ready(k));
    const TimeNs recv_end =
        start + params.comm_alpha + TransferTime(bytes, params.instance.network_bandwidth);
    net_free = recv_end;
    last_recv_end = recv_end;
    const TimeNs copy_start = std::max(pcie_free, recv_end);
    const TimeNs copy_end =
        copy_start + TransferTime(bytes, params.instance.gpu_cpu_copy_bandwidth);
    pcie_free = copy_end;
    copy_done[k] = copy_end;
    last_copy_end = std::max(last_copy_end, copy_end);
  };
  auto drain_chunks_before = [&](TimeNs training_issue) {
    while (next_chunk < chunks.size() && chunk_ready(next_chunk) < training_issue) {
      receive_chunk(next_chunk);
      ++next_chunk;
    }
  };

  for (const CommSegment& segment : params.timeline.comm) {
    const TimeNs issue = segment.start + shift;
    drain_chunks_before(issue);
    const TimeNs start = std::max(net_free, issue);
    shift += start - issue;
    net_free = start + segment.duration;
  }
  drain_chunks_before(std::numeric_limits<TimeNs>::max());

  const TimeNs update_end = params.timeline.iteration_time + shift;
  result.checkpoint_network_done = last_recv_end;
  const TimeNs local_copy =
      TransferTime(params.checkpoint_bytes, params.instance.gpu_cpu_copy_bandwidth);
  result.checkpoint_done = std::max(last_copy_end, local_copy);
  result.iteration_time = std::max(update_end, result.checkpoint_network_done);
  result.checkpoint_within_iteration = result.checkpoint_done <= result.iteration_time;
  result.overhead_fraction = static_cast<double>(result.iteration_time) /
                                 static_cast<double>(result.baseline_iteration_time) -
                             1.0;
  return result;
}

}  // namespace gemini
