// Iteration execution with interleaved checkpoint traffic.
//
// Replays the ZeRO-3 dependency walk of one training iteration on a
// representative machine while checkpoint chunks contend for the same NIC
// (FIFO, like the Fabric model) and for GPU->CPU copy sub-buffers. This is
// where the paper's Figure 5/16 phenomena come from:
//   * Blocking: the whole checkpoint transmits at iteration start and delays
//     every training collective behind it;
//   * Naive interleave: one huge chunk per idle span needs a GPU staging
//     buffer larger than free GPU memory -> OOM;
//   * Interleave w/o pipeline: a received chunk's GPU->CPU copy must finish
//     before the next chunk can be received (single buffer), creating
//     communication bubbles that overflow the idle spans;
//   * Pipelined (GEMINI): p sub-buffers let copies overlap the next receive,
//     so the planned chunks fit and training is undisturbed.
//
// Symmetry: every machine sends m-1 replicas and receives m-1 replicas, so
// one machine's walk describes the cluster. The local GPU->CPU copy of the
// machine's own checkpoint runs on its own PCIe links (8 GPUs' worth) and is
// tracked separately.
#ifndef SRC_SCHEDULE_EXECUTOR_H_
#define SRC_SCHEDULE_EXECUTOR_H_

#include <vector>

#include "src/common/status.h"
#include "src/schedule/partition.h"
#include "src/training/timeline.h"

namespace gemini {

enum class InterleaveScheme {
  kNone,                  // Baseline: no checkpointing.
  kBlocking,              // Figure 5b / 16 "Blocking".
  kNaiveInterleave,       // Figure 16 "Naive interleave" (OOM).
  kInterleaveNoPipeline,  // Figure 5c / 16 "Interleave w/o pipeline".
  kPipelined,             // Figure 5d: GEMINI.
};

std::string_view InterleaveSchemeName(InterleaveScheme scheme);

struct ExecutorParams {
  TimelineParams timeline;
  InterleaveScheme scheme = InterleaveScheme::kPipelined;
  // Total replica count m (m-1 remote copies are transmitted).
  int num_replicas = 2;
  // Reserved checkpoint communication buffer per GPU (paper: 128 MiB) and
  // sub-buffer count p (paper: 4 x 32 MiB; kInterleaveNoPipeline forces 1).
  Bytes reserved_buffer_per_gpu = MiB(128);
  int num_buffers = 4;
  double gamma = 0.7;
  // Free GPU memory available for staging beyond the reserved buffer. The
  // paper observes only "a few hundred MB" free per GPU during large-model
  // training; the naive scheme OOMs when its per-GPU chunk share exceeds
  // this.
  Bytes gpu_free_memory_per_gpu = MiB(384);
  // Profiled idle spans; when empty, the nominal timeline's spans are used.
  std::vector<IdleSpan> profiled_spans;
  // When positive, overrides the per-iteration checkpoint traffic size
  // (used by frequency adaptation to spread one checkpoint across several
  // iterations: each iteration carries C/k bytes per replica).
  Bytes checkpoint_bytes_override = 0;
};

struct ExecutionResult {
  Status status;  // kResourceExhausted for the naive scheme's OOM.
  TimeNs baseline_iteration_time = 0;
  TimeNs iteration_time = 0;
  // Completion of the last chunk's network receive / of everything
  // (including GPU->CPU copies and the local replica copy).
  TimeNs checkpoint_network_done = 0;
  TimeNs checkpoint_done = 0;
  bool checkpoint_within_iteration = false;
  double overhead_fraction = 0.0;  // iteration_time / baseline - 1.
  Bytes required_buffer_per_gpu = 0;
  PartitionResult partition;
};

// Runs the walk. Always fills baseline_iteration_time; on OOM, `status` is
// non-OK and the interleaved quantities are unset.
ExecutionResult ExecuteIterationWithCheckpoint(const ExecutorParams& params);

// Checkpoint-frequency adaptation (paper Section 5.3, "Finish checkpointing
// within an iteration"): when the full checkpoint traffic does not fit one
// iteration's idle spans without delaying training, GEMINI lowers the
// frequency — each iteration carries 1/k of the traffic and a checkpoint
// completes every k iterations. Returns the smallest k (up to max_interval)
// whose per-iteration execution stays under `max_overhead` and fits; if even
// max_interval overflows, returns it with the best-effort execution.
struct FrequencyDecision {
  int interval_iterations = 1;
  ExecutionResult execution;  // Per-iteration execution at that frequency.
};
FrequencyDecision ChooseCheckpointFrequency(const ExecutorParams& params,
                                            double max_overhead = 0.005,
                                            int max_interval = 64);

}  // namespace gemini

#endif  // SRC_SCHEDULE_EXECUTOR_H_
