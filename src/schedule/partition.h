// Checkpoint partitioning (paper Section 5.3, Algorithm 2).
//
// Given the profiled idle timespans of one training iteration, the size C of
// a checkpoint, the number of remote replicas m-1, the reserved GPU buffer R
// split into p sub-buffers, and the transfer cost f(s) = alpha + s/B, the
// algorithm decides how many chunk transmissions of what size to place in
// each idle span. A coefficient gamma in (0,1) discounts each span for
// iteration-to-iteration variance. The final span is treated as unbounded
// (paper line 2: t[d] = +inf): traffic that does not fit in the real spans
// spills there and prolongs the iteration.
#ifndef SRC_SCHEDULE_PARTITION_H_
#define SRC_SCHEDULE_PARTITION_H_

#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/training/timeline.h"

namespace gemini {

struct PartitionParams {
  // Profiled idle spans, ordered by start (from ProfileIdleSpans).
  std::vector<IdleSpan> idle_spans;
  // Checkpoint size C (one machine's model states).
  Bytes checkpoint_bytes = 0;
  // Remote replica count m-1 (each is a full extra checkpoint of traffic).
  int num_remote_replicas = 1;
  // Total reserved GPU buffer R (machine level) and sub-buffer count p; the
  // maximum chunk size is R/p.
  Bytes reserved_buffer = 0;
  int num_buffers = 4;
  // Checkpoint streams run at full line rate.
  BytesPerSecond bandwidth = 0;
  TimeNs alpha = 0;
  // Span-variance safety coefficient, gamma in (0, 1].
  double gamma = 0.7;
};

struct ChunkAssignment {
  // Index into PartitionParams::idle_spans.
  int span_index = -1;
  Bytes bytes = 0;
  // Which remote replica copy this chunk belongs to (0 .. m-2).
  int replica_index = 0;
  // Offset of this chunk within its replica's checkpoint.
  Bytes offset = 0;
};

struct PartitionResult {
  std::vector<ChunkAssignment> chunks;
  // True when all traffic fit in the gamma-discounted real spans; false when
  // chunks spilled into the artificial unbounded final span.
  bool fits_within_idle_time = true;
  // Largest chunk produced (<= R/p by construction).
  Bytes max_chunk_bytes = 0;
  // Planned transmission time summed over chunks (sum of f(size)).
  TimeNs planned_transmission_time = 0;
  // Per-span planned cost: planned_span_cost[i] is the sum of f(size) over
  // chunks assigned to idle_spans[i]. Indexed like PartitionParams::idle_spans;
  // the interference auditor compares these against observed span lengths to
  // attribute iteration-time inflation to specific chunks.
  std::vector<TimeNs> planned_span_cost;
};

// Algorithm 2. Fails with kInvalidArgument on degenerate inputs (no spans,
// non-positive buffer/bandwidth).
//
// Fidelity note: the paper's pseudocode updates the remaining span with
// f(remain_size) (line 17); we subtract f(size) — the cost of the chunk just
// placed — which is the only reading under which the span budget arithmetic
// terminates and matches the surrounding prose.
StatusOr<PartitionResult> PartitionCheckpoint(const PartitionParams& params);

// Convenience: the single-chunk-per-span partitioning of the "Naive
// interleave" scheme (Figure 16), which requires a buffer as large as the
// biggest gamma-discounted span can carry.
StatusOr<PartitionResult> PartitionOneChunkPerSpan(const PartitionParams& params);

}  // namespace gemini

#endif  // SRC_SCHEDULE_PARTITION_H_
