// Checkpoint interleaving on arbitrary iteration timelines.
//
// ExecuteIterationWithCheckpoint (executor.h) replays the ZeRO-3 dependency
// walk exactly; this generic variant takes *any* IterationTimeline (data
// parallel, pipeline parallel, or a measured trace) and schedules Algorithm
// 2's chunks into its idle spans under a rigid-shift interference model:
// when checkpoint traffic delays a training communication segment, all
// later segments shift by the same amount (communication gates computation
// downstream). This is what makes GEMINI's scheduling applicable to the
// parallelism strategies the paper defers to future work (Section 9).
#ifndef SRC_SCHEDULE_GENERIC_EXECUTOR_H_
#define SRC_SCHEDULE_GENERIC_EXECUTOR_H_

#include "src/cluster/instance_spec.h"
#include "src/schedule/partition.h"
#include "src/training/timeline.h"

namespace gemini {

struct GenericExecutorParams {
  IterationTimeline timeline;
  InstanceSpec instance;
  // One machine's checkpoint size and the replica count m.
  Bytes checkpoint_bytes = 0;
  int num_replicas = 2;
  Bytes reserved_buffer_per_gpu = MiB(128);
  int num_buffers = 4;
  double gamma = 0.7;
  TimeNs comm_alpha = Micros(100);
};

struct GenericExecutionResult {
  Status status;
  TimeNs baseline_iteration_time = 0;
  TimeNs iteration_time = 0;
  TimeNs checkpoint_network_done = 0;
  TimeNs checkpoint_done = 0;
  bool checkpoint_within_iteration = false;
  double overhead_fraction = 0.0;
  PartitionResult partition;
};

GenericExecutionResult ExecuteOnTimeline(const GenericExecutorParams& params);

}  // namespace gemini

#endif  // SRC_SCHEDULE_GENERIC_EXECUTOR_H_
