#include "src/schedule/executor.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace gemini {

std::string_view InterleaveSchemeName(InterleaveScheme scheme) {
  switch (scheme) {
    case InterleaveScheme::kNone:
      return "baseline";
    case InterleaveScheme::kBlocking:
      return "blocking";
    case InterleaveScheme::kNaiveInterleave:
      return "naive_interleave";
    case InterleaveScheme::kInterleaveNoPipeline:
      return "interleave_no_pipeline";
    case InterleaveScheme::kPipelined:
      return "gemini_pipelined";
  }
  return "unknown";
}

namespace {

// Walks the ZeRO-3 iteration structure, optionally interleaving checkpoint
// chunks, and reports when everything finished.
class IterationWalk {
 public:
  IterationWalk(const ExecutorParams& params, std::vector<ChunkAssignment> chunks,
                std::vector<TimeNs> chunk_request_times, int pipeline_depth)
      : params_(params),
        costs_(ComputeLayerCosts(params.timeline)),
        chunks_(std::move(chunks)),
        chunk_request_(std::move(chunk_request_times)),
        pipeline_depth_(pipeline_depth),
        copy_bandwidth_(params.timeline.instance.gpu_cpu_copy_bandwidth),
        ckpt_bandwidth_(params.timeline.instance.network_bandwidth),
        alpha_(params.timeline.comm_alpha) {
    copy_done_.assign(chunks_.size(), 0);
  }

  // Runs the full iteration (same grouped walk as BuildZero3Timeline).
  void Run(bool blocking_prologue) {
    if (blocking_prologue) {
      // Figure 4b: the whole checkpoint transmits before training begins.
      DrainChunks(std::numeric_limits<TimeNs>::max());
      net_free_ = std::max(net_free_, last_recv_end_);
    }

    std::vector<int> group_sizes;
    for (int remaining = params_.timeline.model.num_layers; remaining > 0;) {
      const int size = std::min(remaining, params_.timeline.comm_group_layers);
      group_sizes.push_back(size);
      remaining -= size;
    }
    const int num_groups = static_cast<int>(group_sizes.size());

    // Forward pass.
    TimeNs next_issue = 0;
    for (int group = 0; group < num_groups; ++group) {
      const int layers = group_sizes[static_cast<size_t>(group)];
      const TimeNs ag_done = PushTrainingComm(next_issue, costs_.all_gather * layers);
      const TimeNs compute_start = std::max(compute_free_, ag_done);
      compute_free_ = compute_start + costs_.forward_compute * layers;
      next_issue = compute_start;
    }
    // Backward pass.
    TimeNs bwd_ag_issue = compute_free_;
    TimeNs pending_rs_issue = -1;
    TimeNs last_rs_end = 0;
    int pending_rs_group = -1;
    for (int group = num_groups - 1; group >= 0; --group) {
      const int layers = group_sizes[static_cast<size_t>(group)];
      const TimeNs ag_done = PushTrainingComm(bwd_ag_issue, costs_.all_gather * layers);
      if (pending_rs_group >= 0) {
        const int rs_layers = group_sizes[static_cast<size_t>(pending_rs_group)];
        last_rs_end = PushTrainingComm(pending_rs_issue, costs_.reduce_scatter * rs_layers);
      }
      const TimeNs compute_start = std::max(compute_free_, ag_done);
      compute_free_ = compute_start + costs_.backward_compute * layers;
      bwd_ag_issue = compute_start;
      pending_rs_issue = compute_free_;
      pending_rs_group = group;
    }
    last_rs_end = PushTrainingComm(
        pending_rs_issue,
        costs_.reduce_scatter * group_sizes[static_cast<size_t>(pending_rs_group)]);

    // Optimizer update; remaining chunks drain during/after it.
    const TimeNs update_start = std::max(compute_free_, last_rs_end);
    update_end_ = update_start + ComputeUpdateDuration(params_.timeline);
    DrainChunks(std::numeric_limits<TimeNs>::max());
  }

  TimeNs update_end() const { return update_end_; }
  TimeNs last_recv_end() const { return last_recv_end_; }
  TimeNs last_copy_end() const { return last_copy_end_; }

 private:
  // Chunk k may start receiving once (a) its scheduled request time arrived
  // and (b) its sub-buffer slot was drained by the copy of chunk k - p.
  TimeNs ChunkReady(size_t k) const {
    TimeNs ready = chunk_request_[k];
    if (pipeline_depth_ > 0 && k >= static_cast<size_t>(pipeline_depth_)) {
      ready = std::max(ready, copy_done_[k - static_cast<size_t>(pipeline_depth_)]);
    }
    return ready;
  }

  void ReceiveChunk(size_t k) {
    const Bytes bytes = chunks_[k].bytes;
    const TimeNs start = std::max(net_free_, ChunkReady(k));
    const TimeNs recv_end = start + alpha_ + TransferTime(bytes, ckpt_bandwidth_);
    net_free_ = recv_end;
    last_recv_end_ = recv_end;
    const TimeNs copy_start = std::max(pcie_free_, recv_end);
    const TimeNs copy_end = copy_start + TransferTime(bytes, copy_bandwidth_);
    pcie_free_ = copy_end;
    copy_done_[k] = copy_end;
    last_copy_end_ = std::max(last_copy_end_, copy_end);
  }

  // Processes queued chunks whose request precedes a training op issued at
  // `training_issue` (NIC FIFO by request arrival).
  void DrainChunks(TimeNs training_issue) {
    while (next_chunk_ < chunks_.size() && ChunkReady(next_chunk_) < training_issue) {
      ReceiveChunk(next_chunk_);
      ++next_chunk_;
    }
  }

  TimeNs PushTrainingComm(TimeNs issue, TimeNs duration) {
    DrainChunks(issue);
    const TimeNs start = std::max(net_free_, issue);
    const TimeNs end = start + duration;
    net_free_ = end;
    return end;
  }

  const ExecutorParams& params_;
  LayerCosts costs_;
  std::vector<ChunkAssignment> chunks_;
  std::vector<TimeNs> chunk_request_;
  int pipeline_depth_;
  BytesPerSecond copy_bandwidth_;
  BytesPerSecond ckpt_bandwidth_;
  TimeNs alpha_;

  TimeNs net_free_ = 0;
  TimeNs compute_free_ = 0;
  TimeNs pcie_free_ = 0;
  std::vector<TimeNs> copy_done_;
  size_t next_chunk_ = 0;
  TimeNs update_end_ = 0;
  TimeNs last_recv_end_ = 0;
  TimeNs last_copy_end_ = 0;
};

}  // namespace

ExecutionResult ExecuteIterationWithCheckpoint(const ExecutorParams& params) {
  ExecutionResult result;
  result.status = Status::Ok();

  const InstanceSpec& instance = params.timeline.instance;
  const IterationTimeline nominal = BuildZero3Timeline(params.timeline);
  result.baseline_iteration_time = nominal.iteration_time;

  if (params.scheme == InterleaveScheme::kNone) {
    result.iteration_time = nominal.iteration_time;
    result.overhead_fraction = 0.0;
    return result;
  }

  const std::vector<IdleSpan>& spans =
      params.profiled_spans.empty() ? nominal.idle_spans : params.profiled_spans;

  const Bytes checkpoint_bytes =
      params.checkpoint_bytes_override > 0
          ? params.checkpoint_bytes_override
          : params.timeline.model.CheckpointBytesPerMachine(params.timeline.num_machines);
  const Bytes reserved_machine = params.reserved_buffer_per_gpu * instance.num_gpus;

  PartitionParams partition_params;
  partition_params.idle_spans = spans;
  partition_params.checkpoint_bytes = checkpoint_bytes;
  partition_params.num_remote_replicas = params.num_replicas - 1;
  partition_params.reserved_buffer = reserved_machine;
  partition_params.bandwidth = instance.network_bandwidth;
  partition_params.alpha = params.timeline.comm_alpha;
  partition_params.gamma = params.gamma;

  int pipeline_depth = params.num_buffers;
  StatusOr<PartitionResult> partition = InternalError("unset");
  switch (params.scheme) {
    case InterleaveScheme::kBlocking:
      // Whole checkpoint streamed up front through a single staging buffer.
      partition_params.num_buffers = 1;
      pipeline_depth = 1;
      partition = PartitionCheckpoint(partition_params);
      break;
    case InterleaveScheme::kNaiveInterleave:
      partition_params.num_buffers = 1;
      pipeline_depth = 1;
      partition = PartitionOneChunkPerSpan(partition_params);
      break;
    case InterleaveScheme::kInterleaveNoPipeline:
      partition_params.num_buffers = 1;
      pipeline_depth = 1;
      partition = PartitionCheckpoint(partition_params);
      break;
    case InterleaveScheme::kPipelined:
      partition_params.num_buffers = params.num_buffers;
      pipeline_depth = params.num_buffers;
      partition = PartitionCheckpoint(partition_params);
      break;
    case InterleaveScheme::kNone:
      break;  // Handled above.
  }
  if (!partition.ok()) {
    result.status = partition.status();
    return result;
  }
  result.partition = std::move(partition).value();

  // Staging memory demand per GPU (checkpoints are sharded over all GPUs).
  result.required_buffer_per_gpu =
      (result.partition.max_chunk_bytes + instance.num_gpus - 1) / instance.num_gpus;
  if (params.scheme == InterleaveScheme::kNaiveInterleave) {
    if (result.required_buffer_per_gpu > params.gpu_free_memory_per_gpu) {
      result.status = ResourceExhaustedError(
          "GPU OOM: naive interleave needs " + FormatBytes(result.required_buffer_per_gpu) +
          " per GPU, free " + FormatBytes(params.gpu_free_memory_per_gpu));
      return result;
    }
  }

  // Request time per chunk: its span's profiled start (Blocking: everything
  // at iteration start).
  std::vector<TimeNs> requests;
  requests.reserve(result.partition.chunks.size());
  for (const ChunkAssignment& chunk : result.partition.chunks) {
    if (params.scheme == InterleaveScheme::kBlocking) {
      requests.push_back(0);
    } else {
      requests.push_back(spans.at(static_cast<size_t>(chunk.span_index)).start);
    }
  }

  IterationWalk walk(params, result.partition.chunks, std::move(requests), pipeline_depth);
  walk.Run(params.scheme == InterleaveScheme::kBlocking);

  result.checkpoint_network_done = walk.last_recv_end();
  // The machine's own local replica copies GPU->CPU on its own PCIe links,
  // overlapped with training; it finishes no earlier than its copy time.
  const TimeNs local_copy_time = TransferTime(checkpoint_bytes, instance.gpu_cpu_copy_bandwidth);
  result.checkpoint_done = std::max({walk.last_copy_end(), local_copy_time});
  // Spilled checkpoint traffic prolongs the iteration (Section 5.3).
  result.iteration_time = std::max(walk.update_end(), result.checkpoint_network_done);
  result.checkpoint_within_iteration = result.checkpoint_done <= result.iteration_time;
  result.overhead_fraction =
      static_cast<double>(result.iteration_time) /
          static_cast<double>(result.baseline_iteration_time) -
      1.0;
  return result;
}

FrequencyDecision ChooseCheckpointFrequency(const ExecutorParams& params, double max_overhead,
                                            int max_interval) {
  const Bytes full = params.checkpoint_bytes_override > 0
                         ? params.checkpoint_bytes_override
                         : params.timeline.model.CheckpointBytesPerMachine(
                               params.timeline.num_machines);
  FrequencyDecision decision;
  for (int interval = 1; interval <= max_interval; ++interval) {
    ExecutorParams attempt = params;
    attempt.checkpoint_bytes_override = (full + interval - 1) / interval;
    decision.interval_iterations = interval;
    decision.execution = ExecuteIterationWithCheckpoint(attempt);
    if (!decision.execution.status.ok()) {
      return decision;  // OOM etc.: surfacing beats looping.
    }
    if (decision.execution.overhead_fraction <= max_overhead &&
        decision.execution.partition.fits_within_idle_time) {
      return decision;
    }
  }
  return decision;
}

}  // namespace gemini
