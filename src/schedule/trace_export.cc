#include "src/schedule/trace_export.h"

#include <vector>

#include "src/common/json_writer.h"
#include "src/obs/run_tracer.h"

namespace gemini {
namespace {

const char* CommKindName(CommKind kind) {
  switch (kind) {
    case CommKind::kForwardAllGather:
      return "fwd all-gather";
    case CommKind::kBackwardAllGather:
      return "bwd all-gather";
    case CommKind::kGradReduceScatter:
      return "grad reduce-scatter";
  }
  return "comm";
}

TraceRecord SpanRecord(const char* name, const char* track, TimeNs start, TimeNs duration) {
  TraceRecord record;
  record.kind = TraceRecordKind::kSpan;
  record.name = name;
  record.track = track;
  record.start = start;
  record.duration = duration;
  return record;
}

}  // namespace

std::string TimelineToChromeTrace(const IterationTimeline& timeline,
                                  const PartitionResult& partition,
                                  BytesPerSecond checkpoint_bandwidth, TimeNs comm_alpha) {
  std::vector<TraceRecord> records;
  for (const CommSegment& segment : timeline.comm) {
    records.push_back(
        SpanRecord(CommKindName(segment.kind), "network", segment.start, segment.duration));
  }
  for (const IdleSpan& span : timeline.idle_spans) {
    records.push_back(SpanRecord("idle", "idle", span.start, span.length));
  }
  // Chunks render front-loaded within their span, matching the greedy
  // execution order.
  std::vector<TimeNs> cursor(timeline.idle_spans.size());
  for (size_t s = 0; s < cursor.size(); ++s) {
    cursor[s] = timeline.idle_spans[s].start;
  }
  for (const ChunkAssignment& chunk : partition.chunks) {
    const size_t span = static_cast<size_t>(chunk.span_index);
    const TimeNs duration = comm_alpha + TransferTime(chunk.bytes, checkpoint_bandwidth);
    records.push_back(SpanRecord("ckpt chunk", "checkpoint", cursor[span], duration));
    cursor[span] += duration;
  }
  records.push_back(
      SpanRecord("optimizer update", "compute", timeline.update_start, timeline.update_duration));
  return ChromeTraceJson(records);
}

Status WriteChromeTrace(const std::string& path, const IterationTimeline& timeline,
                        const PartitionResult& partition,
                        BytesPerSecond checkpoint_bandwidth, TimeNs comm_alpha) {
  return WriteTextFile(
      path, TimelineToChromeTrace(timeline, partition, checkpoint_bandwidth, comm_alpha));
}

}  // namespace gemini
