#include "src/schedule/trace_export.h"

#include <fstream>
#include <sstream>

namespace gemini {
namespace {

const char* CommKindName(CommKind kind) {
  switch (kind) {
    case CommKind::kForwardAllGather:
      return "fwd all-gather";
    case CommKind::kBackwardAllGather:
      return "bwd all-gather";
    case CommKind::kGradReduceScatter:
      return "grad reduce-scatter";
  }
  return "comm";
}

// One complete-event ("ph":"X") entry; timestamps in microseconds.
void AppendEvent(std::ostringstream& os, bool& first, const char* name, const char* track,
                 TimeNs start, TimeNs duration) {
  if (!first) {
    os << ",\n";
  }
  first = false;
  os << "  {\"name\": \"" << name << "\", \"cat\": \"gemini\", \"ph\": \"X\", \"ts\": "
     << static_cast<double>(start) / 1000.0
     << ", \"dur\": " << static_cast<double>(duration) / 1000.0
     << ", \"pid\": 1, \"tid\": \"" << track << "\"}";
}

}  // namespace

std::string TimelineToChromeTrace(const IterationTimeline& timeline,
                                  const PartitionResult& partition,
                                  BytesPerSecond checkpoint_bandwidth, TimeNs comm_alpha) {
  std::ostringstream os;
  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const CommSegment& segment : timeline.comm) {
    AppendEvent(os, first, CommKindName(segment.kind), "network", segment.start,
                segment.duration);
  }
  for (const IdleSpan& span : timeline.idle_spans) {
    AppendEvent(os, first, "idle", "idle", span.start, span.length);
  }
  // Chunks render front-loaded within their span, matching the greedy
  // execution order.
  std::vector<TimeNs> cursor(timeline.idle_spans.size());
  for (size_t s = 0; s < cursor.size(); ++s) {
    cursor[s] = timeline.idle_spans[s].start;
  }
  for (const ChunkAssignment& chunk : partition.chunks) {
    const size_t span = static_cast<size_t>(chunk.span_index);
    const TimeNs duration = comm_alpha + TransferTime(chunk.bytes, checkpoint_bandwidth);
    AppendEvent(os, first, "ckpt chunk", "checkpoint", cursor[span], duration);
    cursor[span] += duration;
  }
  AppendEvent(os, first, "optimizer update", "compute", timeline.update_start,
              timeline.update_duration);
  os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return os.str();
}

Status WriteChromeTrace(const std::string& path, const IterationTimeline& timeline,
                        const PartitionResult& partition,
                        BytesPerSecond checkpoint_bandwidth, TimeNs comm_alpha) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return UnavailableError("cannot open trace file for writing: " + path);
  }
  out << TimelineToChromeTrace(timeline, partition, checkpoint_bandwidth, comm_alpha);
  if (!out) {
    return DataLossError("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace gemini
