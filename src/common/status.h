// Lightweight Status / StatusOr error-handling types.
//
// The library reports recoverable errors through return values rather than
// exceptions, following common practice in systems C++ codebases. `Status`
// carries an error code and a human-readable message; `StatusOr<T>` carries
// either a value or a non-OK Status.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace gemini {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kDataLoss,
  kDeadlineExceeded,
  kInternal,
  kAborted,
  kUnimplemented,
};

// Returns a stable lowercase name for `code`, e.g. "not_found".
std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status DeadlineExceededError(std::string message);
Status InternalError(std::string message);
Status AbortedError(std::string message);
Status UnimplementedError(std::string message);

// Holds either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : status_(), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define GEMINI_RETURN_IF_ERROR(expr)           \
  do {                                         \
    ::gemini::Status status_macro_ = (expr);   \
    if (!status_macro_.ok()) {                 \
      return status_macro_;                    \
    }                                          \
  } while (false)

// Evaluates a StatusOr expression; on error, returns the status. Otherwise
// assigns the value to `lhs` (which may include a declaration).
#define GEMINI_ASSIGN_OR_RETURN(lhs, expr)                      \
  GEMINI_ASSIGN_OR_RETURN_IMPL_(                                \
      GEMINI_STATUS_CONCAT_(statusor_, __LINE__), lhs, expr)
#define GEMINI_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()
#define GEMINI_STATUS_CONCAT_(a, b) GEMINI_STATUS_CONCAT_IMPL_(a, b)
#define GEMINI_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace gemini

#endif  // SRC_COMMON_STATUS_H_
