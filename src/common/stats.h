// Streaming statistics accumulators used by benchmarks and the online
// profiler (Section 5.4 of the paper measures mean and normalized standard
// deviation of per-iteration idle spans).
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace gemini {

// Welford online mean/variance.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  // stddev / mean; 0 when the mean is 0.
  double normalized_stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact-quantile accumulator: stores samples, sorts on demand. Suitable for
// the sample counts benchmarks produce (thousands, not billions).
class QuantileSketch {
 public:
  void Add(double x);
  // q in [0, 1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  int64_t count() const { return static_cast<int64_t>(samples_.size()); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace gemini

#endif  // SRC_COMMON_STATS_H_
