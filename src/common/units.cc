#include "src/common/units.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace gemini {

std::string FormatBytes(Bytes bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB || bytes <= -kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB || bytes <= -kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB || bytes <= -kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string FormatDuration(TimeNs t) {
  char buf[64];
  const double ns = static_cast<double>(t);
  if (t >= kHour || t <= -kHour) {
    std::snprintf(buf, sizeof(buf), "%.2f h", ns / static_cast<double>(kHour));
  } else if (t >= kMinute || t <= -kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2f min", ns / static_cast<double>(kMinute));
  } else if (t >= kSecond || t <= -kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / static_cast<double>(kSecond));
  } else if (t >= kMillisecond || t <= -kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ns / static_cast<double>(kMillisecond));
  } else if (t >= kMicrosecond || t <= -kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ns / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(t));
  }
  return buf;
}

TimeNs TransferTime(Bytes bytes, BytesPerSecond bandwidth) {
  assert(bytes >= 0);
  assert(bandwidth > 0.0);
  const double seconds = static_cast<double>(bytes) / bandwidth;
  return static_cast<TimeNs>(std::ceil(seconds * static_cast<double>(kSecond)));
}

}  // namespace gemini
