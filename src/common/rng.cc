#include "src/common/rng.h"

#include <cmath>
#include <numbers>

namespace gemini {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextU64Below(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64Below(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k >= 0 && k <= n);
  // Partial Fisher–Yates over an index vector.
  std::vector<int> indices(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    indices[static_cast<size_t>(i)] = i;
  }
  std::vector<int> out;
  out.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const size_t j =
        static_cast<size_t>(i) + static_cast<size_t>(NextU64Below(static_cast<uint64_t>(n - i)));
    std::swap(indices[static_cast<size_t>(i)], indices[j]);
    out.push_back(indices[static_cast<size_t>(i)]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace gemini
