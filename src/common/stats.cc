#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gemini {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::normalized_stddev() const {
  const double m = mean();
  if (m == 0.0) {
    return 0.0;
  }
  return stddev() / std::abs(m);
}

void QuantileSketch::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double QuantileSketch::Quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace gemini
