// Column-aligned plain-text tables, used by the bench binaries to print the
// rows/series of the paper's tables and figures.
#ifndef SRC_COMMON_TABLE_PRINTER_H_
#define SRC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace gemini {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row; missing cells are padded, extra cells asserted against.
  void AddRow(std::vector<std::string> cells);

  // Renders the table with a header rule, e.g.
  //   model        | iter (s) | idle (s)
  //   -------------+----------+---------
  //   GPT-2 100B   |    62.10 |    12.40
  void Print(std::ostream& os) const;
  std::string ToString() const;

  // Formatting helpers for cells.
  static std::string Fmt(double value, int precision = 2);
  static std::string Fmt(int64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gemini

#endif  // SRC_COMMON_TABLE_PRINTER_H_
