// Small fixed-size worker pool for the parallel checkpoint data path.
//
// Scope is deliberately narrow: one blocking ParallelFor at a time, fanned
// out and joined *inside* a single caller (for the simulator, inside one
// discrete-event callback), so the event engine never observes concurrency —
// simulated timing and event order stay byte-identical whether the body ran
// on one thread or eight. Determinism contract:
//  * threads <= 1 constructs no workers at all; ParallelFor runs the body
//    inline, in index order, on the calling thread. This is the default
//    everywhere (`pipeline_threads = 1`), and trivially TSAN-clean.
//  * threads > 1 runs body(0..n-1) concurrently with no ordering guarantee;
//    callers must write results into disjoint, index-addressed slots and
//    combine them in rank order after ParallelFor returns (e.g. per-segment
//    CRCs merged with Crc32Combine), which makes the *result* independent of
//    interleaving even though execution is not.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gemini {

class ThreadPool {
 public:
  // `threads` is the total parallelism including the calling thread, so the
  // pool spawns threads-1 workers. Values <= 1 spawn nothing.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs body(0), ..., body(n-1) across the pool (caller included) and
  // returns when all n calls have completed. Not reentrant: the body must
  // not call ParallelFor on the same pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  // One fan-out. Heap-allocated and shared so a worker that wakes late (or
  // lingers after the last index) holds its own reference and can never race
  // a subsequent batch's state.
  struct Batch {
    const std::function<void(size_t)>* body = nullptr;
    size_t size = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
  };

  void WorkerLoop();
  // Claims and runs indices until the batch is drained; the thread finishing
  // the last index signals done_cv_.
  void RunBatch(Batch& batch);

  const int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> batch_;  // Guarded by mu_.
  uint64_t generation_ = 0;       // Guarded by mu_; bumped per batch.
  bool shutdown_ = false;         // Guarded by mu_.
};

}  // namespace gemini

#endif  // SRC_COMMON_THREAD_POOL_H_
