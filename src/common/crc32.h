// CRC-32 (IEEE 802.3 polynomial), used to integrity-check serialized
// checkpoints: a recovery path must never silently load corrupted state.
//
// Three bit-identical implementations, selected once at startup through a
// function-pointer dispatch table:
//  * hardware — PCLMUL carry-less-multiply folding on x86-64 (SSE4.2's crc32
//    instruction computes CRC-32C, the *Castagnoli* polynomial, so the IEEE
//    polynomial must be folded with PCLMULQDQ instead of silently changing
//    the checksum), or the ARMv8 `__crc32*` instructions on aarch64 (those
//    do use the IEEE polynomial). Gated on CPUID / HWCAP at startup.
//  * slicing-by-8 — the portable production path (eight 256-entry tables,
//    eight input bytes folded per step); the fallback everywhere hardware is
//    absent, compiled out (GEMINI_DISABLE_HWCRC), or disabled at runtime
//    (the GEMINI_DISABLE_HWCRC environment variable).
//  * bytewise — the textbook one-byte-per-step table loop, kept as the
//    reference the tests (and the perf bench) compare everything against.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gemini {

// One-shot CRC over a buffer.
uint32_t Crc32(const void* data, size_t length);

// Incremental form: pass the previous return value as `crc` (start with 0).
// Dispatches to the fastest implementation the CPU supports.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t length);

// Reference implementation: the textbook one-byte-per-step table loop.
// Bit-identical to Crc32Update for every input; exists so equivalence is
// testable and every speedup is measurable.
uint32_t Crc32UpdateBytewise(uint32_t crc, const void* data, size_t length);

// The portable slicing-by-8 kernel, callable directly so the dispatch
// equivalence tests and the perf bench can compare hardware against it even
// when the hardware path is the active one.
uint32_t Crc32UpdateSlicing8(uint32_t crc, const void* data, size_t length);

// Function-pointer type of the kernels above (and of Crc32ActiveKernel).
using Crc32UpdateFn = uint32_t (*)(uint32_t crc, const void* data, size_t length);

// The dispatch-selected kernel itself. Calling it is equivalent to
// Crc32Update without the (already tiny) dispatch-load indirection; exposed
// so benches can time exactly what production uses.
Crc32UpdateFn Crc32ActiveKernel();

// Name of the dispatch-selected implementation: "x86-pclmul", "armv8-crc32",
// or "slicing-by-8". Stable across the process lifetime (resolved once).
const char* Crc32ImplementationName();

// CRC of the concatenation A||B from crc_a = CRC(A), crc_b = CRC(B) and B's
// length, in O(log length_b) GF(2) matrix operations (no data needed). Lets
// parallel pipelines CRC disjoint segments concurrently and combine the
// per-segment results in rank order, bit-identical to one sequential pass.
uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, size_t length_b);

class ThreadPool;

// One-shot CRC fanned out across `workers`: the buffer is cut into disjoint
// per-worker segments, each CRC'd concurrently, and the per-segment results
// are combined in rank order. Bit-identical to Crc32(data, length) for every
// thread count; a null (or 1-thread) pool — or a buffer too small to be
// worth splitting — runs one sequential pass inline.
uint32_t Crc32Parallel(const void* data, size_t length, ThreadPool* workers);

}  // namespace gemini

#endif  // SRC_COMMON_CRC32_H_
