// CRC-32 (IEEE 802.3 polynomial), used to integrity-check serialized
// checkpoints: a recovery path must never silently load corrupted state.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gemini {

// One-shot CRC over a buffer.
uint32_t Crc32(const void* data, size_t length);

// Incremental form: pass the previous return value as `crc` (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t length);

}  // namespace gemini

#endif  // SRC_COMMON_CRC32_H_
