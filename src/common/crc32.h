// CRC-32 (IEEE 802.3 polynomial), used to integrity-check serialized
// checkpoints: a recovery path must never silently load corrupted state.
//
// The production implementation uses slicing-by-8 (eight 256-entry tables,
// eight input bytes folded per step) — ~5-8x the throughput of the classic
// byte-at-a-time loop on checkpoint-sized payloads, with bit-identical
// output. The byte-wise loop is kept as `Crc32UpdateBytewise`, the reference
// the tests (and the perf bench) compare against.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace gemini {

// One-shot CRC over a buffer.
uint32_t Crc32(const void* data, size_t length);

// Incremental form: pass the previous return value as `crc` (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t length);

// Reference implementation: the textbook one-byte-per-step table loop.
// Bit-identical to Crc32Update for every input; exists so equivalence is
// testable and the slicing speedup is measurable.
uint32_t Crc32UpdateBytewise(uint32_t crc, const void* data, size_t length);

}  // namespace gemini

#endif  // SRC_COMMON_CRC32_H_
