#include "src/common/table_printer.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace gemini {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << " | ";
      }
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };

  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) {
      os << "-+-";
    }
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Fmt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace gemini
