// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (failure arrival, profiling noise,
// replacement latency) draws from explicitly seeded Rng instances so that any
// experiment is reproducible from its seed.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gemini {

// xoshiro256** seeded through SplitMix64. Small, fast, and good enough for
// simulation workloads (not cryptographic).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform in [0, bound). `bound` must be positive. Uses rejection sampling
  // so the distribution is exactly uniform.
  uint64_t NextU64Below(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponential with the given rate (events per unit); mean is 1/rate.
  double Exponential(double rate);

  // Standard normal via Box–Muller (no state caching; two uniforms per draw).
  double Normal(double mean, double stddev);

  // True with probability p.
  bool Bernoulli(double p);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextU64Below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Chooses k distinct indices from [0, n) uniformly at random.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Derives an independent generator (e.g. one stream per machine).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace gemini

#endif  // SRC_COMMON_RNG_H_
