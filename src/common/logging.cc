#include "src/common/logging.h"

#include <cstdio>
#include <cstring>

namespace gemini {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file), line, message.c_str());
}

}  // namespace gemini
