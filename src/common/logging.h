// Minimal leveled logger.
//
// The simulator is single-threaded; agents log recovery decisions at kInfo so
// that example binaries narrate what the system does. Benchmarks set the
// level to kWarning to keep output clean.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gemini {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

// Process-wide minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr (used by the GEMINI_LOG macro).
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

namespace internal {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GEMINI_LOG(level)                                              \
  if (::gemini::LogLevel::level < ::gemini::GetLogLevel()) {           \
  } else                                                               \
    ::gemini::internal::LogLine(::gemini::LogLevel::level, __FILE__, __LINE__)

}  // namespace gemini

#endif  // SRC_COMMON_LOGGING_H_
