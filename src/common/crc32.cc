#include "src/common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace gemini {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

// Table 0 is the classic byte-wise table; table k folds a byte that sits k
// positions ahead of the CRC register, so eight tables consume eight input
// bytes per step (slicing-by-8, Intel's "Slicing-by-8" CRC technique).
struct SlicingTables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

SlicingTables BuildTables() {
  SlicingTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = tables.t[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

const SlicingTables& Tables() {
  static const SlicingTables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32UpdateBytewise(uint32_t crc, const void* data, size_t length) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& table = Tables().t[0];
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < length; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32Update(uint32_t crc, const void* data, size_t length) {
  // The sliced kernel folds the CRC register into the first four input bytes,
  // which is only correct when the 32-bit load below matches the register's
  // byte order; on a big-endian target, fall back to the reference loop.
  if constexpr (std::endian::native != std::endian::little) {
    return Crc32UpdateBytewise(crc, data, length);
  }
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& t = Tables().t;
  uint32_t c = crc ^ 0xFFFFFFFFu;
  while (length >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, bytes, sizeof(lo));
    std::memcpy(&hi, bytes + 4, sizeof(hi));
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    bytes += 8;
    length -= 8;
  }
  const auto& table = t[0];
  while (length-- > 0) {
    c = table[(c ^ *bytes++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t length) { return Crc32Update(0, data, length); }

}  // namespace gemini
