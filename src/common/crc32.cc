#include "src/common/crc32.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/common/thread_pool.h"

// Hardware kernels are compiled only where the ISA extension exists and the
// build has not forced the portable path (-DGEMINI_DISABLE_HWCRC=ON). The
// *runtime* choice additionally checks CPUID/HWCAP and the
// GEMINI_DISABLE_HWCRC environment variable, once, at first use.
#if !defined(GEMINI_DISABLE_HWCRC) && defined(__GNUC__)
#if defined(__x86_64__)
#define GEMINI_CRC32_HW_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__linux__)
#define GEMINI_CRC32_HW_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace gemini {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

// Table 0 is the classic byte-wise table; table k folds a byte that sits k
// positions ahead of the CRC register, so eight tables consume eight input
// bytes per step (slicing-by-8, Intel's "Slicing-by-8" CRC technique).
struct SlicingTables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

SlicingTables BuildTables() {
  SlicingTables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    tables.t[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = tables.t[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

const SlicingTables& Tables() {
  static const SlicingTables tables = BuildTables();
  return tables;
}

#if defined(GEMINI_CRC32_HW_X86)

// PCLMUL folding for the *IEEE* polynomial (Gopal et al., "Fast CRC
// Computation for Generic Polynomials Using PCLMULQDQ", reflected domain).
// SSE4.2's crc32 instruction is useless here — it hard-wires the Castagnoli
// polynomial — so the reduction is built from carry-less multiplies instead:
// four 128-bit lanes fold 64 input bytes per step, the lanes collapse to one,
// remaining 16-byte blocks fold in, and a Barrett reduction brings the
// 128-bit remainder down to the 32-bit CRC.
//
// Operates on the *raw* shift-register state (no 0xFFFFFFFF pre/post
// conditioning) and requires length >= 64 with length % 16 == 0; the
// dispatch wrapper below handles conditioning and the tail.
__attribute__((target("pclmul,sse4.1"))) uint32_t Crc32PclmulKernel(uint32_t state,
                                                                    const uint8_t* bytes,
                                                                    size_t length) {
  // Folding constants for the reflected IEEE polynomial: k1/k2 fold across
  // 512 bits, k3/k4 across 128, k5 shifts 64->96 bits, and `poly` packs
  // P(x) with its Barrett inverse mu.
  const __m128i k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
  const __m128i k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
  const __m128i k5 = _mm_set_epi64x(0, 0x0163cd6124);
  const __m128i poly = _mm_set_epi64x(0x01f7011641, 0x01db710641);

  __m128i lane0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 0x00));
  __m128i lane1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 0x10));
  __m128i lane2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 0x20));
  __m128i lane3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 0x30));
  lane0 = _mm_xor_si128(lane0, _mm_cvtsi32_si128(static_cast<int>(state)));
  bytes += 64;
  length -= 64;

  while (length >= 64) {
    const __m128i f0 = _mm_clmulepi64_si128(lane0, k1k2, 0x00);
    const __m128i f1 = _mm_clmulepi64_si128(lane1, k1k2, 0x00);
    const __m128i f2 = _mm_clmulepi64_si128(lane2, k1k2, 0x00);
    const __m128i f3 = _mm_clmulepi64_si128(lane3, k1k2, 0x00);
    lane0 = _mm_clmulepi64_si128(lane0, k1k2, 0x11);
    lane1 = _mm_clmulepi64_si128(lane1, k1k2, 0x11);
    lane2 = _mm_clmulepi64_si128(lane2, k1k2, 0x11);
    lane3 = _mm_clmulepi64_si128(lane3, k1k2, 0x11);
    lane0 = _mm_xor_si128(_mm_xor_si128(lane0, f0),
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 0x00)));
    lane1 = _mm_xor_si128(_mm_xor_si128(lane1, f1),
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 0x10)));
    lane2 = _mm_xor_si128(_mm_xor_si128(lane2, f2),
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 0x20)));
    lane3 = _mm_xor_si128(_mm_xor_si128(lane3, f3),
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 0x30)));
    bytes += 64;
    length -= 64;
  }

  // Collapse the four lanes into one 128-bit remainder. (A plain array, not
  // an initializer_list: vector types as template arguments draw GCC's
  // ignored-attributes warning.)
  __m128i acc = lane0;
  const __m128i tail_lanes[3] = {lane1, lane2, lane3};
  for (const __m128i& lane : tail_lanes) {
    const __m128i lo = _mm_clmulepi64_si128(acc, k3k4, 0x00);
    acc = _mm_clmulepi64_si128(acc, k3k4, 0x11);
    acc = _mm_xor_si128(_mm_xor_si128(acc, lo), lane);
  }

  while (length >= 16) {
    const __m128i lo = _mm_clmulepi64_si128(acc, k3k4, 0x00);
    acc = _mm_clmulepi64_si128(acc, k3k4, 0x11);
    acc = _mm_xor_si128(_mm_xor_si128(acc, lo),
                        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes)));
    bytes += 16;
    length -= 16;
  }

  // 128 -> 64 bits, then Barrett reduction to the 32-bit CRC.
  const __m128i mask32 = _mm_setr_epi32(-1, 0, -1, 0);
  __m128i folded = _mm_clmulepi64_si128(acc, k3k4, 0x10);
  acc = _mm_xor_si128(_mm_srli_si128(acc, 8), folded);

  folded = _mm_srli_si128(acc, 4);
  acc = _mm_and_si128(acc, mask32);
  acc = _mm_clmulepi64_si128(acc, k5, 0x00);
  acc = _mm_xor_si128(acc, folded);

  folded = _mm_and_si128(acc, mask32);
  folded = _mm_clmulepi64_si128(folded, poly, 0x10);
  folded = _mm_and_si128(folded, mask32);
  folded = _mm_clmulepi64_si128(folded, poly, 0x00);
  acc = _mm_xor_si128(acc, folded);

  return static_cast<uint32_t>(_mm_extract_epi32(acc, 1));
}

uint32_t Crc32UpdatePclmul(uint32_t crc, const void* data, size_t length) {
  if (length < 64) {
    return Crc32UpdateSlicing8(crc, data, length);
  }
  const auto* bytes = static_cast<const uint8_t*>(data);
  // The folding kernel wants whole 16-byte blocks; the tail (< 16 bytes)
  // continues through the table loop on the same register state.
  const size_t folded = length & ~static_cast<size_t>(15);
  const uint32_t state = Crc32PclmulKernel(crc ^ 0xFFFFFFFFu, bytes, folded);
  return Crc32UpdateSlicing8(state ^ 0xFFFFFFFFu, bytes + folded, length - folded);
}

#elif defined(GEMINI_CRC32_HW_ARM)

// ARMv8 CRC32 extension: __crc32{b,h,w,d} use the IEEE polynomial directly,
// eight bytes per instruction. HWCAP-gated at dispatch time.
__attribute__((target("+crc"))) uint32_t Crc32UpdateArm(uint32_t crc, const void* data,
                                                        size_t length) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  while (length >= 8) {
    uint64_t v;
    std::memcpy(&v, bytes, sizeof(v));
    c = __crc32d(c, v);
    bytes += 8;
    length -= 8;
  }
  if (length >= 4) {
    uint32_t v;
    std::memcpy(&v, bytes, sizeof(v));
    c = __crc32w(c, v);
    bytes += 4;
    length -= 4;
  }
  if (length >= 2) {
    uint16_t v;
    std::memcpy(&v, bytes, sizeof(v));
    c = __crc32h(c, v);
    bytes += 2;
    length -= 2;
  }
  if (length > 0) {
    c = __crc32b(c, *bytes);
  }
  return c ^ 0xFFFFFFFFu;
}

#endif  // hardware kernels

struct Crc32Dispatch {
  Crc32UpdateFn fn;
  const char* name;
};

// Runtime override: any value other than "" / "0" forces the portable path
// even on capable hardware (the CI fallback leg sets this).
bool HwCrcDisabledByEnv() {
  const char* value = std::getenv("GEMINI_DISABLE_HWCRC");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

Crc32Dispatch ResolveCrc32Dispatch() {
  if (!HwCrcDisabledByEnv()) {
#if defined(GEMINI_CRC32_HW_X86)
    if (__builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1")) {
      return {&Crc32UpdatePclmul, "x86-pclmul"};
    }
#elif defined(GEMINI_CRC32_HW_ARM)
    if ((getauxval(AT_HWCAP) & HWCAP_CRC32) != 0) {
      return {&Crc32UpdateArm, "armv8-crc32"};
    }
#endif
  }
  return {&Crc32UpdateSlicing8, "slicing-by-8"};
}

const Crc32Dispatch& ActiveCrc32() {
  // Resolved once, on first use, thread-safely (magic static).
  static const Crc32Dispatch dispatch = ResolveCrc32Dispatch();
  return dispatch;
}

// GF(2) 32x32 matrix helpers for Crc32Combine: a matrix is 32 column
// vectors; `times` multiplies matrix * vector, `square` composes the
// operator with itself (doubling the number of appended zero bits).
uint32_t Gf2MatrixTimes(const std::array<uint32_t, 32>& mat, uint32_t vec) {
  uint32_t sum = 0;
  for (size_t i = 0; vec != 0; vec >>= 1, ++i) {
    if ((vec & 1u) != 0) {
      sum ^= mat[i];
    }
  }
  return sum;
}

void Gf2MatrixSquare(std::array<uint32_t, 32>& square, const std::array<uint32_t, 32>& mat) {
  for (size_t i = 0; i < 32; ++i) {
    square[i] = Gf2MatrixTimes(mat, mat[i]);
  }
}

}  // namespace

uint32_t Crc32UpdateBytewise(uint32_t crc, const void* data, size_t length) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& table = Tables().t[0];
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < length; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32UpdateSlicing8(uint32_t crc, const void* data, size_t length) {
  // The sliced kernel folds the CRC register into the first four input bytes,
  // which is only correct when the 32-bit load below matches the register's
  // byte order; on a big-endian target, fall back to the reference loop.
  if constexpr (std::endian::native != std::endian::little) {
    return Crc32UpdateBytewise(crc, data, length);
  }
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& t = Tables().t;
  uint32_t c = crc ^ 0xFFFFFFFFu;
  while (length >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, bytes, sizeof(lo));
    std::memcpy(&hi, bytes + 4, sizeof(hi));
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    bytes += 8;
    length -= 8;
  }
  const auto& table = t[0];
  while (length-- > 0) {
    c = table[(c ^ *bytes++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32Update(uint32_t crc, const void* data, size_t length) {
  return ActiveCrc32().fn(crc, data, length);
}

Crc32UpdateFn Crc32ActiveKernel() { return ActiveCrc32().fn; }

const char* Crc32ImplementationName() { return ActiveCrc32().name; }

uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, size_t length_b) {
  if (length_b == 0) {
    return crc_a;
  }
  // Build the "append one zero bit" operator, square it up to "two" and
  // "four", then walk length_b's bits, applying the operator for each set
  // bit — O(log length_b) squarings instead of feeding length_b zero bytes.
  std::array<uint32_t, 32> even;
  std::array<uint32_t, 32> odd;
  odd[0] = kPolynomial;
  uint32_t row = 1;
  for (size_t i = 1; i < 32; ++i) {
    odd[i] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);  // two zero bits
  Gf2MatrixSquare(odd, even);  // four zero bits

  uint64_t remaining = length_b;
  uint32_t crc = crc_a;
  do {
    // First squaring of each pair yields the operator for one zero *byte*.
    Gf2MatrixSquare(even, odd);
    if ((remaining & 1u) != 0) {
      crc = Gf2MatrixTimes(even, crc);
    }
    remaining >>= 1;
    if (remaining == 0) {
      break;
    }
    Gf2MatrixSquare(odd, even);
    if ((remaining & 1u) != 0) {
      crc = Gf2MatrixTimes(odd, crc);
    }
    remaining >>= 1;
  } while (remaining != 0);
  return crc ^ crc_b;
}

uint32_t Crc32(const void* data, size_t length) { return Crc32Update(0, data, length); }

uint32_t Crc32Parallel(const void* data, size_t length, ThreadPool* workers) {
  // Below this, the fan-out latency costs more than the CRC it hides.
  constexpr size_t kMinBytesPerSegment = 64 << 10;
  const size_t segments =
      workers == nullptr
          ? 1
          : std::min<size_t>(static_cast<size_t>(workers->threads()),
                             std::max<size_t>(1, length / kMinBytesPerSegment));
  if (segments <= 1) {
    return Crc32(data, length);
  }
  const auto* bytes = static_cast<const uint8_t*>(data);
  std::vector<uint32_t> segment_crcs(segments);
  std::vector<size_t> segment_lengths(segments);
  const size_t step = length / segments;
  workers->ParallelFor(segments, [&](size_t i) {
    const size_t begin = i * step;
    const size_t end = i + 1 == segments ? length : begin + step;
    segment_lengths[i] = end - begin;
    segment_crcs[i] = Crc32(bytes + begin, end - begin);
  });
  uint32_t crc = segment_crcs[0];
  for (size_t i = 1; i < segments; ++i) {
    crc = Crc32Combine(crc, segment_crcs[i], segment_lengths[i]);
  }
  return crc;
}

}  // namespace gemini
