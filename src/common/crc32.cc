#include "src/common/crc32.h"

#include <array>

namespace gemini {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t length) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < length; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t length) { return Crc32Update(0, data, length); }

}  // namespace gemini
