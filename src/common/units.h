// Byte-size and simulated-time units.
//
// Simulated time is kept in integer nanoseconds so that event ordering is
// exact and runs are bit-reproducible. Byte counts are signed 64-bit so that
// subtraction is safe in intermediate arithmetic.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace gemini {

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

using Bytes = int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes KiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kKiB)); }
constexpr Bytes MiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kMiB)); }
constexpr Bytes GiB(double n) { return static_cast<Bytes>(n * static_cast<double>(kGiB)); }

// Human readable, e.g. "9.40 GiB" / "128.00 MiB" / "532 B".
std::string FormatBytes(Bytes bytes);

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

// Simulated time / duration in nanoseconds since simulation start.
using TimeNs = int64_t;

inline constexpr TimeNs kMicrosecond = 1000;
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
inline constexpr TimeNs kSecond = 1000 * kMillisecond;
inline constexpr TimeNs kMinute = 60 * kSecond;
inline constexpr TimeNs kHour = 60 * kMinute;

constexpr TimeNs Micros(double n) { return static_cast<TimeNs>(n * static_cast<double>(kMicrosecond)); }
constexpr TimeNs Millis(double n) { return static_cast<TimeNs>(n * static_cast<double>(kMillisecond)); }
constexpr TimeNs Seconds(double n) { return static_cast<TimeNs>(n * static_cast<double>(kSecond)); }
constexpr TimeNs Minutes(double n) { return static_cast<TimeNs>(n * static_cast<double>(kMinute)); }
constexpr TimeNs Hours(double n) { return static_cast<TimeNs>(n * static_cast<double>(kHour)); }

constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / static_cast<double>(kSecond); }

// Human readable with adaptive unit, e.g. "62.0 s", "3.21 ms", "1.5 h".
std::string FormatDuration(TimeNs t);

// ---------------------------------------------------------------------------
// Bandwidth
// ---------------------------------------------------------------------------

// Bandwidths are expressed in bytes per second (double: they only feed cost
// models, never ordering decisions).
using BytesPerSecond = double;

constexpr BytesPerSecond GbpsToBytesPerSecond(double gbps) { return gbps * 1e9 / 8.0; }
constexpr double BytesPerSecondToGbps(BytesPerSecond bps) { return bps * 8.0 / 1e9; }

// Time to move `bytes` at `bandwidth`, rounded up to whole nanoseconds.
TimeNs TransferTime(Bytes bytes, BytesPerSecond bandwidth);

}  // namespace gemini

#endif  // SRC_COMMON_UNITS_H_
