#include "src/common/thread_pool.h"

#include <algorithm>

namespace gemini {

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::RunBatch(Batch& batch) {
  while (true) {
    const size_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.size) {
      return;
    }
    (*batch.body)(index);
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.size) {
      // Last index done: wake the ParallelFor caller. The lock pairs with the
      // caller's predicate re-check so the notify cannot be lost.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = generation_;
      batch = batch_;
    }
    RunBatch(*batch);
    // The shared_ptr keeps the Batch alive past the caller's return, so a
    // straggler observing `next >= size` above touches only its own copy.
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->body = &body;
  batch->size = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();
  RunBatch(*batch);  // The caller is one of the `threads()` participants.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [&] { return batch->completed.load(std::memory_order_acquire) == batch->size; });
}

}  // namespace gemini
