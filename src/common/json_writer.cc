#include "src/common/json_writer.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace gemini {

void JsonWriter::NewlineAndIndent() {
  if (indent_ <= 0) {
    return;
  }
  out_ += '\n';
  out_.append(stack_.size() * static_cast<size_t>(indent_), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) {
    return;
  }
  if (stack_.back().count++ > 0) {
    out_ += ',';
  }
  NewlineAndIndent();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope{'}'});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back().close == '}');
  const bool had_members = stack_.back().count > 0;
  stack_.pop_back();
  if (had_members) {
    NewlineAndIndent();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope{']'});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back().close == ']');
  const bool had_members = stack_.back().count > 0;
  stack_.pop_back();
  if (had_members) {
    NewlineAndIndent();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back().close == '}');
  if (stack_.back().count++ > 0) {
    out_ += ',';
  }
  NewlineAndIndent();
  out_ += '"';
  out_ += Escape(key);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  out_ += FormatDouble(value);
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::FormatDouble(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  assert(ec == std::errc());
  return std::string(buf, end);
}

Status WriteTextFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return UnavailableError("cannot open file for writing: " + path);
  }
  out << contents;
  if (!out) {
    return DataLossError("short write to file: " + path);
  }
  return Status::Ok();
}

}  // namespace gemini
