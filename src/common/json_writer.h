// Minimal streaming JSON writer shared by the observability exporters
// (Chrome trace, JSONL event log, metrics dump) and the bench reporter.
//
// Determinism matters more than features here: numbers are formatted with
// std::to_chars (shortest round-trip, locale-independent), members are
// emitted in caller order, and equal inputs always produce byte-identical
// output — the property the same-seed reproducibility tests assert.
#ifndef SRC_COMMON_JSON_WRITER_H_
#define SRC_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace gemini {

class JsonWriter {
 public:
  // `indent` > 0 pretty-prints with that many spaces per level; 0 is compact.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Starts an object member; must be followed by a value or Begin*().
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) { return Value(std::string_view(value)); }
  JsonWriter& Value(bool value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(double value);

  // Splices pre-rendered JSON in verbatim (for nesting a finished document).
  JsonWriter& RawValue(std::string_view json);

  const std::string& str() const { return out_; }

  // JSON string escaping (quotes not included).
  static std::string Escape(std::string_view s);
  // Shortest round-trip double formatting ("62", "0.5", "1e-09"); non-finite
  // values render as null (JSON has no NaN/Inf).
  static std::string FormatDouble(double value);

 private:
  // Comma/newline bookkeeping before an array element or object member value.
  void BeforeValue();
  void NewlineAndIndent();

  std::string out_;
  int indent_ = 0;
  struct Scope {
    char close;
    int count = 0;
  };
  std::vector<Scope> stack_;
  bool pending_key_ = false;
};

// Writes `contents` to `path`, truncating. kUnavailable when the file cannot
// be opened, kDataLoss on a short write — shared by the trace/JSONL/bench
// exporters.
Status WriteTextFile(const std::string& path, std::string_view contents);

}  // namespace gemini

#endif  // SRC_COMMON_JSON_WRITER_H_
