// Collective communication over the cluster fabric (the NCCL stand-in).
//
// Provides (a) analytic ring-algorithm cost functions, used by the training
// timeline generator to place communication segments, and (b) real
// event-driven collectives that move actual float data through Fabric
// transfers, used by tests and the data-parallel example to validate the
// substrate end to end.
//
// All collectives here operate at machine granularity: intra-machine GPUs
// are connected by NVSwitch, which is an order of magnitude faster than the
// inter-machine NIC and never the bottleneck for the traffic GEMINI
// schedules.
#ifndef SRC_COLLECTIVES_COLLECTIVES_H_
#define SRC_COLLECTIVES_COLLECTIVES_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cluster/fabric.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace gemini {

// ---------------------------------------------------------------------------
// Analytic ring cost model
// ---------------------------------------------------------------------------

struct RingCostModel {
  BytesPerSecond link_bandwidth = 0;
  TimeNs alpha = 0;
  // Achieved fraction of line rate for synchronization-heavy collectives.
  double efficiency = 1.0;

  BytesPerSecond effective_bandwidth() const { return link_bandwidth * efficiency; }

  // Ring all-gather of `total_bytes` sharded over `world` ranks:
  // (world-1) steps, each moving total/world bytes per NIC.
  TimeNs AllGatherTime(Bytes total_bytes, int world) const;
  // Ring reduce-scatter has the same communication volume as all-gather.
  TimeNs ReduceScatterTime(Bytes total_bytes, int world) const;
  // All-reduce = reduce-scatter + all-gather.
  TimeNs AllReduceTime(Bytes total_bytes, int world) const;
  // Pipelined chain broadcast of `bytes` from one root to group_size-1 peers.
  TimeNs BroadcastTime(Bytes bytes, int group_size) const;
  // Point-to-point send of `bytes`.
  TimeNs SendTime(Bytes bytes) const;
};

// ---------------------------------------------------------------------------
// Real data-plane collectives
// ---------------------------------------------------------------------------

using FloatVec = std::vector<float>;

// Runs ring collectives over a fixed group of ranks. Operations are
// asynchronous: data flows through Fabric bulk transfers and `done` fires at
// the simulated completion time. One Communicator runs one operation at a
// time (like a CUDA stream); concurrent operations need separate
// communicators.
class Communicator {
 public:
  // `ranks` lists group members in ring order; `efficiency` matches the cost
  // model used by transfers issued on behalf of this communicator.
  Communicator(Fabric& fabric, std::vector<int> ranks, double efficiency = 1.0);

  int size() const { return static_cast<int>(ranks_.size()); }
  const std::vector<int>& ranks() const { return ranks_; }

  // All-gather: `shards[i]` is member i's contribution; the callback receives
  // the concatenation (in group order), identical on every member.
  void AllGather(std::vector<FloatVec> shards,
                 std::function<void(StatusOr<FloatVec>)> done);

  // Reduce-scatter (sum): `inputs[i]` is member i's full-length vector; all
  // inputs must have equal length divisible by size(). The callback receives
  // per-member reduced shards: result[i] = sum over members of chunk i.
  void ReduceScatter(std::vector<FloatVec> inputs,
                     std::function<void(StatusOr<std::vector<FloatVec>>)> done);

  // All-reduce (sum): reduce-scatter followed by all-gather.
  void AllReduce(std::vector<FloatVec> inputs,
                 std::function<void(StatusOr<FloatVec>)> done);

  // Broadcast from group member `root_index` along a pipelined chain.
  void Broadcast(int root_index, FloatVec data,
                 std::function<void(StatusOr<FloatVec>)> done);

 private:
  struct RingState;

  // Runs `steps` synchronized ring steps; `exchange` mutates the per-member
  // buffers for a given step, and returns the per-NIC bytes moved that step.
  void RunRingSteps(std::shared_ptr<RingState> state, int step);

  Fabric& fabric_;
  std::vector<int> ranks_;
  double efficiency_;
};

}  // namespace gemini

#endif  // SRC_COLLECTIVES_COLLECTIVES_H_
