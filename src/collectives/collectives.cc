#include "src/collectives/collectives.h"

#include <cassert>
#include <utility>

namespace gemini {

// ---------------------------------------------------------------------------
// Analytic cost model
// ---------------------------------------------------------------------------

TimeNs RingCostModel::AllGatherTime(Bytes total_bytes, int world) const {
  assert(world >= 1);
  if (world == 1 || total_bytes == 0) {
    return 0;
  }
  const Bytes per_step = total_bytes / world;
  const TimeNs step = alpha + TransferTime(per_step, effective_bandwidth());
  return step * (world - 1);
}

TimeNs RingCostModel::ReduceScatterTime(Bytes total_bytes, int world) const {
  return AllGatherTime(total_bytes, world);
}

TimeNs RingCostModel::AllReduceTime(Bytes total_bytes, int world) const {
  return ReduceScatterTime(total_bytes, world) + AllGatherTime(total_bytes, world);
}

TimeNs RingCostModel::BroadcastTime(Bytes bytes, int group_size) const {
  assert(group_size >= 1);
  if (group_size == 1 || bytes == 0) {
    return 0;
  }
  return (group_size - 1) * (alpha + TransferTime(bytes, effective_bandwidth()));
}

TimeNs RingCostModel::SendTime(Bytes bytes) const {
  return alpha + TransferTime(bytes, effective_bandwidth());
}

// ---------------------------------------------------------------------------
// Data-plane collectives
// ---------------------------------------------------------------------------

namespace {

Bytes FloatBytes(size_t count) { return static_cast<Bytes>(count * sizeof(float)); }

}  // namespace

// Shared per-operation state. `slots[i]` is member i's working buffer; the
// meaning of a slot depends on the operation (all-gather chunk table or
// reduce-scatter accumulator chunks).
struct Communicator::RingState {
  int total_steps = 0;
  int pending_in_step = 0;
  bool failed = false;
  Status error;
  std::vector<std::vector<FloatVec>> slots;
  // Which chunk member i sends at step s.
  std::function<int(int member, int step)> chunk_to_send;
  // Applies the received chunk at the destination. For all-gather this is a
  // copy; for reduce-scatter an accumulate.
  std::function<void(int dst_member, int chunk, const FloatVec& data)> apply;
  std::function<void(RingState&)> finish;
  std::function<void(Status)> fail;
};

Communicator::Communicator(Fabric& fabric, std::vector<int> ranks, double efficiency)
    : fabric_(fabric), ranks_(std::move(ranks)), efficiency_(efficiency) {
  assert(!ranks_.empty());
  assert(efficiency_ > 0 && efficiency_ <= 1.0);
}

void Communicator::RunRingSteps(std::shared_ptr<RingState> state, int step) {
  if (step >= state->total_steps) {
    state->finish(*state);
    return;
  }
  const int n = size();
  state->pending_in_step = n;
  for (int i = 0; i < n; ++i) {
    const int dst = (i + 1) % n;
    const int chunk = state->chunk_to_send(i, step);
    // Snapshot the payload now; the destination applies it at arrival time.
    FloatVec payload = state->slots[static_cast<size_t>(i)][static_cast<size_t>(chunk)];
    const Bytes bytes = FloatBytes(payload.size());
    Fabric::TransferOptions options;
    options.bandwidth_efficiency = efficiency_;
    fabric_.Transfer(
        ranks_[static_cast<size_t>(i)], ranks_[static_cast<size_t>(dst)], bytes, options,
        [this, state, step, dst, chunk, payload = std::move(payload)](Status status) mutable {
          if (!status.ok()) {
            state->failed = true;
            state->error = status;
          } else if (!state->failed) {
            state->apply(dst, chunk, payload);
          }
          if (--state->pending_in_step == 0) {
            if (state->failed) {
              state->fail(state->error);
              return;
            }
            RunRingSteps(state, step + 1);
          }
        });
  }
}

void Communicator::AllGather(std::vector<FloatVec> shards,
                             std::function<void(StatusOr<FloatVec>)> done) {
  const int n = size();
  assert(static_cast<int>(shards.size()) == n);
  if (n == 1) {
    done(std::move(shards[0]));
    return;
  }
  auto state = std::make_shared<RingState>();
  state->total_steps = n - 1;
  state->slots.assign(static_cast<size_t>(n), std::vector<FloatVec>(static_cast<size_t>(n)));
  for (int i = 0; i < n; ++i) {
    state->slots[static_cast<size_t>(i)][static_cast<size_t>(i)] = shards[static_cast<size_t>(i)];
  }
  state->chunk_to_send = [n](int member, int step) { return ((member - step) % n + n) % n; };
  state->apply = [state_weak = std::weak_ptr<RingState>(state)](int dst, int chunk,
                                                                const FloatVec& data) {
    if (auto s = state_weak.lock()) {
      s->slots[static_cast<size_t>(dst)][static_cast<size_t>(chunk)] = data;
    }
  };
  state->fail = [done](Status status) { done(std::move(status)); };
  state->finish = [n, done](RingState& s) {
    // Every member now holds all chunks; return member 0's concatenation
    // (identical everywhere, which the tests assert).
    FloatVec out;
    for (int c = 0; c < n; ++c) {
      const FloatVec& chunk = s.slots[0][static_cast<size_t>(c)];
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
    done(std::move(out));
  };
  RunRingSteps(state, 0);
}

void Communicator::ReduceScatter(std::vector<FloatVec> inputs,
                                 std::function<void(StatusOr<std::vector<FloatVec>>)> done) {
  const int n = size();
  assert(static_cast<int>(inputs.size()) == n);
  const size_t length = inputs[0].size();
  assert(length % static_cast<size_t>(n) == 0);
  for (const auto& input : inputs) {
    assert(input.size() == length);
    (void)input;
  }
  const size_t chunk_len = length / static_cast<size_t>(n);

  if (n == 1) {
    done(std::vector<FloatVec>{std::move(inputs[0])});
    return;
  }

  auto state = std::make_shared<RingState>();
  state->total_steps = n - 1;
  state->slots.assign(static_cast<size_t>(n), std::vector<FloatVec>(static_cast<size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < n; ++c) {
      const auto begin = inputs[static_cast<size_t>(i)].begin() +
                         static_cast<std::ptrdiff_t>(static_cast<size_t>(c) * chunk_len);
      state->slots[static_cast<size_t>(i)][static_cast<size_t>(c)] =
          FloatVec(begin, begin + static_cast<std::ptrdiff_t>(chunk_len));
    }
  }
  state->chunk_to_send = [n](int member, int step) { return ((member - step) % n + n) % n; };
  state->apply = [state_weak = std::weak_ptr<RingState>(state)](int dst, int chunk,
                                                                const FloatVec& data) {
    if (auto s = state_weak.lock()) {
      FloatVec& acc = s->slots[static_cast<size_t>(dst)][static_cast<size_t>(chunk)];
      assert(acc.size() == data.size());
      for (size_t k = 0; k < data.size(); ++k) {
        acc[k] += data[k];
      }
    }
  };
  state->fail = [done](Status status) { done(std::move(status)); };
  state->finish = [n, done](RingState& s) {
    // After n-1 steps member i holds the fully reduced chunk (i+1) mod n;
    // re-index so result[c] is reduced chunk c (pure relabeling, free in a
    // shared address space).
    std::vector<FloatVec> result(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int chunk = (i + 1) % n;
      result[static_cast<size_t>(chunk)] =
          std::move(s.slots[static_cast<size_t>(i)][static_cast<size_t>(chunk)]);
    }
    done(std::move(result));
  };
  RunRingSteps(state, 0);
}

void Communicator::AllReduce(std::vector<FloatVec> inputs,
                             std::function<void(StatusOr<FloatVec>)> done) {
  ReduceScatter(std::move(inputs), [this, done](StatusOr<std::vector<FloatVec>> reduced) {
    if (!reduced.ok()) {
      done(reduced.status());
      return;
    }
    AllGather(std::move(reduced).value(), std::move(done));
  });
}

void Communicator::Broadcast(int root_index, FloatVec data,
                             std::function<void(StatusOr<FloatVec>)> done) {
  const int n = size();
  assert(root_index >= 0 && root_index < n);
  if (n == 1) {
    done(std::move(data));
    return;
  }
  // Chain: root -> root+1 -> ... -> root+n-1 (mod n). The recursive step
  // captures itself weakly (each in-flight transfer callback holds the only
  // strong reference) so the function object is reclaimed once the chain
  // finishes instead of keeping itself alive through a shared_ptr cycle.
  auto payload = std::make_shared<FloatVec>(std::move(data));
  auto forward = std::make_shared<std::function<void(int)>>();
  const std::weak_ptr<std::function<void(int)>> weak_forward = forward;
  *forward = [this, n, root_index, payload, weak_forward, done](int hop) {
    if (hop == n - 1) {
      done(std::move(*payload));
      return;
    }
    const int src = (root_index + hop) % n;
    const int dst = (root_index + hop + 1) % n;
    Fabric::TransferOptions options;
    options.bandwidth_efficiency = efficiency_;
    const auto self = weak_forward.lock();
    fabric_.Transfer(ranks_[static_cast<size_t>(src)], ranks_[static_cast<size_t>(dst)],
                     FloatBytes(payload->size()), options,
                     [self, hop, done](Status status) {
                       if (!status.ok()) {
                         done(std::move(status));
                         return;
                       }
                       (*self)(hop + 1);
                     });
  };
  (*forward)(0);
}

}  // namespace gemini
