// Repeating timer built on the Simulator, used for heartbeats and periodic
// health scans. The callback may Stop() the timer (e.g. when its agent dies).
#ifndef SRC_SIM_TIMER_H_
#define SRC_SIM_TIMER_H_

#include <functional>
#include <memory>

#include "src/sim/simulator.h"

namespace gemini {

class RepeatingTimer {
 public:
  // Does not start ticking until Start() is called.
  RepeatingTimer(Simulator& sim, TimeNs period, std::function<void()> on_tick);
  ~RepeatingTimer();

  RepeatingTimer(const RepeatingTimer&) = delete;
  RepeatingTimer& operator=(const RepeatingTimer&) = delete;

  // First tick fires `period` from now (or immediately if fire_now).
  void Start(bool fire_now = false);
  void Stop();
  bool running() const { return running_; }
  TimeNs period() const { return period_; }

 private:
  void Arm(TimeNs delay);

  Simulator& sim_;
  TimeNs period_;
  std::function<void()> on_tick_;
  bool running_ = false;
  EventId pending_{};
  // Guards against use-after-free when the owner destroys the timer while an
  // event holding a reference is in flight.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace gemini

#endif  // SRC_SIM_TIMER_H_
