#include "src/sim/simulator.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace gemini {

EventId Simulator::ScheduleAt(TimeNs when, std::function<void()> fn) {
  assert(fn);
  assert(when >= now_ && "cannot schedule into the past");
  const uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq});
  callbacks_.emplace(seq, std::move(fn));
  return EventId{seq};
}

EventId Simulator::ScheduleAfter(TimeNs delay, std::function<void()> fn) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  return callbacks_.erase(id.value) > 0;
}

bool Simulator::RunOne() {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    auto it = callbacks_.find(event.seq);
    if (it == callbacks_.end()) {
      // Tombstone from a cancelled event.
      queue_.pop();
      continue;
    }
    queue_.pop();
    now_ = event.when;
    // Move the callback out before running it: the callback may schedule or
    // cancel other events (rehashing callbacks_).
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    ++events_run_;
    if (event_limit_ > 0 && events_run_ > event_limit_) {
      std::fprintf(stderr, "Simulator event limit (%lld) exceeded; aborting\n",
                   static_cast<long long>(event_limit_));
      std::abort();
    }
    fn();
    return true;
  }
  return false;
}

int64_t Simulator::Run() {
  int64_t n = 0;
  while (RunOne()) {
    ++n;
  }
  return n;
}

int64_t Simulator::RunUntil(TimeNs deadline) {
  assert(deadline >= now_);
  int64_t n = 0;
  while (!queue_.empty()) {
    // Skip tombstones so queue_.top() reflects a live event time.
    if (callbacks_.find(queue_.top().seq) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) {
      break;
    }
    if (!RunOne()) {
      break;
    }
    ++n;
  }
  now_ = deadline;
  return n;
}

bool Simulator::Step() { return RunOne(); }

}  // namespace gemini
