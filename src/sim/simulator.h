// Deterministic discrete-event simulation engine.
//
// This is the substrate that stands in for the paper's physical GPU cluster:
// every timed activity (a NIC transfer, a PCIe copy, a compute segment, a
// heartbeat, a machine failure) is an event scheduled on one Simulator.
// Events at equal timestamps fire in scheduling order (FIFO tie-break via a
// monotonically increasing sequence number), so runs are bit-reproducible.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace gemini {

// Opaque handle identifying a scheduled event; usable for cancellation.
struct EventId {
  uint64_t value = 0;
  bool valid() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= now()).
  EventId ScheduleAt(TimeNs when, std::function<void()> fn);

  // Schedules `fn` to run `delay` after now().
  EventId ScheduleAfter(TimeNs delay, std::function<void()> fn);

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or never existed. Cancellation is O(1): the event is
  // tombstoned and skipped when popped.
  bool Cancel(EventId id);

  // Runs events until the queue is empty. Returns the number of events run.
  int64_t Run();

  // Runs events with timestamp <= deadline; leaves now() == deadline if the
  // queue drained earlier or the next event is beyond the deadline.
  int64_t RunUntil(TimeNs deadline);

  // Runs at most one event. Returns false when the queue is empty.
  bool Step();

  // Number of events waiting (including tombstoned ones).
  size_t pending_events() const { return queue_.size(); }

  // Hard cap on total events per Run*/Step sequence to catch runaway loops in
  // tests; 0 disables. Exceeding the cap aborts the process.
  void set_event_limit(int64_t limit) { event_limit_ = limit; }

 private:
  struct Event {
    TimeNs when;
    uint64_t seq;
    // Ordered min-first by (when, seq).
    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the next live event. Returns false if none remain.
  bool RunOne();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  int64_t events_run_ = 0;
  int64_t event_limit_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // seq -> callback for live events; cancelled events are simply erased.
  std::unordered_map<uint64_t, std::function<void()>> callbacks_;
};

}  // namespace gemini

#endif  // SRC_SIM_SIMULATOR_H_
