#include "src/sim/timer.h"

#include <cassert>
#include <utility>

namespace gemini {

RepeatingTimer::RepeatingTimer(Simulator& sim, TimeNs period, std::function<void()> on_tick)
    : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {
  assert(period_ > 0);
  assert(on_tick_);
}

RepeatingTimer::~RepeatingTimer() {
  *alive_ = false;
  Stop();
}

void RepeatingTimer::Start(bool fire_now) {
  if (running_) {
    return;
  }
  running_ = true;
  Arm(fire_now ? 0 : period_);
}

void RepeatingTimer::Stop() {
  running_ = false;
  if (pending_.valid()) {
    sim_.Cancel(pending_);
    pending_ = EventId{};
  }
}

void RepeatingTimer::Arm(TimeNs delay) {
  std::weak_ptr<bool> alive = alive_;
  pending_ = sim_.ScheduleAfter(delay, [this, alive] {
    const auto locked = alive.lock();
    if (!locked || !*locked || !running_) {
      return;
    }
    pending_ = EventId{};
    on_tick_();
    // on_tick_ may have stopped the timer.
    if (running_) {
      Arm(period_);
    }
  });
}

}  // namespace gemini
