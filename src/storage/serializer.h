// Binary checkpoint serialization (the torch.save / torch.load analogue).
//
// Format (little-endian):
//   magic "GMCK" | u32 version | i32 owner | i64 iteration | i64 logical
//   | u64 payload_count | payload floats | u32 crc32(everything before crc)
//
// Deserialize verifies magic, version, and CRC, so a recovery path can never
// silently load torn or corrupted state.
#ifndef SRC_STORAGE_SERIALIZER_H_
#define SRC_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/storage/checkpoint.h"

namespace gemini {

std::vector<uint8_t> SerializeCheckpoint(const Checkpoint& checkpoint);

StatusOr<Checkpoint> DeserializeCheckpoint(const std::vector<uint8_t>& bytes);

// Timing model for serialization. torch.save is CPU-bound: the paper
// measures 81 s per HighFreq checkpoint and 162 s to serialize two replicas
// at recovery (GPT-2 100B, 75 GiB per machine replica), i.e. ~1 GiB/s.
struct SerializationModel {
  // Calibrated: the paper measures 81 s per 75 GB machine replica.
  BytesPerSecond bandwidth = 0.93e9;

  TimeNs SerializeTime(Bytes logical_bytes) const { return TransferTime(logical_bytes, bandwidth); }
  // Loading is symmetric at this fidelity.
  TimeNs DeserializeTime(Bytes logical_bytes) const {
    return TransferTime(logical_bytes, bandwidth);
  }
};

}  // namespace gemini

#endif  // SRC_STORAGE_SERIALIZER_H_
