// Binary checkpoint serialization (the torch.save / torch.load analogue).
//
// Format (little-endian):
//   magic "GMCK" | u32 version | i32 owner | i64 iteration | i64 logical
//   | u64 payload_count | payload floats | u32 crc32(everything before crc)
//
// Deserialize verifies magic, version, and CRC, so a recovery path can never
// silently load torn or corrupted state.
#ifndef SRC_STORAGE_SERIALIZER_H_
#define SRC_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/storage/checkpoint.h"

namespace gemini {

class ThreadPool;

// Recycles serialized-blob buffers across checkpoints the way PayloadPool
// recycles float buffers: Acquire() hands back a released buffer only when
// no other shared_ptr still references it, so a blob pinned by an in-flight
// upload is never clobbered. Steady-state serialization is allocation-free
// once warm.
class BlobPool {
 public:
  // A mutable buffer resized to `bytes` (contents unspecified).
  std::shared_ptr<std::vector<uint8_t>> Acquire(size_t bytes) {
    for (auto& slot : buffers_) {
      if (slot.use_count() == 1 && slot->capacity() >= bytes) {
        std::shared_ptr<std::vector<uint8_t>> buffer = slot;
        buffer->resize(bytes);
        return buffer;
      }
    }
    buffers_.push_back(std::make_shared<std::vector<uint8_t>>(bytes));
    return buffers_.back();
  }

  size_t allocated_buffers() const { return buffers_.size(); }

 private:
  std::vector<std::shared_ptr<std::vector<uint8_t>>> buffers_;
};

// Knobs for the pooled/parallel serialization path. Defaults reproduce the
// plain SerializeCheckpoint byte-for-byte (they always do — see below).
struct SerializeOptions {
  // Fans the payload copy and the trailing CRC out across workers (per-shard
  // segments, per-segment CRCs combined in rank order with Crc32Combine).
  // Null (or a 1-thread pool) runs inline. The output bytes are identical
  // either way: segmented-CRC-combine is exact, not approximate.
  ThreadPool* workers = nullptr;
  // Output buffers are leased from this pool instead of freshly allocated.
  BlobPool* pool = nullptr;
};

std::vector<uint8_t> SerializeCheckpoint(const Checkpoint& checkpoint);

// Pooled/parallel form: same bytes as SerializeCheckpoint, in a buffer owned
// by options.pool (or a fresh one when pool is null). The caller's
// shared_ptr pins the buffer; dropping it returns the buffer to the pool.
std::shared_ptr<std::vector<uint8_t>> SerializeCheckpointShared(const Checkpoint& checkpoint,
                                                                const SerializeOptions& options);

StatusOr<Checkpoint> DeserializeCheckpoint(const std::vector<uint8_t>& bytes);

// Timing model for serialization. torch.save is CPU-bound: the paper
// measures 81 s per HighFreq checkpoint and 162 s to serialize two replicas
// at recovery (GPT-2 100B, 75 GiB per machine replica), i.e. ~1 GiB/s.
struct SerializationModel {
  // Calibrated: the paper measures 81 s per 75 GB machine replica.
  BytesPerSecond bandwidth = 0.93e9;

  TimeNs SerializeTime(Bytes logical_bytes) const { return TransferTime(logical_bytes, bandwidth); }
  // Loading is symmetric at this fidelity.
  TimeNs DeserializeTime(Bytes logical_bytes) const {
    return TransferTime(logical_bytes, bandwidth);
  }
};

}  // namespace gemini

#endif  // SRC_STORAGE_SERIALIZER_H_
