// Checkpoint objects.
//
// A checkpoint is the model states owned by one machine (its ZeRO-3 shard of
// parameters + optimizer states). Checkpoints carry two sizes:
//  * `logical_bytes` — the modeled size used for all timing (e.g. 75 GiB per
//    machine for GPT-2 100B on 16 machines: 12 bytes/param of fp32 optimizer
//    state + master weights, sharded);
//  * a real float payload — small, but flows through every code path
//    (partitioned, transferred, serialized, CRC-checked, restored) so that
//    recovery correctness is verified on actual bytes.
#ifndef SRC_STORAGE_CHECKPOINT_H_
#define SRC_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/units.h"

namespace gemini {

struct Checkpoint {
  // Rank of the machine whose model states these are.
  int owner_rank = -1;
  // Training iteration the states correspond to (checkpoint taken after the
  // update of this iteration).
  int64_t iteration = -1;
  // Modeled size used by the cost models and memory accounting.
  Bytes logical_bytes = 0;
  // Real payload.
  std::vector<float> payload;
  // CRC-32 of the payload bytes, recorded at capture time so every tier can
  // verify the replica it is about to serve (0 = no digest recorded, e.g. a
  // hand-built test checkpoint).
  uint32_t payload_crc = 0;

  bool valid() const { return owner_rank >= 0 && iteration >= 0; }

  uint32_t ComputePayloadCrc() const {
    return payload.empty() ? 0 : Crc32(payload.data(), payload.size() * sizeof(float));
  }
  void StampPayloadCrc() { payload_crc = ComputePayloadCrc(); }
  // True when the payload still matches its recorded digest.
  bool IntegrityOk() const { return payload_crc == 0 || payload_crc == ComputePayloadCrc(); }

  friend bool operator==(const Checkpoint& a, const Checkpoint& b) {
    return a.owner_rank == b.owner_rank && a.iteration == b.iteration &&
           a.logical_bytes == b.logical_bytes && a.payload == b.payload;
  }
};

}  // namespace gemini

#endif  // SRC_STORAGE_CHECKPOINT_H_
