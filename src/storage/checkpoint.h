// Checkpoint objects.
//
// A checkpoint is the model states owned by one machine (its ZeRO-3 shard of
// parameters + optimizer states). Checkpoints carry two sizes:
//  * `logical_bytes` — the modeled size used for all timing (e.g. 75 GiB per
//    machine for GPT-2 100B on 16 machines: 12 bytes/param of fp32 optimizer
//    state + master weights, sharded);
//  * a real float payload — small, but flows through every code path
//    (partitioned, transferred, serialized, CRC-checked, restored) so that
//    recovery correctness is verified on actual bytes.
//
// Payload ownership: the payload is an immutable shared buffer behind a
// `PayloadRef` handle, so copying a Checkpoint — staged snapshot -> m holder
// stores -> persistent tier -> recovery reads — shares one allocation
// instead of deep-copying floats at every hop. The bytes are frozen at
// capture; the only mutation door is `MutableData()`, the copy-on-write
// escape hatch behind the corruption *test hooks* (CorruptLatest /
// CorruptShard), which detaches the corrupted holder onto a private copy so
// bit-rot injected into one replica can never leak into its siblings.
#ifndef SRC_STORAGE_CHECKPOINT_H_
#define SRC_STORAGE_CHECKPOINT_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/units.h"

namespace gemini {

// Immutable shared payload handle: a shared_ptr to a frozen float buffer plus
// an [offset, offset+size) view. Copies are O(1) (one refcount bump); value
// comparisons and reads see exactly the viewed floats.
class PayloadRef {
 public:
  PayloadRef() = default;

  // Freezes `values` into a new shared buffer. Implicit on purpose: existing
  // call sites keep writing `checkpoint.payload = std::move(vec);`.
  PayloadRef(std::vector<float> values)  // NOLINT(google-explicit-constructor)
      : buffer_(std::make_shared<const std::vector<float>>(std::move(values))),
        offset_(0),
        size_(buffer_->size()) {}

  // Adopts an already-shared frozen buffer without copying (full view).
  explicit PayloadRef(std::shared_ptr<const std::vector<float>> buffer)
      : buffer_(std::move(buffer)), offset_(0), size_(buffer_ ? buffer_->size() : 0) {}

  // O(1) sub-view of the same shared buffer.
  PayloadRef Slice(size_t offset, size_t count) const {
    assert(offset + count <= size_);
    PayloadRef view = *this;
    view.offset_ += offset;
    view.size_ = count;
    return view;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t size_bytes() const { return size_ * sizeof(float); }
  const float* data() const { return buffer_ ? buffer_->data() + offset_ : nullptr; }
  const float* begin() const { return data(); }
  const float* end() const { return data() + size_; }
  const float& operator[](size_t i) const {
    assert(i < size_);
    return *(data() + i);
  }

  // Copy-out for paths that need to own mutable floats (trainer restore).
  std::vector<float> ToVector() const { return std::vector<float>(begin(), end()); }

  // True when both handles view the same underlying buffer (pointer, not
  // value, identity) — the aliasing predicate the sharing tests assert.
  bool SharesBufferWith(const PayloadRef& other) const {
    return buffer_ != nullptr && buffer_ == other.buffer_;
  }
  // Outstanding handles on the underlying buffer (0 for an empty ref).
  long use_count() const { return buffer_.use_count(); }  // NOLINT(google-runtime-int)

  // Copy-on-write escape hatch for the corruption test hooks: detaches this
  // handle onto a private full-buffer copy of the viewed floats and returns
  // mutable access. Every other holder keeps the original, untouched bytes.
  // The pointer stays valid until this handle is reassigned or destroyed.
  float* MutableData() {
    auto owned = std::make_shared<std::vector<float>>(begin(), end());
    float* raw = owned->data();
    buffer_ = std::move(owned);
    offset_ = 0;
    // size_ unchanged: the private copy is exactly the old view.
    return raw;
  }

  // Value equality (the floats seen through the view), not buffer identity.
  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const PayloadRef& a, const std::vector<float>& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::shared_ptr<const std::vector<float>> buffer_;
  size_t offset_ = 0;
  size_t size_ = 0;
};

// Recycles payload buffers across checkpoint iterations so the steady-state
// capture/assembly path is allocation-free once warm. Acquire() hands back a
// previously released buffer only when no PayloadRef still references it —
// "double-buffer aware": a buffer pinned by a store's completed slot (or any
// staged snapshot) is skipped, so with double-buffered stores the pool
// settles at ~2 buffers per producer and then cycles them.
class PayloadPool {
 public:
  // A mutable buffer of exactly `count` elements (contents unspecified).
  // Freeze the filled buffer into a checkpoint with `PayloadRef(std::shared_
  // ptr<const std::vector<float>>(buffer))`, then Release() it back.
  std::shared_ptr<std::vector<float>> Acquire(size_t count) {
    for (auto& slot : buffers_) {
      if (slot.use_count() == 1 && slot->capacity() >= count) {
        std::shared_ptr<std::vector<float>> buffer = slot;
        buffer->resize(count);
        return buffer;
      }
    }
    buffers_.push_back(std::make_shared<std::vector<float>>(count));
    return buffers_.back();
  }

  // Hands the buffer's ownership back (the pool already tracks it; this just
  // drops the caller's reference so a future Acquire can see use_count 1).
  void Release(std::shared_ptr<std::vector<float>>&& buffer) { buffer.reset(); }

  size_t allocated_buffers() const { return buffers_.size(); }

 private:
  std::vector<std::shared_ptr<std::vector<float>>> buffers_;
};

struct Checkpoint {
  // Rank of the machine whose model states these are.
  int owner_rank = -1;
  // Training iteration the states correspond to (checkpoint taken after the
  // update of this iteration).
  int64_t iteration = -1;
  // Modeled size used by the cost models and memory accounting.
  Bytes logical_bytes = 0;
  // Real payload: an immutable shared handle, so Checkpoint copies are O(1).
  PayloadRef payload;
  // CRC-32 of the payload bytes, recorded at capture time so every tier can
  // verify the replica it is about to serve (0 = no digest recorded, e.g. a
  // hand-built test checkpoint).
  uint32_t payload_crc = 0;

  bool valid() const { return owner_rank >= 0 && iteration >= 0; }

  uint32_t ComputePayloadCrc() const {
    return payload.empty() ? 0 : Crc32(payload.data(), payload.size_bytes());
  }
  void StampPayloadCrc() { payload_crc = ComputePayloadCrc(); }
  // True when the payload still matches its recorded digest.
  bool IntegrityOk() const { return payload_crc == 0 || payload_crc == ComputePayloadCrc(); }

  friend bool operator==(const Checkpoint& a, const Checkpoint& b) {
    return a.owner_rank == b.owner_rank && a.iteration == b.iteration &&
           a.logical_bytes == b.logical_bytes && a.payload == b.payload;
  }
};

}  // namespace gemini

#endif  // SRC_STORAGE_CHECKPOINT_H_
