#include "src/storage/cpu_store.h"

#include <cassert>
#include <cstring>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace gemini {

void CpuCheckpointStore::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    commits_counter_ = &metrics->counter("cpu_store.commits");
    bytes_committed_counter_ = &metrics->counter("cpu_store.bytes_committed");
    aborts_counter_ = &metrics->counter("cpu_store.aborts");
    crc_failures_counter_ = &metrics->counter("cpu_store.crc_failures");
    corruptions_counter_ = &metrics->counter("cpu_store.corruptions");
    delta_commits_counter_ = &metrics->counter("cpu_store.delta_commits");
    delta_bytes_saved_counter_ = &metrics->counter("delta.bytes_saved");
    compaction_folds_counter_ = &metrics->counter("compaction.folds");
    compaction_bytes_folded_counter_ = &metrics->counter("compaction.bytes_folded");
    chain_length_gauge_ = &metrics->gauge("delta.chain_length");
  } else {
    commits_counter_ = nullptr;
    bytes_committed_counter_ = nullptr;
    aborts_counter_ = nullptr;
    crc_failures_counter_ = nullptr;
    corruptions_counter_ = nullptr;
    delta_commits_counter_ = nullptr;
    delta_bytes_saved_counter_ = nullptr;
    compaction_folds_counter_ = nullptr;
    compaction_bytes_folded_counter_ = nullptr;
    chain_length_gauge_ = nullptr;
  }
}

void CpuCheckpointStore::ConfigureRedoLog(const RedoLogConfig& config) {
  log_config_ = config;
}

void CpuCheckpointStore::ResetForMachine(Machine& machine) {
  // The previous machine's DRAM is gone; do not free against the new one.
  slots_.clear();
  reserved_ = 0;
  machine_ = &machine;
}

Status CpuCheckpointStore::HostOwner(int owner_rank, Bytes replica_bytes) {
  auto it = slots_.find(owner_rank);
  if (it != slots_.end()) {
    if (it->second.replica_bytes == replica_bytes) {
      return Status::Ok();
    }
    return AlreadyExistsError("owner already hosted with a different replica size");
  }
  // Double buffer: completed + ongoing.
  const Bytes needed = 2 * replica_bytes;
  GEMINI_RETURN_IF_ERROR(machine_->AllocateCpuMemory(needed));
  Slot slot;
  slot.replica_bytes = replica_bytes;
  slots_.emplace(owner_rank, std::move(slot));
  reserved_ += needed;
  return Status::Ok();
}

void CpuCheckpointStore::DropOwner(int owner_rank) {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end()) {
    return;
  }
  const Bytes freed = 2 * it->second.replica_bytes;
  machine_->FreeCpuMemory(freed);
  reserved_ -= freed;
  slots_.erase(it);
}

Status CpuCheckpointStore::BeginWrite(int owner_rank, int64_t iteration) {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end()) {
    return FailedPreconditionError("owner not hosted on this machine");
  }
  Slot& slot = it->second;
  slot.writing = true;
  slot.writing_iteration = iteration;
  slot.received = 0;
  return Status::Ok();
}

Status CpuCheckpointStore::AppendChunk(int owner_rank, Bytes chunk_bytes) {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end()) {
    return FailedPreconditionError("owner not hosted on this machine");
  }
  Slot& slot = it->second;
  if (!slot.writing) {
    return FailedPreconditionError("no write in progress");
  }
  slot.received += chunk_bytes;
  if (slot.received > slot.replica_bytes) {
    return InvalidArgumentError("chunk overflows the ongoing checkpoint buffer");
  }
  return Status::Ok();
}

Status CpuCheckpointStore::CommitWrite(Checkpoint checkpoint) {
  auto it = slots_.find(checkpoint.owner_rank);
  if (it == slots_.end()) {
    return FailedPreconditionError("owner not hosted on this machine");
  }
  Slot& slot = it->second;
  if (!slot.writing) {
    return FailedPreconditionError("no write in progress");
  }
  if (slot.received != checkpoint.logical_bytes) {
    return DataLossError("commit with incomplete checkpoint: received " +
                         FormatBytes(slot.received) + " of " +
                         FormatBytes(checkpoint.logical_bytes));
  }
  if (slot.writing_iteration != checkpoint.iteration) {
    return InvalidArgumentError("commit iteration does not match BeginWrite");
  }
  slot.completed = std::move(checkpoint);
  slot.writing = false;
  slot.writing_iteration = -1;
  slot.received = 0;
  if (log_config_.has_value()) {
    // A full commit seals a new redo-log base; any older chain is subsumed.
    if (!slot.log.has_value()) {
      slot.log.emplace(*log_config_);
    }
    slot.log->Reset(*slot.completed);
  }
  if (commits_counter_ != nullptr) {
    commits_counter_->Increment();
    bytes_committed_counter_->Increment(slot.completed->logical_bytes);
  }
  return Status::Ok();
}

Status CpuCheckpointStore::WriteDelta(DeltaCheckpoint delta) {
  auto it = slots_.find(delta.owner_rank);
  if (it == slots_.end()) {
    return FailedPreconditionError("owner not hosted on this machine");
  }
  if (!log_config_.has_value()) {
    return FailedPreconditionError("store is not in incremental mode");
  }
  Slot& slot = it->second;
  if (!slot.log.has_value()) {
    return FailedPreconditionError("no sealed base to append a delta to");
  }
  const Bytes delta_bytes = delta.delta_bytes;
  const Bytes full_bytes = delta.logical_bytes;
  GEMINI_RETURN_IF_ERROR(slot.log->Append(std::move(delta)));
  if (delta_commits_counter_ != nullptr) {
    delta_commits_counter_->Increment();
    bytes_committed_counter_->Increment(delta_bytes);
    delta_bytes_saved_counter_->Increment(full_bytes - delta_bytes);
    chain_length_gauge_->Set(static_cast<double>(slot.log->chain_length()));
  }
  if (slot.log->NeedsCompaction()) {
    const Bytes folded = slot.log->chain_bytes();
    const Status compacted = slot.log->Compact();
    if (compacted.ok()) {
      // The folded base replaces the old completed checkpoint.
      slot.completed = slot.log->base();
      if (compaction_folds_counter_ != nullptr) {
        compaction_folds_counter_->Increment();
        compaction_bytes_folded_counter_->Increment(folded);
      }
    }
    // A failed fold (corrupt link) is left in place: the read path will
    // surface the corruption and the retry cascade takes over.
  }
  return Status::Ok();
}

int64_t CpuCheckpointStore::ChainHeadIteration(int owner_rank) const {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end()) {
    return -1;
  }
  const Slot& slot = it->second;
  if (slot.log.has_value() && slot.log->has_base()) {
    return slot.log->latest_iteration();
  }
  return slot.completed.has_value() ? slot.completed->iteration : -1;
}

size_t CpuCheckpointStore::ChainLength(int owner_rank) const {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end() || !it->second.log.has_value()) {
    return 0;
  }
  return it->second.log->chain_length();
}

Status CpuCheckpointStore::CorruptChainDelta(int owner_rank, size_t chain_index,
                                             size_t bit_index) {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end() || !it->second.log.has_value()) {
    return NotFoundError("no redo log chain to corrupt");
  }
  GEMINI_RETURN_IF_ERROR(it->second.log->CorruptDelta(chain_index, bit_index));
  if (corruptions_counter_ != nullptr) {
    corruptions_counter_->Increment();
  }
  return Status::Ok();
}

void CpuCheckpointStore::AbortWrite(int owner_rank) {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end()) {
    return;
  }
  if (it->second.writing && aborts_counter_ != nullptr) {
    aborts_counter_->Increment();
  }
  it->second.writing = false;
  it->second.writing_iteration = -1;
  it->second.received = 0;
}

Status CpuCheckpointStore::WriteComplete(Checkpoint checkpoint) {
  GEMINI_RETURN_IF_ERROR(BeginWrite(checkpoint.owner_rank, checkpoint.iteration));
  GEMINI_RETURN_IF_ERROR(AppendChunk(checkpoint.owner_rank, checkpoint.logical_bytes));
  return CommitWrite(std::move(checkpoint));
}

std::optional<Checkpoint> CpuCheckpointStore::LatestImpl(int owner_rank,
                                                         bool count_failures) const {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end()) {
    return std::nullopt;
  }
  const Slot& slot = it->second;
  if (slot.log.has_value() && slot.log->chain_length() > 0) {
    // Incremental mode with a live chain: replay base+deltas in epoch
    // order. A corrupt link fails the whole replica — serving the base (an
    // older iteration than siblings committed) would hand RestoreAll a
    // mixed-iteration set, so the retry cascade falls to another holder or
    // the persistent tier instead.
    StatusOr<Checkpoint> materialized = slot.log->Materialize();
    if (!materialized.ok()) {
      if (count_failures) {
        if (crc_failures_counter_ != nullptr) {
          crc_failures_counter_->Increment();
        }
        GEMINI_LOG(kWarning) << "cpu store on " << machine_->DebugName()
                             << ": delta chain for owner " << owner_rank
                             << " failed to materialize (" << materialized.status()
                             << "); treating as lost";
      }
      return std::nullopt;
    }
    return std::move(materialized).value();
  }
  return slot.completed;
}

std::optional<Checkpoint> CpuCheckpointStore::Latest(int owner_rank) const {
  return LatestImpl(owner_rank, /*count_failures=*/false);
}

std::optional<Checkpoint> CpuCheckpointStore::LatestVerified(int owner_rank) const {
  std::optional<Checkpoint> latest = LatestImpl(owner_rank, /*count_failures=*/true);
  if (!latest.has_value()) {
    return std::nullopt;
  }
  if (!latest->IntegrityOk()) {
    if (crc_failures_counter_ != nullptr) {
      crc_failures_counter_->Increment();
    }
    GEMINI_LOG(kWarning) << "cpu store on " << machine_->DebugName()
                         << ": replica for owner " << owner_rank
                         << " failed its CRC check; treating as lost";
    return std::nullopt;
  }
  return latest;
}

int64_t CpuCheckpointStore::LatestIteration(int owner_rank) const {
  return ChainHeadIteration(owner_rank);
}

Status CpuCheckpointStore::CorruptLatest(int owner_rank, size_t bit_index) {
  auto it = slots_.find(owner_rank);
  if (it == slots_.end() || !it->second.completed.has_value()) {
    return NotFoundError("no completed replica to corrupt");
  }
  Checkpoint& checkpoint = *it->second.completed;
  if (checkpoint.payload.empty()) {
    return FailedPreconditionError("replica has no payload bytes");
  }
  const size_t total_bits = checkpoint.payload.size() * sizeof(float) * 8;
  const size_t bit = bit_index % total_bits;
  // Copy-on-write: the payload buffer is shared with every other holder of
  // this snapshot; MutableData() detaches onto a private copy so the injected
  // bit-rot stays local to this replica.
  auto* bytes = reinterpret_cast<uint8_t*>(checkpoint.payload.MutableData());
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  if (corruptions_counter_ != nullptr) {
    corruptions_counter_->Increment();
  }
  return Status::Ok();
}

}  // namespace gemini
