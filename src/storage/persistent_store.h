// Remote persistent checkpoint storage (the FSx stand-in).
//
// Models the storage tier existing solutions checkpoint to: a shared store
// with a fixed *aggregate* bandwidth (20 Gb/s in the paper's testbed) that
// all machines' transfers serialize through. Saves are grouped into global
// checkpoints: a training iteration is only restorable once every rank's
// shard for that iteration has finished uploading — exactly why a failure
// mid-upload falls back to the previous complete checkpoint (paper Fig. 1).
//
// With `config.disk_dir` set, every durable shard is additionally written to
// disk in the serialized (CRC-protected) checkpoint format and read back —
// with integrity verification — on retrieval, so the persistent tier
// survives process restarts like the real thing.
#ifndef SRC_STORAGE_PERSISTENT_STORE_H_
#define SRC_STORAGE_PERSISTENT_STORE_H_

#include <functional>
#include <string>
#include <map>
#include <optional>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"
#include "src/storage/checkpoint.h"
#include "src/storage/checkpoint_store.h"
#include "src/storage/delta.h"
#include "src/storage/serializer.h"

namespace gemini {

class ThreadPool;

struct PersistentStoreConfig {
  // Aggregate bandwidth across all concurrent readers/writers.
  BytesPerSecond aggregate_bandwidth = GbpsToBytesPerSecond(20);
  // Per-request overhead.
  TimeNs request_latency = Millis(10);
  // When non-empty, shards are persisted as files under this directory
  // ("ckpt_<iteration>_<rank>.gmck") and retrieval re-reads and CRC-checks
  // them.
  std::string disk_dir;
  // Retrieval retry cascade, mirroring the CPU-memory peer-retrieval path:
  // per-shard attempt cap with capped exponential backoff between attempts,
  // every attempt CRC-verifying the bytes it produced. Retries are counted in
  // "persistent_store.retries", CRC rejections in
  // "persistent_store.crc_failures".
  int retrieval_max_attempts = 4;
  TimeNs retrieval_backoff_base = Millis(100);
  TimeNs retrieval_backoff_cap = Seconds(2);

  // The shared schedule the cascade follows (src/storage/checkpoint_store.h).
  RetryPolicy retry_policy() const {
    return RetryPolicy{retrieval_max_attempts, retrieval_backoff_base, retrieval_backoff_cap};
  }
};

class Counter;
class MetricsRegistry;

class PersistentStore : public CheckpointStore {
 public:
  PersistentStore(Simulator& sim, PersistentStoreConfig config)
      : sim_(sim), config_(config) {}

  const PersistentStoreConfig& config() const { return config_; }

  std::string_view tier_name() const override { return "persistent"; }

  // Optional observability sink ("persistent.*" counters). Counter handles
  // are resolved here, once, per the hot-path metric convention
  // (src/obs/metrics.h).
  void set_metrics(MetricsRegistry* metrics);

  // Optional worker pool for disk-backed shard writes: serialization (payload
  // copy + CRC) fans out across it. Null (the default) serializes inline;
  // the file bytes are identical either way.
  void set_workers(ThreadPool* workers) { workers_ = workers; }

  using DoneCallback = std::function<void(Status)>;

  // Uploads one rank's shard of the global checkpoint at its iteration.
  // Completion time honours the shared-bandwidth FIFO. The shard becomes
  // visible (durable) only at completion.
  TimeNs Save(Checkpoint checkpoint, int expected_world_size, DoneCallback done);

  // Incremental mode: a full Save (or SeedImmediate) seals a per-owner redo
  // log base; SaveDelta then uploads only the delta bytes through the same
  // shared-bandwidth FIFO. At arrival the delta is appended to the owner's
  // epoch-sealed chain, materialized (CRC-gated), and the materialized shard
  // becomes durable — so the retrieval surface (Retrieve / Peek /
  // LatestCompleteIteration) is unchanged and the chain is invisible to
  // readers. Chains fold into a new base at the configured caps.
  void ConfigureRedoLog(const RedoLogConfig& config);
  bool incremental() const { return log_config_.has_value(); }

  // Uploads one rank's delta on top of the owner's chain head. Deltas must
  // be scheduled in epoch order on top of the previously scheduled state
  // (the FIFO preserves arrival order); a seal violation surfaces through
  // `done`.
  TimeNs SaveDelta(DeltaCheckpoint delta, int expected_world_size, DoneCallback done);

  // Chain head iteration a new delta must base on (-1 when no sealed base).
  int64_t DeltaBaseIteration(int owner_rank) const;
  size_t ChainLength(int owner_rank) const;

  // Durable-epoch watermark: the newest iteration restorable from this tier
  // (every rank's shard — full or materialized delta — is durable).
  int64_t durable_epoch() const { return LatestCompleteIteration(); }

  // Downloads a shard; `done` receives the checkpoint at the simulated
  // completion time. Transient transfer failures (fault hook) and CRC
  // rejections are retried internally up to `retrieval_max_attempts` with
  // capped exponential backoff; `done` fires once, with the final outcome.
  // Returns the completion time of the first attempt.
  TimeNs Retrieve(int owner_rank, int64_t iteration,
                  std::function<void(StatusOr<Checkpoint>)> done);

  // Fault hook for tests: consulted once per retrieval attempt (after the
  // transfer completes); a non-OK return fails that attempt.
  using RetrievalFaultHook = std::function<Status(int owner_rank, int64_t iteration, int attempt)>;
  void set_fault_hook(RetrievalFaultHook hook) { fault_hook_ = std::move(hook); }

  // Flips one payload bit of a durable shard — in memory and, when disk
  // backing is on, in its file — so tests can exercise the CRC cascade.
  Status CorruptShard(int owner_rank, int64_t iteration, size_t bit_index);

  // Latest iteration for which all `world_size` shards are durable; -1 if
  // none.
  int64_t LatestCompleteIteration() const;

  // CheckpointStore read-for-recovery surface. `LatestVerified` serves the
  // rank's shard of the latest *complete* global checkpoint — but only if its
  // payload still matches the capture-time CRC (a rejected shard counts under
  // "persistent_store.crc_failures", like the retrieval cascade). These are
  // immediate (zero-time) reads; timed recovery fetches still go through
  // Retrieve() and the shared-bandwidth FIFO.
  std::optional<Checkpoint> LatestVerified(int owner_rank) const override;
  int64_t LatestIteration(int owner_rank) const override;
  // Flips a bit in the rank's shard of the latest complete checkpoint.
  Status CorruptLatest(int owner_rank, size_t bit_index) override;

  // Immediate (zero-time) lookup used by analysis code and tests.
  std::optional<Checkpoint> Peek(int owner_rank, int64_t iteration) const;

  // Zero-time durable write, used to seed the initial (pre-training) global
  // checkpoint during job setup.
  void SeedImmediate(Checkpoint checkpoint, int expected_world_size);

  // Analytic time to move `bytes` through the store (excluding queueing).
  TimeNs TransferCost(Bytes bytes) const {
    return config_.request_latency + TransferTime(bytes, config_.aggregate_bandwidth);
  }

  // Total bytes ever written (for reporting).
  Bytes bytes_written() const { return bytes_written_; }

  // Path a shard file would live at (empty when disk backing is off).
  std::string ShardPath(int owner_rank, int64_t iteration) const;

 private:
  // Shared-bandwidth FIFO: a transfer starts when the previous one finishes.
  TimeNs ScheduleTransfer(Bytes bytes, std::function<void()> at_completion);
  // One attempt of the retrieval cascade (backoff comes from the shared
  // RetryPolicy built off the config knobs).
  TimeNs TryRetrieve(int owner_rank, int64_t iteration, int attempt,
                     std::function<void(StatusOr<Checkpoint>)> done);

  // Seals a new chain base for the checkpoint's owner (incremental mode).
  void ResetLogForFullSave(const Checkpoint& checkpoint);

  Simulator& sim_;
  PersistentStoreConfig config_;
  MetricsRegistry* metrics_ = nullptr;
  std::optional<RedoLogConfig> log_config_;
  // Per-owner epoch-sealed delta chains (incremental mode).
  std::map<int, RedoLog> delta_logs_;
  // Hot-path metric handles (resolved once in set_metrics).
  Counter* saves_counter_ = nullptr;
  Counter* bytes_written_counter_ = nullptr;
  Counter* retrievals_counter_ = nullptr;
  Counter* retries_counter_ = nullptr;
  Counter* crc_failures_counter_ = nullptr;
  Counter* corruptions_counter_ = nullptr;
  Counter* delta_saves_counter_ = nullptr;
  Counter* delta_bytes_saved_counter_ = nullptr;
  Counter* compaction_folds_counter_ = nullptr;
  Counter* compaction_bytes_folded_counter_ = nullptr;
  RetrievalFaultHook fault_hook_;
  ThreadPool* workers_ = nullptr;
  // Serialized-blob buffers recycled across disk-backed shard writes.
  BlobPool blob_pool_;
  TimeNs busy_until_ = 0;
  Bytes bytes_written_ = 0;
  // iteration -> owner -> shard; complete-set tracking by expected world.
  std::map<int64_t, std::map<int, Checkpoint>> shards_;
  std::map<int64_t, int> expected_world_;
};

}  // namespace gemini

#endif  // SRC_STORAGE_PERSISTENT_STORE_H_
