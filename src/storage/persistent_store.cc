#include "src/storage/persistent_store.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/storage/serializer.h"

namespace gemini {

std::string PersistentStore::ShardPath(int owner_rank, int64_t iteration) const {
  if (config_.disk_dir.empty()) {
    return "";
  }
  return config_.disk_dir + "/ckpt_" + std::to_string(iteration) + "_" +
         std::to_string(owner_rank) + ".gmck";
}

namespace {

Status WriteShardFile(const std::string& path, const Checkpoint& checkpoint) {
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
  const std::vector<uint8_t> blob = SerializeCheckpoint(checkpoint);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return UnavailableError("cannot open shard file for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) {
    return DataLossError("short write to shard file: " + path);
  }
  return Status::Ok();
}

StatusOr<Checkpoint> ReadShardFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return NotFoundError("shard file missing: " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> blob(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(blob.data()), size);
  if (!in) {
    return DataLossError("short read from shard file: " + path);
  }
  return DeserializeCheckpoint(blob);
}

}  // namespace

TimeNs PersistentStore::ScheduleTransfer(Bytes bytes, std::function<void()> at_completion) {
  const TimeNs start = std::max(sim_.now(), busy_until_);
  const TimeNs end =
      start + config_.request_latency + TransferTime(bytes, config_.aggregate_bandwidth);
  busy_until_ = end;
  sim_.ScheduleAt(end, std::move(at_completion));
  return end;
}

TimeNs PersistentStore::Save(Checkpoint checkpoint, int expected_world_size, DoneCallback done) {
  assert(checkpoint.valid());
  assert(expected_world_size > 0);
  const Bytes bytes = checkpoint.logical_bytes;
  return ScheduleTransfer(
      bytes, [this, checkpoint = std::move(checkpoint), expected_world_size,
              done = std::move(done)]() mutable {
        bytes_written_ += checkpoint.logical_bytes;
        if (metrics_ != nullptr) {
          metrics_->counter("persistent.saves").Increment();
          metrics_->counter("persistent.bytes_written").Increment(checkpoint.logical_bytes);
        }
        const int64_t iteration = checkpoint.iteration;
        const std::string path = ShardPath(checkpoint.owner_rank, iteration);
        if (!path.empty()) {
          const Status written = WriteShardFile(path, checkpoint);
          if (!written.ok()) {
            done(written);
            return;
          }
        }
        shards_[iteration][checkpoint.owner_rank] = std::move(checkpoint);
        expected_world_[iteration] = expected_world_size;
        done(Status::Ok());
      });
}

TimeNs PersistentStore::Retrieve(int owner_rank, int64_t iteration,
                                 std::function<void(StatusOr<Checkpoint>)> done) {
  if (metrics_ != nullptr) {
    metrics_->counter("persistent.retrievals").Increment();
  }
  const std::optional<Checkpoint> shard = Peek(owner_rank, iteration);
  if (!shard.has_value()) {
    // Lookup miss costs only the request latency.
    const TimeNs end = sim_.now() + config_.request_latency;
    sim_.ScheduleAt(end, [owner_rank, iteration, done = std::move(done)] {
      done(NotFoundError("persistent store has no shard for rank " + std::to_string(owner_rank) +
                         " at iteration " + std::to_string(iteration)));
    });
    return end;
  }
  return ScheduleTransfer(
      shard->logical_bytes,
      [this, shard = *shard, owner_rank, iteration, done = std::move(done)]() mutable {
        const std::string path = ShardPath(owner_rank, iteration);
        if (!path.empty()) {
          // Read back through the serialized form so the CRC guards the
          // bytes actually restored.
          StatusOr<Checkpoint> from_disk = ReadShardFile(path);
          done(std::move(from_disk));
          return;
        }
        done(std::move(shard));
      });
}

int64_t PersistentStore::LatestCompleteIteration() const {
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    const auto expected = expected_world_.find(it->first);
    if (expected != expected_world_.end() &&
        static_cast<int>(it->second.size()) >= expected->second) {
      return it->first;
    }
  }
  return -1;
}

void PersistentStore::SeedImmediate(Checkpoint checkpoint, int expected_world_size) {
  assert(checkpoint.valid());
  const int64_t iteration = checkpoint.iteration;
  const std::string path = ShardPath(checkpoint.owner_rank, iteration);
  if (!path.empty()) {
    const Status written = WriteShardFile(path, checkpoint);
    if (!written.ok()) {
      GEMINI_LOG(kError) << "seeding persistent shard failed: " << written;
    }
  }
  shards_[iteration][checkpoint.owner_rank] = std::move(checkpoint);
  expected_world_[iteration] = expected_world_size;
}

std::optional<Checkpoint> PersistentStore::Peek(int owner_rank, int64_t iteration) const {
  const auto by_iter = shards_.find(iteration);
  if (by_iter == shards_.end()) {
    return std::nullopt;
  }
  const auto by_owner = by_iter->second.find(owner_rank);
  if (by_owner == by_iter->second.end()) {
    return std::nullopt;
  }
  return by_owner->second;
}

}  // namespace gemini
