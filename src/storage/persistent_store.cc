#include "src/storage/persistent_store.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/storage/serializer.h"

namespace gemini {

void PersistentStore::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    saves_counter_ = &metrics->counter("persistent.saves");
    bytes_written_counter_ = &metrics->counter("persistent.bytes_written");
    retrievals_counter_ = &metrics->counter("persistent.retrievals");
    retries_counter_ = &metrics->counter("persistent_store.retries");
    crc_failures_counter_ = &metrics->counter("persistent_store.crc_failures");
    corruptions_counter_ = &metrics->counter("persistent_store.corruptions");
    delta_saves_counter_ = &metrics->counter("persistent.delta_saves");
    delta_bytes_saved_counter_ = &metrics->counter("delta.bytes_saved");
    compaction_folds_counter_ = &metrics->counter("compaction.folds");
    compaction_bytes_folded_counter_ = &metrics->counter("compaction.bytes_folded");
  } else {
    saves_counter_ = nullptr;
    bytes_written_counter_ = nullptr;
    retrievals_counter_ = nullptr;
    retries_counter_ = nullptr;
    crc_failures_counter_ = nullptr;
    corruptions_counter_ = nullptr;
    delta_saves_counter_ = nullptr;
    delta_bytes_saved_counter_ = nullptr;
    compaction_folds_counter_ = nullptr;
    compaction_bytes_folded_counter_ = nullptr;
  }
}

void PersistentStore::ConfigureRedoLog(const RedoLogConfig& config) {
  log_config_ = config;
}

void PersistentStore::ResetLogForFullSave(const Checkpoint& checkpoint) {
  if (!log_config_.has_value()) {
    return;
  }
  auto [it, inserted] = delta_logs_.try_emplace(checkpoint.owner_rank, *log_config_);
  it->second.Reset(checkpoint);
}

int64_t PersistentStore::DeltaBaseIteration(int owner_rank) const {
  const auto it = delta_logs_.find(owner_rank);
  if (it == delta_logs_.end() || !it->second.has_base()) {
    return -1;
  }
  return it->second.latest_iteration();
}

size_t PersistentStore::ChainLength(int owner_rank) const {
  const auto it = delta_logs_.find(owner_rank);
  return it != delta_logs_.end() ? it->second.chain_length() : 0;
}

std::string PersistentStore::ShardPath(int owner_rank, int64_t iteration) const {
  if (config_.disk_dir.empty()) {
    return "";
  }
  return config_.disk_dir + "/ckpt_" + std::to_string(iteration) + "_" +
         std::to_string(owner_rank) + ".gmck";
}

namespace {

Status WriteShardFile(const std::string& path, const Checkpoint& checkpoint,
                      const SerializeOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
  // Pooled + (optionally) parallel serialization; the blob buffer goes back
  // to the pool when this frame's shared_ptr drops.
  const std::shared_ptr<std::vector<uint8_t>> blob =
      SerializeCheckpointShared(checkpoint, options);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return UnavailableError("cannot open shard file for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(blob->data()),
            static_cast<std::streamsize>(blob->size()));
  if (!out) {
    return DataLossError("short write to shard file: " + path);
  }
  return Status::Ok();
}

StatusOr<Checkpoint> ReadShardFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return NotFoundError("shard file missing: " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> blob(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(blob.data()), size);
  if (!in) {
    return DataLossError("short read from shard file: " + path);
  }
  return DeserializeCheckpoint(blob);
}

}  // namespace

TimeNs PersistentStore::ScheduleTransfer(Bytes bytes, std::function<void()> at_completion) {
  const TimeNs start = std::max(sim_.now(), busy_until_);
  const TimeNs end =
      start + config_.request_latency + TransferTime(bytes, config_.aggregate_bandwidth);
  busy_until_ = end;
  sim_.ScheduleAt(end, std::move(at_completion));
  return end;
}

TimeNs PersistentStore::Save(Checkpoint checkpoint, int expected_world_size, DoneCallback done) {
  assert(checkpoint.valid());
  assert(expected_world_size > 0);
  const Bytes bytes = checkpoint.logical_bytes;
  return ScheduleTransfer(
      bytes, [this, checkpoint = std::move(checkpoint), expected_world_size,
              done = std::move(done)]() mutable {
        bytes_written_ += checkpoint.logical_bytes;
        if (saves_counter_ != nullptr) {
          saves_counter_->Increment();
          bytes_written_counter_->Increment(checkpoint.logical_bytes);
        }
        const int64_t iteration = checkpoint.iteration;
        const std::string path = ShardPath(checkpoint.owner_rank, iteration);
        if (!path.empty()) {
          const Status written =
              WriteShardFile(path, checkpoint, SerializeOptions{workers_, &blob_pool_});
          if (!written.ok()) {
            done(written);
            return;
          }
        }
        ResetLogForFullSave(checkpoint);
        shards_[iteration][checkpoint.owner_rank] = std::move(checkpoint);
        expected_world_[iteration] = expected_world_size;
        done(Status::Ok());
      });
}

TimeNs PersistentStore::SaveDelta(DeltaCheckpoint delta, int expected_world_size,
                                  DoneCallback done) {
  assert(delta.valid());
  assert(expected_world_size > 0);
  const Bytes bytes = delta.delta_bytes;
  return ScheduleTransfer(
      bytes, [this, delta = std::move(delta), expected_world_size,
              done = std::move(done)]() mutable {
        bytes_written_ += delta.delta_bytes;
        if (delta_saves_counter_ != nullptr) {
          delta_saves_counter_->Increment();
          bytes_written_counter_->Increment(delta.delta_bytes);
          delta_bytes_saved_counter_->Increment(delta.logical_bytes - delta.delta_bytes);
        }
        const auto log_it = delta_logs_.find(delta.owner_rank);
        if (log_it == delta_logs_.end() || !log_it->second.has_base()) {
          done(FailedPreconditionError("no sealed persistent base for rank " +
                                       std::to_string(delta.owner_rank)));
          return;
        }
        RedoLog& log = log_it->second;
        const int owner = delta.owner_rank;
        const int64_t iteration = delta.iteration;
        const Status appended = log.Append(std::move(delta));
        if (!appended.ok()) {
          done(appended);
          return;
        }
        // Materialize at arrival (CRC-gated, epoch order) so the retrieval
        // surface keeps serving full shards; a real object store would
        // verify the delta object's digest on PUT the same way. The chain
        // still bounds what a restart must replay from disk.
        StatusOr<Checkpoint> materialized = log.Materialize();
        if (!materialized.ok()) {
          done(materialized.status());
          return;
        }
        const std::string path = ShardPath(owner, iteration);
        if (!path.empty()) {
          const Status written =
              WriteShardFile(path, *materialized, SerializeOptions{workers_, &blob_pool_});
          if (!written.ok()) {
            done(written);
            return;
          }
        }
        shards_[iteration][owner] = std::move(materialized).value();
        expected_world_[iteration] = expected_world_size;
        if (log.NeedsCompaction()) {
          const Bytes folded = log.chain_bytes();
          if (log.Compact().ok() && compaction_folds_counter_ != nullptr) {
            compaction_folds_counter_->Increment();
            compaction_bytes_folded_counter_->Increment(folded);
          }
        }
        done(Status::Ok());
      });
}

TimeNs PersistentStore::Retrieve(int owner_rank, int64_t iteration,
                                 std::function<void(StatusOr<Checkpoint>)> done) {
  if (retrievals_counter_ != nullptr) {
    retrievals_counter_->Increment();
  }
  return TryRetrieve(owner_rank, iteration, /*attempt=*/0, std::move(done));
}

TimeNs PersistentStore::TryRetrieve(int owner_rank, int64_t iteration, int attempt,
                                    std::function<void(StatusOr<Checkpoint>)> done) {
  const std::optional<Checkpoint> shard = Peek(owner_rank, iteration);
  if (!shard.has_value()) {
    // A missing shard is permanent — retrying cannot make it appear. The
    // lookup miss costs only the request latency.
    const TimeNs end = sim_.now() + config_.request_latency;
    sim_.ScheduleAt(end, [owner_rank, iteration, done = std::move(done)] {
      done(NotFoundError("persistent store has no shard for rank " + std::to_string(owner_rank) +
                         " at iteration " + std::to_string(iteration)));
    });
    return end;
  }
  return ScheduleTransfer(
      shard->logical_bytes,
      [this, shard = *shard, owner_rank, iteration, attempt, done = std::move(done)]() mutable {
        // Mirrors the CPU-memory retry cascade: a failed or CRC-rejected
        // attempt backs off exponentially and re-reads, up to the attempt
        // cap; only then does the error surface to the caller.
        auto retry = [this, owner_rank, iteration, attempt,
                      &done](const Status& why) mutable {
          const RetryPolicy schedule = config_.retry_policy();
          if (schedule.Exhausted(attempt + 1)) {
            done(why);
            return;
          }
          if (retries_counter_ != nullptr) {
            retries_counter_->Increment();
          }
          GEMINI_LOG(kWarning) << "persistent retrieval attempt " << attempt + 1 << " for rank "
                               << owner_rank << " at iteration " << iteration << " failed ("
                               << why << "); retrying";
          sim_.ScheduleAfter(schedule.BackoffBefore(attempt + 1),
                             [this, owner_rank, iteration, attempt, done = std::move(done)] {
                               TryRetrieve(owner_rank, iteration, attempt + 1, std::move(done));
                             });
        };
        if (fault_hook_) {
          const Status injected = fault_hook_(owner_rank, iteration, attempt);
          if (!injected.ok()) {
            retry(injected);
            return;
          }
        }
        StatusOr<Checkpoint> result = std::move(shard);
        const std::string path = ShardPath(owner_rank, iteration);
        if (!path.empty()) {
          // Read back through the serialized form so the CRC guards the
          // bytes actually restored.
          result = ReadShardFile(path);
          if (!result.ok()) {
            if (crc_failures_counter_ != nullptr &&
                result.status().code() == StatusCode::kDataLoss) {
              crc_failures_counter_->Increment();
            }
            retry(result.status());
            return;
          }
        }
        if (!result->IntegrityOk()) {
          if (crc_failures_counter_ != nullptr) {
            crc_failures_counter_->Increment();
          }
          retry(DataLossError("persistent shard for rank " + std::to_string(owner_rank) +
                              " failed its CRC check"));
          return;
        }
        done(std::move(result));
      });
}

Status PersistentStore::CorruptShard(int owner_rank, int64_t iteration, size_t bit_index) {
  const auto by_iter = shards_.find(iteration);
  if (by_iter == shards_.end()) {
    return NotFoundError("no shards at that iteration");
  }
  const auto by_owner = by_iter->second.find(owner_rank);
  if (by_owner == by_iter->second.end()) {
    return NotFoundError("no durable shard for that rank");
  }
  Checkpoint& checkpoint = by_owner->second;
  if (checkpoint.payload.empty()) {
    return FailedPreconditionError("shard has no payload bytes");
  }
  const size_t payload_bytes = checkpoint.payload.size_bytes();
  const size_t bit = bit_index % (payload_bytes * 8);
  // Copy-on-write: the durable shard may still share its payload buffer with
  // in-memory holders of the same snapshot; MutableData() detaches onto a
  // private copy so the injected bit-rot stays local to the persistent tier.
  auto* bytes = reinterpret_cast<uint8_t*>(checkpoint.payload.MutableData());
  bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  const std::string path = ShardPath(owner_rank, iteration);
  if (!path.empty()) {
    // Flip the same bit inside the on-disk blob *in place* (the payload is
    // the last section before the trailing stream CRC), so the file carries
    // the corruption under its now-stale CRC instead of a clean re-serialize.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out | std::ios::ate);
    if (!file) {
      return UnavailableError("cannot open shard file for corruption: " + path);
    }
    const auto file_size = static_cast<size_t>(file.tellg());
    if (file_size < payload_bytes + sizeof(uint32_t)) {
      return DataLossError("shard file too small to hold its payload: " + path);
    }
    const size_t offset = file_size - sizeof(uint32_t) - payload_bytes + bit / 8;
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ static_cast<char>(1u << (bit % 8)));
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
    if (!file) {
      return DataLossError("shard file corruption write failed: " + path);
    }
  }
  if (corruptions_counter_ != nullptr) {
    corruptions_counter_->Increment();
  }
  return Status::Ok();
}

int64_t PersistentStore::LatestCompleteIteration() const {
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    const auto expected = expected_world_.find(it->first);
    if (expected != expected_world_.end() &&
        static_cast<int>(it->second.size()) >= expected->second) {
      return it->first;
    }
  }
  return -1;
}

std::optional<Checkpoint> PersistentStore::LatestVerified(int owner_rank) const {
  const int64_t iteration = LatestIteration(owner_rank);
  if (iteration < 0) {
    return std::nullopt;
  }
  std::optional<Checkpoint> shard = Peek(owner_rank, iteration);
  if (!shard.has_value()) {
    return std::nullopt;
  }
  if (!shard->IntegrityOk()) {
    if (crc_failures_counter_ != nullptr) {
      crc_failures_counter_->Increment();
    }
    return std::nullopt;
  }
  return shard;
}

int64_t PersistentStore::LatestIteration(int owner_rank) const {
  const int64_t iteration = LatestCompleteIteration();
  if (iteration < 0 || !Peek(owner_rank, iteration).has_value()) {
    return -1;
  }
  return iteration;
}

Status PersistentStore::CorruptLatest(int owner_rank, size_t bit_index) {
  const int64_t iteration = LatestIteration(owner_rank);
  if (iteration < 0) {
    return NotFoundError("no durable shard for rank " + std::to_string(owner_rank) +
                         " in any complete checkpoint");
  }
  return CorruptShard(owner_rank, iteration, bit_index);
}

void PersistentStore::SeedImmediate(Checkpoint checkpoint, int expected_world_size) {
  assert(checkpoint.valid());
  const int64_t iteration = checkpoint.iteration;
  const std::string path = ShardPath(checkpoint.owner_rank, iteration);
  if (!path.empty()) {
    const Status written =
        WriteShardFile(path, checkpoint, SerializeOptions{workers_, &blob_pool_});
    if (!written.ok()) {
      GEMINI_LOG(kError) << "seeding persistent shard failed: " << written;
    }
  }
  ResetLogForFullSave(checkpoint);
  shards_[iteration][checkpoint.owner_rank] = std::move(checkpoint);
  expected_world_[iteration] = expected_world_size;
}

std::optional<Checkpoint> PersistentStore::Peek(int owner_rank, int64_t iteration) const {
  const auto by_iter = shards_.find(iteration);
  if (by_iter == shards_.end()) {
    return std::nullopt;
  }
  const auto by_owner = by_iter->second.find(owner_rank);
  if (by_owner == by_iter->second.end()) {
    return std::nullopt;
  }
  return by_owner->second;
}

}  // namespace gemini
