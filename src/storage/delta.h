// Incremental (delta) checkpoints and the epoch-sealed redo log.
//
// A DeltaCheckpoint encodes the difference between two full checkpoints of
// the same shard as a list of (chunk index, PayloadRef slice) pairs, one per
// changed fixed-size chunk. Chunks are selected by content, not just by the
// trainer's dirty bits: each candidate chunk's CRC32 fingerprint (and, on a
// fingerprint match, its bytes) is compared against the base, so a dirty bit
// that turned out to be a no-op write is deduplicated away. Every chunk
// carries its own CRC32 and the delta carries the full-state CRC of the
// post-apply shard, so application is verifiable at both granularities —
// recovery must never silently materialize a corrupted state.
//
// A RedoLog is the epoch-sealed append-only chain a checkpoint store keeps
// per hosted owner: one sealed full base plus deltas in strictly increasing
// epoch order (each delta's base_iteration must equal the chain's current
// head iteration — out-of-order or gapped appends are rejected, which is
// what "epoch-sealed" buys: the chain is always a replayable prefix).
// Materialize() replays the chain in epoch order, CRC-gating every link;
// Compact() folds the chain into a new base once the configured chain
// length / bytes caps are exceeded, bounding recovery replay work.
//
// Sizing model: like Checkpoint, a delta carries both real floats (the
// slices) and modeled bytes. `delta_bytes` prorates the full shard's
// logical_bytes by the fraction of elements shipped, so every timing and
// bandwidth path charges only the bytes a real system would move.
#ifndef SRC_STORAGE_DELTA_H_
#define SRC_STORAGE_DELTA_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/storage/checkpoint.h"

namespace gemini {

// One changed chunk: `data` views the new contents of chunk `chunk_index`
// (elements [chunk_index*chunk_elements, ...+data.size())), `crc` is the
// CRC32 of those bytes, recorded at build time.
struct DeltaChunk {
  size_t chunk_index = 0;
  PayloadRef data;
  uint32_t crc = 0;
};

struct DeltaCheckpoint {
  int owner_rank = -1;
  // Iteration of the state this delta produces when applied.
  int64_t iteration = -1;
  // Iteration of the base state this delta applies on top of.
  int64_t base_iteration = -1;
  // Payload CRC of the base state (binds the delta to exact base bytes).
  uint32_t base_crc = 0;
  // Payload CRC of the full post-apply state (the end-to-end gate).
  uint32_t state_crc = 0;
  // Modeled size of the full shard and of this delta (prorated).
  Bytes logical_bytes = 0;
  Bytes delta_bytes = 0;
  // Chunking geometry the delta was built with.
  size_t chunk_elements = 0;
  size_t payload_elements = 0;
  std::vector<DeltaChunk> chunks;

  bool valid() const {
    return owner_rank >= 0 && iteration >= 0 && base_iteration >= 0 &&
           iteration > base_iteration && chunk_elements > 0;
  }
  size_t delta_elements() const {
    size_t total = 0;
    for (const DeltaChunk& chunk : chunks) {
      total += chunk.data.size();
    }
    return total;
  }
};

// Builds the delta taking `base` to `current` (same owner, same payload
// size, current.iteration > base.iteration). `dirty_hint`, when non-null,
// is a per-chunk changed-bit vector (chunk i possibly changed when
// dirty_hint[i] != 0) and must be a *superset* of the truly changed chunks;
// hinted chunks are still CRC/byte-compared (content dedupe), unhinted
// chunks are skipped as known-clean. A null hint compares every chunk.
StatusOr<DeltaCheckpoint> BuildDeltaCheckpoint(const Checkpoint& base, const Checkpoint& current,
                                               size_t chunk_elements,
                                               const std::vector<uint8_t>* dirty_hint = nullptr);

// Applies `delta` on top of `base`, verifying (1) the base binding
// (iteration + base payload CRC), (2) every chunk's CRC against its bytes,
// and (3) the materialized full state against `state_crc`. Any mismatch is
// a DataLossError — a corrupted link must fail loudly, never restore
// silently.
StatusOr<Checkpoint> ApplyDeltaCheckpoint(const Checkpoint& base, const DeltaCheckpoint& delta);

// Compaction caps for a redo log chain. `max_chain_length` caps the number
// of deltas (must be >= 1 when incremental mode is on: a cap of 0 would let
// recovery replay an unbounded chain — GeminiConfig::Validate rejects it).
// `max_chain_bytes` additionally caps the summed delta_bytes (0 = no byte
// cap).
struct RedoLogConfig {
  int max_chain_length = 8;
  Bytes max_chain_bytes = 0;
};

class RedoLog {
 public:
  RedoLog() = default;
  explicit RedoLog(const RedoLogConfig& config) : config_(config) {}

  // Seals a new full base; any existing chain is discarded (the base
  // subsumes it).
  void Reset(Checkpoint base);
  // Drops everything (owner no longer hosted / machine lost).
  void Clear();

  // Appends one delta. Epoch sealing: the delta must extend the current
  // head exactly (delta.base_iteration == latest_iteration()) and carry a
  // base CRC matching the head state's digest; anything else is rejected.
  Status Append(DeltaCheckpoint delta);

  bool has_base() const { return base_.valid(); }
  const Checkpoint& base() const { return base_; }
  int64_t base_iteration() const { return base_.valid() ? base_.iteration : -1; }
  // Iteration of the chain head (base + all sealed deltas); -1 when empty.
  int64_t latest_iteration() const;
  // Payload CRC of the chain-head state (what the next delta must base on).
  uint32_t latest_state_crc() const;
  size_t chain_length() const { return deltas_.size(); }
  Bytes chain_bytes() const { return chain_bytes_; }
  bool NeedsCompaction() const;

  // Replays base + deltas in epoch order, CRC-gating every link; the result
  // is the full checkpoint at latest_iteration(). Fails on any corrupt or
  // inconsistent link.
  StatusOr<Checkpoint> Materialize() const;

  // Folds the chain into a new sealed base (Materialize + Reset). On
  // failure the chain is left untouched so the caller's read path can
  // surface the corruption.
  Status Compact();

  // Fault injection: flips one payload bit inside the chain's
  // `chain_index`-th delta (copy-on-write — other holders of the slices are
  // unaffected). The stale chunk CRC then fails the apply gate.
  Status CorruptDelta(size_t chain_index, size_t bit_index);

 private:
  RedoLogConfig config_;
  Checkpoint base_;
  std::vector<DeltaCheckpoint> deltas_;
  Bytes chain_bytes_ = 0;
};

}  // namespace gemini

#endif  // SRC_STORAGE_DELTA_H_
