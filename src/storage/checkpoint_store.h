// Common checkpoint-tier surface.
//
// GEMINI's two storage tiers — per-machine CPU memory and the remote
// persistent store — grew separate read paths with mirrored retry/CRC
// cascades (the PR 3 peer-retrieval cascade and its PR 4 persistent-tier
// copy). The protection policies program against one seam instead:
//
//  * `CheckpointStore` is the tier interface every recovery read goes
//    through: the latest CRC-verified checkpoint a tier can serve for an
//    owner, the iteration it is at, and the corruption door the chaos suite
//    drives. `CpuCheckpointStore` and `PersistentStore` both implement it,
//    so a policy's recovery plan can name a tier without naming a type.
//  * `RetryPolicy` is the one copy of the capped-exponential-backoff
//    schedule both cascades follow (attempt 0 is immediate; attempt n waits
//    base * 2^(n-1), capped).
#ifndef SRC_STORAGE_CHECKPOINT_STORE_H_
#define SRC_STORAGE_CHECKPOINT_STORE_H_

#include <algorithm>
#include <optional>
#include <string_view>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/storage/checkpoint.h"

namespace gemini {

// Shared retry schedule for checkpoint retrieval cascades. Both tiers (and
// the peer-retrieval pass in GeminiSystem) construct one from their config
// knobs, so the backoff curve cannot drift between the copies it replaced.
struct RetryPolicy {
  int max_attempts = 4;
  TimeNs backoff_base = Millis(100);
  TimeNs backoff_cap = Seconds(2);

  // Delay before (1-based) `attempt`: 0 for attempt <= 0, then the base
  // doubling per attempt until the cap. Exactly the schedule the PR 3 / PR 4
  // cascades used.
  TimeNs BackoffBefore(int attempt) const {
    if (attempt <= 0) {
      return 0;
    }
    TimeNs backoff = backoff_base;
    for (int i = 1; i < attempt && backoff < backoff_cap; ++i) {
      backoff *= 2;
    }
    return std::min(backoff, backoff_cap);
  }

  // True once `attempt` (0-based count of attempts already made) has
  // exhausted the cap.
  bool Exhausted(int attempts_made) const { return attempts_made >= max_attempts; }
};

// One tier of checkpoint storage, as the recovery paths see it. Writes stay
// tier-specific (chunked double-buffered writes for CPU memory, bandwidth-
// queued uploads for the persistent store); the *read-for-recovery* surface
// is shared so policies and fallback chains can treat tiers uniformly.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  // Short stable tier label ("cpu_memory", "persistent") used in logs,
  // traces, and metric keys.
  virtual std::string_view tier_name() const = 0;

  // Latest checkpoint this tier can serve for `owner_rank` whose payload
  // still matches its capture-time CRC. A replica whose bytes no longer
  // verify is treated as absent (and counted in the tier's crc_failures
  // metric) — no recovery path may restore unverified bytes.
  virtual std::optional<Checkpoint> LatestVerified(int owner_rank) const = 0;

  // Iteration of the latest checkpoint servable for `owner_rank`, or -1.
  virtual int64_t LatestIteration(int owner_rank) const = 0;

  // Fault-injection door: flips one payload bit of the owner's latest
  // servable checkpoint so the CRC reads above have something to catch.
  virtual Status CorruptLatest(int owner_rank, size_t bit_index) = 0;
};

}  // namespace gemini

#endif  // SRC_STORAGE_CHECKPOINT_STORE_H_
