#include "src/storage/delta.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "src/common/crc32.h"

namespace gemini {
namespace {

// Prorates the shard's modeled size by the fraction of real elements moved,
// so delta timing/bandwidth charges scale with the dirty fraction exactly
// like the real payload does.
Bytes ProrateBytes(Bytes logical_bytes, size_t moved_elements, size_t payload_elements) {
  if (payload_elements == 0) {
    return 0;
  }
  return static_cast<Bytes>(static_cast<double>(logical_bytes) *
                            (static_cast<double>(moved_elements) /
                             static_cast<double>(payload_elements)));
}

}  // namespace

StatusOr<DeltaCheckpoint> BuildDeltaCheckpoint(const Checkpoint& base, const Checkpoint& current,
                                               size_t chunk_elements,
                                               const std::vector<uint8_t>* dirty_hint) {
  if (chunk_elements == 0) {
    return InvalidArgumentError("delta chunk_elements must be >= 1");
  }
  if (base.owner_rank != current.owner_rank) {
    return InvalidArgumentError("delta base and current belong to different owners");
  }
  if (base.payload.size() != current.payload.size()) {
    return InvalidArgumentError("delta base and current payload sizes differ");
  }
  if (current.iteration <= base.iteration) {
    return InvalidArgumentError("delta must move forward in iterations");
  }
  const size_t elements = current.payload.size();
  const size_t num_chunks = (elements + chunk_elements - 1) / chunk_elements;
  if (dirty_hint != nullptr && dirty_hint->size() != num_chunks) {
    return InvalidArgumentError("dirty hint size does not match chunk count");
  }

  DeltaCheckpoint delta;
  delta.owner_rank = current.owner_rank;
  delta.iteration = current.iteration;
  delta.base_iteration = base.iteration;
  delta.base_crc = base.payload_crc != 0 ? base.payload_crc : base.ComputePayloadCrc();
  delta.state_crc = current.payload_crc != 0 ? current.payload_crc : current.ComputePayloadCrc();
  delta.logical_bytes = current.logical_bytes;
  delta.chunk_elements = chunk_elements;
  delta.payload_elements = elements;

  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    // The trainer's dirty bits are a superset of the truly changed chunks,
    // so an unhinted chunk is known-clean and skipped without comparison.
    if (dirty_hint != nullptr && (*dirty_hint)[chunk] == 0) {
      continue;
    }
    const size_t begin = chunk * chunk_elements;
    const size_t count = std::min(chunk_elements, elements - begin);
    const PayloadRef base_slice = base.payload.Slice(begin, count);
    const PayloadRef current_slice = current.payload.Slice(begin, count);
    const uint32_t current_crc = Crc32(current_slice.data(), current_slice.size_bytes());
    // Content-wise dedupe: a dirty bit whose write was a no-op compares
    // equal here and ships nothing. Fingerprint first; bytes only on a
    // fingerprint match, so a CRC collision can never drop a changed chunk.
    if (Crc32(base_slice.data(), base_slice.size_bytes()) == current_crc &&
        std::memcmp(base_slice.data(), current_slice.data(), count * sizeof(float)) == 0) {
      continue;
    }
    delta.chunks.push_back(DeltaChunk{chunk, current_slice, current_crc});
  }
  delta.delta_bytes = ProrateBytes(delta.logical_bytes, delta.delta_elements(), elements);
  return delta;
}

StatusOr<Checkpoint> ApplyDeltaCheckpoint(const Checkpoint& base, const DeltaCheckpoint& delta) {
  if (base.owner_rank != delta.owner_rank) {
    return InvalidArgumentError("delta applied to a different owner's base");
  }
  if (base.iteration != delta.base_iteration) {
    return FailedPreconditionError(
        "delta base iteration " + std::to_string(delta.base_iteration) +
        " does not match checkpoint iteration " + std::to_string(base.iteration));
  }
  if (base.payload.size() != delta.payload_elements) {
    return InvalidArgumentError("delta payload geometry does not match the base");
  }
  const uint32_t base_crc = base.payload_crc != 0 ? base.payload_crc : base.ComputePayloadCrc();
  if (delta.base_crc != 0 && base_crc != delta.base_crc) {
    return DataLossError("delta base CRC mismatch: base state is not the one the delta sealed");
  }

  std::vector<float> state(base.payload.begin(), base.payload.end());
  for (const DeltaChunk& chunk : delta.chunks) {
    const size_t begin = chunk.chunk_index * delta.chunk_elements;
    if (begin + chunk.data.size() > state.size()) {
      return DataLossError("delta chunk overflows the shard");
    }
    // Per-chunk CRC gate: a bit-flipped slice must fail here, before any
    // byte lands in the materialized state.
    if (Crc32(chunk.data.data(), chunk.data.size_bytes()) != chunk.crc) {
      return DataLossError("delta chunk " + std::to_string(chunk.chunk_index) +
                           " failed its CRC check");
    }
    std::copy(chunk.data.begin(), chunk.data.end(), state.begin() + begin);
  }

  Checkpoint result;
  result.owner_rank = delta.owner_rank;
  result.iteration = delta.iteration;
  result.logical_bytes = delta.logical_bytes;
  result.payload = std::move(state);
  result.StampPayloadCrc();
  // End-to-end gate: the materialized state must match the digest recorded
  // when the delta was built.
  if (delta.state_crc != 0 && result.payload_crc != delta.state_crc) {
    return DataLossError("materialized delta state failed its full-state CRC check");
  }
  return result;
}

void RedoLog::Reset(Checkpoint base) {
  base_ = std::move(base);
  deltas_.clear();
  chain_bytes_ = 0;
}

void RedoLog::Clear() {
  base_ = Checkpoint{};
  deltas_.clear();
  chain_bytes_ = 0;
}

int64_t RedoLog::latest_iteration() const {
  if (!deltas_.empty()) {
    return deltas_.back().iteration;
  }
  return base_iteration();
}

uint32_t RedoLog::latest_state_crc() const {
  if (!deltas_.empty()) {
    return deltas_.back().state_crc;
  }
  return base_.valid() ? base_.payload_crc : 0;
}

Status RedoLog::Append(DeltaCheckpoint delta) {
  if (!base_.valid()) {
    return FailedPreconditionError("redo log has no sealed base");
  }
  if (!delta.valid()) {
    return InvalidArgumentError("delta is not well-formed");
  }
  if (delta.owner_rank != base_.owner_rank) {
    return InvalidArgumentError("delta owner does not match the sealed base");
  }
  // Epoch sealing: the chain is always a gapless replayable prefix — each
  // delta must extend the current head exactly.
  if (delta.base_iteration != latest_iteration()) {
    return FailedPreconditionError(
        "delta bases on iteration " + std::to_string(delta.base_iteration) +
        " but the chain head is " + std::to_string(latest_iteration()));
  }
  const uint32_t head_crc = latest_state_crc();
  if (delta.base_crc != 0 && head_crc != 0 && delta.base_crc != head_crc) {
    return DataLossError("delta base CRC does not match the chain head state");
  }
  chain_bytes_ += delta.delta_bytes;
  deltas_.push_back(std::move(delta));
  return Status::Ok();
}

bool RedoLog::NeedsCompaction() const {
  if (deltas_.empty()) {
    return false;
  }
  if (config_.max_chain_length > 0 &&
      deltas_.size() >= static_cast<size_t>(config_.max_chain_length)) {
    return true;
  }
  return config_.max_chain_bytes > 0 && chain_bytes_ >= config_.max_chain_bytes;
}

StatusOr<Checkpoint> RedoLog::Materialize() const {
  if (!base_.valid()) {
    return NotFoundError("redo log has no sealed base");
  }
  Checkpoint state = base_;
  for (const DeltaCheckpoint& delta : deltas_) {
    GEMINI_ASSIGN_OR_RETURN(state, ApplyDeltaCheckpoint(state, delta));
  }
  return state;
}

Status RedoLog::Compact() {
  if (deltas_.empty()) {
    return Status::Ok();
  }
  GEMINI_ASSIGN_OR_RETURN(Checkpoint folded, Materialize());
  Reset(std::move(folded));
  return Status::Ok();
}

Status RedoLog::CorruptDelta(size_t chain_index, size_t bit_index) {
  if (chain_index >= deltas_.size()) {
    return NotFoundError("redo log chain has no delta at that index");
  }
  DeltaCheckpoint& delta = deltas_[chain_index];
  size_t total_bits = 0;
  for (const DeltaChunk& chunk : delta.chunks) {
    total_bits += chunk.data.size_bytes() * 8;
  }
  if (total_bits == 0) {
    return FailedPreconditionError("delta has no payload bytes to corrupt");
  }
  size_t bit = bit_index % total_bits;
  for (DeltaChunk& chunk : delta.chunks) {
    const size_t chunk_bits = chunk.data.size_bytes() * 8;
    if (bit < chunk_bits) {
      // Copy-on-write: the slice shares its buffer with the builder's
      // snapshot (and possibly sibling replicas); detach before flipping.
      auto* bytes = reinterpret_cast<uint8_t*>(chunk.data.MutableData());
      bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      return Status::Ok();
    }
    bit -= chunk_bits;
  }
  return InternalError("bit index mapping failed");
}

}  // namespace gemini
