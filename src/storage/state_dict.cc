#include "src/storage/state_dict.h"

#include <array>
#include <cassert>
#include <cstring>
#include <numeric>

#include "src/common/crc32.h"

namespace gemini {

Bytes DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return 4;
    case DType::kFloat16:
      return 2;
  }
  return 4;
}

std::string_view DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kFloat32:
      return "float32";
    case DType::kFloat16:
      return "float16";
  }
  return "unknown";
}

int64_t TensorSpec::NumElements() const {
  int64_t elements = 1;
  for (const int64_t dim : shape) {
    elements *= dim;
  }
  return shape.empty() ? 0 : elements;
}

std::vector<TensorSpec> ShardSpecs(const std::vector<TensorSpec>& full, int rank,
                                   int num_shards) {
  assert(rank >= 0 && rank < num_shards);
  std::vector<TensorSpec> shard;
  shard.reserve(full.size());
  for (const TensorSpec& spec : full) {
    const int64_t elements = spec.NumElements();
    // Contiguous split with the remainder spread over the first shards.
    const int64_t base = elements / num_shards;
    const int64_t extra = elements % num_shards;
    const int64_t mine = base + (rank < extra ? 1 : 0);
    if (mine == 0) {
      continue;
    }
    TensorSpec piece;
    piece.name = spec.name + "/shard" + std::to_string(rank) + "-of-" +
                 std::to_string(num_shards);
    piece.shape = {mine};
    piece.dtype = spec.dtype;
    shard.push_back(std::move(piece));
  }
  return shard;
}

Bytes TotalBytes(const std::vector<TensorSpec>& specs) {
  Bytes total = 0;
  for (const TensorSpec& spec : specs) {
    total += spec.ByteSize();
  }
  return total;
}

Status StateDict::AddTensor(TensorSpec spec, std::vector<float> data) {
  if (tensors_.contains(spec.name)) {
    return AlreadyExistsError("duplicate tensor name: " + spec.name);
  }
  if (static_cast<int64_t>(data.size()) != spec.NumElements()) {
    return InvalidArgumentError("tensor '" + spec.name + "' data has " +
                                std::to_string(data.size()) + " elements, spec expects " +
                                std::to_string(spec.NumElements()));
  }
  order_.push_back(spec.name);
  const std::string name = spec.name;
  tensors_.emplace(name, Entry{std::move(spec), std::move(data)});
  return Status::Ok();
}

const TensorSpec* StateDict::FindSpec(const std::string& name) const {
  const auto it = tensors_.find(name);
  return it == tensors_.end() ? nullptr : &it->second.spec;
}

const std::vector<float>* StateDict::FindData(const std::string& name) const {
  const auto it = tensors_.find(name);
  return it == tensors_.end() ? nullptr : &it->second.data;
}

Bytes StateDict::TotalLogicalBytes() const {
  Bytes total = 0;
  for (const auto& [name, entry] : tensors_) {
    total += entry.spec.ByteSize();
  }
  return total;
}

bool operator==(const StateDict& a, const StateDict& b) {
  if (a.order_ != b.order_) {
    return false;
  }
  for (const auto& [name, entry] : a.tensors_) {
    const auto it = b.tensors_.find(name);
    if (it == b.tensors_.end() || it->second.data != entry.data ||
        it->second.spec.shape != entry.spec.shape ||
        it->second.spec.dtype != entry.spec.dtype) {
      return false;
    }
  }
  return true;
}

namespace {

constexpr std::array<uint8_t, 4> kMagic = {'G', 'M', 'S', 'D'};
constexpr uint32_t kVersion = 1;

template <typename T>
void Append(std::vector<uint8_t>& out, const T& value) {
  const size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

void AppendString(std::vector<uint8_t>& out, const std::string& value) {
  Append(out, static_cast<uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

template <typename T>
bool Read(const std::vector<uint8_t>& in, size_t& offset, T& value) {
  if (offset + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

bool ReadString(const std::vector<uint8_t>& in, size_t& offset, std::string& value) {
  uint32_t length = 0;
  if (!Read(in, offset, length) || offset + length > in.size()) {
    return false;
  }
  value.assign(reinterpret_cast<const char*>(in.data()) + offset, length);
  offset += length;
  return true;
}

}  // namespace

// GCC 12's inliner raises false-positive -Wstringop-overflow/-Warray-bounds
// diagnostics for byte appends into a growing std::vector (GCC bug 105705).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
std::vector<uint8_t> SerializeStateDict(const StateDict& dict) {
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  Append(out, kVersion);
  Append(out, static_cast<uint32_t>(dict.num_tensors()));
  for (const std::string& name : dict.names()) {
    const TensorSpec* spec = dict.FindSpec(name);
    const std::vector<float>* data = dict.FindData(name);
    AppendString(out, name);
    Append(out, static_cast<uint8_t>(spec->dtype));
    Append(out, static_cast<uint32_t>(spec->shape.size()));
    for (const int64_t dim : spec->shape) {
      Append(out, dim);
    }
    Append(out, static_cast<uint64_t>(data->size()));
    const size_t offset = out.size();
    out.resize(offset + data->size() * sizeof(float));
    if (!data->empty()) {
      std::memcpy(out.data() + offset, data->data(), data->size() * sizeof(float));
    }
  }
  const uint32_t crc = Crc32(out.data(), out.size());
  Append(out, crc);
  return out;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
StatusOr<StateDict> DeserializeStateDict(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kMagic.size() + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    return DataLossError("state dict blob has bad magic");
  }
  const size_t body = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body, sizeof(uint32_t));
  if (Crc32(bytes.data(), body) != stored_crc) {
    return DataLossError("state dict blob failed CRC check");
  }

  size_t offset = kMagic.size();
  uint32_t version = 0;
  uint32_t count = 0;
  if (!Read(bytes, offset, version) || version != kVersion || !Read(bytes, offset, count)) {
    return DataLossError("state dict blob has bad header");
  }
  StateDict dict;
  for (uint32_t t = 0; t < count; ++t) {
    TensorSpec spec;
    uint8_t dtype = 0;
    uint32_t rank = 0;
    uint64_t elements = 0;
    if (!ReadString(bytes, offset, spec.name) || !Read(bytes, offset, dtype) ||
        !Read(bytes, offset, rank)) {
      return DataLossError("state dict tensor header truncated");
    }
    spec.dtype = static_cast<DType>(dtype);
    spec.shape.resize(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!Read(bytes, offset, spec.shape[d])) {
        return DataLossError("state dict shape truncated");
      }
    }
    if (!Read(bytes, offset, elements) || offset + elements * sizeof(float) > body) {
      return DataLossError("state dict data truncated");
    }
    std::vector<float> data(elements);
    if (elements > 0) {
      std::memcpy(data.data(), bytes.data() + offset, elements * sizeof(float));
      offset += elements * sizeof(float);
    }
    GEMINI_RETURN_IF_ERROR(dict.AddTensor(std::move(spec), std::move(data)));
  }
  return dict;
}

}  // namespace gemini
