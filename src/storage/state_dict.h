// Named-tensor state dictionaries (the torch state_dict analogue).
//
// A Checkpoint's flat payload is convenient for the transport layer, but a
// real checkpoint is a dictionary of named tensors: fp32 master weights and
// Adam moments for every parameter tensor of the model, sharded by rank
// under ZeRO-3. This module provides that inventory: per-layer tensor specs
// derived from a ModelConfig, rank sharding, a named-tensor container with
// real data, and a CRC-protected serialization format (a richer
// torch.save). The sizing cross-checks the 12 bytes/parameter rule used
// throughout the repo against an explicit tensor enumeration.
#ifndef SRC_STORAGE_STATE_DICT_H_
#define SRC_STORAGE_STATE_DICT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace gemini {

enum class DType {
  kFloat32,  // Master weights and Adam moments.
  kFloat16,  // Working parameters (not part of the persisted states).
};

Bytes DTypeSize(DType dtype);
std::string_view DTypeName(DType dtype);

struct TensorSpec {
  std::string name;
  std::vector<int64_t> shape;
  DType dtype = DType::kFloat32;

  int64_t NumElements() const;
  Bytes ByteSize() const { return NumElements() * DTypeSize(dtype); }
};

// ZeRO-3 shard: the subset of elements rank `rank` owns. Tensors are
// flattened and split contiguously; the spec names gain a "/shardK-of-N"
// suffix and carry the shard's element count as a 1-D shape.
std::vector<TensorSpec> ShardSpecs(const std::vector<TensorSpec>& full, int rank,
                                   int num_shards);

Bytes TotalBytes(const std::vector<TensorSpec>& specs);

// A state dictionary with real data (fp32 storage regardless of the logical
// dtype; the logical dtype governs byte accounting).
class StateDict {
 public:
  // Fails with kAlreadyExists on duplicate names or kInvalidArgument when
  // `data` does not match the spec's element count.
  Status AddTensor(TensorSpec spec, std::vector<float> data);

  bool Contains(const std::string& name) const { return tensors_.contains(name); }
  int num_tensors() const { return static_cast<int>(order_.size()); }
  const std::vector<std::string>& names() const { return order_; }

  const TensorSpec* FindSpec(const std::string& name) const;
  const std::vector<float>* FindData(const std::string& name) const;

  // Sum of logical tensor bytes.
  Bytes TotalLogicalBytes() const;

  friend bool operator==(const StateDict& a, const StateDict& b);

 private:
  struct Entry {
    TensorSpec spec;
    std::vector<float> data;
  };
  std::map<std::string, Entry> tensors_;
  std::vector<std::string> order_;  // Insertion order, preserved by serialization.
};

// Serialization: magic "GMSD", version, tensor count, per-tensor
// (name, dtype, shape, data), trailing CRC32. Deserialize verifies all.
std::vector<uint8_t> SerializeStateDict(const StateDict& dict);
StatusOr<StateDict> DeserializeStateDict(const std::vector<uint8_t>& bytes);

}  // namespace gemini

#endif  // SRC_STORAGE_STATE_DICT_H_
