#include "src/storage/serializer.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/common/crc32.h"
#include "src/common/thread_pool.h"

namespace gemini {
namespace {

constexpr std::array<uint8_t, 4> kMagic = {'G', 'M', 'C', 'K'};
constexpr uint32_t kVersion = 1;

// Below this, segmenting the copy/CRC across workers costs more in fan-out
// latency than the memory traffic it hides.
constexpr size_t kMinBytesPerSegment = 64 << 10;

// Fan-out pays only once every worker owns a dense slab: below this many
// payload bytes per pool thread the wake/join latency plus the cores
// contending for the same DRAM channels make the parallel path *slower* than
// one inline pass (measured: a 16 MiB blob across 4 workers serialized at
// ~0.92x the inline throughput), so such payloads stay fully inline —
// sequential copy and sequential CRC.
constexpr size_t kMinBytesPerWorker = 8 << 20;

template <typename T>
void Append(std::vector<uint8_t>& out, const T& value) {
  const size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
bool Read(const std::vector<uint8_t>& in, size_t& offset, T& value) {
  if (offset + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

// GCC 12's inliner raises false-positive -Wstringop-overflow/-Warray-bounds
// diagnostics for byte appends into a growing std::vector (GCC bug 105705).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
// Writes the full serialized form into `out` (replacing its contents). The
// payload copy and the trailing CRC fan out across `workers` when profitable;
// the bytes produced are identical for every thread count.
void SerializeInto(std::vector<uint8_t>& out, const Checkpoint& checkpoint,
                   ThreadPool* workers) {
  if (workers != nullptr &&
      checkpoint.payload.size_bytes() <
          kMinBytesPerWorker * static_cast<size_t>(workers->threads())) {
    workers = nullptr;
  }
  out.clear();
  out.reserve(40 + checkpoint.payload.size_bytes() + sizeof(uint32_t));
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  Append(out, kVersion);
  Append(out, static_cast<int32_t>(checkpoint.owner_rank));
  Append(out, static_cast<int64_t>(checkpoint.iteration));
  Append(out, static_cast<int64_t>(checkpoint.logical_bytes));
  Append(out, static_cast<uint64_t>(checkpoint.payload.size()));
  const size_t payload_offset = out.size();
  const size_t payload_bytes = checkpoint.payload.size_bytes();
  out.resize(payload_offset + payload_bytes);
  if (!checkpoint.payload.empty()) {
    const auto* src = reinterpret_cast<const uint8_t*>(checkpoint.payload.data());
    uint8_t* dst = out.data() + payload_offset;
    const size_t segments =
        workers == nullptr
            ? 1
            : std::min<size_t>(static_cast<size_t>(workers->threads()),
                               std::max<size_t>(1, payload_bytes / kMinBytesPerSegment));
    if (segments <= 1) {
      std::memcpy(dst, src, payload_bytes);
    } else {
      const size_t step = payload_bytes / segments;
      workers->ParallelFor(segments, [&](size_t i) {
        const size_t begin = i * step;
        const size_t end = i + 1 == segments ? payload_bytes : begin + step;
        std::memcpy(dst + begin, src + begin, end - begin);
      });
    }
  }
  // Crc32Parallel combines per-segment CRCs in rank order with the exact
  // Crc32Combine, so the trailing word is bit-identical for every thread
  // count and segmenting choice.
  const uint32_t crc = Crc32Parallel(out.data(), out.size(), workers);
  Append(out, crc);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace

std::vector<uint8_t> SerializeCheckpoint(const Checkpoint& checkpoint) {
  std::vector<uint8_t> out;
  SerializeInto(out, checkpoint, nullptr);
  return out;
}

std::shared_ptr<std::vector<uint8_t>> SerializeCheckpointShared(const Checkpoint& checkpoint,
                                                                const SerializeOptions& options) {
  const size_t total = 40 + checkpoint.payload.size_bytes() + sizeof(uint32_t);
  std::shared_ptr<std::vector<uint8_t>> out =
      options.pool != nullptr ? options.pool->Acquire(total)
                              : std::make_shared<std::vector<uint8_t>>();
  SerializeInto(*out, checkpoint, options.workers);
  return out;
}
StatusOr<Checkpoint> DeserializeCheckpoint(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kMagic.size() + sizeof(uint32_t)) {
    return DataLossError("checkpoint blob truncated");
  }
  if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    return DataLossError("checkpoint blob has bad magic");
  }
  // CRC covers everything before the trailing u32.
  const size_t body_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body_size, sizeof(uint32_t));
  if (Crc32(bytes.data(), body_size) != stored_crc) {
    return DataLossError("checkpoint blob failed CRC check");
  }

  size_t offset = kMagic.size();
  uint32_t version = 0;
  int32_t owner = 0;
  int64_t iteration = 0;
  int64_t logical = 0;
  uint64_t count = 0;
  if (!Read(bytes, offset, version) || version != kVersion) {
    return DataLossError("checkpoint blob has unsupported version");
  }
  if (!Read(bytes, offset, owner) || !Read(bytes, offset, iteration) ||
      !Read(bytes, offset, logical) || !Read(bytes, offset, count)) {
    return DataLossError("checkpoint blob header truncated");
  }
  if (offset + count * sizeof(float) > body_size) {
    return DataLossError("checkpoint blob payload truncated");
  }
  Checkpoint checkpoint;
  checkpoint.owner_rank = owner;
  checkpoint.iteration = iteration;
  checkpoint.logical_bytes = logical;
  std::vector<float> payload(count);
  if (count > 0) {
    std::memcpy(payload.data(), bytes.data() + offset, count * sizeof(float));
  }
  checkpoint.payload = std::move(payload);
  // The stream CRC above already vouched for these bytes; re-stamp the
  // payload digest so in-memory integrity checks keep working downstream.
  checkpoint.StampPayloadCrc();
  return checkpoint;
}

}  // namespace gemini
